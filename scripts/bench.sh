#!/usr/bin/env bash
# Reproducible kernel-benchmark protocol: configure a dedicated Release
# build tree, build the simulator, run bench/perf_kernel, and refresh
# BENCH_kernel.json at the repo root (the tracked perf trajectory —
# commit the refreshed file with any PR that touches the kernel).
#
# Usage: scripts/bench.sh [--quick] [--repeat N]
#   extra arguments are forwarded to perf_kernel
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD=build-bench

printf '=== configure + build (Release, %s) ===\n' "$BUILD"
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j "$JOBS" --target perf_kernel

printf '\n=== perf_kernel ===\n'
# Record the exact tree the numbers came from (schema v2 build.git_sha;
# "unknown" when run outside the wrapper or git).
SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
git diff --quiet 2>/dev/null || SHA="$SHA-dirty"
ALEWIFE_GIT_SHA="$SHA" \
    "./$BUILD/bench/perf_kernel" --out BENCH_kernel.json "$@"
