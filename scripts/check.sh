#!/usr/bin/env bash
# Full local CI sweep:
#   1. tier-1: default build + complete ctest suite
#   2. ASan/UBSan build + complete ctest suite
#   3. TSan build + the parallel-engine suites (exp_test) and the
#      intra-run window engine (`parallel` ctest label subset)
#   4. short check_fuzz corpus (schedule-perturbation + auditor),
#      then a 2-worker node-scaling bench smoke
#   5. observability smoke: tiny EM3D sweep with trace + metrics out
#   6. checkpoint smokes: warm-start sweep equals cold sweep, and a
#      kill -9 mid-run resumes from the last periodic snapshot
#   7. farm smokes: a multi-process campaign with one worker dying
#      kill -9-style after its first claim and one with a stalled
#      heartbeat still yields the full, bit-identical result set with
#      the reclaimed lease visible in the status JSON
#   8. predict smokes: the analytic sweep overlay prints a MAPE per
#      mechanism, delay injection reports its propagation, and
#      farm-dir + obs flags are rejected (farm runs are obs-detached)
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer builds (tier-1 + fuzz corpus only)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

if [[ "$FAST" -eq 0 ]]; then
    step "ASan/UBSan: build + ctest"
    cmake -B build-asan -S . -DALEWIFE_SANITIZE=address,undefined \
        >/dev/null
    cmake --build build-asan -j "$JOBS"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure

    # The full ctest pass above includes the ckpt label; this explicit
    # run guards the label itself (a save->restore->run sequence that
    # leaks or reads stale state must fail here, visibly).
    step "ASan/UBSan: ckpt label (save->restore->run)"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure -L ckpt

    # The graph-analytics family is the newest coherence/NI stressor
    # (irregular point-to-point traffic, exclusive prefetch + recall
    # interleavings); run its label explicitly so a leak or stale
    # read in that path fails here by name.
    step "ASan/UBSan: graph label (workload family + differential)"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure -L graph

    # The farm's recovery paths (lease reaping, retry/poison, cache
    # quarantine, kill-after-claim death test) move files while worker
    # threads run; prove them leak- and UB-free by name.
    step "ASan/UBSan: farm label (queue protocol + fault recovery)"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure -L farm

    step "TSan: build + parallel-engine and kernel-pool suites"
    cmake -B build-tsan -S . -DALEWIFE_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"
    # KernelGolden/EventPool/InlineFn cover the slab pool + free-list +
    # generation logic; the ASan pass above runs them too, so the
    # kernel determinism regression is sanitizer-proven both ways.
    ctest --test-dir build-tsan -j "$JOBS" --output-on-failure \
        -R "SweepEngine|Determinism|EventPool|KernelGolden|InlineFn|RadixQueue"

    # Intra-run window engine (sim/parallel.hh) under TSan: the subset
    # below still exercises every synchronization path — staged
    # commits, the gated-live perturbation path, the cross-traffic LP
    # and the order gate — at TSan-tolerable cost; the full `parallel`
    # label runs in the tier-1 pass above.
    step "TSan: intra-run parallel window engine"
    ctest --test-dir build-tsan -j "$JOBS" --output-on-failure \
        -L parallel -R "Em3d|Perturbed|CrossTraffic"
fi

step "check_fuzz: short corpus"
./build/bench/check_fuzz --seeds 4 --ops 100
./build/bench/check_fuzz --inject-bug

step "parallel bench smoke: node-scaling rows with 2 workers"
# The cycle columns are bit-identical at any thread count by the
# engine's contract; this smoke proves the bench path itself drives
# the window engine (and its banner says so) without timing asserts.
./build/bench/ext2_node_scaling --quick --threads 2 \
    | grep -q "intra-run threads=2" \
    || { echo "parallel smoke: ext2 did not engage --threads"; exit 1; }

step "warm-start smoke: forked sweep matches cold sweep"
COLD="$(./build/examples/sweep_cli --app stream --mechs SM,MP-I \
    --sweep ideal-latency --points 15,100,400)"
WARM="$(./build/examples/sweep_cli --app stream --mechs SM,MP-I \
    --sweep ideal-latency --points 15,100,400 --warm-start 500)"
[[ "$COLD" == "$WARM" ]] \
    || { echo "warm-start smoke: forked sweep diverged from cold run"; \
         exit 1; }

step "crash-tolerance smoke: kill sweep_cli, resume from snapshot"
CKPT_DIR="$(mktemp -d)"
./build/examples/sweep_cli --app moldyn --mechs SM --sweep none \
    --scale 6 --ckpt-dir "$CKPT_DIR" --ckpt-interval 500000 \
    >/dev/null 2>&1 &
CKPT_PID=$!
sleep 2
kill -9 "$CKPT_PID" 2>/dev/null || true
wait "$CKPT_PID" 2>/dev/null || true
ls "$CKPT_DIR"/*-latest.ckpt.json >/dev/null 2>&1 \
    || { echo "ckpt smoke: killed run left no snapshot"; exit 1; }
# The restarted job must resume from the snapshot (audited bit-level
# against the replay), finish verified, and remove its snapshot.
./build/examples/sweep_cli --app moldyn --mechs SM --sweep none \
    --scale 6 --ckpt-dir "$CKPT_DIR" --ckpt-interval 500000 \
    | grep -q "yes" \
    || { echo "ckpt smoke: resumed run did not verify"; exit 1; }
if ls "$CKPT_DIR"/*-latest.ckpt.json >/dev/null 2>&1; then
    echo "ckpt smoke: snapshot not removed after successful resume"
    exit 1
fi
rm -rf "$CKPT_DIR"

step "graph sweep smoke: ext3 matrix through the sweep engine"
GRAPH_CKPT="$(mktemp -d)"
./build/bench/ext3_graph_sweep --quick --ckpt-dir "$GRAPH_CKPT" \
    >/dev/null
# Completed sweeps must clean up their crash-tolerance snapshots.
if ls "$GRAPH_CKPT"/*-latest.ckpt.json >/dev/null 2>&1; then
    echo "graph smoke: ext3 sweep left snapshots behind"
    exit 1
fi
rm -rf "$GRAPH_CKPT"
# The catalog seam: a graph app runs through the generic sweep CLI
# and self-verifies (bit-audited digest) like any paper workload.
./build/examples/sweep_cli --app bfs --graph rmat --mechs SM,MP-P \
    --sweep none | grep -q "yes" \
    || { echo "graph smoke: sweep_cli bfs did not verify"; exit 1; }

step "farm smoke: coordinator + faulty workers, bit-identical results"
FARM_ROOT="$(mktemp -d)"
FARM_DIR="$FARM_ROOT/farm"
./build/examples/sweep_cli --app stream --mechs SM,MP-I,MP-P \
    --sweep bisection --points 18,9 --out "$FARM_ROOT/local.json" \
    >/dev/null
./build/examples/farm_cli coordinator --farm-dir "$FARM_DIR" \
    --app stream --mechs SM,MP-I,MP-P --sweep bisection \
    --points 18,9 --workers 0 --lease-ttl-ms 500 --heartbeat-ms 100 \
    --poll-ms 50 --backoff-ms 50 --out "$FARM_ROOT/farmed.json" \
    >/dev/null 2>&1 &
COORD_PID=$!
for _ in $(seq 1 100); do
    [[ -f "$FARM_DIR/farm.json" ]] && break
    sleep 0.1
done
[[ -f "$FARM_DIR/farm.json" ]] \
    || { echo "farm smoke: coordinator wrote no manifest"; exit 1; }
# Worker 1 dies kill -9-style (exit 9, lease held, no cleanup) right
# after its first claim; the coordinator must reap the stale lease and
# re-queue that job — the run-to-completion assertion below implies it.
set +e
FARM_FAULT=kill-after-claim ./build/examples/farm_cli worker \
    --farm-dir "$FARM_DIR" >/dev/null 2>&1
KILLED_RC=$?
set -e
[[ "$KILLED_RC" -eq 9 ]] \
    || { echo "farm smoke: kill-after-claim worker exited $KILLED_RC"; \
         exit 1; }
# Worker 2 works but never renews its lease; worker 3 is healthy. The
# campaign must produce the full result set regardless.
FARM_FAULT=stall-heartbeat ./build/examples/farm_cli worker \
    --farm-dir "$FARM_DIR" >/dev/null 2>&1 &
STALL_PID=$!
./build/examples/farm_cli worker --farm-dir "$FARM_DIR" \
    >/dev/null 2>&1
wait "$COORD_PID" \
    || { echo "farm smoke: coordinator exited non-zero"; exit 1; }
wait "$STALL_PID" 2>/dev/null || true
# Full result set, bit-identical to the single-process sweep.
diff "$FARM_ROOT/local.json" "$FARM_ROOT/farmed.json" \
    || { echo "farm smoke: farmed sweep diverged from local run"; \
         exit 1; }
# The killed worker's lease shows up as a reclaim in the status JSON.
grep -Eq '"reclaims": [1-9]' "$FARM_DIR/status.json" \
    || { echo "farm smoke: no reclaimed lease in status JSON"; exit 1; }
./build/examples/farm_cli status --farm-dir "$FARM_DIR" \
    | grep -q '"alewife-farm-status"' \
    || { echo "farm smoke: status subcommand failed"; exit 1; }
rm -rf "$FARM_ROOT"

step "farm smoke: sweep_cli --farm-dir shares its batch"
FARM2="$(mktemp -d)"
./build/examples/sweep_cli --app stream --mechs SM,MP-P --sweep none \
    --farm-dir "$FARM2/farm" --jobs 2 | grep -q "yes" \
    || { echo "farm smoke: sweep_cli --farm-dir did not verify"; \
         exit 1; }
rm -rf "$FARM2"

step "predict smoke: analytic overlay + delay-injection report"
# The clock-sweep overlay must print a predicted value and a MAPE for
# every requested mechanism (accuracy itself is asserted by the
# critpath-labelled golden tests; this proves the CLI path end-to-end).
PRED="$(./build/examples/sweep_cli --app stream --mechs SM,MP-I \
    --sweep clock --points 14,40 --predict)"
[[ "$(grep -c "MAPE" <<<"$PRED")" -eq 2 ]] \
    || { echo "predict smoke: expected 2 MAPE lines"; exit 1; }
# A stall well past the barrier slack must propagate to other nodes.
./build/examples/sweep_cli --app stream --mechs SM --inject-node 0 \
    --inject-at 100 --inject-cycles 8000 \
    | grep -q "finish shift +" \
    || { echo "predict smoke: injection report missing"; exit 1; }
# Farm campaigns are obs-detached; the combination must be rejected.
PREDF="$(mktemp -d)"
if ./build/examples/sweep_cli --app stream --mechs SM --sweep none \
    --farm-dir "$PREDF/farm" --metrics-out "$PREDF/m.json" \
    >/dev/null 2>&1; then
    echo "predict smoke: farm-dir + obs was not rejected"; exit 1
fi
rm -rf "$PREDF"

step "observability smoke: EM3D with trace + metrics"
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
./build/examples/sweep_cli --app em3d --mechs SM --sweep none \
    --scale 0.25 --obs-interval 500 \
    --trace-out "$OBS_DIR/trace.json" \
    --metrics-out "$OBS_DIR/metrics.json"
for f in "$OBS_DIR"/trace-*.json "$OBS_DIR"/metrics.json; do
    [[ -s "$f" ]] || { echo "obs smoke: missing/empty $f"; exit 1; }
done
grep -q '"traceEvents"' "$OBS_DIR"/trace-*.json
grep -q '"alewife-metrics-sweep"' "$OBS_DIR/metrics.json"

step "all checks passed"
