#!/usr/bin/env bash
# Full local CI sweep:
#   1. tier-1: default build + complete ctest suite
#   2. ASan/UBSan build + complete ctest suite
#   3. TSan build + the parallel-engine suites (exp_test) and the
#      intra-run window engine (`parallel` ctest label subset)
#   4. short check_fuzz corpus (schedule-perturbation + auditor),
#      then a 2-worker node-scaling bench smoke
#   5. observability smoke: tiny EM3D sweep with trace + metrics out
#   6. checkpoint smokes: warm-start sweep equals cold sweep, and a
#      kill -9 mid-run resumes from the last periodic snapshot
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer builds (tier-1 + fuzz corpus only)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

if [[ "$FAST" -eq 0 ]]; then
    step "ASan/UBSan: build + ctest"
    cmake -B build-asan -S . -DALEWIFE_SANITIZE=address,undefined \
        >/dev/null
    cmake --build build-asan -j "$JOBS"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure

    # The full ctest pass above includes the ckpt label; this explicit
    # run guards the label itself (a save->restore->run sequence that
    # leaks or reads stale state must fail here, visibly).
    step "ASan/UBSan: ckpt label (save->restore->run)"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure -L ckpt

    # The graph-analytics family is the newest coherence/NI stressor
    # (irregular point-to-point traffic, exclusive prefetch + recall
    # interleavings); run its label explicitly so a leak or stale
    # read in that path fails here by name.
    step "ASan/UBSan: graph label (workload family + differential)"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure -L graph

    step "TSan: build + parallel-engine and kernel-pool suites"
    cmake -B build-tsan -S . -DALEWIFE_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"
    # KernelGolden/EventPool/InlineFn cover the slab pool + free-list +
    # generation logic; the ASan pass above runs them too, so the
    # kernel determinism regression is sanitizer-proven both ways.
    ctest --test-dir build-tsan -j "$JOBS" --output-on-failure \
        -R "SweepEngine|Determinism|EventPool|KernelGolden|InlineFn|RadixQueue"

    # Intra-run window engine (sim/parallel.hh) under TSan: the subset
    # below still exercises every synchronization path — staged
    # commits, the gated-live perturbation path, the cross-traffic LP
    # and the order gate — at TSan-tolerable cost; the full `parallel`
    # label runs in the tier-1 pass above.
    step "TSan: intra-run parallel window engine"
    ctest --test-dir build-tsan -j "$JOBS" --output-on-failure \
        -L parallel -R "Em3d|Perturbed|CrossTraffic"
fi

step "check_fuzz: short corpus"
./build/bench/check_fuzz --seeds 4 --ops 100
./build/bench/check_fuzz --inject-bug

step "parallel bench smoke: node-scaling rows with 2 workers"
# The cycle columns are bit-identical at any thread count by the
# engine's contract; this smoke proves the bench path itself drives
# the window engine (and its banner says so) without timing asserts.
./build/bench/ext2_node_scaling --quick --threads 2 \
    | grep -q "intra-run threads=2" \
    || { echo "parallel smoke: ext2 did not engage --threads"; exit 1; }

step "warm-start smoke: forked sweep matches cold sweep"
COLD="$(./build/examples/sweep_cli --app stream --mechs SM,MP-I \
    --sweep ideal-latency --points 15,100,400)"
WARM="$(./build/examples/sweep_cli --app stream --mechs SM,MP-I \
    --sweep ideal-latency --points 15,100,400 --warm-start 500)"
[[ "$COLD" == "$WARM" ]] \
    || { echo "warm-start smoke: forked sweep diverged from cold run"; \
         exit 1; }

step "crash-tolerance smoke: kill sweep_cli, resume from snapshot"
CKPT_DIR="$(mktemp -d)"
./build/examples/sweep_cli --app moldyn --mechs SM --sweep none \
    --scale 6 --ckpt-dir "$CKPT_DIR" --ckpt-interval 500000 \
    >/dev/null 2>&1 &
CKPT_PID=$!
sleep 2
kill -9 "$CKPT_PID" 2>/dev/null || true
wait "$CKPT_PID" 2>/dev/null || true
ls "$CKPT_DIR"/*-latest.ckpt.json >/dev/null 2>&1 \
    || { echo "ckpt smoke: killed run left no snapshot"; exit 1; }
# The restarted job must resume from the snapshot (audited bit-level
# against the replay), finish verified, and remove its snapshot.
./build/examples/sweep_cli --app moldyn --mechs SM --sweep none \
    --scale 6 --ckpt-dir "$CKPT_DIR" --ckpt-interval 500000 \
    | grep -q "yes" \
    || { echo "ckpt smoke: resumed run did not verify"; exit 1; }
if ls "$CKPT_DIR"/*-latest.ckpt.json >/dev/null 2>&1; then
    echo "ckpt smoke: snapshot not removed after successful resume"
    exit 1
fi
rm -rf "$CKPT_DIR"

step "graph sweep smoke: ext3 matrix through the sweep engine"
GRAPH_CKPT="$(mktemp -d)"
./build/bench/ext3_graph_sweep --quick --ckpt-dir "$GRAPH_CKPT" \
    >/dev/null
# Completed sweeps must clean up their crash-tolerance snapshots.
if ls "$GRAPH_CKPT"/*-latest.ckpt.json >/dev/null 2>&1; then
    echo "graph smoke: ext3 sweep left snapshots behind"
    exit 1
fi
rm -rf "$GRAPH_CKPT"
# The catalog seam: a graph app runs through the generic sweep CLI
# and self-verifies (bit-audited digest) like any paper workload.
./build/examples/sweep_cli --app bfs --graph rmat --mechs SM,MP-P \
    --sweep none | grep -q "yes" \
    || { echo "graph smoke: sweep_cli bfs did not verify"; exit 1; }

step "observability smoke: EM3D with trace + metrics"
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
./build/examples/sweep_cli --app em3d --mechs SM --sweep none \
    --scale 0.25 --obs-interval 500 \
    --trace-out "$OBS_DIR/trace.json" \
    --metrics-out "$OBS_DIR/metrics.json"
for f in "$OBS_DIR"/trace-*.json "$OBS_DIR"/metrics.json; do
    [[ -s "$f" ]] || { echo "obs smoke: missing/empty $f"; exit 1; }
done
grep -q '"traceEvents"' "$OBS_DIR"/trace-*.json
grep -q '"alewife-metrics-sweep"' "$OBS_DIR/metrics.json"

step "all checks passed"
