/**
 * @file
 * Example: place the Table 1 machine gallery on the paper's
 * sensitivity curves.
 *
 * For each historical 32-processor machine, build a MachineConfig
 * approximating its clock, bisection and network latency, run EM3D
 * under shared memory and message passing, and report which mechanism
 * the design point favours — the paper's "where does your machine sit"
 * exercise (Section 5.2/5.3 discussion).
 *
 *   ./build/examples/machine_explorer [nodes-per-side]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "apps/em3d.hh"
#include "core/runner.hh"
#include "machine/gallery.hh"

using namespace alewife;

int
main(int argc, char **argv)
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = argc > 1 ? std::atoi(argv[1]) : 1024;
    p.graph.degree = 8;
    p.iters = 2;
    const auto factory = apps::Em3d::factory(p);

    std::cout << "EM3D (SM vs MP-I) on Table 1 design points\n\n";
    std::cout << std::left << std::setw(16) << "machine" << std::right
              << std::setw(10) << "B/cycle" << std::setw(10)
              << "net lat" << std::setw(12) << "SM cycles"
              << std::setw(12) << "MP cycles" << std::setw(10)
              << "SM/MP" << '\n';

    for (const auto &entry : galleryMachines()) {
        if (!entry.bisectionMBps || !entry.netLatencyCycles)
            continue; // no network parameters to emulate
        MachineConfig cfg = entry.toConfig();

        core::RunSpec sm;
        sm.machine = cfg;
        sm.mechanism = core::Mechanism::SharedMemory;
        core::RunSpec mp;
        mp.machine = cfg;
        mp.mechanism = core::Mechanism::MpInterrupt;

        const auto rs = core::runApp(factory, sm);
        const auto rm = core::runApp(factory, mp);

        std::cout << std::left << std::setw(16) << entry.name
                  << std::right << std::fixed << std::setprecision(1)
                  << std::setw(10) << *entry.bytesPerCycle
                  << std::setw(10) << *entry.netLatencyCycles
                  << std::setprecision(0) << std::setw(12)
                  << rs.runtimeCycles << std::setw(12)
                  << rm.runtimeCycles << std::setprecision(2)
                  << std::setw(10)
                  << rs.runtimeCycles / rm.runtimeCycles << '\n';
    }

    std::cout << "\nLow-bisection meshes (Delta, DASH) and "
                 "high-latency designs punish shared memory;\n"
                 "fat networks (J-Machine, T3D) keep it "
                 "competitive — the paper's Section 5 story.\n";
    return 0;
}
