/**
 * @file
 * Example: reproduce the paper's headline EM3D experiment end to end —
 * run EM3D under all five communication mechanisms on the simulated
 * Alewife, then shrink the bisection and raise the network latency to
 * watch the mechanisms trade places.
 *
 *   ./build/examples/em3d_scaling [nodes-per-side] [iters]
 */

#include <cstdlib>
#include <iostream>

#include "apps/em3d.hh"
#include "core/experiments.hh"
#include "core/report.hh"

using namespace alewife;

int
main(int argc, char **argv)
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = argc > 1 ? std::atoi(argv[1]) : 1024;
    p.graph.degree = 8;
    p.iters = argc > 2 ? std::atoi(argv[2]) : 2;

    const auto factory = apps::Em3d::factory(p);
    const MachineConfig base;
    const auto arr = core::allMechanisms();
    const std::vector<core::Mechanism> mechs(arr.begin(), arr.end());

    std::cout << "EM3D, " << p.graph.nodesPerSide
              << " nodes/side, degree " << p.graph.degree << ", "
              << p.iters << " iterations, 32-node Alewife\n\n";

    // 1. The baseline comparison (paper Figure 4 row).
    const auto results = core::runAllMechanisms(factory, base, mechs);
    core::printBreakdownTable(std::cout, "baseline machine", results);

    // 2. Starve the bisection (paper Figure 8).
    const auto bisect = core::bisectionSweep(
        factory, base, mechs, {18.0, 9.0, 4.5}, 64);
    core::printSeries(std::cout, "\nbisection sweep",
                      "bisection B/cyc", bisect);

    // 3. Stretch the network latency (paper Figure 10).
    const auto lat = core::idealLatencySweep(factory, base, mechs,
                                             {15, 60, 240});
    core::printSeries(std::cout, "\nuniform-latency sweep",
                      "latency (cyc)", lat);

    std::cout << "\nEvery run's numeric result was verified against "
                 "the sequential reference.\n";
    return 0;
}
