/**
 * @file
 * Example: writing your own application against the public API.
 *
 * Implements a tiny parallel histogram as a core::App with two of the
 * five mechanisms (shared memory with rmw, message passing with
 * counting handlers) and runs it through the standard runner so it
 * gets verification and statistics for free.
 *
 *   ./build/examples/custom_app
 */

#include <iostream>
#include <memory>
#include <vector>

#include "core/report.hh"
#include "core/runner.hh"
#include "sim/rng.hh"

using namespace alewife;

namespace {

/**
 * Each node classifies a slice of pseudo-random samples into 8 global
 * buckets. Shared memory: rmw increments on shared bucket words.
 * Message passing: one counting handler per bucket-owner node.
 */
class Histogram : public core::App
{
  public:
    static constexpr int kBuckets = 8;
    static constexpr int kSamplesPerNode = 64;

    std::string name() const override { return "histogram"; }

    void
    setup(Machine &m, core::Mechanism mech) override
    {
        mech_ = mech;
        machine_ = &m;
        nprocs_ = m.nodes();

        // Deterministic samples and the expected histogram.
        Rng rng(2024);
        samples_.assign(nprocs_,
                        std::vector<int>(kSamplesPerNode, 0));
        expect_.assign(kBuckets, 0);
        for (auto &slice : samples_) {
            for (int &s : slice) {
                s = static_cast<int>(rng.nextBounded(kBuckets));
                ++expect_[s];
            }
        }

        if (core::isSharedMemory(mech)) {
            // One bucket word per line, interleaved across homes.
            bucketBase_ = m.mem().alloc(
                2 * kBuckets, mem::HomePolicy::Interleaved, 0,
                "histogram");
        } else {
            counts_.assign(nprocs_, std::vector<std::int64_t>(
                                        kBuckets, 0));
            received_.assign(nprocs_, 0);
            // Each node knows how many samples will land on it; an
            // asynchronous send is only "done" when the receiver has
            // counted it, so the programs wait on this before exiting
            // (a barrier alone does NOT imply message delivery).
            expectedMsgs_.assign(nprocs_, 0);
            for (const auto &slice : samples_)
                for (int s : slice)
                    ++expectedMsgs_[s % nprocs_];
            hCount_ = m.handlers().add([this](msg::HandlerEnv &env) {
                ++counts_[env.self()][env.msg().args[0]];
                ++received_[env.self()];
            });
        }
    }

    sim::Thread
    program(proc::Ctx &ctx) override
    {
        if (core::isSharedMemory(mech_))
            return programSm(ctx);
        return programMp(ctx);
    }

    double
    checksum() const override
    {
        double sum = 0.0;
        if (core::isSharedMemory(mech_)) {
            for (int b = 0; b < kBuckets; ++b) {
                sum += static_cast<double>((b + 1)
                                           * machine_->debugWord(
                                               bucketBase_ + 16 * b));
            }
        } else {
            for (int b = 0; b < kBuckets; ++b) {
                std::int64_t total = 0;
                for (const auto &c : counts_)
                    total += c[b];
                sum += static_cast<double>((b + 1) * total);
            }
        }
        return sum;
    }

    double
    reference() const override
    {
        double sum = 0.0;
        for (int b = 0; b < kBuckets; ++b)
            sum += static_cast<double>((b + 1) * expect_[b]);
        return sum;
    }

  private:
    sim::Thread
    programSm(proc::Ctx &ctx)
    {
        const auto &mine = samples_[ctx.self()];
        for (int s : mine) {
            co_await ctx.rmw(bucketBase_ + 16 * s,
                             [](std::uint64_t v) { return v + 1; });
            co_await ctx.compute(5);
        }
        co_await ctx.barrier();
    }

    sim::Thread
    programMp(proc::Ctx &ctx)
    {
        const int self = ctx.self();
        const auto &mine = samples_[self];
        for (int s : mine) {
            // Bucket b lives on node b (counting handler).
            co_await ctx.send(s % ctx.nprocs(), hCount_,
                              msg::amArgs(s));
            co_await ctx.compute(5);
        }
        // Completion: all samples destined to us have been counted.
        co_await ctx.waitUntil([this, self]() {
            return received_[self] >= expectedMsgs_[self];
        });
        co_await ctx.barrier();
    }

    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;
    int nprocs_ = 0;
    Addr bucketBase_ = 0;
    msg::HandlerId hCount_ = -1;
    std::vector<std::vector<int>> samples_;
    std::vector<std::int64_t> expect_;
    std::vector<std::vector<std::int64_t>> counts_;
    std::vector<std::int64_t> expectedMsgs_;
    std::vector<std::int64_t> received_;
};

} // namespace

int
main()
{
    std::vector<core::RunResult> results;
    for (core::Mechanism mech : {core::Mechanism::SharedMemory,
                                 core::Mechanism::MpInterrupt,
                                 core::Mechanism::MpPolling}) {
        Histogram app;
        core::RunSpec spec;
        spec.mechanism = mech;
        results.push_back(core::runApp(app, spec));
    }
    core::printBreakdownTable(std::cout,
                              "custom histogram app, 3 mechanisms",
                              results);
    std::cout << "all runs verified: histogram totals match the "
                 "expected distribution\n";
    return 0;
}
