/**
 * @file
 * Example: a command-line sweep driver over the public experiment API,
 * running through the parallel orchestration engine (src/exp/).
 *
 * Runs any paper application under any mechanism subset across any of
 * the paper sweeps without writing code:
 *
 *   sweep_cli --app em3d --mechs SM,MP-I --sweep bisection \
 *             --points 18,9,4.5 --jobs 4
 *   sweep_cli --app iccg --mechs SM,MP-P --sweep ideal-latency \
 *             --points 15,100,400 --out iccg.json
 *   sweep_cli --app moldyn --sweep clock --points 14,20,40 \
 *             --cache-dir ~/.cache/alewife
 *   sweep_cli --app unstruc --sweep none          # plain Figure-4 row
 *
 * --jobs N       run up to N simulations on worker threads (results
 *                are byte-identical to --jobs 1)
 * --threads N    intra-run workers inside each simulation (the
 *                sim/parallel.hh window engine; results are
 *                byte-identical at any count). jobs x threads is
 *                arbitrated against the host's hardware threads and
 *                auto-downscaled with a message when oversubscribed.
 * --out FILE     also write structured results; .csv extension emits
 *                CSV, anything else schema-versioned JSON
 * --cache-dir D  persist results as JSON under D and skip any run
 *                already cached there
 * --progress     report jobs done / running and sim-events/sec
 *
 * Every run is verified against the application's sequential
 * reference; the driver exits non-zero on any mismatch. Unknown
 * --app / --sweep / mechanism names are reported and rejected.
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/graph/catalog.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "exp/farm.hh"
#include "exp/result_cache.hh"
#include "exp/serialize.hh"
#include "exp/warm_start.hh"
#include "obs/critpath.hh"
#include "obs/predict.hh"

using namespace alewife;

namespace {

struct Options
{
    std::string app = "em3d";
    std::string graph = "uniform"; ///< graph family for graph apps
    std::string sweep = "none";
    std::vector<core::Mechanism> mechs;
    std::vector<double> points;
    double scale = 1.0;
    int jobs = 1;
    int threads = 1; ///< intra-run workers per simulation
    std::string out;      ///< structured output file; "" = none
    std::string cacheDir; ///< on-disk result cache; "" = no cache
    bool progress = false;
    obs::RecorderOptions obs; ///< --trace-out/--metrics-out/--obs-interval
    std::string ckptDir;      ///< crash tolerance: periodic snapshots
    double ckptInterval = 2'000'000.0; ///< snapshot period (sim cycles)
    std::uint64_t warmStart = 0; ///< warm-start fork point (sim events)
    std::string farmDir; ///< distributed farm campaign directory
    bool predict = false; ///< overlay the analytic prediction
    core::DelayInjection inject; ///< one-off delay injection report
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: sweep_cli [--app em3d|unstruc|iccg|moldyn|stream|\n"
           "                        bfs|pagerank|pagerank-push|sssp]\n"
           "                 [--graph uniform|rmat|grid] (graph apps "
           "only)\n"
           "                 [--mechs SM,SM+PF,MP-I,MP-P,BULK]\n"
           "                 [--sweep none|bisection|msglen|clock|"
           "ideal-latency]\n"
           "                 [--points x1,x2,...]\n"
           "                 [--scale f]   (workload size multiplier)\n"
           "                 [--jobs n]    (parallel simulations)\n"
           "                 [--threads n] (workers inside each "
           "simulation;\n"
           "                                jobs x threads is "
           "arbitrated against\n"
           "                                the host and downscaled "
           "with a message)\n"
           "                 [--out file]  (.csv -> CSV, else JSON)\n"
           "                 [--cache-dir dir]\n"
           "                 [--progress]\n"
           "                 [--trace-out file.json]   (Perfetto "
           "timeline, one per run)\n"
           "                 [--metrics-out file.json] (metrics "
           "registry; sweep-merged)\n"
           "                 [--obs-interval cycles]   (interval "
           "profiling period)\n"
           "                 [--ckpt-dir dir]      (crash tolerance: "
           "periodic snapshots,\n"
           "                                        resume killed jobs "
           "from the last one)\n"
           "                 [--ckpt-interval cyc] (snapshot period, "
           "default 2000000;\n"
           "                                        0 disables periodic "
           "snapshots)\n"
           "                 [--farm-dir dir]      (share the batch "
           "with farm_cli\n"
           "                                        workers through a "
           "work queue under dir)\n"
           "                 [--warm-start events] (ideal-latency only: "
           "fork every\n"
           "                                        latency variant "
           "from one snapshot)\n"
           "                 [--predict]           (bisection/clock "
           "sweeps: overlay the\n"
           "                                        analytic "
           "prediction from one\n"
           "                                        instrumented run "
           "per mechanism,\n"
           "                                        with per-point "
           "error and MAPE)\n"
           "                 [--inject-node n --inject-at cyc "
           "--inject-cycles c]\n"
           "                                       (stall node n for c "
           "cycles at cycle\n"
           "                                        cyc; runs base + "
           "injected once per\n"
           "                                        mechanism and "
           "prints the propagation/\n"
           "                                        decay report; "
           "no sweep)\n";
    std::exit(2);
}

/** Reject with a message naming the offending value, then usage. */
[[noreturn]] void
badValue(const std::string &what, const std::string &value,
         const std::string &valid)
{
    std::cerr << "sweep_cli: unknown " << what << " '" << value
              << "' (valid: " << valid << ")\n\n";
    usage();
}

const char *const kValidApps =
    "em3d, unstruc, iccg, moldyn, stream, bfs, pagerank, "
    "pagerank-push, sssp";
const char *const kValidSweeps =
    "none, bisection, msglen, clock, ideal-latency";

double
parseNum(const std::string &opt, const std::string &text)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(text, &used);
        if (used == text.size())
            return v;
    } catch (const std::exception &) {
    }
    badValue(opt + " value", text, "a number");
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "sweep_cli: " << a
                          << " requires a value\n\n";
                usage();
            }
            return argv[++i];
        };
        if (a == "--app") {
            o.app = next();
        } else if (a == "--graph") {
            o.graph = next();
            bool known = false;
            for (const char *f : {"uniform", "rmat", "grid"})
                known |= o.graph == f;
            if (!known)
                badValue("--graph value", o.graph,
                         "uniform, rmat, grid");
        } else if (a == "--mechs") {
            for (const auto &m : splitCommas(next())) {
                // mechanismFromName() is fatal on bad names; pre-check
                // so the error names the value and lists valid ones.
                bool known = false;
                for (core::Mechanism cand : core::allMechanisms())
                    known |= m == core::mechanismShortName(cand)
                             || m == core::mechanismName(cand);
                if (!known)
                    badValue("mechanism", m,
                             "SM, SM+PF, MP-I, MP-P, BULK");
                o.mechs.push_back(core::mechanismFromName(m));
            }
        } else if (a == "--sweep") {
            o.sweep = next();
        } else if (a == "--points") {
            for (const auto &p : splitCommas(next()))
                o.points.push_back(parseNum("--points", p));
        } else if (a == "--scale") {
            o.scale = parseNum("--scale", next());
        } else if (a == "--jobs") {
            const std::string v = next();
            o.jobs = static_cast<int>(parseNum("--jobs", v));
            if (o.jobs < 1)
                badValue("--jobs value", v, "a positive integer");
        } else if (a == "--threads") {
            const std::string v = next();
            o.threads = static_cast<int>(parseNum("--threads", v));
            if (o.threads < 1)
                badValue("--threads value", v, "a positive integer");
        } else if (a == "--out") {
            o.out = next();
        } else if (a == "--cache-dir") {
            o.cacheDir = next();
        } else if (a == "--ckpt-dir") {
            o.ckptDir = next();
        } else if (a == "--ckpt-interval") {
            const std::string v = next();
            o.ckptInterval = parseNum("--ckpt-interval", v);
            if (o.ckptInterval < 0)
                badValue("--ckpt-interval value", v,
                         "a cycle count (0 disables snapshots)");
        } else if (a == "--farm-dir") {
            o.farmDir = next();
        } else if (a == "--warm-start") {
            const std::string v = next();
            const double events = parseNum("--warm-start", v);
            if (events < 1)
                badValue("--warm-start value", v,
                         "a positive event count");
            o.warmStart = static_cast<std::uint64_t>(events);
        } else if (a == "--trace-out") {
            o.obs.traceOut = next();
        } else if (a == "--metrics-out") {
            o.obs.metricsOut = next();
        } else if (a == "--obs-interval") {
            const std::string v = next();
            o.obs.intervalCycles = parseNum("--obs-interval", v);
            if (o.obs.intervalCycles <= 0)
                badValue("--obs-interval value", v,
                         "a positive cycle count");
        } else if (a == "--predict") {
            o.predict = true;
        } else if (a == "--inject-node") {
            const std::string v = next();
            o.inject.node =
                static_cast<NodeId>(parseNum("--inject-node", v));
            if (o.inject.node < 0)
                badValue("--inject-node value", v, "a node id >= 0");
        } else if (a == "--inject-at") {
            const std::string v = next();
            o.inject.atCycles = parseNum("--inject-at", v);
            if (o.inject.atCycles < 0)
                badValue("--inject-at value", v, "a cycle count >= 0");
        } else if (a == "--inject-cycles") {
            const std::string v = next();
            o.inject.stallCycles = parseNum("--inject-cycles", v);
            if (o.inject.stallCycles <= 0)
                badValue("--inject-cycles value", v,
                         "a positive cycle count");
        } else if (a == "--progress") {
            o.progress = true;
        } else if (a == "--help" || a == "-h") {
            usage();
        } else {
            std::cerr << "sweep_cli: unknown option '" << a << "'\n\n";
            usage();
        }
    }
    if (o.mechs.empty()) {
        const auto all = core::allMechanisms();
        o.mechs.assign(all.begin(), all.end());
    }
    return o;
}

/**
 * Ideal-latency sweep through one warm-start fork per shared-memory
 * mechanism: the base run executes at the first latency point, every
 * other point resumes from the snapshot captured at @p forkEvents and
 * switches only the (restore-safe) emulated latency. Message-passing
 * mechanisms are latency-insensitive here and run once, flat, exactly
 * as in the cold idealLatencySweep.
 */
std::vector<core::MechSeries>
warmIdealLatencySweep(const core::AppFactory &factory,
                      const MachineConfig &base,
                      const std::vector<core::Mechanism> &mechs,
                      const std::vector<double> &latencies,
                      std::uint64_t forkEvents)
{
    std::vector<core::MechSeries> out;
    for (core::Mechanism m : mechs) {
        core::MechSeries s;
        s.mech = m;
        if (core::isSharedMemory(m)) {
            exp::WarmStartSweep sweep;
            sweep.base.machine = base;
            sweep.base.machine.idealNet = true;
            sweep.base.machine.idealNetLatencyCycles = latencies[0];
            sweep.base.mechanism = m;
            sweep.forkEvents = forkEvents;
            for (std::size_t i = 1; i < latencies.size(); ++i) {
                MachineConfig v = sweep.base.machine;
                v.idealNetLatencyCycles = latencies[i];
                sweep.variants.push_back(std::move(v));
            }
            const auto results = exp::runWarmStartSweep(factory, sweep);
            for (std::size_t i = 0; i < latencies.size(); ++i)
                s.points.push_back({latencies[i], results[i]});
        } else {
            core::RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            const auto r = core::runApp(factory, spec);
            for (double lat : latencies)
                s.points.push_back({lat, r});
        }
        out.push_back(std::move(s));
    }
    return out;
}

/** Build the workload through the same factory the farm workers use,
 *  so a farmed batch is parameterized byte-for-byte like a local one. */
core::AppFactory
makeFactory(const exp::FarmWorkload &w)
{
    std::string err;
    auto factory = exp::makeWorkloadFactory(w, &err);
    if (!factory) {
        if (!apps::graph::findApp(w.app) && w.app != "em3d"
            && w.app != "unstruc" && w.app != "iccg"
            && w.app != "moldyn" && w.app != "stream")
            badValue("--app", w.app, kValidApps);
        std::cerr << "sweep_cli: " << err << "\n\n";
        usage();
    }
    return factory;
}

/** After a farmed batch: report any jobs the farm gave up on and turn
 *  them into a non-zero exit so scripts notice the partial result. */
int
quarantineExit(const exp::FarmReport &r)
{
    if (r.quarantined.empty())
        return 0;
    std::cerr << "sweep_cli: " << r.quarantined.size()
              << " job(s) quarantined after exhausting retries "
                 "(results above are partial):\n";
    for (const auto &q : r.quarantined)
        std::cerr << "  job " << q.id << " [" << q.mechanism << "] "
                  << q.appKey << ", " << q.attempts
                  << " attempts: " << q.error << "\n";
    return 3;
}

/**
 * --predict: overlay the analytic prediction (src/obs/predict.hh) of
 * each measured series. One instrumented run per mechanism at the
 * sweep's base configuration; every point is then an O(events)
 * arithmetic solve. @p knobs are the underlying sweep values parallel
 * to each series' points; @p targetFor maps one to a PredictTarget.
 */
void
printPredicted(const core::AppFactory &factory,
               const MachineConfig &base,
               const std::vector<core::MechSeries> &series,
               const std::vector<double> &knobs,
               const std::function<obs::PredictTarget(double)> &targetFor)
{
    std::cout << "\npredicted from one instrumented run per mechanism"
                 " (one analytic solve per point):\n";
    for (const auto &s : series) {
        core::RunSpec spec;
        spec.machine = base;
        spec.mechanism = s.mech;
        obs::CritPathRecorder rec;
        core::runApp(factory, spec, /*verify_fatal=*/true,
                     /*auditor=*/nullptr, /*driver=*/nullptr, &rec);
        obs::Predictor p(rec.graph());

        std::cout << "  " << std::setw(6) << std::left
                  << core::mechanismShortName(s.mech) << std::right;
        double errSum = 0.0;
        const std::size_t n = std::min(s.points.size(), knobs.size());
        for (std::size_t i = 0; i < n; ++i) {
            const double meas = s.points[i].result.runtimeCycles;
            const double pred =
                p.predictRuntimeCycles(targetFor(knobs[i]));
            const double err =
                meas > 0 ? 100.0 * std::abs(pred - meas) / meas : 0.0;
            errSum += err;
            std::cout << std::setw(11) << std::fixed
                      << std::setprecision(0) << pred << " ("
                      << std::setprecision(1) << err << "%)";
        }
        std::cout << "   MAPE " << std::setprecision(1)
                  << (n ? errSum / static_cast<double>(n) : 0.0)
                  << "%\n";
    }
}

/**
 * Deterministic one-off delay injection: for each selected mechanism,
 * run the workload once undisturbed and once with RunSpec::delay set,
 * then print the propagation/decay report (finish shift, nodes
 * shifted, and the completion/barrier shift by mesh distance from the
 * injected node).
 */
int
runInjection(const core::AppFactory &factory, const Options &o)
{
    for (core::Mechanism m : o.mechs) {
        core::RunSpec base;
        base.mechanism = m;
        obs::CritPathRecorder baseRec;
        const auto r0 = core::runApp(factory, base, true, nullptr,
                                     nullptr, &baseRec);

        core::RunSpec inj = base;
        inj.delay = o.inject;
        obs::CritPathRecorder injRec;
        const auto r1 = core::runApp(factory, inj, true, nullptr,
                                     nullptr, &injRec);

        const obs::InjectionReport rep = obs::compareInjectedRuns(
            baseRec.graph(), injRec.graph(), o.inject.node);

        std::cout << core::mechanismShortName(m) << ": stall node "
                  << o.inject.node << " for " << o.inject.stallCycles
                  << " cycles at cycle " << o.inject.atCycles << "\n"
                  << std::fixed << std::setprecision(1)
                  << "  runtime " << r0.runtimeCycles << " -> "
                  << r1.runtimeCycles << " cycles (finish shift +"
                  << rep.finishShiftCycles << ")\n"
                  << "  nodes shifted > 1 cycle: " << rep.nodesShifted
                  << " of " << rep.nodes.size() << "\n"
                  << "  propagation by mesh distance from node "
                  << o.inject.node << ":\n";
        std::map<int, const obs::InjectionReport::NodeImpact *> rings;
        for (const auto &ni : rep.nodes) {
            auto &best = rings[ni.hopsFromInjection];
            if (!best || ni.doneShiftCycles > best->doneShiftCycles)
                best = &ni;
        }
        for (const auto &[hops, ni] : rings)
            std::cout << "    " << std::setw(2) << hops
                      << " hops: completion +" << ni->doneShiftCycles
                      << " cyc, worst barrier +"
                      << ni->maxBarrierShiftCycles << " cyc ("
                      << ni->barriersShifted << " of "
                      << ni->barrierEpisodes << " episodes shifted)\n";
        std::cout << "\n";
    }
    return 0;
}

void
writeStructured(const std::string &path, const exp::Json &doc,
                const std::function<void(std::ostream &)> &csv)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "sweep_cli: cannot write " << path << "\n";
        std::exit(1);
    }
    const bool wantCsv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (wantCsv)
        csv(out);
    else
        out << doc.dump(2) << '\n';
    std::cerr << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    const exp::FarmWorkload workload{o.app, o.graph, o.scale};
    const auto factory = makeFactory(workload);
    const MachineConfig base;

    exp::ResultCache cache(o.cacheDir);
    exp::EngineOptions opts;
    opts.jobs = o.jobs;
    opts.threads = o.threads;
    opts.cache = o.cacheDir.empty() ? nullptr : &cache;
    // Workload identity for the cache: app name + everything that
    // changes the generated workload (scale, and the graph family
    // for the graph-analytics apps).
    opts.appKey = workload.appKey();
    opts.obs = o.obs;
    opts.ckptDir = o.ckptDir;
    opts.ckptIntervalCycles = o.ckptInterval;
    opts.farmDir = o.farmDir;
    opts.workload = workload;
    exp::FarmReport farmReport;
    opts.farmReport = &farmReport;
    if (o.warmStart > 0 && o.sweep != "ideal-latency") {
        std::cerr << "sweep_cli: --warm-start only applies to "
                     "--sweep ideal-latency (the emulated latency is "
                     "the one restore-safe sweep knob)\n\n";
        usage();
    }
    if (o.inject.node >= 0 || o.inject.stallCycles > 0) {
        if (!o.inject.enabled()) {
            std::cerr << "sweep_cli: delay injection needs both "
                         "--inject-node and --inject-cycles "
                         "(--inject-at defaults to cycle 0)\n\n";
            usage();
        }
        if (o.sweep != "none") {
            std::cerr << "sweep_cli: delay injection is a point "
                         "experiment; drop --sweep " << o.sweep
                      << "\n\n";
            usage();
        }
        return runInjection(factory, o);
    }
    if (o.predict && o.sweep != "bisection" && o.sweep != "clock") {
        std::cerr << "sweep_cli: --predict overlays the bisection and "
                     "clock sweeps (the two axes the analytic model "
                     "re-costs); drop it for --sweep " << o.sweep
                  << "\n\n";
        usage();
    }
    if (o.progress) {
        opts.onProgress = [](const exp::Progress &p) {
            std::cerr << "  [" << p.done << "/" << p.queued << "] "
                      << p.running << " running, " << p.cacheHits
                      << " cached, "
                      << static_cast<std::uint64_t>(p.eventsPerSec())
                      << " sim-events/s\n";
        };
    }

    if (o.sweep == "none") {
        const auto results =
            core::runAllMechanisms(factory, base, o.mechs, opts);
        core::printBreakdownTable(std::cout, o.app, results);
        core::printVolumeTable(std::cout, o.app, results);
        if (!o.out.empty()) {
            writeStructured(o.out, exp::batchToJson(o.app, results),
                            [&](std::ostream &os) {
                                exp::writeBatchCsv(os, results);
                            });
        }
        return quarantineExit(farmReport);
    }

    std::vector<core::MechSeries> series;
    std::string xlabel;
    std::vector<double> predictKnobs;
    std::function<obs::PredictTarget(double)> predictTarget;
    if (o.sweep == "bisection") {
        auto pts = o.points.empty()
                       ? std::vector<double>{18, 9, 4.5}
                       : o.points;
        series =
            core::bisectionSweep(factory, base, o.mechs, pts, 64, opts);
        xlabel = "bisection B/cyc";
        // Points above the native bisection are skipped by the sweep;
        // mirror that so the knobs stay parallel to the series.
        for (double b : pts)
            if (b <= base.bisectionBytesPerCycle())
                predictKnobs.push_back(b);
        predictTarget = [&base](double b) {
            obs::PredictTarget t;
            t.machine = base;
            t.crossBytesPerCycle = base.bisectionBytesPerCycle() - b;
            t.crossMessageBytes = 64;
            return t;
        };
    } else if (o.sweep == "msglen") {
        auto pts = o.points.empty()
                       ? std::vector<double>{16, 64, 256}
                       : o.points;
        std::vector<std::uint32_t> lens;
        for (double p : pts)
            lens.push_back(static_cast<std::uint32_t>(p));
        // Consume half the native bisection, as in Figure 7.
        series = core::msgLenSweep(factory, base, o.mechs,
                                   base.bisectionBytesPerCycle() / 2.0,
                                   lens, opts);
        xlabel = "cross msg bytes";
    } else if (o.sweep == "clock") {
        auto pts = o.points.empty()
                       ? std::vector<double>{14, 20, 40}
                       : o.points;
        series = core::clockSweep(factory, base, o.mechs, pts, opts);
        xlabel = "net lat (cyc)";
        predictKnobs = pts;
        predictTarget = [&base](double mhz) {
            obs::PredictTarget t;
            t.machine = base;
            t.machine.procMhz = mhz;
            return t;
        };
    } else if (o.sweep == "ideal-latency") {
        auto pts = o.points.empty()
                       ? std::vector<double>{15, 100, 400}
                       : o.points;
        series = o.warmStart > 0
                     ? warmIdealLatencySweep(factory, base, o.mechs,
                                             pts, o.warmStart)
                     : core::idealLatencySweep(factory, base, o.mechs,
                                               pts, opts);
        xlabel = "latency (cyc)";
    } else {
        badValue("--sweep", o.sweep, kValidSweeps);
    }
    core::printSeries(std::cout, o.app + " / " + o.sweep, xlabel,
                      series);
    if (o.predict)
        printPredicted(factory, base, series, predictKnobs,
                       predictTarget);
    if (!o.out.empty()) {
        writeStructured(
            o.out,
            exp::seriesToJson(o.app + " / " + o.sweep, xlabel, series),
            [&](std::ostream &os) {
                exp::writeSeriesCsv(os, xlabel, series);
            });
    }
    return quarantineExit(farmReport);
}
