/**
 * @file
 * Example: a command-line sweep driver over the public experiment API.
 *
 * Runs any paper application under any mechanism subset across any of
 * the three paper sweeps without writing code:
 *
 *   sweep_cli --app em3d --mechs SM,MP-I --sweep bisection \
 *             --points 18,9,4.5
 *   sweep_cli --app iccg --mechs SM,MP-P --sweep ideal-latency \
 *             --points 15,100,400
 *   sweep_cli --app moldyn --sweep clock --points 14,20,40
 *   sweep_cli --app unstruc --sweep none          # plain Figure-4 row
 *
 * Every run is verified against the application's sequential
 * reference; the driver exits non-zero on any mismatch.
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/em3d.hh"
#include "apps/iccg.hh"
#include "apps/moldyn.hh"
#include "apps/stream.hh"
#include "apps/unstruc.hh"
#include "core/experiments.hh"
#include "core/report.hh"

using namespace alewife;

namespace {

struct Options
{
    std::string app = "em3d";
    std::string sweep = "none";
    std::vector<core::Mechanism> mechs;
    std::vector<double> points;
    double scale = 1.0;
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: sweep_cli [--app em3d|unstruc|iccg|moldyn|stream]\n"
           "                 [--mechs SM,SM+PF,MP-I,MP-P,BULK]\n"
           "                 [--sweep none|bisection|clock|"
           "ideal-latency]\n"
           "                 [--points x1,x2,...]\n"
           "                 [--scale f]   (workload size multiplier)\n";
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--app") {
            o.app = next();
        } else if (a == "--mechs") {
            for (const auto &m : splitCommas(next()))
                o.mechs.push_back(core::mechanismFromName(m));
        } else if (a == "--sweep") {
            o.sweep = next();
        } else if (a == "--points") {
            for (const auto &p : splitCommas(next()))
                o.points.push_back(std::stod(p));
        } else if (a == "--scale") {
            o.scale = std::stod(next());
        } else {
            usage();
        }
    }
    if (o.mechs.empty()) {
        const auto all = core::allMechanisms();
        o.mechs.assign(all.begin(), all.end());
    }
    return o;
}

core::AppFactory
makeFactory(const Options &o)
{
    const double s = o.scale;
    if (o.app == "em3d") {
        apps::Em3d::Params p;
        p.graph.nodesPerSide = static_cast<int>(1024 * s);
        p.graph.degree = 8;
        p.iters = 2;
        return apps::Em3d::factory(p);
    }
    if (o.app == "unstruc") {
        apps::Unstruc::Params p;
        p.mesh.nodes = static_cast<int>(1200 * s);
        p.iters = 2;
        return apps::Unstruc::factory(p);
    }
    if (o.app == "iccg") {
        apps::Iccg::Params p;
        p.matrix.rows = static_cast<int>(1200 * s);
        return apps::Iccg::factory(p);
    }
    if (o.app == "moldyn") {
        apps::Moldyn::Params p;
        p.box.molecules = static_cast<int>(768 * s);
        p.iters = 2;
        return apps::Moldyn::factory(p);
    }
    if (o.app == "stream") {
        apps::Stream::Params p;
        p.valuesPerIter = static_cast<int>(64 * s);
        p.iters = 4;
        return apps::Stream::factory(p);
    }
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    const auto factory = makeFactory(o);
    const MachineConfig base;

    if (o.sweep == "none") {
        const auto results =
            core::runAllMechanisms(factory, base, o.mechs);
        core::printBreakdownTable(std::cout, o.app, results);
        core::printVolumeTable(std::cout, o.app, results);
        return 0;
    }

    std::vector<core::MechSeries> series;
    std::string xlabel;
    if (o.sweep == "bisection") {
        auto pts = o.points.empty()
                       ? std::vector<double>{18, 9, 4.5}
                       : o.points;
        series = core::bisectionSweep(factory, base, o.mechs, pts);
        xlabel = "bisection B/cyc";
    } else if (o.sweep == "clock") {
        auto pts = o.points.empty()
                       ? std::vector<double>{14, 20, 40}
                       : o.points;
        series = core::clockSweep(factory, base, o.mechs, pts);
        xlabel = "net lat (cyc)";
    } else if (o.sweep == "ideal-latency") {
        auto pts = o.points.empty()
                       ? std::vector<double>{15, 100, 400}
                       : o.points;
        series = core::idealLatencySweep(factory, base, o.mechs, pts);
        xlabel = "latency (cyc)";
    } else {
        usage();
    }
    core::printSeries(std::cout, o.app + " / " + o.sweep, xlabel,
                      series);
    return 0;
}
