/**
 * @file
 * Example: driving the fault-tolerant distributed sweep farm
 * (src/exp/farm.hh) from the command line. One campaign is a farm
 * directory on a filesystem every participant can see:
 *
 *   # terminal 1 — materialize the campaign and wait for workers
 *   farm_cli coordinator --farm-dir /tmp/farm --app em3d \
 *            --sweep bisection --points 18,9,4.5 --workers 0
 *
 *   # terminals 2..N — claim and run jobs until the queue drains
 *   farm_cli worker --farm-dir /tmp/farm
 *   farm_cli worker --farm-dir /tmp/farm
 *
 *   # anywhere — live campaign status (counts, counters, poison list)
 *   farm_cli status --farm-dir /tmp/farm
 *
 * `kill -9` any worker at any time: the coordinator reaps its lease,
 * re-queues the job with backoff, and another worker warm-resumes from
 * the dead worker's last per-job snapshot. Jobs that fail more than
 * the retry budget are quarantined to the poison list; the sweep
 * completes without them and the coordinator exits non-zero listing
 * them. Set FARM_FAULT=drop-lease|stall-heartbeat|corrupt-result|
 * kill-after-claim in a worker's environment to exercise one recovery
 * path deterministically.
 *
 * The result set is bit-identical (cache key for key) to a local
 * `sweep_cli` run of the same sweep: both sides materialize the same
 * core::SweepPlan and store through the same content-addressed cache.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/graph/catalog.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "exp/farm.hh"
#include "exp/result_cache.hh"
#include "exp/serialize.hh"

using namespace alewife;

namespace {

struct Options
{
    std::string mode; ///< coordinator | worker | status
    std::string farmDir;
    exp::FarmWorkload workload{"em3d", "uniform", 1.0};
    std::string sweep = "none";
    std::vector<core::Mechanism> mechs;
    std::vector<double> points;
    int workers = 1; ///< in-process workers the coordinator adds
    int threads = 1; ///< intra-run threads per simulation
    int maxJobs = -1;
    double ckptInterval = 2'000'000.0;
    exp::FarmTuning tuning;
    std::string out;
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: farm_cli coordinator --farm-dir DIR\n"
           "                [--app em3d|unstruc|iccg|moldyn|stream|\n"
           "                       bfs|pagerank|pagerank-push|sssp]\n"
           "                [--graph uniform|rmat|grid] [--scale f]\n"
           "                [--mechs SM,SM+PF,MP-I,MP-P,BULK]\n"
           "                [--sweep none|bisection|msglen|clock|"
           "ideal-latency]\n"
           "                [--points x1,x2,...]\n"
           "                [--workers n]   (in-process workers; 0 = "
           "wait for\n"
           "                                 external `farm_cli "
           "worker`s)\n"
           "                [--threads n]   [--out file]\n"
           "                [--lease-ttl-ms n] [--heartbeat-ms n]\n"
           "                [--poll-ms n] [--backoff-ms n]\n"
           "                [--retry-budget n] [--ckpt-interval cyc]\n"
           "       farm_cli worker --farm-dir DIR [--threads n] "
           "[--max-jobs n]\n"
           "       farm_cli status --farm-dir DIR\n"
           "\n"
           "FARM_FAULT=drop-lease|stall-heartbeat|corrupt-result|\n"
           "kill-after-claim injects one deterministic fault into a "
           "worker.\n";
    std::exit(2);
}

[[noreturn]] void
badValue(const std::string &what, const std::string &value,
         const std::string &valid)
{
    std::cerr << "farm_cli: unknown " << what << " '" << value
              << "' (valid: " << valid << ")\n\n";
    usage();
}

double
parseNum(const std::string &opt, const std::string &text)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(text, &used);
        if (used == text.size())
            return v;
    } catch (const std::exception &) {
    }
    badValue(opt + " value", text, "a number");
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Options o;
    o.mode = argv[1];
    if (o.mode != "coordinator" && o.mode != "worker"
        && o.mode != "status") {
        if (o.mode != "--help" && o.mode != "-h")
            std::cerr << "farm_cli: unknown subcommand '" << o.mode
                      << "'\n\n";
        usage();
    }
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "farm_cli: " << a
                          << " requires a value\n\n";
                usage();
            }
            return argv[++i];
        };
        if (a == "--farm-dir") {
            o.farmDir = next();
        } else if (a == "--app") {
            o.workload.app = next();
        } else if (a == "--graph") {
            o.workload.graph = next();
        } else if (a == "--scale") {
            o.workload.scale = parseNum("--scale", next());
        } else if (a == "--mechs") {
            for (const auto &m : splitCommas(next())) {
                bool known = false;
                for (core::Mechanism cand : core::allMechanisms())
                    known |= m == core::mechanismShortName(cand)
                             || m == core::mechanismName(cand);
                if (!known)
                    badValue("mechanism", m,
                             "SM, SM+PF, MP-I, MP-P, BULK");
                o.mechs.push_back(core::mechanismFromName(m));
            }
        } else if (a == "--sweep") {
            o.sweep = next();
        } else if (a == "--points") {
            for (const auto &p : splitCommas(next()))
                o.points.push_back(parseNum("--points", p));
        } else if (a == "--workers") {
            o.workers = static_cast<int>(parseNum("--workers", next()));
        } else if (a == "--threads") {
            o.threads = static_cast<int>(parseNum("--threads", next()));
        } else if (a == "--max-jobs") {
            o.maxJobs =
                static_cast<int>(parseNum("--max-jobs", next()));
        } else if (a == "--out") {
            o.out = next();
        } else if (a == "--lease-ttl-ms") {
            o.tuning.leaseTtlMs = static_cast<std::int64_t>(
                parseNum("--lease-ttl-ms", next()));
        } else if (a == "--heartbeat-ms") {
            o.tuning.heartbeatMs = static_cast<std::int64_t>(
                parseNum("--heartbeat-ms", next()));
        } else if (a == "--poll-ms") {
            o.tuning.pollMs = static_cast<std::int64_t>(
                parseNum("--poll-ms", next()));
        } else if (a == "--backoff-ms") {
            o.tuning.backoffBaseMs = static_cast<std::int64_t>(
                parseNum("--backoff-ms", next()));
        } else if (a == "--retry-budget") {
            o.tuning.retryBudget =
                static_cast<int>(parseNum("--retry-budget", next()));
        } else if (a == "--ckpt-interval") {
            o.ckptInterval = parseNum("--ckpt-interval", next());
        } else if (a == "--help" || a == "-h") {
            usage();
        } else {
            std::cerr << "farm_cli: unknown option '" << a << "'\n\n";
            usage();
        }
    }
    if (o.farmDir.empty()) {
        std::cerr << "farm_cli: --farm-dir is required\n\n";
        usage();
    }
    if (o.mechs.empty()) {
        const auto all = core::allMechanisms();
        o.mechs.assign(all.begin(), all.end());
    }
    return o;
}

int
runCoordinator(const Options &o)
{
    // Validate the workload before materializing anything: a typo'd
    // app name should fail here, not poison every job of a campaign.
    std::string err;
    if (!exp::makeWorkloadFactory(o.workload, &err))
        badValue("--app/--graph", o.workload.app + "/" + o.workload.graph,
                 err);
    const auto kind = core::sweepKindFromName(o.sweep);
    if (!kind)
        badValue("--sweep", o.sweep,
                 "none, bisection, msglen, clock, ideal-latency");

    const MachineConfig base;
    core::SweepRequest req;
    req.kind = *kind;
    req.mechs = o.mechs;
    req.points = o.points;
    if (req.kind == core::SweepKind::Bisection && req.points.empty())
        req.points = {18, 9, 4.5};
    if (req.kind == core::SweepKind::MsgLen) {
        if (req.points.empty())
            req.points = {16, 64, 256};
        req.crossBytesPerCycle = base.bisectionBytesPerCycle() / 2.0;
    }
    if (req.kind == core::SweepKind::Clock && req.points.empty())
        req.points = {14, 20, 40};
    if (req.kind == core::SweepKind::IdealLatency
        && req.points.empty())
        req.points = {15, 100, 400};
    const core::SweepPlan plan = core::planSweep(base, req);

    exp::FarmOptions fo;
    fo.dir = o.farmDir;
    fo.ckptIntervalCycles = o.ckptInterval;
    fo.tuning = o.tuning;
    fo.workers = o.workers;
    fo.threads = o.threads;
    fo.onStatus = [](const exp::QueueCounts &c) {
        std::cerr << "  farm: " << c.pending << " pending, "
                  << c.leased << " leased, " << c.done << " done, "
                  << c.poisoned << " poisoned\n";
    };
    exp::FarmCoordinator coord(fo);

    std::vector<exp::FarmJob> jobs;
    jobs.reserve(plan.specs.size());
    const std::string appKey = o.workload.appKey();
    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        exp::FarmJob job;
        job.id = static_cast<int>(i);
        job.appKey = appKey;
        job.workload = o.workload;
        job.spec = plan.specs[i];
        jobs.push_back(std::move(job));
    }
    const std::vector<core::RunResult> results =
        coord.runCampaign(jobs);

    // Same axis labels as sweep_cli: the two front ends must emit
    // byte-identical documents for the same sweep.
    std::string xlabel = o.sweep;
    if (req.kind == core::SweepKind::Bisection)
        xlabel = "bisection B/cyc";
    else if (req.kind == core::SweepKind::MsgLen)
        xlabel = "cross msg bytes";
    else if (req.kind == core::SweepKind::Clock)
        xlabel = "net lat (cyc)";
    else if (req.kind == core::SweepKind::IdealLatency)
        xlabel = "latency (cyc)";

    const std::string title = o.workload.app + " / " + o.sweep;
    if (req.kind == core::SweepKind::None) {
        core::printBreakdownTable(std::cout, o.workload.app, results);
        core::printVolumeTable(std::cout, o.workload.app, results);
        if (!o.out.empty()) {
            std::ofstream os(o.out);
            os << exp::batchToJson(o.workload.app, results).dump(2)
               << "\n";
        }
    } else {
        const auto series = core::seriesFromPlan(plan, results);
        core::printSeries(std::cout, title, xlabel, series);
        if (!o.out.empty()) {
            std::ofstream os(o.out);
            os << exp::seriesToJson(title, xlabel, series).dump(2)
               << "\n";
        }
    }

    const exp::FarmReport &report = coord.report();
    std::cerr << "farm: " << report.claims << " claims, "
              << report.completions << " completions, "
              << report.reclaims << " reclaims, "
              << report.leaseExpiries << " lease expiries, "
              << report.recomputes << " recomputes, "
              << report.rescued << " rescued\n";
    if (!report.quarantined.empty()) {
        std::cerr << "farm: " << report.quarantined.size()
                  << " job(s) quarantined — results are partial:\n";
        for (const auto &q : report.quarantined)
            std::cerr << "  job #" << q.id << " (" << q.appKey << ", "
                      << q.mechanism << ", " << q.attempts
                      << " attempts): " << q.error << "\n";
        return 3;
    }
    return 0;
}

int
runWorker(const Options &o)
{
    std::string err;
    auto wo = exp::FarmWorker::optionsFromManifest(o.farmDir, &err);
    if (!wo) {
        std::cerr << "farm_cli: " << err
                  << " (start the coordinator first)\n";
        return 2;
    }
    wo->threads = o.threads;
    wo->maxJobs = o.maxJobs;
    exp::FarmWorker worker(std::move(*wo));
    const int n = worker.runLoop();
    std::cerr << "farm worker: completed " << n << " job(s)"
              << (worker.degraded() ? " (degraded: queue directory "
                                      "lost; exited cleanly)"
                                    : "")
              << "\n";
    return 0;
}

int
runStatus(const Options &o)
{
    const exp::Json j = exp::readFarmStatus(o.farmDir);
    if (j.isNull()) {
        std::cerr << "farm_cli: " << o.farmDir
                  << " is not a farm directory (no farm.json)\n";
        return 2;
    }
    std::cout << j.dump(2) << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    if (o.mode == "coordinator")
        return runCoordinator(o);
    if (o.mode == "worker")
        return runWorker(o);
    return runStatus(o);
}
