/**
 * @file
 * Quickstart: build an Alewife-class machine, run a tiny program on
 * every node that mixes shared memory and active messages, and print
 * the statistics the paper's figures are built from.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "machine/machine.hh"
#include "mem/partitioned.hh"

using namespace alewife;

namespace {

/** Per-machine demo state shared by the node programs. */
struct Demo
{
    Addr counterBase = 0;            ///< one shared counter per node
    msg::HandlerId hello = -1;       ///< active-message handler
    std::vector<int> greetings;      ///< per-node greeting counts
};

sim::Thread
nodeProgram(proc::Ctx &ctx, Demo &demo)
{
    const int self = ctx.self();
    const int n = ctx.nprocs();

    // 1. Shared memory: every node atomically increments its right
    //    neighbour's counter; the line migrates via the directory
    //    protocol.
    const Addr neighbour =
        demo.counterBase + static_cast<Addr>((self + 1) % n) * 16;
    co_await ctx.rmw(neighbour,
                     [](std::uint64_t v) { return v + 1; });

    // 2. Active messages: greet the node across the machine.
    co_await ctx.send((self + n / 2) % n, demo.hello, {});

    // 3. Compute a little, then synchronize.
    co_await ctx.compute(500);
    co_await ctx.waitUntil([&]() { return demo.greetings[self] >= 1; });
    co_await ctx.barrier();
}

} // namespace

int
main()
{
    MachineConfig cfg; // defaults: the 32-node Alewife of the paper
    Machine m(cfg, proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);

    Demo demo;
    demo.greetings.assign(m.nodes(), 0);
    demo.counterBase =
        m.mem().alloc(std::uint64_t(2) * m.nodes(),
                      mem::HomePolicy::Blocked, 0, "counters");
    demo.hello = m.handlers().add([&demo](msg::HandlerEnv &env) {
        ++demo.greetings[env.self()];
    });

    const Tick finish = m.run(
        [&](proc::Ctx &ctx) { return nodeProgram(ctx, demo); });

    std::cout << "machine: " << cfg.name << " (" << m.nodes()
              << " nodes, " << cfg.procMhz << " MHz, bisection "
              << cfg.bisectionBytesPerCycle() << " B/cycle)\n";
    std::cout << "finished in " << ticksToCycles(finish)
              << " processor cycles\n";
    std::cout << "network volume: " << m.volume().total() << " bytes ("
              << m.volume().get(VolCat::Requests) << " request, "
              << m.volume().get(VolCat::Data) << " data)\n";
    std::cout << "remote misses: " << m.counters().remoteMisses
              << ", interrupts taken: " << m.counters().interruptsTaken
              << "\n";

    // Verify the shared-memory increments landed.
    std::uint64_t sum = 0;
    for (int i = 0; i < m.nodes(); ++i)
        sum += m.debugWord(demo.counterBase + static_cast<Addr>(i) * 16);
    std::cout << "counter sum = " << sum << " (expect " << m.nodes()
              << ")\n";
    return sum == static_cast<std::uint64_t>(m.nodes()) ? 0 : 1;
}
