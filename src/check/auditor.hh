/**
 * @file
 * Runtime invariant auditor: cross-layer correctness checks.
 *
 * InvariantAuditor attaches to a Machine and observes, via check::Hooks,
 * every coherence transition, cache/prefetch-buffer state change and
 * packet send/receive. After every executed event it checks the touched
 * lines against the protocol's cross-layer invariants, and finalize()
 * checks global quiescence after a run. Invariant catalog:
 *
 *  - dir-cache-agreement: at quiescence (no open txn, empty request
 *    queue, nothing in flight, no MSHR for the line) a Modified line has
 *    exactly one Modified copy at the recorded owner and empty sharers;
 *    a Shared line's sharer list is a superset of the actual holders,
 *    all Shared; an Uncached line has no holders.
 *  - modified-single-owner: never more than one Modified copy of a line
 *    machine-wide (cache or prefetch buffer), and never a Modified
 *    buffer entry coexisting with a cache copy on the same node.
 *  - txn-ack-bookkeeping: an open invalidating GetX transaction's
 *    pendingAcks always equals invalidations sent minus acks processed.
 *  - inv-ack-conservation: every processed Inv produces an InvAck
 *    within the same event.
 *  - recall-liveness: a transaction waiting on a recall always has a
 *    recall/forward/writeback message in flight or stashed.
 *  - message-conservation: per MsgType, sends = processed + in flight;
 *    nothing in flight and no open MSHR/transaction at finalize (every
 *    GetS/GetX closes with a Data/DataX fill).
 *  - write-serialization: a per-line shadow copy follows the single
 *    writer; every data-carrying message, fill and demand read must
 *    agree with it (skipped in the documented stale-fill window after
 *    an Inv overtakes an in-flight Shared grant).
 *  - byte-accounting: each packet's Figure-5 category bytes sum to its
 *    size and match its opcode's configured costs; aggregated volume
 *    equals the mesh's breakdown; Inv sends match the CMMU counter.
 *  - event-monotonicity: event execution times never decrease.
 *
 * A violation either panics naming the invariant (abortOnViolation,
 * the default) or is collected for inspection (fuzz harness).
 */

#ifndef ALEWIFE_CHECK_AUDITOR_HH
#define ALEWIFE_CHECK_AUDITOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/hooks.hh"
#include "coh/proto.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife {
class Machine;
}

namespace alewife::check {

/**
 * The one real Hooks implementation: continuous invariant checking.
 */
class InvariantAuditor final : public Hooks
{
  public:
    struct Options
    {
        /** Panic at the first violation (tests); else collect (fuzz). */
        bool abortOnViolation = true;
        /** Collection cap in non-aborting mode. */
        std::size_t maxViolations = 64;
    };

    struct Violation
    {
        std::string invariant; ///< catalog name, e.g. "recall-liveness"
        Tick tick = 0;
        std::string detail;
    };

    InvariantAuditor() = default; ///< aborting-mode defaults
    explicit InvariantAuditor(Options opts) : opts_(opts) {}

    /** Wire this auditor into every component of @p m (before run()). */
    void attach(Machine &m);

    /**
     * Called on every violation, before any abort and before the
     * collection cap applies. Wiring point for forensic sinks (the obs
     * flight-recorder dump) without a check -> obs dependency.
     */
    void setOnViolation(std::function<void(const Violation &)> fn)
    {
        onViolation_ = std::move(fn);
    }

    /** End-of-run checks: global quiescence, conservation, volume. */
    void finalize();

    const std::vector<Violation> &violations() const { return viols_; }
    bool clean() const { return viols_.empty(); }

    /** Total sends of @p t observed (tests: did the race happen?). */
    std::uint64_t messagesSeen(coh::MsgType t) const
    {
        return sends_[idx(t)];
    }

    // --- Hooks overrides ---

    void onEventExecuted(Tick now) override;
    void onPacketInjected(const net::Packet &pkt) override;
    void onPacketDelivered(const net::Packet &pkt) override;
    void onCacheFill(NodeId node, Addr line, mem::LineState st,
                     const std::vector<std::uint64_t> &words) override;
    void onCacheEvict(NodeId node, Addr line, bool dirty) override;
    void onCacheInvalidate(NodeId node, Addr line,
                           bool wasModified) override;
    void onCacheDowngrade(NodeId node, Addr line) override;
    void onCacheUpgrade(NodeId node, Addr line) override;
    void onCacheRead(NodeId node, Addr a, std::uint64_t v) override;
    void onCacheWrite(NodeId node, Addr a, std::uint64_t v) override;
    void onPfbInstall(NodeId node, Addr line, mem::LineState st,
                      const std::vector<std::uint64_t> &words) override;
    void onPfbRemove(NodeId node, Addr line) override;
    void onProtoSend(NodeId src, NodeId dst,
                     const coh::ProtoMsg &msg) override;
    void onProtoProcess(NodeId at, const coh::ProtoMsg &msg) override;
    void onLocalGrant(NodeId node, Addr line, bool exclusive) override;
    void onFill(NodeId node, Addr line, bool exclusive) override;
    void onMshrOpen(NodeId node, Addr line, bool exclusive) override;
    void onMshrClose(NodeId node, Addr line) override;
    void onTxnOpen(NodeId home, Addr line,
                   const coh::DirTxn &txn) override;
    void onTxnClose(NodeId home, Addr line) override;
    void onRecallStashed(NodeId node, Addr line) override;
    void onRecallHonored(NodeId node, Addr line) override;

  private:
    static constexpr std::size_t kNumMsgTypes = 14;

    static std::size_t idx(coh::MsgType t)
    {
        return static_cast<std::size_t>(t);
    }

    /** Per-line audit bookkeeping. */
    struct LineState
    {
        std::array<std::int64_t, kNumMsgTypes> inflight{};
        /** Inv acks expected/processed for the open GetX txn. */
        int acksExpected = 0;
        int acksProcessed = 0;
        int stashCount = 0;
        /** Shadow copy maintained by the single-writer discipline. */
        std::vector<std::uint64_t> shadow;
        bool hasShadow = false;
    };

    void record(const char *invariant, std::string detail);
    void touch(Addr line);
    LineState &ls(Addr line);

    /** Per-event checks on one touched line. */
    void auditLine(Addr line);

    /** True if nothing protocol-wise is pending on @p line. */
    bool quiescent(Addr line, const LineState &s) const;

    /** Strict directory/cache agreement; only valid when quiescent. */
    void checkAgreement(Addr line, const char *when);

    bool tainted(NodeId node, Addr line) const;
    std::uint64_t taintKey(NodeId node, Addr line) const
    {
        return (static_cast<std::uint64_t>(node) << 48)
               ^ static_cast<std::uint64_t>(line);
    }

    Options opts_;
    Machine *machine_ = nullptr;

    std::unordered_map<Addr, LineState> lines_;
    std::unordered_set<Addr> touchedThisEvent_;
    std::unordered_set<Addr> everTouched_;

    /** Open MSHRs: line -> nodes (value: exclusive). */
    std::unordered_map<Addr, std::unordered_map<NodeId, bool>> mshrs_;

    /** Stale-fill windows: (node,line) keys to skip data validation. */
    std::unordered_set<std::uint64_t> taints_;

    std::array<std::uint64_t, kNumMsgTypes> sends_{};
    std::array<std::uint64_t, kNumMsgTypes> processed_{};
    std::uint64_t invProcessed_ = 0;
    std::uint64_t invAcksSent_ = 0;
    bool invAckMismatchReported_ = false;

    std::uint64_t cohInjected_ = 0;
    std::uint64_t cohDelivered_ = 0;
    VolumeBreakdown volume_;

    Tick lastEventTick_ = 0;
    std::vector<Violation> viols_;
    std::function<void(const Violation &)> onViolation_;
};

} // namespace alewife::check

#endif // ALEWIFE_CHECK_AUDITOR_HH
