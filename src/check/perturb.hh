/**
 * @file
 * Schedule-perturbation configuration.
 *
 * Simulations are bit-deterministic: events at the same tick run in
 * insertion order and network hops cost exactly MachineConfig::hopNs.
 * That determinism is great for reproducibility but means one schedule
 * is ever exercised. PerturbConfig selects controlled deviations — a
 * seeded random tie-break among same-tick events and/or a bounded
 * random jitter on per-hop network latency — used by the invariant
 * fuzzing harness (bench/check_fuzz) to explore protocol interleavings
 * the default schedule never produces.
 *
 * Both knobs default to off; a default-constructed PerturbConfig leaves
 * every existing run bit-identical. Perturbed runs are still
 * deterministic for a fixed seed, so any violation is replayable.
 */

#ifndef ALEWIFE_CHECK_PERTURB_HH
#define ALEWIFE_CHECK_PERTURB_HH

#include <cstdint>

namespace alewife::check {

/** Schedule-perturbation knobs (all off by default). */
struct PerturbConfig
{
    /** Seed for every perturbation RNG; same seed = same schedule. */
    std::uint64_t seed = 1;

    /**
     * Randomize the order of same-tick events that were scheduled for
     * the future. Events scheduled *at* the current tick keep their
     * documented run-after-already-queued FIFO order, so the event
     * queue's scheduling contract is preserved.
     */
    bool tieBreak = false;

    /**
     * Multiplicative jitter on the mesh per-hop latency: each hop's
     * cost is scaled by a uniform factor in [1-f, 1+f]. Link occupancy
     * (freeAt) still serializes packets, so per-route FIFO delivery
     * order is preserved. 0 disables.
     */
    double hopJitterFrac = 0.0;

    bool enabled() const { return tieBreak || hopJitterFrac > 0.0; }
};

} // namespace alewife::check

#endif // ALEWIFE_CHECK_PERTURB_HH
