#include "check/auditor.hh"

#include <sstream>

#include "machine/machine.hh"
#include "sim/logging.hh"

namespace alewife::check {

namespace {

/** Messages whose presence in flight keeps a recall transaction live. */
constexpr coh::MsgType kRecallFlight[] = {
    coh::MsgType::Recall,   coh::MsgType::RecallX,
    coh::MsgType::FwdGetS,  coh::MsgType::FwdGetX,
    coh::MsgType::WbData,   coh::MsgType::WbEvict,
    coh::MsgType::RecallNoData, coh::MsgType::FwdAck,
};

} // namespace

void
InvariantAuditor::attach(Machine &m)
{
    machine_ = &m;
    m.attachHooks(this);
}

void
InvariantAuditor::record(const char *invariant, std::string detail)
{
    const Tick now = machine_ ? machine_->eq().now() : 0;
    Violation v{invariant, now, std::move(detail)};
    // Notify before any abort so forensic sinks (the obs flight
    // recorder) get to dump their window around the failure.
    if (onViolation_)
        onViolation_(v);
    if (opts_.abortOnViolation) {
        ALEWIFE_PANIC("invariant violated: ", invariant, " at tick ", now,
                      ": ", v.detail);
    }
    if (viols_.size() < opts_.maxViolations)
        viols_.push_back(std::move(v));
}

InvariantAuditor::LineState &
InvariantAuditor::ls(Addr line)
{
    return lines_[line];
}

void
InvariantAuditor::touch(Addr line)
{
    touchedThisEvent_.insert(line);
    everTouched_.insert(line);
}

bool
InvariantAuditor::tainted(NodeId node, Addr line) const
{
    return taints_.count(taintKey(node, line)) != 0;
}

// ---------------------------------------------------------------------
// Event boundary: audit everything the event touched
// ---------------------------------------------------------------------

void
InvariantAuditor::onEventExecuted(Tick now)
{
    if (now < lastEventTick_) {
        std::ostringstream os;
        os << "event at tick " << now << " after tick " << lastEventTick_;
        record("event-monotonicity", os.str());
    }
    lastEventTick_ = now;

    if (invProcessed_ != invAcksSent_ && !invAckMismatchReported_) {
        invAckMismatchReported_ = true;
        std::ostringstream os;
        os << invProcessed_ << " Inv processed but " << invAcksSent_
           << " InvAck sent";
        record("inv-ack-conservation", os.str());
    } else if (invProcessed_ == invAcksSent_) {
        invAckMismatchReported_ = false;
    }

    for (Addr line : touchedThisEvent_)
        auditLine(line);
    touchedThisEvent_.clear();
}

void
InvariantAuditor::auditLine(Addr line)
{
    LineState &s = ls(line);
    const int n = machine_->nodes();

    // modified-single-owner: at most one Modified copy machine-wide, and
    // never a Modified buffer entry alongside a cache copy (a recall
    // could miss the cache copy).
    int mCount = 0;
    NodeId firstM = -1;
    for (int i = 0; i < n; ++i) {
        const auto cs = machine_->cacheAt(i).state(line);
        const auto *pe = machine_->pfbAt(i).find(line);
        if (cs == mem::LineState::Modified) {
            ++mCount;
            if (firstM < 0)
                firstM = i;
        }
        if (pe && pe->st == mem::LineState::Modified) {
            ++mCount;
            if (firstM < 0)
                firstM = i;
            if (cs) {
                std::ostringstream os;
                os << "node " << i << " holds line " << line
                   << " Modified in the prefetch buffer and also cached";
                record("modified-single-owner", os.str());
            }
        }
    }
    if (mCount > 1) {
        std::ostringstream os;
        os << mCount << " Modified copies of line " << line
           << " (first at node " << firstM << ")";
        record("modified-single-owner", os.str());
    }

    const NodeId home = machine_->mem().home(line);
    const coh::DirEntry *e =
        machine_->cohAt(home).debugDir().find(line);

    if (e && e->busy()) {
        const coh::DirTxn &txn = *e->txn;
        if (txn.request == coh::MsgType::GetX && s.acksExpected > 0
            && !txn.waitingRecall) {
            const int want = s.acksExpected - s.acksProcessed;
            if (txn.pendingAcks != want) {
                std::ostringstream os;
                os << "line " << line << " pendingAcks "
                   << txn.pendingAcks << " but " << s.acksExpected
                   << " Inv sent and " << s.acksProcessed
                   << " InvAck processed";
                record("txn-ack-bookkeeping", os.str());
            }
        }
        if (txn.waitingRecall) {
            std::int64_t flight = s.stashCount;
            for (coh::MsgType t : kRecallFlight)
                flight += s.inflight[idx(t)];
            if (flight <= 0) {
                std::ostringstream os;
                os << "line " << line
                   << " txn waits on a recall but no recall/forward/"
                      "writeback is in flight or stashed";
                record("recall-liveness", os.str());
            }
        }
    }

    if (quiescent(line, s))
        checkAgreement(line, "event");
}

bool
InvariantAuditor::quiescent(Addr line, const LineState &s) const
{
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
        if (s.inflight[t] != 0)
            return false;
    }
    if (s.stashCount != 0)
        return false;
    if (mshrs_.count(line))
        return false;
    const NodeId home = machine_->mem().home(line);
    const coh::DirEntry *e =
        machine_->cohAt(home).debugDir().find(line);
    if (e && (e->busy() || !e->queue.empty()))
        return false;
    return true;
}

void
InvariantAuditor::checkAgreement(Addr line, const char *when)
{
    const NodeId home = machine_->mem().home(line);
    const coh::DirEntry *e =
        machine_->cohAt(home).debugDir().find(line);
    const coh::DirState dst = e ? e->state : coh::DirState::Uncached;
    const int n = machine_->nodes();

    for (int i = 0; i < n; ++i) {
        const auto cs = machine_->cacheAt(i).state(line);
        const auto *pe = machine_->pfbAt(i).find(line);
        const bool holds = cs.has_value() || pe != nullptr;
        const bool holdsM =
            cs == mem::LineState::Modified
            || (pe && pe->st == mem::LineState::Modified);

        switch (dst) {
          case coh::DirState::Uncached:
            if (holds) {
                std::ostringstream os;
                os << when << ": node " << i << " holds line " << line
                   << " the home thinks Uncached";
                record("dir-cache-agreement", os.str());
            }
            break;
          case coh::DirState::Shared:
            if (holdsM) {
                std::ostringstream os;
                os << when << ": node " << i << " holds line " << line
                   << " Modified but the home thinks Shared";
                record("dir-cache-agreement", os.str());
            } else if (holds && !e->hasSharer(i)) {
                std::ostringstream os;
                os << when << ": node " << i << " holds line " << line
                   << " Shared but is not in the sharer list";
                record("dir-cache-agreement", os.str());
            }
            break;
          case coh::DirState::Modified:
            if (i == e->owner) {
                if (!holdsM) {
                    std::ostringstream os;
                    os << when << ": owner " << i << " of line " << line
                       << " holds no Modified copy";
                    record("dir-cache-agreement", os.str());
                }
            } else if (holds) {
                std::ostringstream os;
                os << when << ": node " << i << " holds line " << line
                   << " owned Modified by node " << e->owner;
                record("dir-cache-agreement", os.str());
            }
            break;
        }
    }
    if (dst == coh::DirState::Modified && !e->sharers.empty()) {
        std::ostringstream os;
        os << when << ": line " << line
           << " Modified with a non-empty sharer list";
        record("dir-cache-agreement", os.str());
    }
}

// ---------------------------------------------------------------------
// Network hooks
// ---------------------------------------------------------------------

void
InvariantAuditor::onPacketInjected(const net::Packet &pkt)
{
    std::uint64_t sum = 0;
    for (std::uint32_t b : pkt.volBytes)
        sum += b;
    if (sum != pkt.sizeBytes) {
        std::ostringstream os;
        os << "packet #" << pkt.id << " category bytes " << sum
           << " != size " << pkt.sizeBytes;
        record("byte-accounting", os.str());
    }
    if (pkt.countInVolume) {
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(VolCat::NumCats); ++c)
            volume_.add(static_cast<VolCat>(c), pkt.volBytes[c]);
    }
    if (pkt.kind != net::PacketKind::Coherence)
        return;
    ++cohInjected_;

    const auto *m = static_cast<const coh::ProtoMsg *>(pkt.payload.get());
    const auto &cfg = machine_->config();
    const auto got = [&](VolCat c) {
        return pkt.volBytes[static_cast<std::size_t>(c)];
    };
    std::uint32_t wantInv = 0, wantReq = 0, wantHdr = 0, wantData = 0;
    switch (m->type) {
      case coh::MsgType::Inv:
      case coh::MsgType::InvAck:
        wantInv = cfg.protoCtrlBytes;
        break;
      case coh::MsgType::WbData:
      case coh::MsgType::WbEvict:
      case coh::MsgType::Data:
      case coh::MsgType::DataX:
        wantHdr = cfg.protoDataHdrBytes;
        wantData = cfg.lineBytes;
        break;
      default:
        wantReq = cfg.protoCtrlBytes;
        break;
    }
    if (got(VolCat::Invalidates) != wantInv
        || got(VolCat::Requests) != wantReq
        || got(VolCat::Headers) != wantHdr
        || got(VolCat::Data) != wantData) {
        std::ostringstream os;
        os << coh::msgTypeName(m->type) << " packet #" << pkt.id
           << " miscategorized: inv/req/hdr/data "
           << got(VolCat::Invalidates) << "/" << got(VolCat::Requests)
           << "/" << got(VolCat::Headers) << "/" << got(VolCat::Data);
        record("byte-accounting", os.str());
    }
}

void
InvariantAuditor::onPacketDelivered(const net::Packet &pkt)
{
    if (pkt.kind == net::PacketKind::Coherence)
        ++cohDelivered_;
}

// ---------------------------------------------------------------------
// Protocol hooks
// ---------------------------------------------------------------------

void
InvariantAuditor::onProtoSend(NodeId src, NodeId dst,
                              const coh::ProtoMsg &msg)
{
    (void)dst;
    LineState &s = ls(msg.lineAddr);
    ++sends_[idx(msg.type)];
    ++s.inflight[idx(msg.type)];
    if (msg.type == coh::MsgType::InvAck)
        ++invAcksSent_;
    if (carriesData(msg.type)) {
        if (!s.hasShadow) {
            s.shadow = msg.words;
            s.hasShadow = true;
        } else if (!tainted(src, msg.lineAddr)
                   && msg.words != s.shadow) {
            std::ostringstream os;
            os << coh::msgTypeName(msg.type) << " from node " << src
               << " for line " << msg.lineAddr
               << " carries words diverging from the write order";
            record("write-serialization", os.str());
        }
    }
    touch(msg.lineAddr);
}

void
InvariantAuditor::onProtoProcess(NodeId at, const coh::ProtoMsg &msg)
{
    LineState &s = ls(msg.lineAddr);
    std::int64_t &fl = s.inflight[idx(msg.type)];
    if (fl <= 0) {
        std::ostringstream os;
        os << coh::msgTypeName(msg.type) << " processed at node " << at
           << " for line " << msg.lineAddr << " with none in flight";
        record("message-conservation", os.str());
    } else {
        --fl;
    }
    ++processed_[idx(msg.type)];

    if (msg.type == coh::MsgType::Inv) {
        ++invProcessed_;
        // An Inv reaching a node with an open Shared-grade miss marks
        // the documented stale-fill window: the granted data still in
        // flight is ordered before the invalidation and will be
        // installed then dropped. Data checks pause until the drop.
        auto it = mshrs_.find(msg.lineAddr);
        if (it != mshrs_.end()) {
            auto nt = it->second.find(at);
            if (nt != it->second.end() && !nt->second)
                taints_.insert(taintKey(at, msg.lineAddr));
        }
    }
    if (msg.type == coh::MsgType::InvAck)
        ++s.acksProcessed;
    touch(msg.lineAddr);
}

void
InvariantAuditor::onLocalGrant(NodeId node, Addr line, bool exclusive)
{
    (void)node;
    const auto t = exclusive ? coh::MsgType::DataX : coh::MsgType::Data;
    LineState &s = ls(line);
    ++sends_[idx(t)];
    ++s.inflight[idx(t)];
    touch(line);
}

void
InvariantAuditor::onFill(NodeId node, Addr line, bool exclusive)
{
    const auto t = exclusive ? coh::MsgType::DataX : coh::MsgType::Data;
    LineState &s = ls(line);
    std::int64_t &fl = s.inflight[idx(t)];
    if (fl <= 0) {
        std::ostringstream os;
        os << "fill at node " << node << " line " << line
           << " without a matching " << coh::msgTypeName(t)
           << " grant in flight";
        record("message-conservation", os.str());
    } else {
        --fl;
    }
    ++processed_[idx(t)];
    touch(line);
}

void
InvariantAuditor::onMshrOpen(NodeId node, Addr line, bool exclusive)
{
    mshrs_[line][node] = exclusive;
    touch(line);
}

void
InvariantAuditor::onMshrClose(NodeId node, Addr line)
{
    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        it->second.erase(node);
        if (it->second.empty())
            mshrs_.erase(it);
    }
    touch(line);
}

void
InvariantAuditor::onTxnOpen(NodeId home, Addr line,
                            const coh::DirTxn &txn)
{
    (void)home;
    LineState &s = ls(line);
    s.acksExpected = txn.pendingAcks;
    s.acksProcessed = 0;
    touch(line);
}

void
InvariantAuditor::onTxnClose(NodeId home, Addr line)
{
    (void)home;
    LineState &s = ls(line);
    s.acksExpected = 0;
    s.acksProcessed = 0;
    touch(line);
}

void
InvariantAuditor::onRecallStashed(NodeId node, Addr line)
{
    (void)node;
    ++ls(line).stashCount;
    touch(line);
}

void
InvariantAuditor::onRecallHonored(NodeId node, Addr line)
{
    (void)node;
    LineState &s = ls(line);
    if (s.stashCount <= 0)
        record("recall-liveness",
               "stashed recall honoured with none recorded");
    else
        --s.stashCount;
    touch(line);
}

// ---------------------------------------------------------------------
// Cache / prefetch-buffer hooks
// ---------------------------------------------------------------------

void
InvariantAuditor::onCacheFill(NodeId node, Addr line, mem::LineState st,
                              const std::vector<std::uint64_t> &words)
{
    (void)st;
    LineState &s = ls(line);
    if (!s.hasShadow) {
        if (!tainted(node, line)) {
            s.shadow = words;
            s.hasShadow = true;
        }
    } else if (!tainted(node, line) && words != s.shadow) {
        std::ostringstream os;
        os << "fill at node " << node << " line " << line
           << " installs words diverging from the write order";
        record("write-serialization", os.str());
    }
    touch(line);
}

void
InvariantAuditor::onCacheEvict(NodeId node, Addr line, bool dirty)
{
    (void)node, (void)dirty;
    touch(line);
}

void
InvariantAuditor::onCacheInvalidate(NodeId node, Addr line,
                                    bool wasModified)
{
    (void)wasModified;
    taints_.erase(taintKey(node, line));
    touch(line);
}

void
InvariantAuditor::onCacheDowngrade(NodeId node, Addr line)
{
    (void)node;
    touch(line);
}

void
InvariantAuditor::onCacheUpgrade(NodeId node, Addr line)
{
    (void)node;
    touch(line);
}

void
InvariantAuditor::onCacheRead(NodeId node, Addr a, std::uint64_t v)
{
    const Addr line =
        a & ~static_cast<Addr>(machine_->config().lineBytes - 1);
    LineState &s = ls(line);
    if (s.hasShadow && !tainted(node, line)) {
        const std::size_t w = (a - line) / 8;
        if (w < s.shadow.size() && s.shadow[w] != v) {
            std::ostringstream os;
            os << "node " << node << " read " << v << " at " << a
               << " but the write order says " << s.shadow[w];
            record("write-serialization", os.str());
        }
    }
}

void
InvariantAuditor::onCacheWrite(NodeId node, Addr a, std::uint64_t v)
{
    (void)node;
    const Addr line =
        a & ~static_cast<Addr>(machine_->config().lineBytes - 1);
    LineState &s = ls(line);
    if (!s.hasShadow) {
        s.shadow.assign(machine_->config().lineBytes / 8, 0);
        s.hasShadow = true;
    }
    const std::size_t w = (a - line) / 8;
    if (w < s.shadow.size())
        s.shadow[w] = v;
    touch(line);
}

void
InvariantAuditor::onPfbInstall(NodeId node, Addr line, mem::LineState st,
                               const std::vector<std::uint64_t> &words)
{
    onCacheFill(node, line, st, words);
}

void
InvariantAuditor::onPfbRemove(NodeId node, Addr line)
{
    taints_.erase(taintKey(node, line));
    touch(line);
}

// ---------------------------------------------------------------------
// End of run
// ---------------------------------------------------------------------

void
InvariantAuditor::finalize()
{
    if (!machine_)
        return;

    for (const auto &[line, nodes] : mshrs_) {
        std::ostringstream os;
        os << "line " << line << " still has " << nodes.size()
           << " open MSHR(s) after the run";
        record("message-conservation", os.str());
    }
    for (Addr line : everTouched_) {
        const LineState &s = lines_[line];
        for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
            if (s.inflight[t] != 0) {
                std::ostringstream os;
                os << s.inflight[t] << " "
                   << coh::msgTypeName(static_cast<coh::MsgType>(t))
                   << " still in flight for line " << line;
                record("message-conservation", os.str());
            }
        }
        const NodeId home = machine_->mem().home(line);
        const coh::DirEntry *e =
            machine_->cohAt(home).debugDir().find(line);
        if (e && (e->busy() || !e->queue.empty())) {
            std::ostringstream os;
            os << "line " << line << " still busy at its home after the"
               << " run";
            record("message-conservation", os.str());
        } else if (quiescent(line, s)) {
            checkAgreement(line, "finalize");
        }
    }

    if (cohInjected_ != cohDelivered_) {
        std::ostringstream os;
        os << cohInjected_ << " coherence packets injected but "
           << cohDelivered_ << " delivered";
        record("message-conservation", os.str());
    }

    const VolumeBreakdown &mv = machine_->mesh().volume();
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(VolCat::NumCats); ++c) {
        if (mv.bytes[c] != volume_.bytes[c]) {
            std::ostringstream os;
            os << volCatName(static_cast<VolCat>(c))
               << " bytes observed " << volume_.bytes[c]
               << " != mesh total " << mv.bytes[c];
            record("byte-accounting", os.str());
        }
    }
    if (machine_->counters().invalidationsSent
        != sends_[idx(coh::MsgType::Inv)]) {
        std::ostringstream os;
        os << "CMMU counted "
           << machine_->counters().invalidationsSent
           << " invalidations but " << sends_[idx(coh::MsgType::Inv)]
           << " Inv were sent";
        record("byte-accounting", os.str());
    }
}

} // namespace alewife::check
