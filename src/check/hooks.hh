/**
 * @file
 * Observation points for the runtime invariant auditor.
 *
 * Hooks is an abstract observer that low-level components (event queue,
 * mesh, cache, prefetch buffer, coherence controller) notify about
 * every state transition relevant to cross-layer invariants. Each
 * component stores a nullable Hooks pointer; with no auditor attached
 * the only cost is a pointer null-check per transition, and nothing in
 * this header drags protocol types into the low-level components — all
 * parameters are forward-declared and passed by reference.
 *
 * Every callback has an empty default body so future observation points
 * never break existing observers. See check::InvariantAuditor for the
 * one real implementation.
 */

#ifndef ALEWIFE_CHECK_HOOKS_HH
#define ALEWIFE_CHECK_HOOKS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife::mem {
enum class LineState : std::uint8_t;
}
namespace alewife::coh {
struct ProtoMsg;
struct DirTxn;
}
namespace alewife::net {
struct Packet;
}

namespace alewife::check {

/**
 * Cost decomposition of one network edge, reported by net::Mesh just
 * before it schedules the corresponding deliver (or ideal-deliver)
 * event. All components are in ticks and sum to the edge's total
 * delay, `arrive - now`:
 *
 *   fixedTicks     latency-dependent, per-message (netFixedNs, or the
 *                  full ideal latency on the ideal-network path)
 *   hopTicksTotal  latency-dependent, per-hop (hops x hopNs)
 *   serTicks       bandwidth-dependent (bytes / linkMBps)
 *   queueTicks     contention (head stalled behind earlier traffic)
 *
 * The hop counts let an analytical model re-cost the edge under a
 * different machine config: `hops` scales the hop term, `xHops` counts
 * the east/west links traversed (the ones emulated cross-bisection
 * traffic also occupies — see net::CrossTraffic, whose row streams
 * load every horizontal link of their row, not just the bisection
 * cut).
 */
struct PacketEdgeCost
{
    NodeId src = 0;
    NodeId dst = 0;
    std::uint32_t bytes = 0;
    /** Mesh links traversed (0 for self-sends and the ideal network). */
    std::uint16_t hops = 0;
    /** Of those, horizontal (east/west) links. */
    std::uint16_t xHops = 0;
    Tick fixedTicks = 0;
    Tick hopTicksTotal = 0;
    Tick serTicks = 0;
    Tick queueTicks = 0;
    /** True when the edge used the contention-free ideal network. */
    bool ideal = false;

    Tick
    totalTicks() const
    {
        return fixedTicks + hopTicksTotal + serTicks + queueTicks;
    }
};

/**
 * Observer interface over every auditable transition of a Machine.
 *
 * Two kinds of consumers exist: check::InvariantAuditor (correctness)
 * and obs::Recorder (metrics / timelines / flight recording). A
 * Machine multiplexes several observers through HookFanout below.
 *
 * Threading contract (parallel engine). Under the serial engine every
 * callback arrives on the one simulation thread, in event order. Under
 * the parallel window engine (sim::ParallelExec):
 *  - per-node callbacks (onProcSpan, onCache*, onPfb*, onMshr*, the
 *    coherence family, ...) fire on the worker thread that owns that
 *    node's LP — concurrently with other workers' callbacks, but each
 *    node's stream stays in that node's event order;
 *  - mesh callbacks (onPacketInjected/onHop and the reject path) fire
 *    under the engine's order gate, i.e. serialized and in exact
 *    serial event order; onPacketDelivered fires on the destination
 *    node's worker;
 *  - onEventExecuted fires on the executing worker with that event's
 *    tick (ticks interleave across workers within a window);
 *  - onParallelWindowCommit fires on the committing thread after all
 *    workers quiesced, in window (time) order — state-summarizing
 *    observers should flush there.
 * An observer that can live with this declares it by overriding
 * parallelCapable(); a Machine refuses to run parallel (silently falls
 * back to serial) while any attached observer is not capable.
 */
class Hooks
{
  public:
    virtual ~Hooks() = default;

    /**
     * True if this observer tolerates the parallel threading contract
     * above. Defaults to false: an observer written for the serial
     * engine (e.g. InvariantAuditor's global event-order checks)
     * forces the machine back to serial execution rather than racing.
     */
    virtual bool parallelCapable() const { return false; }

    /**
     * One parallel window committed; every event before @p bound has
     * executed and its effects are visible on the calling thread.
     * Never called by the serial engine.
     */
    virtual void onParallelWindowCommit(Tick bound) { (void)bound; }

    // --- sim::EventQueue ---

    /** An event finished executing; @p now is its (monotonic) tick. */
    virtual void onEventExecuted(Tick now) { (void)now; }

    // --- net::Mesh ---

    /** A packet entered the network (volume already charged). */
    virtual void onPacketInjected(const net::Packet &pkt) { (void)pkt; }

    /** A packet was accepted by its destination sink. */
    virtual void onPacketDelivered(const net::Packet &pkt) { (void)pkt; }

    /**
     * A packet's head entered one mesh link. @p depart is the tick the
     * head leaves the link's upstream router; @p waited is how long the
     * head stalled behind earlier traffic on this link (queueing).
     */
    virtual void
    onHop(const net::Packet &pkt, int link, Tick depart, Tick waited)
    {
        (void)pkt, (void)link, (void)depart, (void)waited;
    }

    /**
     * Cost decomposition of one network edge, emitted synchronously
     * just before the mesh schedules that edge's deliver event (so a
     * DepListener can attach it to the very next onSchedule). Not
     * emitted for NI-reject retries, whose delay is compute-clocked.
     */
    virtual void onPacketEdgeCost(const PacketEdgeCost &cost)
    {
        (void)cost;
    }

    // --- proc::Proc (per node) ---

    /**
     * A contiguous interval of processor time was attributed to one
     * Figure-4 category (compute burst, memory/NI wait, sync wait...).
     * Adjacent same-category intervals arrive pre-coalesced.
     */
    virtual void
    onProcSpan(NodeId node, TimeCat cat, Tick start, Tick end)
    {
        (void)node, (void)cat, (void)start, (void)end;
    }

    /**
     * A handler / interrupt / software trap stole processor cycles:
     * message handlers, LimitLESS traps, DMA completion.
     */
    virtual void onHandlerRun(NodeId node, Tick start, Tick end)
    {
        (void)node, (void)start, (void)end;
    }

    /** One barrier episode of @p node, in node-local time. */
    virtual void onBarrierEpisode(NodeId node, Tick start, Tick end)
    {
        (void)node, (void)start, (void)end;
    }

    /**
     * Node @p node's program finished. Fires inside the resume event
     * that observed completion; @p extraTicks is how far the node's
     * local clock had run ahead of that event's tick (the machine's
     * finish time is the max over nodes of event tick + extraTicks).
     */
    virtual void onProgramDone(NodeId node, Tick extraTicks)
    {
        (void)node, (void)extraTicks;
    }

    // --- mem::Cache (per node) ---

    virtual void
    onCacheFill(NodeId node, Addr line, mem::LineState st,
                const std::vector<std::uint64_t> &words)
    {
        (void)node, (void)line, (void)st, (void)words;
    }

    /** A valid line was displaced by a fill of a different line. */
    virtual void
    onCacheEvict(NodeId node, Addr line, bool dirty)
    {
        (void)node, (void)line, (void)dirty;
    }

    virtual void
    onCacheInvalidate(NodeId node, Addr line, bool wasModified)
    {
        (void)node, (void)line, (void)wasModified;
    }

    virtual void onCacheDowngrade(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    virtual void onCacheUpgrade(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    virtual void onCacheRead(NodeId node, Addr a, std::uint64_t v)
    {
        (void)node, (void)a, (void)v;
    }

    virtual void onCacheWrite(NodeId node, Addr a, std::uint64_t v)
    {
        (void)node, (void)a, (void)v;
    }

    // --- proc::PrefetchBuffer (per node) ---

    virtual void
    onPfbInstall(NodeId node, Addr line, mem::LineState st,
                 const std::vector<std::uint64_t> &words)
    {
        (void)node, (void)line, (void)st, (void)words;
    }

    /** Entry removed for any reason (take/invalidate/evict/displace). */
    virtual void onPfbRemove(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    virtual void onPfbDowngrade(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    // --- coh::CoherenceController (per node) ---

    /** A protocol message left @p src for @p dst (possibly src==dst). */
    virtual void
    onProtoSend(NodeId src, NodeId dst, const coh::ProtoMsg &msg)
    {
        (void)src, (void)dst, (void)msg;
    }

    /** A protocol message's processing began at node @p at. */
    virtual void onProtoProcess(NodeId at, const coh::ProtoMsg &msg)
    {
        (void)at, (void)msg;
    }

    /**
     * The home granted data to a local requester without a ProtoMsg
     * (requester == home short-circuit); pairs with a later onFill.
     */
    virtual void onLocalGrant(NodeId node, Addr line, bool exclusive)
    {
        (void)node, (void)line, (void)exclusive;
    }

    /** A data grant (message or local) was consumed by the MSHR. */
    virtual void onFill(NodeId node, Addr line, bool exclusive)
    {
        (void)node, (void)line, (void)exclusive;
    }

    virtual void onMshrOpen(NodeId node, Addr line, bool exclusive)
    {
        (void)node, (void)line, (void)exclusive;
    }

    virtual void onMshrClose(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    /** A home transaction opened on @p line (txn state at open time). */
    virtual void
    onTxnOpen(NodeId home, Addr line, const coh::DirTxn &txn)
    {
        (void)home, (void)line, (void)txn;
    }

    virtual void onTxnClose(NodeId home, Addr line)
    {
        (void)home, (void)line;
    }

    /** A recall/forward overtook our granted data and was stashed. */
    virtual void onRecallStashed(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    /** A stashed recall/forward was honoured after the fill. */
    virtual void onRecallHonored(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }
};

/**
 * Multiplexes several observers behind one Hooks pointer. A Machine
 * installs this when more than one observer is attached (e.g. the
 * invariant auditor plus the obs recorder); observers are notified in
 * attachment order. With zero or one observer the fanout is bypassed
 * entirely, so the single-observer cost stays one virtual call and the
 * detached cost stays one null check.
 */
class HookFanout final : public Hooks
{
  public:
    void clear() { obs_.clear(); }
    void add(Hooks *h) { obs_.push_back(h); }
    std::size_t size() const { return obs_.size(); }

    /** The fanout is parallel-capable iff every observer is. */
    bool
    parallelCapable() const override
    {
        for (const Hooks *h : obs_)
            if (!h->parallelCapable())
                return false;
        return true;
    }

    /**
     * Debug enforcement of the threading contract: the parallel
     * engine installs a checker that panics when a per-node callback
     * fires on a thread that does not own that node's LP (null
     * restores no-op). Active only in assertion builds; release
     * builds keep the plain forwarding cost.
     */
    void
    setOwnerCheck(std::function<void(NodeId)> check)
    {
#ifndef NDEBUG
        ownerCheck_ = std::move(check);
#else
        (void)check;
#endif
    }

    void onParallelWindowCommit(Tick bound) override
    {
        for (Hooks *h : obs_)
            h->onParallelWindowCommit(bound);
    }

    void onEventExecuted(Tick now) override
    {
        for (Hooks *h : obs_)
            h->onEventExecuted(now);
    }
    void onPacketInjected(const net::Packet &pkt) override
    {
        for (Hooks *h : obs_)
            h->onPacketInjected(pkt);
    }
    void onPacketDelivered(const net::Packet &pkt) override
    {
        for (Hooks *h : obs_)
            h->onPacketDelivered(pkt);
    }
    void
    onHop(const net::Packet &pkt, int link, Tick depart,
          Tick waited) override
    {
        for (Hooks *h : obs_)
            h->onHop(pkt, link, depart, waited);
    }
    void onPacketEdgeCost(const PacketEdgeCost &cost) override
    {
        for (Hooks *h : obs_)
            h->onPacketEdgeCost(cost);
    }
    void
    onProcSpan(NodeId node, TimeCat cat, Tick start, Tick end) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onProcSpan(node, cat, start, end);
    }
    void onHandlerRun(NodeId node, Tick start, Tick end) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onHandlerRun(node, start, end);
    }
    void onBarrierEpisode(NodeId node, Tick start, Tick end) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onBarrierEpisode(node, start, end);
    }
    void onProgramDone(NodeId node, Tick extraTicks) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onProgramDone(node, extraTicks);
    }
    void
    onCacheFill(NodeId node, Addr line, mem::LineState st,
                const std::vector<std::uint64_t> &words) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onCacheFill(node, line, st, words);
    }
    void onCacheEvict(NodeId node, Addr line, bool dirty) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onCacheEvict(node, line, dirty);
    }
    void
    onCacheInvalidate(NodeId node, Addr line, bool wasModified) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onCacheInvalidate(node, line, wasModified);
    }
    void onCacheDowngrade(NodeId node, Addr line) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onCacheDowngrade(node, line);
    }
    void onCacheUpgrade(NodeId node, Addr line) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onCacheUpgrade(node, line);
    }
    void onCacheRead(NodeId node, Addr a, std::uint64_t v) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onCacheRead(node, a, v);
    }
    void onCacheWrite(NodeId node, Addr a, std::uint64_t v) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onCacheWrite(node, a, v);
    }
    void
    onPfbInstall(NodeId node, Addr line, mem::LineState st,
                 const std::vector<std::uint64_t> &words) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onPfbInstall(node, line, st, words);
    }
    void onPfbRemove(NodeId node, Addr line) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onPfbRemove(node, line);
    }
    void onPfbDowngrade(NodeId node, Addr line) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onPfbDowngrade(node, line);
    }
    void
    onProtoSend(NodeId src, NodeId dst, const coh::ProtoMsg &msg) override
    {
        checkOwner(src);
        for (Hooks *h : obs_)
            h->onProtoSend(src, dst, msg);
    }
    void onProtoProcess(NodeId at, const coh::ProtoMsg &msg) override
    {
        checkOwner(at);
        for (Hooks *h : obs_)
            h->onProtoProcess(at, msg);
    }
    void onLocalGrant(NodeId node, Addr line, bool exclusive) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onLocalGrant(node, line, exclusive);
    }
    void onFill(NodeId node, Addr line, bool exclusive) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onFill(node, line, exclusive);
    }
    void onMshrOpen(NodeId node, Addr line, bool exclusive) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onMshrOpen(node, line, exclusive);
    }
    void onMshrClose(NodeId node, Addr line) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onMshrClose(node, line);
    }
    void
    onTxnOpen(NodeId home, Addr line, const coh::DirTxn &txn) override
    {
        checkOwner(home);
        for (Hooks *h : obs_)
            h->onTxnOpen(home, line, txn);
    }
    void onTxnClose(NodeId home, Addr line) override
    {
        checkOwner(home);
        for (Hooks *h : obs_)
            h->onTxnClose(home, line);
    }
    void onRecallStashed(NodeId node, Addr line) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onRecallStashed(node, line);
    }
    void onRecallHonored(NodeId node, Addr line) override
    {
        checkOwner(node);
        for (Hooks *h : obs_)
            h->onRecallHonored(node, line);
    }

  private:
    void
    checkOwner(NodeId node) const
    {
#ifndef NDEBUG
        if (ownerCheck_)
            ownerCheck_(node);
#else
        (void)node;
#endif
    }

    std::vector<Hooks *> obs_;
#ifndef NDEBUG
    std::function<void(NodeId)> ownerCheck_;
#endif
};

} // namespace alewife::check

#endif // ALEWIFE_CHECK_HOOKS_HH
