/**
 * @file
 * Observation points for the runtime invariant auditor.
 *
 * Hooks is an abstract observer that low-level components (event queue,
 * mesh, cache, prefetch buffer, coherence controller) notify about
 * every state transition relevant to cross-layer invariants. Each
 * component stores a nullable Hooks pointer; with no auditor attached
 * the only cost is a pointer null-check per transition, and nothing in
 * this header drags protocol types into the low-level components — all
 * parameters are forward-declared and passed by reference.
 *
 * Every callback has an empty default body so future observation points
 * never break existing observers. See check::InvariantAuditor for the
 * one real implementation.
 */

#ifndef ALEWIFE_CHECK_HOOKS_HH
#define ALEWIFE_CHECK_HOOKS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace alewife::mem {
enum class LineState : std::uint8_t;
}
namespace alewife::coh {
struct ProtoMsg;
struct DirTxn;
}
namespace alewife::net {
struct Packet;
}

namespace alewife::check {

/**
 * Observer interface over every auditable transition of a Machine.
 */
class Hooks
{
  public:
    virtual ~Hooks() = default;

    // --- sim::EventQueue ---

    /** An event finished executing; @p now is its (monotonic) tick. */
    virtual void onEventExecuted(Tick now) { (void)now; }

    // --- net::Mesh ---

    /** A packet entered the network (volume already charged). */
    virtual void onPacketInjected(const net::Packet &pkt) { (void)pkt; }

    /** A packet was accepted by its destination sink. */
    virtual void onPacketDelivered(const net::Packet &pkt) { (void)pkt; }

    // --- mem::Cache (per node) ---

    virtual void
    onCacheFill(NodeId node, Addr line, mem::LineState st,
                const std::vector<std::uint64_t> &words)
    {
        (void)node, (void)line, (void)st, (void)words;
    }

    /** A valid line was displaced by a fill of a different line. */
    virtual void
    onCacheEvict(NodeId node, Addr line, bool dirty)
    {
        (void)node, (void)line, (void)dirty;
    }

    virtual void
    onCacheInvalidate(NodeId node, Addr line, bool wasModified)
    {
        (void)node, (void)line, (void)wasModified;
    }

    virtual void onCacheDowngrade(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    virtual void onCacheUpgrade(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    virtual void onCacheRead(NodeId node, Addr a, std::uint64_t v)
    {
        (void)node, (void)a, (void)v;
    }

    virtual void onCacheWrite(NodeId node, Addr a, std::uint64_t v)
    {
        (void)node, (void)a, (void)v;
    }

    // --- proc::PrefetchBuffer (per node) ---

    virtual void
    onPfbInstall(NodeId node, Addr line, mem::LineState st,
                 const std::vector<std::uint64_t> &words)
    {
        (void)node, (void)line, (void)st, (void)words;
    }

    /** Entry removed for any reason (take/invalidate/evict/displace). */
    virtual void onPfbRemove(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    virtual void onPfbDowngrade(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    // --- coh::CoherenceController (per node) ---

    /** A protocol message left @p src for @p dst (possibly src==dst). */
    virtual void
    onProtoSend(NodeId src, NodeId dst, const coh::ProtoMsg &msg)
    {
        (void)src, (void)dst, (void)msg;
    }

    /** A protocol message's processing began at node @p at. */
    virtual void onProtoProcess(NodeId at, const coh::ProtoMsg &msg)
    {
        (void)at, (void)msg;
    }

    /**
     * The home granted data to a local requester without a ProtoMsg
     * (requester == home short-circuit); pairs with a later onFill.
     */
    virtual void onLocalGrant(NodeId node, Addr line, bool exclusive)
    {
        (void)node, (void)line, (void)exclusive;
    }

    /** A data grant (message or local) was consumed by the MSHR. */
    virtual void onFill(NodeId node, Addr line, bool exclusive)
    {
        (void)node, (void)line, (void)exclusive;
    }

    virtual void onMshrOpen(NodeId node, Addr line, bool exclusive)
    {
        (void)node, (void)line, (void)exclusive;
    }

    virtual void onMshrClose(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    /** A home transaction opened on @p line (txn state at open time). */
    virtual void
    onTxnOpen(NodeId home, Addr line, const coh::DirTxn &txn)
    {
        (void)home, (void)line, (void)txn;
    }

    virtual void onTxnClose(NodeId home, Addr line)
    {
        (void)home, (void)line;
    }

    /** A recall/forward overtook our granted data and was stashed. */
    virtual void onRecallStashed(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }

    /** A stashed recall/forward was honoured after the fill. */
    virtual void onRecallHonored(NodeId node, Addr line)
    {
        (void)node, (void)line;
    }
};

} // namespace alewife::check

#endif // ALEWIFE_CHECK_HOOKS_HH
