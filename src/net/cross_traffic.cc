#include "net/cross_traffic.hh"

#include "sim/logging.hh"

namespace alewife::net {

CrossTraffic::CrossTraffic(EventQueue &eq, Mesh &mesh,
                           CrossTrafficConfig cfg)
    : eq_(eq), mesh_(mesh), cfg_(cfg)
{
    const MachineConfig &mc = mesh.config();
    // One stream per mesh row per direction: left edge -> right edge and
    // right edge -> left edge, matching the 4-injectors-per-side setup of
    // the paper's 8x4 machine.
    for (int y = 0; y < mc.meshY; ++y) {
        const NodeId left = y * mc.meshX;
        const NodeId right = y * mc.meshX + (mc.meshX - 1);
        streams_.push_back({left, right});
        streams_.push_back({right, left});
    }
    if (cfg_.bytesPerCycle > 0.0) {
        const double per_stream =
            cfg_.bytesPerCycle / static_cast<double>(streams_.size());
        const double period_cycles =
            static_cast<double>(cfg_.messageBytes) / per_stream;
        periodTicks_ = cyclesToTicks(period_cycles);
        if (periodTicks_ == 0)
            ALEWIFE_FATAL("cross-traffic rate too high to emulate");
    }
}

void
CrossTraffic::start()
{
    if (running_ || cfg_.bytesPerCycle <= 0.0)
        return;
    running_ = true;
    injectAll();
}

void
CrossTraffic::stop()
{
    running_ = false;
}

void
CrossTraffic::injectAll()
{
    if (!running_)
        return;
    // Parallel engine: behave exactly like a tick after stop() — no
    // injection, no reschedule — iff the serial driver would already
    // have stopped by this event's position in the serial order.
    if (quiesced_ && quiesced_())
        return;
    for (const Stream &s : streams_) {
        auto pkt = std::make_unique<Packet>();
        pkt->src = s.src;
        pkt->dst = s.dst;
        pkt->kind = PacketKind::CrossTraffic;
        pkt->sizeBytes = cfg_.messageBytes;
        pkt->countInVolume = false;
        bytesInjected_ += cfg_.messageBytes;
        mesh_.send(std::move(pkt));
    }
    eq_.schedule(eq_.now() + periodTicks_,
                 EventMeta{EventTag::CrossTrafficTick, 0, 0},
                 [this]() { injectAll(); });
}

double
CrossTraffic::effectiveBisection() const
{
    const double native = mesh_.config().bisectionBytesPerCycle();
    const double left = native - cfg_.bytesPerCycle;
    return left > 0.0 ? left : 0.0;
}

} // namespace alewife::net
