/**
 * @file
 * I/O cross-traffic injectors for bisection-bandwidth emulation.
 *
 * Mirrors the paper's Section 5.2 methodology: I/O nodes attached to the
 * left and right edges of the mesh stream messages straight across the
 * bisection in both directions. The emulated machine's bisection is the
 * native bisection minus the injected cross-traffic bandwidth. Smaller
 * cross-traffic messages emulate more smoothly but cap the achievable
 * reduction (Figure 7); the paper settles on 64-byte messages.
 *
 * We inject at the edge-column compute routers (the I/O nodes of the real
 * machine sit just off those routers); the packets traverse the full X
 * dimension and are dropped at the opposite edge without touching any
 * network-interface queue, so applications only feel the link contention.
 */

#ifndef ALEWIFE_NET_CROSS_TRAFFIC_HH
#define ALEWIFE_NET_CROSS_TRAFFIC_HH

#include <cstdint>
#include <functional>

#include "net/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace alewife::ckpt {
class Access;
}

namespace alewife::net {

/** Parameters of a cross-traffic experiment. */
struct CrossTrafficConfig
{
    /** Total bisection bandwidth to consume, bytes per processor cycle. */
    double bytesPerCycle = 0.0;
    /** Size of each cross-traffic message in bytes (paper: 64). */
    std::uint32_t messageBytes = 64;
};

/**
 * Streams cross-traffic across the mesh bisection for the whole run.
 */
class CrossTraffic
{
  public:
    CrossTraffic(EventQueue &eq, Mesh &mesh, CrossTrafficConfig cfg);

    /** Begin injecting. Idempotent. */
    void start();

    /** Stop injecting (pending packets still drain). */
    void stop();

    /** Bytes injected so far. */
    std::uint64_t bytesInjected() const { return bytesInjected_; }

    /**
     * Parallel-engine stop condition. The serial driver checks
     * "all programs done" before every event and calls stop() the
     * moment it holds, so ticks after that point do nothing; a
     * parallel window cannot stop mid-window, so the machine installs
     * a predicate that reproduces the exact cutoff: true iff every
     * program completed strictly before the current tick event in
     * serial event order. Null (the default) disables the check.
     */
    void
    setQuiescedCheck(std::function<bool()> check)
    {
        quiesced_ = std::move(check);
    }

    /**
     * The bisection bandwidth (bytes/cycle) left for the application,
     * i.e. native minus consumed. Clamped at zero.
     */
    double effectiveBisection() const;

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    /** One stream: fixed (srcNode -> dstNode) flow at fixed rate. */
    struct Stream
    {
        NodeId src;
        NodeId dst;
    };

    void injectAll();

    EventQueue &eq_;
    Mesh &mesh_;
    CrossTrafficConfig cfg_;
    std::vector<Stream> streams_;
    Tick periodTicks_ = 0;
    bool running_ = false;
    std::uint64_t bytesInjected_ = 0;
    std::function<bool()> quiesced_;
};

} // namespace alewife::net

#endif // ALEWIFE_NET_CROSS_TRAFFIC_HH
