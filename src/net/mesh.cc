#include "net/mesh.hh"

#include <algorithm>
#include <cmath>

#include "check/hooks.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"

namespace alewife::net {

Mesh::Mesh(EventQueue &eq, const MachineConfig &cfg) : eq_(eq), cfg_(cfg)
{
    sinks_.resize(cfg.nodes());
    // Four unidirectional links per node (E, W, N, S); links off the mesh
    // edge exist but are only used by cross-traffic draining off-edge.
    links_.resize(static_cast<std::size_t>(cfg.nodes()) * 4);
    computeDerivedTiming();
}

void
Mesh::computeDerivedTiming()
{
    hopTicks_ = cyclesToTicks(cfg_.hopCycles());
    fixedTicks_ = cyclesToTicks(cfg_.netFixedCycles());
    retryTicks_ = cyclesToTicks(cfg_.niRetryCycles);
    idealTicks_ = cyclesToTicks(cfg_.idealNetLatencyCycles);
    // Memoize serialization times for every packet size up to 4 KiB
    // (covers all protocol/AM/DMA packets; larger sizes fall back to
    // the exact formula). Filled with the exact per-call computation so
    // lookups are bit-identical to the pre-memo behavior.
    serTable_.resize(4096);
    for (std::uint32_t b = 0; b < serTable_.size(); ++b)
        serTable_[b] = serializationTicksExact(b);
}

void
Mesh::setSink(NodeId node, Sink sink)
{
    sinks_.at(node) = std::move(sink);
}

Tick
Mesh::serializationTicksExact(std::uint32_t bytes) const
{
    return cyclesToTicks(static_cast<double>(bytes)
                         / cfg_.linkBytesPerCycle());
}

Tick
Mesh::serializationTicks(std::uint32_t bytes) const
{
    if (bytes < serTable_.size())
        return serTable_[bytes];
    return serializationTicksExact(bytes);
}

void
Mesh::setHopJitter(double frac, std::uint64_t seed)
{
    jitterFrac_ = frac;
    jitterRng_ = Rng(seed);
}

Tick
Mesh::hopLatency()
{
    if (jitterFrac_ <= 0.0)
        return hopTicks_;
    const double f =
        1.0 + jitterFrac_ * (2.0 * jitterRng_.nextDouble() - 1.0);
    const auto t = static_cast<Tick>(
        std::llround(static_cast<double>(hopTicks_) * f));
    return t < 1 ? 1 : t;
}

int
Mesh::linkIndex(int x, int y, int nx, int ny) const
{
    const int node = y * cfg_.meshX + x;
    int dir;
    if (nx == x + 1 && ny == y)
        dir = 0; // east
    else if (nx == x - 1 && ny == y)
        dir = 1; // west
    else if (ny == y + 1 && nx == x)
        dir = 2; // north
    else if (ny == y - 1 && nx == x)
        dir = 3; // south
    else
        ALEWIFE_PANIC("non-adjacent hop in route");
    return node * 4 + dir;
}

void
Mesh::route(NodeId src, NodeId dst, RouteBuf &links) const
{
    links.clear();
    int x = src % cfg_.meshX;
    int y = src / cfg_.meshX;
    const int dx = dst % cfg_.meshX;
    const int dy = dst / cfg_.meshX;
    while (x != dx) {
        const int nx = x + (dx > x ? 1 : -1);
        links.push_back(linkIndex(x, y, nx, y));
        x = nx;
    }
    while (y != dy) {
        const int ny = y + (dy > y ? 1 : -1);
        links.push_back(linkIndex(x, y, x, ny));
        y = ny;
    }
}

int
Mesh::hopCount(NodeId a, NodeId b) const
{
    const int ax = a % cfg_.meshX, ay = a / cfg_.meshX;
    const int bx = b % cfg_.meshX, by = b / cfg_.meshX;
    return std::abs(ax - bx) + std::abs(ay - by);
}

Tick
Mesh::send(std::unique_ptr<Packet> pkt)
{
    // Parallel windows: sends mutate mesh-global state (packet ids,
    // link horizons, volume, the jitter RNG), so they run gated — one
    // at a time, in exact serial event order.
    if (gate_) [[unlikely]]
        gate_->gateWait();
    pkt->id = nextId_++;
    ++injected_;
    ALEWIFE_TRACE_EVENT(TraceCat::Net, eq_.now(), "inject #", pkt->id,
                        " ", pkt->src, "->", pkt->dst, " ",
                        pkt->sizeBytes, "B kind ",
                        static_cast<int>(pkt->kind));
    if (pkt->countInVolume) {
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(VolCat::NumCats); ++c) {
            volume_.add(static_cast<VolCat>(c), pkt->volBytes[c]);
        }
    }
    if (hooks_)
        hooks_->onPacketInjected(*pkt);

    const Tick now = eq_.now();

    if (cfg_.idealNet) {
        // Uniform latency, infinite bandwidth, no contention.
        const Tick arrive = now + idealTicks_;
        if (hooks_) {
            check::PacketEdgeCost cost;
            cost.src = pkt->src;
            cost.dst = pkt->dst;
            cost.bytes = pkt->sizeBytes;
            cost.fixedTicks = idealTicks_;
            cost.ideal = true;
            hooks_->onPacketEdgeCost(cost);
        }
        auto *raw = pkt.release();
        eq_.schedule(arrive,
                     EventMeta{EventTag::MeshDeliverIdeal,
                               reinterpret_cast<std::uintptr_t>(raw), 0},
                     [this, raw]() {
                         deliver(std::unique_ptr<Packet>(raw), -1);
                     });
        return 0;
    }

    route(pkt->src, pkt->dst, scratchLinks_);
    const Tick ser = serializationTicks(pkt->sizeBytes);
    const int bisectX = cfg_.meshX / 2; // links from column bisectX-1 <-> bisectX

    Tick head = now + fixedTicks_;
    Tick first_link_wait = 0;
    Tick hopTicksTotal = 0;
    Tick queueTicksTotal = 0;
    std::uint16_t xHops = 0;
    bool first = true;
    int finalLink = -1;
    for (int li : scratchLinks_) {
        Link &link = links_[li];
        const Tick hop = hopLatency();
        const Tick uncontended = head + hop;
        head = std::max(uncontended, link.freeAt + hop);
        const Tick waited = head - uncontended;
        if (first) {
            first_link_wait = waited;
            first = false;
        }
        hopTicksTotal += hop;
        queueTicksTotal += waited;
        link.freeAt = head + ser;
        link.busyTicks += ser;
        link.bytes += pkt->sizeBytes;
        finalLink = li;
        if (hooks_)
            hooks_->onHop(*pkt, li, head, waited);

        // Bisection accounting: an east/west link whose endpoints straddle
        // the vertical cut.
        const int node = li / 4;
        const int dir = li % 4;
        const int x = node % cfg_.meshX;
        if (dir == 0 || dir == 1)
            ++xHops;
        if ((dir == 0 && x == bisectX - 1) || (dir == 1 && x == bisectX))
            bisectionBytes_ += pkt->sizeBytes;
    }
    // Tail arrives one hop + serialization after the head enters the last
    // link; for the zero-hop (self) case just charge fixed + serialization.
    const Tick arrive =
        scratchLinks_.empty() ? now + fixedTicks_ + ser : head + ser;

    if (hooks_) {
        check::PacketEdgeCost cost;
        cost.src = pkt->src;
        cost.dst = pkt->dst;
        cost.bytes = pkt->sizeBytes;
        cost.hops = static_cast<std::uint16_t>(scratchLinks_.size());
        cost.xHops = xHops;
        cost.fixedTicks = fixedTicks_;
        cost.hopTicksTotal = hopTicksTotal;
        cost.serTicks = ser;
        cost.queueTicks = queueTicksTotal;
        hooks_->onPacketEdgeCost(cost);
    }
    auto *raw = pkt.release();
    eq_.schedule(arrive,
                 EventMeta{EventTag::MeshDeliver,
                           reinterpret_cast<std::uintptr_t>(raw),
                           static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(finalLink))},
                 [this, raw, finalLink]() {
                     deliver(std::unique_ptr<Packet>(raw), finalLink);
                 });
    return first_link_wait;
}

void
Mesh::deliver(std::unique_ptr<Packet> pkt, int finalLink)
{
    // dst was validated by route() at injection; plain indexing here.
    Sink &sink = sinks_[static_cast<std::size_t>(pkt->dst)];
    if (!sink)
        ALEWIFE_PANIC("no sink registered for node ", pkt->dst);
    if (sink(*pkt)) {
        ALEWIFE_TRACE_EVENT(TraceCat::Net, eq_.now(), "deliver #",
                            pkt->id, " at ", pkt->dst);
        // Accept path: everything else it touches is destination-node
        // state, so it runs ungated on that node's worker; only this
        // machine-wide counter is shared (sum order is commutative).
        delivered_.fetch_add(1, std::memory_order_relaxed);
        if (hooks_)
            hooks_->onPacketDelivered(*pkt);
        return;
    }
    ALEWIFE_TRACE_EVENT(TraceCat::Net, eq_.now(), "reject #", pkt->id,
                        " at ", pkt->dst, " (NI full)");

    // Receiver full: park the packet, keep the final link busy, retry.
    // This path mutates the shared link horizon, so gate it like send.
    if (gate_) [[unlikely]]
        gate_->gateWait();
    ++niRejects_;
    if (finalLink >= 0) {
        Link &link = links_[finalLink];
        link.freeAt = std::max(link.freeAt, eq_.now() + retryTicks_);
        link.busyTicks += retryTicks_;
    }
    auto *raw = pkt.release();
    eq_.schedule(eq_.now() + retryTicks_,
                 EventMeta{EventTag::MeshRetry,
                           reinterpret_cast<std::uintptr_t>(raw),
                           static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(finalLink))},
                 [this, raw, finalLink]() {
                     deliver(std::unique_ptr<Packet>(raw), finalLink);
                 });
}

double
Mesh::bisectionUtilization() const
{
    if (eq_.now() == 0)
        return 0.0;
    std::uint64_t worst = 0;
    const int bisectX = cfg_.meshX / 2;
    for (int y = 0; y < cfg_.meshY; ++y) {
        const int east =
            linkIndex(bisectX - 1, y, bisectX, y);
        const int west = linkIndex(bisectX, y, bisectX - 1, y);
        worst = std::max({worst, links_[east].busyTicks,
                          links_[west].busyTicks});
    }
    return static_cast<double>(worst) / static_cast<double>(eq_.now());
}

} // namespace alewife::net
