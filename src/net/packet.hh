/**
 * @file
 * Network packets and volume accounting.
 *
 * A Packet is the unit the mesh moves. The layers above (coherence
 * protocol, active messages, cross-traffic) attach their own payload via
 * a small polymorphic base so the network stays ignorant of protocol
 * details. Each packet also carries its byte contribution to the Figure 5
 * volume categories so the machine-wide volume breakdown is computed at
 * injection time, exactly like the CMMU statistics counters.
 */

#ifndef ALEWIFE_NET_PACKET_HH
#define ALEWIFE_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <memory>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife::net {

/** Coarse packet classification, used for dispatch at the receiver. */
enum class PacketKind : std::uint8_t
{
    Coherence,     ///< directory-protocol traffic
    ActiveMessage, ///< user-level active message (possibly with DMA body)
    CrossTraffic,  ///< I/O cross-traffic used for bisection emulation
};

/** Base class for protocol-specific payloads carried by a Packet. */
struct PayloadBase
{
    virtual ~PayloadBase() = default;
};

/** A message in flight. */
struct Packet
{
    NodeId src = -1;
    NodeId dst = -1;
    PacketKind kind = PacketKind::CrossTraffic;
    std::uint32_t sizeBytes = 0;
    std::uint64_t id = 0;

    /** Bytes this packet contributes to each Figure 5 volume category. */
    std::array<std::uint32_t,
               static_cast<std::size_t>(VolCat::NumCats)> volBytes{};

    /** If false, excluded from application volume stats (cross-traffic). */
    bool countInVolume = true;

    std::unique_ptr<PayloadBase> payload;

    /** Add @p bytes to category @p c and to the packet size. */
    void
    addBytes(VolCat c, std::uint32_t bytes)
    {
        volBytes[static_cast<std::size_t>(c)] += bytes;
        sizeBytes += bytes;
    }

    /** Downcast the payload; panics live in the caller via assert. */
    template <typename T>
    T &
    as()
    {
        return static_cast<T &>(*payload);
    }
};

} // namespace alewife::net

#endif // ALEWIFE_NET_PACKET_HH
