/**
 * @file
 * Contended 2D mesh with dimension-order (XY) wormhole routing.
 *
 * The timing model is a standard wormhole approximation: the packet head
 * advances one hop per hopTicks, each traversed unidirectional link is
 * occupied for the packet's serialization time, and a link already busy
 * delays the head (per-link freeAt horizon). Congestion therefore grows
 * nonlinearly with offered load, which is what produces the paper's
 * "congestion dominated" region (Figure 1).
 *
 * Backpressure: a receiver may reject a delivery (network-interface input
 * queue full). The packet then parks, holds its final link busy, and is
 * redelivered after niRetryCycles — modelling the tree saturation the
 * paper observes for message-passing traffic at high rates.
 *
 * An ideal mode (MachineConfig::idealNet) replaces all of this with a
 * uniform one-way latency and infinite bandwidth, used by the Figure 10
 * context-switching latency-emulation experiment.
 */

#ifndef ALEWIFE_NET_MESH_HH
#define ALEWIFE_NET_MESH_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "machine/config.hh"
#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/small_vec.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife::sim {
class ParallelExec;
}

namespace alewife::net {

/**
 * The machine interconnect.
 */
class Mesh
{
  public:
    /**
     * Delivery callback: return true to accept the packet, false to make
     * the network hold it and retry (NI queue full).
     */
    using Sink = std::function<bool(Packet &)>;

    Mesh(EventQueue &eq, const MachineConfig &cfg);

    /** Register the delivery callback for @p node. */
    void setSink(NodeId node, Sink sink);

    /**
     * Inject @p pkt at time now. Ownership transfers to the mesh until
     * delivery. @p pkt.src/dst must be valid node ids.
     * @return ticks the packet waited to enter its first link — the
     *         sender-side back-pressure signal (0 in ideal mode)
     */
    Tick send(std::unique_ptr<Packet> pkt);

    /** Aggregate volume injected (application traffic only). */
    const VolumeBreakdown &volume() const { return volume_; }

    /** Total packets injected / delivered, including cross-traffic. */
    std::uint64_t packetsInjected() const { return injected_; }
    std::uint64_t
    packetsDelivered() const
    {
        return delivered_.load(std::memory_order_relaxed);
    }

    /** Times a delivery was rejected by a full NI queue. */
    std::uint64_t niRejects() const { return niRejects_; }

    /** Bytes that crossed the X-dimension bisection, both directions. */
    std::uint64_t bisectionBytes() const { return bisectionBytes_; }

    /**
     * Utilization [0,1] of the most-loaded bisection link so far, i.e.
     * busy ticks / elapsed ticks. Diagnostic for congestion studies.
     */
    double bisectionUtilization() const;

    /** Number of hops a packet from @p a to @p b traverses. */
    int hopCount(NodeId a, NodeId b) const;

    /**
     * Ticks a packet of @p bytes occupies one link. Memoized for
     * common sizes; bit-identical to computing
     * cyclesToTicks(bytes / linkBytesPerCycle()) directly.
     */
    Tick serializationTicks(std::uint32_t bytes) const;

    /** Observer notified on packet injection/delivery; may be null. */
    void setAuditHooks(check::Hooks *hooks) { hooks_ = hooks; }

    /**
     * Guaranteed minimum latency between a cross-node injection and any
     * effect at the destination — the conservative lookahead of the
     * parallel window engine. Contended mode: the network fixed cost
     * plus one (possibly jittered, floor 1) hop plus the serialization
     * floor from the memoized table; queueing and extra hops only add
     * to it. Ideal mode: the uniform one-way latency. Self-sends
     * (src == dst) stay node-local, so they may undercut this freely.
     */
    Tick
    crossLookahead() const
    {
        if (cfg_.idealNet)
            return idealTicks_;
        const Tick hopMin = jitterFrac_ > 0.0 ? 1 : hopTicks_;
        return fixedTicks_ + hopMin + serTable_[0];
    }

    /**
     * Order gate for parallel windows: while set, send() and the
     * reject/retry half of deliver() — the paths touching mesh-global
     * state (link horizons, packet ids, RNGs, counters) — wait for
     * their turn in the serial event order before proceeding.
     */
    void setOrderGate(sim::ParallelExec *gate) { gate_ = gate; }

    /**
     * Scale each hop's latency by a seeded uniform factor in
     * [1-frac, 1+frac] (fuzzing only; no effect in ideal mode). Link
     * occupancy still serializes packets, so per-route FIFO delivery
     * order is preserved.
     */
    void setHopJitter(double frac, std::uint64_t seed);

    const MachineConfig &config() const { return cfg_; }

    /**
     * Route scratch type: a route is at most meshX + meshY link
     * indices, so meshes up to 64 hops across stay in inline storage;
     * larger ones spill once and then reuse the allocation.
     */
    using RouteBuf = sim::SmallVec<int, 64>;

    /** One unidirectional link. */
    struct Link
    {
        Tick freeAt = 0;
        std::uint64_t busyTicks = 0;
        std::uint64_t bytes = 0;
    };

    /**
     * Per-link occupancy counters, indexed node*4 + direction
     * (E,W,N,S). Read-only diagnostic for the observability exporter.
     */
    const std::vector<Link> &linkStats() const { return links_; }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;


    /** Index of the unidirectional link leaving (x,y) toward (nx,ny). */
    int linkIndex(int x, int y, int nx, int ny) const;

    /** Compute the XY route; fills @p links with link indices in order. */
    void route(NodeId src, NodeId dst, RouteBuf &links) const;

    /** Schedule delivery (and retry-on-reject) of an arrived packet. */
    void deliver(std::unique_ptr<Packet> pkt, int finalLink);

    /** The un-memoized serialization formula (table fill + fallback). */
    Tick serializationTicksExact(std::uint32_t bytes) const;

    /**
     * (Re)compute every cfg_-derived timing quantity (hop/fixed/retry/
     * ideal ticks and the serialization memo). Called by the ctor and
     * again by ckpt::Access after a warm-start config delta changes a
     * network knob in place.
     */
    void computeDerivedTiming();

    /** Per-hop latency, jittered when hop jitter is enabled. */
    Tick hopLatency();

    EventQueue &eq_;
    const MachineConfig &cfg_;
    std::vector<Sink> sinks_;
    std::vector<Link> links_;
    VolumeBreakdown volume_;
    std::uint64_t injected_ = 0;
    /** Atomic: bumped on the destination worker's accept path, which
     *  is not gated (all other mutable mesh state is gate-serialized). */
    std::atomic<std::uint64_t> delivered_{0};
    std::uint64_t niRejects_ = 0;
    std::uint64_t bisectionBytes_ = 0;
    std::uint64_t nextId_ = 1;
    Tick hopTicks_;
    Tick fixedTicks_;
    Tick retryTicks_;
    Tick idealTicks_;
    /**
     * serializationTicks() memo for common packet sizes, computed once
     * with the exact per-call formula (tests/net/serialization_ticks
     * pins the agreement) so the per-packet double division is gone
     * from the hot path.
     */
    std::vector<Tick> serTable_;
    check::Hooks *hooks_ = nullptr;
    sim::ParallelExec *gate_ = nullptr;
    double jitterFrac_ = 0.0;
    Rng jitterRng_{0};
    mutable RouteBuf scratchLinks_;
};

} // namespace alewife::net

#endif // ALEWIFE_NET_MESH_HH
