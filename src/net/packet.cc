#include "net/packet.hh"

namespace alewife::net {

// Packet and PayloadBase are header-only; this file anchors the vtable.

} // namespace alewife::net
