/**
 * @file
 * SweepEngine: parallel orchestration of independent simulations.
 *
 * Every paper figure is a batch of fully deterministic, mutually
 * independent runs; the engine executes such a batch on a pool of
 * worker threads — each run on its own Machine and EventQueue — and
 * returns results in submission order regardless of completion order,
 * so parallel output is byte-identical to the jobs=1 serial path.
 *
 * Layered on top:
 *  - an optional ResultCache consulted before and filled after every
 *    job, making repeated sweeps near-free;
 *  - a progress/telemetry hook reporting jobs queued/running/done,
 *    cache hits, and the aggregate simulated-event throughput.
 *
 * The serial path (jobs <= 1) spawns no threads at all, preserving
 * the exact legacy single-threaded behavior.
 */

#ifndef ALEWIFE_EXP_SWEEP_ENGINE_HH
#define ALEWIFE_EXP_SWEEP_ENGINE_HH

#include <functional>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "exp/farm.hh"

namespace alewife::exp {

class ResultCache;

/** One simulation to run: a workload factory plus its run spec. */
struct Job
{
    core::AppFactory app;
    core::RunSpec spec;
    /** Workload identity for caching; "" = never cached. */
    std::string appKey;
};

/** Telemetry snapshot passed to the progress hook after every job. */
struct Progress
{
    int queued = 0;    ///< total jobs in the batch
    int running = 0;   ///< jobs currently executing
    int done = 0;      ///< jobs finished (including cache hits)
    int cacheHits = 0; ///< jobs satisfied without simulating

    /** Simulated events executed by finished jobs of this batch. */
    std::uint64_t simEvents = 0;
    /** Wall-clock seconds since the batch started. */
    double elapsedSec = 0.0;

    /** Aggregate simulated-events/sec over the batch so far. */
    double
    eventsPerSec() const
    {
        return elapsedSec > 0.0
                   ? static_cast<double>(simEvents) / elapsedSec
                   : 0.0;
    }
};

/** Engine configuration, shared by the core experiment sweeps. */
struct EngineOptions
{
    /** Worker threads; <= 1 runs serially on the calling thread. */
    int jobs = 1;
    /**
     * Intra-run worker threads applied to every job of the batch
     * (RunSpec::threads — the sim/parallel.hh window engine inside one
     * simulation). Composes multiplicatively with jobs: the host load
     * is jobs x threads. When that product oversubscribes the host,
     * the engine downscales threads (never jobs — run-level
     * parallelism has no lookahead bound and scales better) via
     * effectiveThreads() and prints one clear message. Results are
     * unaffected either way: both axes are bit-identity-preserving.
     */
    int threads = 1;
    /** Optional cross-sweep result cache (not owned). */
    ResultCache *cache = nullptr;
    /**
     * Workload identity ("app/params") used by the experiment-level
     * wrappers to build cache keys; "" disables caching there.
     */
    std::string appKey;
    /**
     * Called after every job completes (and once when the batch is
     * empty). Serialized by the engine — the hook never runs
     * concurrently with itself. Must not throw.
     */
    std::function<void(const Progress &)> onProgress;
    /** Abort on checksum mismatch (the runner's verify_fatal). */
    bool verifyFatal = true;
    /**
     * Attach an invariant auditor to every job (panics at the first
     * violation). Audited sweeps always simulate — cached results are
     * not consulted — though results are still stored for later
     * unaudited sweeps (auditing never changes a result).
     */
    bool audit = false;
    /**
     * Observability for every job of the batch. Output paths are made
     * per-run (obs::withPathTag with "run<i>") so parallel workers
     * never share a file — one sink per simulation thread. When
     * metricsOut is set, the per-run metrics documents are merged into
     * one schema-versioned sweep file at that path after the batch.
     * Like audit, observed sweeps bypass cache reads (a cache hit
     * would skip writing the requested files) but still store.
     */
    obs::RecorderOptions obs;
    /**
     * Crash tolerance: when non-empty, every job periodically saves a
     * snapshot to <ckptDir>/<job-hash>-latest.ckpt.json and, if such a
     * file already exists when the job starts (a previous worker was
     * killed), resumes from it — audited bit-level against the replay —
     * instead of silently starting over. The file is removed when the
     * job completes. Job hashes are stable across process restarts for
     * identical batches.
     */
    std::string ckptDir;
    /** Snapshot interval in simulated cycles (with ckptDir). */
    double ckptIntervalCycles = 2'000'000.0;
    /**
     * Distributed execution: when non-empty, uncached jobs of the
     * batch are materialized as a farm campaign under this directory
     * (exp/farm.hh) instead of running on in-process threads — any
     * number of external `farm_cli worker` processes can join, `jobs`
     * in-process workers are contributed, and results come back
     * bit-identical (same cache keys) to the local path. Batches the
     * farm cannot serialize (audit, obs, empty workload, uncacheable
     * jobs) fall back to in-process execution with one warning.
     */
    std::string farmDir;
    /**
     * Serializable workload identity for farm jobs; must name the
     * same generated workload the batch's AppFactory builds (see
     * makeWorkloadFactory). Empty = batch is not farmable.
     */
    FarmWorkload workload;
    /** Queue-protocol tuning for the farm campaign. */
    FarmTuning farm;
    /** When non-null, receives the campaign's FarmReport (not owned;
     *  quarantined jobs, claims/reclaims/retries counters). */
    FarmReport *farmReport = nullptr;
};

class SweepEngine
{
  public:
    explicit SweepEngine(EngineOptions opts = {});

    /**
     * Run every job and return results in submission order.
     * Safe to call repeatedly; each call is an independent batch.
     */
    std::vector<core::RunResult> run(const std::vector<Job> &jobs);

    /** Telemetry of the most recent batch. */
    const Progress &progress() const { return progress_; }

    const EngineOptions &options() const { return opts_; }

    /**
     * Arbitrate jobs x threads against @p hw hardware threads: the
     * per-run thread count actually used. Keeps the request when the
     * product fits (or @p hw is 0 = unknown); otherwise downscales
     * toward max(1, hw / jobs) so concurrent simulations never
     * oversubscribe the host with spinning window workers. Pure —
     * callers (and tests) pass hw explicitly;
     * std::thread::hardware_concurrency() at the call site.
     */
    static int effectiveThreads(int jobs, int threads, unsigned hw);

  private:
    EngineOptions opts_;
    Progress progress_;
};

} // namespace alewife::exp

#endif // ALEWIFE_EXP_SWEEP_ENGINE_HH
