/**
 * @file
 * Structured emission of experiment results: RunResult and MechSeries
 * to JSON (schema-versioned, machine-readable) and CSV (spreadsheet-
 * ready), plus the inverse JSON decoding the result cache relies on.
 *
 * Schema: every emitted document carries {"schema": "alewife-results",
 * "version": kResultSchemaVersion}. Bump the version whenever a field
 * is renamed or its meaning changes; cache files with a different
 * version are ignored (treated as misses), never misread.
 */

#ifndef ALEWIFE_EXP_SERIALIZE_HH
#define ALEWIFE_EXP_SERIALIZE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiments.hh"
#include "exp/json.hh"

namespace alewife::exp {

/** Version of the emitted result schema. */
constexpr int kResultSchemaVersion = 1;

/** One RunResult as a JSON object (no schema header). */
Json resultToJson(const core::RunResult &r);

/**
 * Inverse of resultToJson. Numeric fields round-trip bit-exactly
 * (ticks and counters are integers; doubles are emitted with %.17g).
 * Fatal on missing fields.
 */
core::RunResult resultFromJson(const Json &j);

/** A batch of per-mechanism results (Figure 4/5 style), with schema. */
Json batchToJson(const std::string &app,
                 const std::vector<core::RunResult> &results);

/** A sweep (Figure 7-10 style): series x points, with schema. */
Json seriesToJson(const std::string &title, const std::string &xlabel,
                  const std::vector<core::MechSeries> &series);

/** CSV: one row per (mechanism) with breakdown + volume columns. */
void writeBatchCsv(std::ostream &os,
                   const std::vector<core::RunResult> &results);

/** CSV: one row per (mechanism, x) sweep point. */
void writeSeriesCsv(std::ostream &os, const std::string &xlabel,
                    const std::vector<core::MechSeries> &series);

} // namespace alewife::exp

#endif // ALEWIFE_EXP_SERIALIZE_HH
