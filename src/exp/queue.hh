/**
 * @file
 * Filesystem-backed work-queue protocol for the distributed sweep farm.
 *
 * One sweep campaign lives in a single *farm directory* that every
 * participating process (one coordinator, any number of workers, on one
 * or more hosts sharing the filesystem) can see. A job is a single JSON
 * file that moves between state subdirectories; every state transition
 * is one atomic rename, so the protocol needs no locks and survives
 * `kill -9` at any instruction:
 *
 *   pending/NNNNNN.json   materialized, claimable (subject to backoff)
 *   leased/NNNNNN.json    claimed by a worker holding leases/NNNNNN.json
 *   done/NNNNNN.json      completed; result lives in the shared cache
 *   poison/NNNNNN.json    failed > retry budget; spec + last error kept
 *
 * Claiming is rename-based: a worker renames pending/N -> leased/N and
 * wins iff the source still existed — the loser's rename fails with
 * ENOENT and it moves on. The winner then writes leases/N (worker id +
 * heartbeat timestamp, write-tmp-then-rename) and renews it on a
 * heartbeat interval. The coordinator reaps leased entries whose lease
 * is missing or older than the TTL: the job is re-queued with
 * exponential backoff and an incremented attempt count, or quarantined
 * to poison/ once the retry budget is exhausted. Workers append
 * one-line JSON events to events/<worker>.jsonl (their own file — no
 * shared appends), which is where the status JSON gets its claim
 * counts.
 *
 * Every recovery path is deterministically testable through the
 * FARM_FAULT hook (see FarmFault below), mirroring the check:: fault
 * style: drop-lease, stall-heartbeat, corrupt-result, kill-after-claim.
 */

#ifndef ALEWIFE_EXP_QUEUE_HH
#define ALEWIFE_EXP_QUEUE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "exp/json.hh"

namespace alewife::exp {

/** Schema tag/version of job, lease and status documents. */
inline constexpr const char *kFarmJobSchema = "alewife-farm-job";
inline constexpr const char *kFarmStatusSchema = "alewife-farm-status";
inline constexpr int kFarmSchemaVersion = 1;

/**
 * Deterministic fault injection into the queue layer, selected by the
 * FARM_FAULT environment variable in worker processes (or set directly
 * in FarmTuning by tests). Each fault fires once per process, on the
 * first claim (or first stored result), so a faulty worker exercises
 * exactly one recovery path and then behaves normally.
 */
enum class FarmFault
{
    None,
    /** Delete the lease file right after claiming: the coordinator
     *  sees a leased job with no lease and reclaims it immediately. */
    DropLease,
    /** Never renew the lease: the heartbeat goes stale and the job is
     *  reclaimed after the TTL even though the worker is still alive. */
    StallHeartbeat,
    /** Truncate the result-cache entry after storing it: collection
     *  hits the cache-corruption path (quarantine + recompute). */
    CorruptResult,
    /** _exit(9) immediately after claiming, lease held: simulates a
     *  worker killed mid-job without the courtesy of cleanup. */
    KillAfterClaim,
};

/** Parse FARM_FAULT ("drop-lease", ...); unknown values warn once. */
FarmFault farmFaultFromEnv();

/** Round-trip names for FarmFault (None <-> ""). */
const char *farmFaultName(FarmFault f);

/** Wall-clock milliseconds since the Unix epoch. */
std::int64_t farmNowMs();

/** Atomic small-file write: temp in the same dir, then rename. */
bool writeFileAtomic(const std::string &path, const std::string &body,
                     std::string *err = nullptr);

/** Parse a JSON file; nullopt when unreadable or malformed. */
std::optional<Json> readJsonFile(const std::string &path);

/**
 * Protocol tuning shared by coordinator and workers. The coordinator
 * persists these in the farm manifest so workers started with nothing
 * but --farm-dir agree on TTLs and budgets.
 */
struct FarmTuning
{
    /** Lease freshness bound; older heartbeats mean a dead worker. */
    std::int64_t leaseTtlMs = 10'000;
    /** Lease renewal period (workers). */
    std::int64_t heartbeatMs = 2'000;
    /** Idle poll period for claim retries and the coordinator loop. */
    std::int64_t pollMs = 200;
    /** First retry delay; doubles per attempt (exponential backoff). */
    std::int64_t backoffBaseMs = 500;
    /** Re-queues before a job is quarantined to the poison list. */
    int retryBudget = 3;
    /** Injected fault (tests; worker processes read FARM_FAULT). */
    FarmFault fault = FarmFault::None;
};

/**
 * Serializable workload identity: everything a worker process needs to
 * rebuild the AppFactory of a job (exp::makeWorkloadFactory). The app
 * name is a sweep_cli-style catalog name; graph names the synthetic
 * graph family for the graph-analytics apps and is ignored otherwise.
 */
struct FarmWorkload
{
    std::string app;
    std::string graph = "uniform";
    double scale = 1.0;

    bool empty() const { return app.empty(); }

    /** Cache workload identity, identical to sweep_cli's appKey. */
    std::string appKey() const;
};

/** One durable queue entry. */
struct FarmJob
{
    /** Submission index within the campaign; names the entry file. */
    int id = 0;
    /** Result-cache workload identity (FarmWorkload::appKey()). */
    std::string appKey;
    FarmWorkload workload;
    core::RunSpec spec;

    /** Times this job has been re-queued after a failure or reap. */
    int attempts = 0;
    /** Earliest claimable wall-clock time (backoff); 0 = immediately. */
    std::int64_t notBeforeMs = 0;
    /** Last failure or reap description (poison entries keep it). */
    std::string lastError;
};

/** MachineConfig <-> JSON, field by field (canonicalKey-faithful). */
Json machineConfigToJson(const MachineConfig &c);
MachineConfig machineConfigFromJson(const Json &j);

/** FarmJob <-> schema-tagged JSON document. */
Json farmJobToJson(const FarmJob &job);
/** Returns nullopt and sets @p err on malformed/mismatched documents. */
std::optional<FarmJob> farmJobFromJson(const Json &j, std::string *err);

/**
 * Stable per-job snapshot file name, shared by the local SweepEngine
 * crash-tolerance path and the farm (so a job re-claimed by another
 * worker warm-resumes the previous worker's partial run):
 * fnv1a64(id|appKey|mechanism|canonicalKey) + "-latest.ckpt.json".
 */
std::string jobSnapshotFile(int id, const std::string &appKey,
                            const core::RunSpec &spec);

/** Live state-directory census of a farm. */
struct QueueCounts
{
    int pending = 0;
    int leased = 0;
    int done = 0;
    int poisoned = 0;

    int total() const { return pending + leased + done + poisoned; }
    bool drained() const { return pending == 0 && leased == 0; }
};

/** Everything one reap pass did. */
struct ReapStats
{
    std::uint64_t leaseExpiries = 0; ///< stale-heartbeat leases found
    std::uint64_t reclaims = 0;      ///< jobs re-queued for retry
    std::uint64_t quarantines = 0;   ///< jobs moved to the poison list
};

class WorkQueue
{
  public:
    /**
     * Attach to (not create) the farm at @p dir. @p workerId names this
     * process in leases and event logs; it must be unique per process
     * (defaultWorkerId() is host+pid based).
     */
    WorkQueue(std::string dir, std::string workerId, FarmTuning tuning);

    /** "host:pid" — unique per live process on a shared filesystem. */
    static std::string defaultWorkerId();

    /** Create the state subdirectories. False on filesystem failure. */
    bool initDirs();

    /** True while every state subdirectory is reachable. A farm whose
     *  directory vanished (NFS blip, rm -rf) turns this false and
     *  workers degrade to draining their current job and exiting. */
    bool ready() const;

    /** Durably add @p job to pending/ (write-tmp-then-rename). */
    bool enqueue(const FarmJob &job, std::string *err = nullptr);

    /**
     * Claim one eligible pending job (notBeforeMs <= now, lowest id
     * first): atomic rename into leased/ plus a fresh lease file.
     * nullopt when nothing is claimable right now.
     */
    std::optional<FarmJob> claim(std::int64_t nowMs);

    /** Renew this worker's lease on @p jobId. */
    void heartbeat(int jobId, std::int64_t nowMs);

    /**
     * Mark @p job done. Verifies this worker still owns the lease; a
     * reclaimed job (lease stolen or gone) is left alone and false is
     * returned — the result is already in the shared cache, so a late
     * completion loses nothing but the race.
     */
    bool complete(const FarmJob &job, std::int64_t nowMs);

    /**
     * Worker-side failure: release the lease and either re-queue with
     * exponential backoff or quarantine when the budget is spent.
     */
    void fail(const FarmJob &job, const std::string &error,
              std::int64_t nowMs);

    /**
     * Coordinator duty: reap every leased entry whose lease is missing
     * or older than the TTL; re-queue (backoff, attempts+1) or
     * quarantine. Safe to run concurrently with workers.
     */
    ReapStats reapExpired(std::int64_t nowMs);

    /** Count entries per state directory. */
    QueueCounts counts() const;

    /** Sum of events of one kind over every worker event log. */
    std::uint64_t countEvents(const std::string &kind) const;

    /** Parse one state-dir entry by id; nullopt if absent/unreadable. */
    std::optional<FarmJob> readEntry(const std::string &state,
                                     int id) const;

    /** Ids present in one state directory, ascending. */
    std::vector<int> idsIn(const std::string &state) const;

    /** Completions this queue handle recorded (owner check passed). */
    std::uint64_t completions() const { return completions_; }
    /** Completions dropped because the lease was no longer ours. */
    std::uint64_t lateCompletions() const { return lateCompletions_; }

    const std::string &dir() const { return dir_; }
    const std::string &workerId() const { return workerId_; }
    const FarmTuning &tuning() const { return tuning_; }

    /** Append a one-line JSON event to this worker's event log. */
    void logEvent(const std::string &kind, int jobId,
                  std::int64_t nowMs,
                  const std::string &detail = "");

  private:
    std::string statePath(const std::string &state, int id) const;
    std::string leasePath(int id) const;
    bool writeLease(int id, std::int64_t nowMs);
    /** Re-queue or poison @p job (attempts already incremented). */
    void requeueOrPoison(FarmJob job, const std::string &error,
                         std::int64_t nowMs, ReapStats *stats);

    std::string dir_;
    std::string workerId_;
    FarmTuning tuning_;
    bool faultArmed_ = true; ///< one-shot FARM_FAULT not yet fired
    std::uint64_t completions_ = 0;
    std::uint64_t lateCompletions_ = 0;
};

} // namespace alewife::exp

#endif // ALEWIFE_EXP_QUEUE_HH
