/**
 * @file
 * Result cache for experiment runs.
 *
 * Simulations are fully deterministic, so a RunResult is a pure
 * function of (machine config, mechanism, cross-traffic config,
 * workload identity). The cache keys on exactly that tuple:
 *
 *   app-key "|" mechanism "|" MachineConfig::canonicalKey()
 *           "|" cross-traffic fields
 *
 * The app-key names the workload (application + generation parameters,
 * e.g. "em3d/scale=1"); callers that cannot identify their workload
 * pass "" and caching is skipped for that job. Entries live in memory
 * and, when a cache directory is configured, as one schema-versioned
 * JSON file per key named by the key's FNV-1a hash. Disk entries store
 * the full key string and are verified on load, so a hash collision
 * degrades to a miss, never a wrong result.
 *
 * Thread-safe: SweepEngine workers probe and fill it concurrently.
 */

#ifndef ALEWIFE_EXP_RESULT_CACHE_HH
#define ALEWIFE_EXP_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/runner.hh"

namespace alewife::exp {

/** 64-bit FNV-1a, the stable hash used for cache file names. */
std::uint64_t fnv1a64(const std::string &s);

class ResultCache
{
  public:
    /** @p dir empty = memory-only; otherwise created on first store. */
    explicit ResultCache(std::string dir = "");

    /** Full cache key for a run. @p appKey empty yields "" (uncached). */
    static std::string key(const core::RunSpec &spec,
                           const std::string &appKey);

    /** Probe memory, then disk. Counts a hit or a miss. */
    std::optional<core::RunResult> lookup(const std::string &key);

    /** Insert (and persist, when a directory is configured). */
    void store(const std::string &key, const core::RunResult &r);

    const std::string &dir() const { return dir_; }

    /** On-disk file a key persists to ("" when memory-only). */
    std::string entryPath(const std::string &key) const;

    /** Statistics since construction. */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /** Corrupt disk entries quarantined to *.bad (see loadFromDisk). */
    std::uint64_t quarantined() const;
    /** Entries resident in memory. */
    std::size_t size() const;

  private:
    std::string filePath(const std::string &key) const;
    std::optional<core::RunResult> loadFromDisk(const std::string &key);
    void persist(const std::string &key, const core::RunResult &r);
    /** Move a corrupt entry aside (-> *.bad) so it gets recomputed;
     *  warns once per path. */
    void quarantineBadEntry(const std::string &path,
                            const std::string &why);

    std::string dir_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, core::RunResult> mem_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t quarantined_ = 0;
    std::unordered_set<std::string> warnedBad_;
};

} // namespace alewife::exp

#endif // ALEWIFE_EXP_RESULT_CACHE_HH
