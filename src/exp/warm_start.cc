#include "exp/warm_start.hh"

#include "ckpt/driver.hh"
#include "ckpt/restore.hh"
#include "sim/logging.hh"

namespace alewife::exp {

std::vector<core::RunResult>
runWarmStartSweep(const core::AppFactory &app, const WarmStartSweep &sweep,
                  bool verify_fatal)
{
    // Reject bad variants before burning any simulation time.
    for (std::size_t i = 0; i < sweep.variants.size(); ++i) {
        std::string why;
        if (!ckpt::restoreSafeDelta(sweep.base.machine, sweep.variants[i],
                                    &why))
            ALEWIFE_FATAL("warm-start variant ", i, ": ", why);
    }

    std::vector<core::RunResult> out;
    out.reserve(sweep.variants.size() + 1);

    ckpt::ForkPointDriver fork(sweep.forkEvents);
    out.push_back(
        core::runApp(app, sweep.base, verify_fatal, nullptr, &fork));
    if (!fork.snapshot())
        ALEWIFE_FATAL("warm-start fork point (", sweep.forkEvents,
                      " events) lies past the end of the base run (",
                      out.back().simEvents, " events)");

    for (const MachineConfig &variant : sweep.variants) {
        // The machine is constructed (and replayed) under the base
        // config; WarmStartDriver swaps in the variant knobs after the
        // restore audit passes.
        ckpt::WarmStartDriver warm(*fork.snapshot(), variant);
        out.push_back(
            core::runApp(app, sweep.base, verify_fatal, nullptr, &warm));
    }
    return out;
}

} // namespace alewife::exp
