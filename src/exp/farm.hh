/**
 * @file
 * Fault-tolerant distributed sweep farm: coordinator and worker roles
 * over the filesystem work queue (exp/queue.hh), with the
 * content-addressed ResultCache as the shared result store.
 *
 * Topology: one FarmCoordinator materializes the job set as durable
 * queue entries, then loops reaping expired leases and publishing a
 * status JSON until the queue drains. Any number of FarmWorker
 * processes (or in-process worker threads spawned by the coordinator)
 * claim jobs, renew leases on a heartbeat, run the simulation with
 * per-job crash-tolerance snapshots (so a re-claimed job warm-resumes
 * another worker's partial run), and write results through the cache's
 * write-tmp-then-rename path. Collection reads every job's result back
 * from the cache by its deterministic key — which is why a farm run is
 * bit-identical, key for key, to a single-process SweepEngine run of
 * the same batch.
 *
 * Degradation ladder (robustness is the point):
 *   - worker killed / lease dropped: the coordinator reaps the lease
 *     and re-queues the job with exponential backoff;
 *   - job fails more than the retry budget: quarantined to poison/
 *     with the failing spec and last error; the sweep completes
 *     without it and reports it loudly (sweep_cli exits non-zero);
 *   - cache entry corrupted: quarantined to *.bad and recomputed by
 *     the coordinator at collection time;
 *   - queue directory vanishes (NFS blip, rm -rf): workers drain the
 *     job they hold — the result still lands in the cache — and exit
 *     cleanly instead of crashing;
 *   - a poisoned job whose result nevertheless appears in the cache
 *     (a straggler worker finished late) is rescued, not dropped.
 *
 * Every path above is deterministically reachable via FARM_FAULT
 * (exp/queue.hh) and pinned by the `farm`-labelled tests.
 */

#ifndef ALEWIFE_EXP_FARM_HH
#define ALEWIFE_EXP_FARM_HH

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/queue.hh"

namespace alewife::exp {

class ResultCache;

/**
 * Rebuild the AppFactory a FarmWorkload names, with exactly the same
 * parameterization sweep_cli uses (the two must agree for cache keys
 * to be shared). Returns an empty factory and sets @p err for unknown
 * app or graph-family names — a worker treats that as a job failure,
 * not a crash.
 */
core::AppFactory makeWorkloadFactory(const FarmWorkload &w,
                                     std::string *err = nullptr);

/** One job the farm gave up on, as reported to the caller. */
struct QuarantinedJob
{
    int id = 0;
    std::string appKey;
    std::string mechanism;
    int attempts = 0;
    std::string error;
};

/** Everything a farm campaign did, for callers and status JSON. */
struct FarmReport
{
    /** True when the batch actually went through the farm. */
    bool farmed = false;
    std::vector<QuarantinedJob> quarantined;
    std::uint64_t claims = 0;
    std::uint64_t completions = 0;
    std::uint64_t lateCompletions = 0;
    std::uint64_t leaseExpiries = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t quarantines = 0;
    /** Jobs recomputed at collection (corrupt/missing cache entry). */
    std::uint64_t recomputes = 0;
    /** Poisoned jobs whose result a straggler still delivered. */
    std::uint64_t rescued = 0;
    std::uint64_t orphanSnapshotsDeleted = 0;
};

/** Campaign configuration (coordinator side). */
struct FarmOptions
{
    /** Farm directory; shared by every participating process. */
    std::string dir;
    /** Shared result store; "" = <dir>/cache. */
    std::string cacheDir;
    /** Per-job crash-tolerance snapshots; "" = <dir>/ckpt. */
    std::string ckptDir;
    /** Snapshot period in simulated cycles; <= 0 disables saves
     *  (resume from an existing snapshot still works). */
    double ckptIntervalCycles = 2'000'000.0;
    FarmTuning tuning;
    /** In-process worker threads the coordinator contributes. */
    int workers = 1;
    /** Intra-run threads per simulation (RunSpec::threads). */
    int threads = 1;
    /** Called after every coordinator pass with the live census. */
    std::function<void(const QueueCounts &)> onStatus;
};

/** Manifest persisted as <dir>/farm.json by the coordinator, so
 *  workers started with nothing but --farm-dir agree on everything. */
struct FarmManifest
{
    std::string cacheDir;
    std::string ckptDir;
    double ckptIntervalCycles = 2'000'000.0;
    FarmTuning tuning;
};

bool writeFarmManifest(const std::string &dir, const FarmManifest &m,
                       std::string *err = nullptr);
std::optional<FarmManifest> readFarmManifest(const std::string &dir,
                                             std::string *err = nullptr);

/**
 * A worker process (or thread): claim-run-complete loop until the
 * queue drains, the job budget is reached, or the farm degrades.
 */
class FarmWorker
{
  public:
    struct Options
    {
        std::string farmDir;
        /** "" = WorkQueue::defaultWorkerId(). */
        std::string workerId;
        std::string cacheDir;
        std::string ckptDir;
        double ckptIntervalCycles = 2'000'000.0;
        FarmTuning tuning;
        /** Intra-run threads per simulation. */
        int threads = 1;
        /** Stop after this many completed jobs; < 0 = until drained. */
        int maxJobs = -1;
    };

    /** Build worker options from the farm manifest (external worker
     *  processes); FARM_FAULT is read from the environment here. */
    static std::optional<Options>
    optionsFromManifest(const std::string &farmDir,
                        std::string *err = nullptr);

    explicit FarmWorker(Options o);

    /** Run the claim loop; returns the number of jobs completed. */
    int runLoop();

    /** True if the worker exited because the queue dir vanished. */
    bool degraded() const { return degraded_; }

    /** Ask the loop to stop after the current job. */
    void requestStop() { stop_.store(true); }

  private:
    void runOne(WorkQueue &q, ResultCache &cache, const FarmJob &job);

    Options opts_;
    std::atomic<bool> stop_{false};
    bool degraded_ = false;
    bool faultArmed_ = true; ///< one-shot corrupt-result not yet fired
};

/**
 * The coordinator: materialize -> run-until-drained -> collect.
 * runCampaign() is the one-call wrapper SweepEngine uses.
 */
class FarmCoordinator
{
  public:
    explicit FarmCoordinator(FarmOptions opts);

    /**
     * Create the queue, persist the manifest, delete orphaned per-job
     * snapshots left by dead campaigns, and enqueue every job not
     * already present in some state directory (so a restarted
     * coordinator resumes a half-finished campaign instead of redoing
     * it). False on filesystem failure.
     */
    bool materialize(const std::vector<FarmJob> &jobs);

    /**
     * Reap/status loop (plus `workers` in-process worker threads)
     * until every job is done or poisoned.
     */
    void runUntilDrained();

    /**
     * Read every job's result back from the shared cache. Missing or
     * corrupt entries of done jobs are recomputed locally; poisoned
     * jobs yield an unverified placeholder and a QuarantinedJob
     * record (unless a straggler's result rescues them). Results are
     * in materialization order.
     */
    std::vector<core::RunResult> collect();

    /** Convenience: materialize + runUntilDrained + collect. */
    std::vector<core::RunResult>
    runCampaign(const std::vector<FarmJob> &jobs);

    const FarmReport &report() const { return report_; }
    const FarmOptions &options() const { return opts_; }

    /** The status document (also written to <dir>/status.json). */
    Json statusJson() const;

  private:
    void writeStatus();
    void seedCountersFromStatus();

    FarmOptions opts_;
    std::vector<FarmJob> jobs_;
    WorkQueue queue_;
    FarmReport report_;
};

/**
 * Status for `farm_cli status`: the coordinator-written status.json
 * refreshed with a live directory census. Null if @p dir is not a
 * farm.
 */
Json readFarmStatus(const std::string &dir);

} // namespace alewife::exp

#endif // ALEWIFE_EXP_FARM_HH
