#include "exp/queue.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "apps/graph/catalog.hh"
#include "exp/result_cache.hh"
#include "sim/logging.hh"

namespace alewife::exp {

namespace fs = std::filesystem;

FarmFault
farmFaultFromEnv()
{
    const char *v = std::getenv("FARM_FAULT");
    if (!v || !*v)
        return FarmFault::None;
    const std::string s(v);
    if (s == "drop-lease")
        return FarmFault::DropLease;
    if (s == "stall-heartbeat")
        return FarmFault::StallHeartbeat;
    if (s == "corrupt-result")
        return FarmFault::CorruptResult;
    if (s == "kill-after-claim")
        return FarmFault::KillAfterClaim;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
        ALEWIFE_WARN("FARM_FAULT='", s,
                     "' is not a known fault (valid: drop-lease, "
                     "stall-heartbeat, corrupt-result, "
                     "kill-after-claim); running fault-free");
    return FarmFault::None;
}

const char *
farmFaultName(FarmFault f)
{
    switch (f) {
    case FarmFault::None:
        return "";
    case FarmFault::DropLease:
        return "drop-lease";
    case FarmFault::StallHeartbeat:
        return "stall-heartbeat";
    case FarmFault::CorruptResult:
        return "corrupt-result";
    case FarmFault::KillAfterClaim:
        return "kill-after-claim";
    }
    return "";
}

std::int64_t
farmNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::string
FarmWorkload::appKey() const
{
    if (app.empty())
        return "";
    // Must match sweep_cli's historical appKey format exactly: cache
    // entries written by local sweeps and by farm workers are the same
    // entries.
    std::ostringstream key;
    key << app << "/scale=" << scale;
    if (apps::graph::findApp(app))
        key << "/graph=" << graph;
    return key.str();
}

// ---------------------------------------------------------------------
// MachineConfig <-> JSON
// ---------------------------------------------------------------------

Json
machineConfigToJson(const MachineConfig &c)
{
    Json j = Json::object();
    j.set("name", c.name);
    j.set("meshX", c.meshX);
    j.set("meshY", c.meshY);
    j.set("procMhz", c.procMhz);
    j.set("linkMBps", c.linkMBps);
    j.set("hopNs", c.hopNs);
    j.set("netFixedNs", c.netFixedNs);
    j.set("idealNet", c.idealNet);
    j.set("idealNetLatencyCycles", c.idealNetLatencyCycles);
    j.set("contextSwitchCycles", c.contextSwitchCycles);
    j.set("cacheBytes", static_cast<std::uint64_t>(c.cacheBytes));
    j.set("lineBytes", static_cast<std::uint64_t>(c.lineBytes));
    j.set("cacheHitCycles", c.cacheHitCycles);
    j.set("localMissCycles", c.localMissCycles);
    j.set("dirHwPointers", c.dirHwPointers);
    j.set("reqIssueCycles", c.reqIssueCycles);
    j.set("homeOccupancyCycles", c.homeOccupancyCycles);
    j.set("replyConsumeCycles", c.replyConsumeCycles);
    j.set("invProcessCycles", c.invProcessCycles);
    j.set("limitlessTrapCycles", c.limitlessTrapCycles);
    j.set("limitlessPerSharerCycles", c.limitlessPerSharerCycles);
    j.set("threeHopForwarding", c.threeHopForwarding);
    j.set("protoCtrlBytes", static_cast<std::uint64_t>(c.protoCtrlBytes));
    j.set("protoDataHdrBytes",
          static_cast<std::uint64_t>(c.protoDataHdrBytes));
    j.set("amSendCycles", c.amSendCycles);
    j.set("amSendPerWordCycles", c.amSendPerWordCycles);
    j.set("amInterruptCycles", c.amInterruptCycles);
    j.set("amDispatchCycles", c.amDispatchCycles);
    j.set("amRecvPerWordCycles", c.amRecvPerWordCycles);
    j.set("pollEmptyCycles", c.pollEmptyCycles);
    j.set("pollInsertionGap", c.pollInsertionGap);
    j.set("amHeaderBytes", static_cast<std::uint64_t>(c.amHeaderBytes));
    j.set("amMaxWords", c.amMaxWords);
    j.set("niInputQueueSlots", c.niInputQueueSlots);
    j.set("niRetryCycles", c.niRetryCycles);
    j.set("dmaSetupCycles", c.dmaSetupCycles);
    j.set("gatherScatterPerLineCycles", c.gatherScatterPerLineCycles);
    j.set("dmaAlignBytes", static_cast<std::uint64_t>(c.dmaAlignBytes));
    j.set("prefetchBufferEntries", c.prefetchBufferEntries);
    j.set("prefetchMaxOutstanding", c.prefetchMaxOutstanding);
    j.set("prefetchIssueCycles", c.prefetchIssueCycles);
    j.set("prefetchBufferHitCycles", c.prefetchBufferHitCycles);
    j.set("maxOutstandingWrites", c.maxOutstandingWrites);
    j.set("cyclesPerFlop", c.cyclesPerFlop);
    j.set("cyclesPerFlopSP", c.cyclesPerFlopSP);
    return j;
}

MachineConfig
machineConfigFromJson(const Json &j)
{
    MachineConfig c;
    // Lenient field-by-field decode: absent or mistyped fields keep
    // their defaults (the canonical key embedded in cache lookups
    // catches any drift this tolerance lets through).
    auto str = [&](const char *k, std::string &out) {
        if (const Json *v = j.find(k); v && v->isString())
            out = v->asString();
    };
    auto num = [&](const char *k, double &out) {
        if (const Json *v = j.find(k); v && v->isNumber())
            out = v->asDouble();
    };
    auto integer = [&](const char *k, int &out) {
        if (const Json *v = j.find(k); v && v->isNumber())
            out = static_cast<int>(v->asDouble());
    };
    auto u32 = [&](const char *k, std::uint32_t &out) {
        if (const Json *v = j.find(k); v && v->isNumber())
            out = static_cast<std::uint32_t>(v->asDouble());
    };
    auto flag = [&](const char *k, bool &out) {
        if (const Json *v = j.find(k);
            v && v->type() == Json::Type::Bool)
            out = v->asBool();
    };

    str("name", c.name);
    integer("meshX", c.meshX);
    integer("meshY", c.meshY);
    num("procMhz", c.procMhz);
    num("linkMBps", c.linkMBps);
    num("hopNs", c.hopNs);
    num("netFixedNs", c.netFixedNs);
    flag("idealNet", c.idealNet);
    num("idealNetLatencyCycles", c.idealNetLatencyCycles);
    num("contextSwitchCycles", c.contextSwitchCycles);
    u32("cacheBytes", c.cacheBytes);
    u32("lineBytes", c.lineBytes);
    num("cacheHitCycles", c.cacheHitCycles);
    num("localMissCycles", c.localMissCycles);
    integer("dirHwPointers", c.dirHwPointers);
    num("reqIssueCycles", c.reqIssueCycles);
    num("homeOccupancyCycles", c.homeOccupancyCycles);
    num("replyConsumeCycles", c.replyConsumeCycles);
    num("invProcessCycles", c.invProcessCycles);
    num("limitlessTrapCycles", c.limitlessTrapCycles);
    num("limitlessPerSharerCycles", c.limitlessPerSharerCycles);
    flag("threeHopForwarding", c.threeHopForwarding);
    u32("protoCtrlBytes", c.protoCtrlBytes);
    u32("protoDataHdrBytes", c.protoDataHdrBytes);
    num("amSendCycles", c.amSendCycles);
    num("amSendPerWordCycles", c.amSendPerWordCycles);
    num("amInterruptCycles", c.amInterruptCycles);
    num("amDispatchCycles", c.amDispatchCycles);
    num("amRecvPerWordCycles", c.amRecvPerWordCycles);
    num("pollEmptyCycles", c.pollEmptyCycles);
    integer("pollInsertionGap", c.pollInsertionGap);
    u32("amHeaderBytes", c.amHeaderBytes);
    integer("amMaxWords", c.amMaxWords);
    integer("niInputQueueSlots", c.niInputQueueSlots);
    num("niRetryCycles", c.niRetryCycles);
    num("dmaSetupCycles", c.dmaSetupCycles);
    num("gatherScatterPerLineCycles", c.gatherScatterPerLineCycles);
    u32("dmaAlignBytes", c.dmaAlignBytes);
    integer("prefetchBufferEntries", c.prefetchBufferEntries);
    integer("prefetchMaxOutstanding", c.prefetchMaxOutstanding);
    num("prefetchIssueCycles", c.prefetchIssueCycles);
    num("prefetchBufferHitCycles", c.prefetchBufferHitCycles);
    integer("maxOutstandingWrites", c.maxOutstandingWrites);
    num("cyclesPerFlop", c.cyclesPerFlop);
    num("cyclesPerFlopSP", c.cyclesPerFlopSP);
    return c;
}

// ---------------------------------------------------------------------
// FarmJob <-> JSON
// ---------------------------------------------------------------------

Json
farmJobToJson(const FarmJob &job)
{
    Json w = Json::object();
    w.set("app", job.workload.app);
    w.set("graph", job.workload.graph);
    w.set("scale", job.workload.scale);

    Json spec = Json::object();
    spec.set("mechanism", core::mechanismShortName(job.spec.mechanism));
    spec.set("crossBytesPerCycle", job.spec.crossTraffic.bytesPerCycle);
    spec.set("crossMessageBytes",
             static_cast<std::uint64_t>(
                 job.spec.crossTraffic.messageBytes));
    spec.set("machine", machineConfigToJson(job.spec.machine));

    Json j = Json::object();
    j.set("schema", kFarmJobSchema);
    j.set("version", kFarmSchemaVersion);
    j.set("id", job.id);
    j.set("appKey", job.appKey);
    j.set("workload", std::move(w));
    j.set("spec", std::move(spec));
    j.set("attempts", job.attempts);
    j.set("notBeforeMs", static_cast<double>(job.notBeforeMs));
    j.set("lastError", job.lastError);
    return j;
}

std::optional<FarmJob>
farmJobFromJson(const Json &j, std::string *err)
{
    auto fail = [&](const std::string &why) -> std::optional<FarmJob> {
        if (err)
            *err = why;
        return std::nullopt;
    };
    if (!j.isObject())
        return fail("farm job: not an object");
    const Json *schema = j.find("schema");
    const Json *version = j.find("version");
    if (!schema || !schema->isString()
        || schema->asString() != kFarmJobSchema)
        return fail("farm job: wrong schema tag");
    if (!version || !version->isNumber()
        || static_cast<int>(version->asDouble()) != kFarmSchemaVersion)
        return fail("farm job: unsupported version");
    for (const char *k : {"id", "appKey", "workload", "spec"})
        if (!j.find(k))
            return fail(std::string("farm job: missing '") + k + "'");

    // Typed accessors are fatal on mismatch; every field a corrupt or
    // hand-edited entry could break is checked first so bad entries
    // poison one job instead of killing the worker that read them.
    if (!j.at("id").isNumber() || !j.at("appKey").isString())
        return fail("farm job: malformed id/appKey");
    const Json &w = j.at("workload");
    if (!w.isObject())
        return fail("farm job: workload is not an object");
    for (const char *k : {"app", "graph"})
        if (!w.find(k) || !w.at(k).isString())
            return fail(std::string("farm job: workload '") + k
                        + "' missing or not a string");
    if (!w.find("scale") || !w.at("scale").isNumber())
        return fail("farm job: workload scale missing");
    const Json &spec = j.at("spec");
    if (!spec.isObject() || !spec.find("mechanism")
        || !spec.at("mechanism").isString()
        || !spec.find("crossBytesPerCycle")
        || !spec.at("crossBytesPerCycle").isNumber()
        || !spec.find("crossMessageBytes")
        || !spec.at("crossMessageBytes").isNumber()
        || !spec.find("machine") || !spec.at("machine").isObject())
        return fail("farm job: malformed spec");

    FarmJob job;
    job.id = static_cast<int>(j.at("id").asDouble());
    job.appKey = j.at("appKey").asString();
    job.workload.app = w.at("app").asString();
    job.workload.graph = w.at("graph").asString();
    job.workload.scale = w.at("scale").asDouble();
    const std::string mech = spec.at("mechanism").asString();
    // mechanismFromName() is fatal on bad names; a corrupt entry must
    // poison one job, never abort the worker holding it.
    bool knownMech = false;
    for (core::Mechanism cand : core::allMechanisms())
        knownMech |= mech == core::mechanismShortName(cand);
    if (!knownMech)
        return fail("farm job: unknown mechanism '" + mech + "'");
    job.spec.mechanism = core::mechanismFromName(mech);
    job.spec.crossTraffic.bytesPerCycle =
        spec.at("crossBytesPerCycle").asDouble();
    job.spec.crossTraffic.messageBytes = static_cast<std::uint32_t>(
        spec.at("crossMessageBytes").asDouble());
    job.spec.machine = machineConfigFromJson(spec.at("machine"));
    if (const Json *v = j.find("attempts"))
        job.attempts = static_cast<int>(v->asDouble());
    if (const Json *v = j.find("notBeforeMs"))
        job.notBeforeMs = static_cast<std::int64_t>(v->asDouble());
    if (const Json *v = j.find("lastError"))
        job.lastError = v->asString();
    return job;
}

std::string
jobSnapshotFile(int id, const std::string &appKey,
                const core::RunSpec &spec)
{
    const std::string jobKey =
        std::to_string(id) + "|" + appKey + "|"
        + core::mechanismShortName(spec.mechanism) + "|"
        + spec.machine.canonicalKey();
    char hash[20];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(jobKey)));
    return std::string(hash) + "-latest.ckpt.json";
}

bool
writeFileAtomic(const std::string &path, const std::string &body,
                std::string *err)
{
    static std::atomic<std::uint64_t> tmpSeq{0};
    const std::string tmp = path + ".tmp." + std::to_string(getpid())
                            + "." + std::to_string(tmpSeq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            if (err)
                *err = "cannot write " + tmp;
            return false;
        }
        out << body;
        out.flush();
        if (!out) {
            if (err)
                *err = "short write to " + tmp;
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        if (err)
            *err = "cannot rename into " + path;
        return false;
    }
    return true;
}

std::optional<Json>
readJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string err;
    Json j = Json::parse(buf.str(), &err);
    if (j.isNull())
        return std::nullopt;
    return j;
}

// ---------------------------------------------------------------------
// WorkQueue
// ---------------------------------------------------------------------

namespace {

std::string
entryName(int id)
{
    char name[32];
    std::snprintf(name, sizeof(name), "%06d.json", id);
    return name;
}

/** Filename -> job id; nullopt for temp files and strangers. */
std::optional<int>
entryId(const fs::path &p)
{
    const std::string name = p.filename().string();
    if (name.size() != 11 || name.compare(6, 5, ".json") != 0)
        return std::nullopt;
    int id = 0;
    for (int i = 0; i < 6; ++i) {
        if (name[i] < '0' || name[i] > '9')
            return std::nullopt;
        id = id * 10 + (name[i] - '0');
    }
    return id;
}

std::string
sanitizeForFilename(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-'
            && c != '_' && c != '.')
            c = '_';
    return s;
}

} // namespace

WorkQueue::WorkQueue(std::string dir, std::string workerId,
                     FarmTuning tuning)
    : dir_(std::move(dir)), workerId_(std::move(workerId)),
      tuning_(tuning)
{
}

std::string
WorkQueue::defaultWorkerId()
{
    char host[128] = "host";
    if (gethostname(host, sizeof(host) - 1) != 0)
        std::snprintf(host, sizeof(host), "host");
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" + std::to_string(getpid());
}

bool
WorkQueue::initDirs()
{
    std::error_code ec;
    bool ok = true;
    for (const char *sub :
         {"pending", "leased", "done", "poison", "leases", "events"}) {
        fs::create_directories(fs::path(dir_) / sub, ec);
        ok = ok && !ec;
    }
    return ok;
}

bool
WorkQueue::ready() const
{
    std::error_code ec;
    for (const char *sub : {"pending", "leased", "leases"}) {
        if (!fs::is_directory(fs::path(dir_) / sub, ec) || ec)
            return false;
    }
    return true;
}

std::string
WorkQueue::statePath(const std::string &state, int id) const
{
    return (fs::path(dir_) / state / entryName(id)).string();
}

std::string
WorkQueue::leasePath(int id) const
{
    return (fs::path(dir_) / "leases" / entryName(id)).string();
}

bool
WorkQueue::enqueue(const FarmJob &job, std::string *err)
{
    return writeFileAtomic(statePath("pending", job.id),
                           farmJobToJson(job).dump(1) + "\n", err);
}

std::vector<int>
WorkQueue::idsIn(const std::string &state) const
{
    std::vector<int> ids;
    std::error_code ec;
    fs::directory_iterator it(fs::path(dir_) / state, ec);
    if (ec)
        return ids;
    for (const auto &entry : it) {
        if (auto id = entryId(entry.path()))
            ids.push_back(*id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::optional<FarmJob>
WorkQueue::readEntry(const std::string &state, int id) const
{
    auto j = readJsonFile(statePath(state, id));
    if (!j)
        return std::nullopt;
    std::string err;
    return farmJobFromJson(*j, &err);
}

bool
WorkQueue::writeLease(int id, std::int64_t nowMs)
{
    Json j = Json::object();
    j.set("schema", "alewife-farm-lease");
    j.set("version", kFarmSchemaVersion);
    j.set("job", id);
    j.set("worker", workerId_);
    j.set("heartbeatMs", static_cast<double>(nowMs));
    return writeFileAtomic(leasePath(id), j.dump(-1) + "\n");
}

void
WorkQueue::logEvent(const std::string &kind, int jobId,
                    std::int64_t nowMs, const std::string &detail)
{
    std::error_code ec;
    const fs::path dir = fs::path(dir_) / "events";
    if (!fs::is_directory(dir, ec) || ec)
        return; // events are best-effort telemetry, never load-bearing
    Json j = Json::object();
    j.set("ev", kind);
    j.set("job", jobId);
    j.set("worker", workerId_);
    j.set("tMs", static_cast<double>(nowMs));
    if (!detail.empty())
        j.set("detail", detail);
    std::ofstream out(dir / (sanitizeForFilename(workerId_) + ".jsonl"),
                      std::ios::app);
    out << j.dump(-1) << "\n";
}

std::optional<FarmJob>
WorkQueue::claim(std::int64_t nowMs)
{
    for (int id : idsIn("pending")) {
        auto job = readEntry("pending", id);
        if (!job)
            continue; // claimed by someone else between list and read
        if (job->notBeforeMs > nowMs)
            continue; // backing off after a failure
        std::error_code ec;
        fs::rename(statePath("pending", id), statePath("leased", id),
                   ec);
        if (ec)
            continue; // lost the race; next candidate
        writeLease(id, nowMs);
        logEvent("claim", id, nowMs,
                 job->attempts > 0
                     ? "retry attempt " + std::to_string(job->attempts)
                     : "");
        if (faultArmed_ && tuning_.fault == FarmFault::KillAfterClaim) {
            // Die exactly as a kill -9 mid-job would: lease held, no
            // cleanup, entry stranded in leased/ until the reaper acts.
            std::_Exit(9);
        }
        if (faultArmed_ && tuning_.fault == FarmFault::DropLease) {
            faultArmed_ = false;
            fs::remove(leasePath(id), ec);
        }
        return job;
    }
    return std::nullopt;
}

void
WorkQueue::heartbeat(int jobId, std::int64_t nowMs)
{
    if (tuning_.fault == FarmFault::StallHeartbeat)
        return; // fault: lease goes stale while we keep working
    writeLease(jobId, nowMs);
}

bool
WorkQueue::complete(const FarmJob &job, std::int64_t nowMs)
{
    // Ownership check: a job reclaimed while we ran belongs to someone
    // else now. The deterministic result is already in the shared
    // cache, so dropping the completion is loss-free.
    bool owner = false;
    if (auto lease = readJsonFile(leasePath(job.id))) {
        const Json *w = lease->find("worker");
        owner = w && w->isString() && w->asString() == workerId_;
    }
    std::error_code ec;
    if (owner) {
        fs::rename(statePath("leased", job.id),
                   statePath("done", job.id), ec);
        owner = !ec; // reaped between the lease read and the rename
    }
    if (!owner) {
        ++lateCompletions_;
        logEvent("late-complete", job.id, nowMs);
        return false;
    }
    fs::remove(leasePath(job.id), ec);
    ++completions_;
    logEvent("complete", job.id, nowMs);
    return true;
}

void
WorkQueue::requeueOrPoison(FarmJob job, const std::string &error,
                           std::int64_t nowMs, ReapStats *stats)
{
    job.attempts += 1;
    job.lastError = error;
    std::error_code ec;
    if (job.attempts > tuning_.retryBudget) {
        writeFileAtomic(statePath("poison", job.id),
                        farmJobToJson(job).dump(1) + "\n");
        if (stats)
            ++stats->quarantines;
        logEvent("quarantine", job.id, nowMs, error);
    } else {
        // Exponential backoff: base * 2^(attempt-1).
        job.notBeforeMs =
            nowMs + (tuning_.backoffBaseMs << (job.attempts - 1));
        writeFileAtomic(statePath("pending", job.id),
                        farmJobToJson(job).dump(1) + "\n");
        if (stats)
            ++stats->reclaims;
        logEvent("requeue", job.id, nowMs, error);
    }
    // Destination written first, then the old state removed: a crash
    // here leaves a duplicate entry, which the at-least-once protocol
    // absorbs (reruns are deterministic and cache-idempotent).
    fs::remove(statePath("leased", job.id), ec);
    fs::remove(leasePath(job.id), ec);
}

void
WorkQueue::fail(const FarmJob &job, const std::string &error,
                std::int64_t nowMs)
{
    logEvent("fail", job.id, nowMs, error);
    requeueOrPoison(job, error, nowMs, nullptr);
}

ReapStats
WorkQueue::reapExpired(std::int64_t nowMs)
{
    ReapStats stats;
    // An entry file that exists but does not parse can never be
    // claimed or completed; left alone it would pin the campaign open
    // forever. Quarantine it raw so the sweep can finish without it.
    for (const char *state : {"pending", "leased"}) {
        for (int id : idsIn(state)) {
            if (readJsonFile(statePath(state, id))
                && readEntry(state, id))
                continue;
            std::error_code ec;
            fs::rename(statePath(state, id), statePath("poison", id),
                       ec);
            if (!ec) {
                ++stats.quarantines;
                fs::remove(leasePath(id), ec);
                logEvent("quarantine", id, nowMs, "unreadable entry");
                ALEWIFE_WARN("farm: quarantined unreadable queue entry "
                             "#", id, " in ", state, "/");
            }
        }
    }
    for (int id : idsIn("leased")) {
        std::string holder = "unknown";
        std::int64_t hbMs = -1;
        if (auto lease = readJsonFile(leasePath(id))) {
            if (const Json *w = lease->find("worker"))
                holder = w->asString();
            if (const Json *t = lease->find("heartbeatMs"))
                hbMs = static_cast<std::int64_t>(t->asDouble());
        }
        const bool expired =
            hbMs < 0 || nowMs - hbMs > tuning_.leaseTtlMs;
        if (!expired)
            continue;
        auto job = readEntry("leased", id);
        if (!job)
            continue; // completed or failed while we looked
        ++stats.leaseExpiries;
        requeueOrPoison(std::move(*job),
                        hbMs < 0
                            ? "lease lost (worker " + holder
                                  + " left no heartbeat)"
                            : "lease expired (worker " + holder
                                  + " last heartbeat "
                                  + std::to_string(nowMs - hbMs)
                                  + "ms ago)",
                        nowMs, &stats);
    }
    return stats;
}

QueueCounts
WorkQueue::counts() const
{
    QueueCounts c;
    c.pending = static_cast<int>(idsIn("pending").size());
    c.leased = static_cast<int>(idsIn("leased").size());
    c.done = static_cast<int>(idsIn("done").size());
    c.poisoned = static_cast<int>(idsIn("poison").size());
    return c;
}

std::uint64_t
WorkQueue::countEvents(const std::string &kind) const
{
    std::uint64_t claims = 0;
    std::error_code ec;
    fs::directory_iterator it(fs::path(dir_) / "events", ec);
    if (ec)
        return 0;
    for (const auto &entry : it) {
        if (entry.path().extension() != ".jsonl")
            continue;
        std::ifstream in(entry.path());
        std::string line;
        while (std::getline(in, line)) {
            std::string err;
            const Json j = Json::parse(line, &err);
            if (!j.isObject())
                continue;
            const Json *ev = j.find("ev");
            if (ev && ev->isString() && ev->asString() == kind)
                ++claims;
        }
    }
    return claims;
}

} // namespace alewife::exp
