/**
 * @file
 * Warm-start sweeps: fork one checkpoint into parameter variants.
 *
 * A warm-start sweep runs the base configuration once, captures a
 * snapshot at a chosen executed-event count (the fork point), then
 * launches each variant from that snapshot under a restore-safe config
 * delta (ckpt::restoreSafeDelta — network latency/bandwidth knobs).
 * Every variant replays to the fork point under the base
 * configuration, passes the bit-level restore audit, and only then
 * switches knobs, so the common prefix of all variants is provably the
 * same run.
 *
 * When the fork point precedes the first network activity, a variant's
 * result is bit-identical to a cold-start run under the variant config
 * (the tests in tests/ckpt/ pin this); a later fork point instead
 * answers "how does the rest of this run respond to new network
 * conditions" — the paper's sensitivity question asked mid-flight.
 */

#ifndef ALEWIFE_EXP_WARM_START_HH
#define ALEWIFE_EXP_WARM_START_HH

#include <cstdint>
#include <vector>

#include "core/runner.hh"

namespace alewife::exp {

/** A warm-start sweep: one base run forked into config variants. */
struct WarmStartSweep
{
    /** The base run; its machine config is the replay configuration. */
    core::RunSpec base;
    /**
     * Variant configs, each differing from base.machine only in
     * restore-safe knobs (rejected otherwise).
     */
    std::vector<MachineConfig> variants;
    /** Fork point as an executed-event count. */
    std::uint64_t forkEvents = 0;
};

/**
 * Run the sweep. Result [0] is the uninterrupted base run; [1..] are
 * the variants in order. Fatal if the base run completes before the
 * fork point or a variant delta is not restore-safe.
 */
std::vector<core::RunResult>
runWarmStartSweep(const core::AppFactory &app, const WarmStartSweep &sweep,
                  bool verify_fatal = true);

} // namespace alewife::exp

#endif // ALEWIFE_EXP_WARM_START_HH
