#include "exp/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace alewife::exp {

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        ALEWIFE_FATAL("json: not a bool");
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        ALEWIFE_FATAL("json: not a number");
    return num_;
}

std::uint64_t
Json::asU64() const
{
    const double d = asDouble();
    if (d < 0.0)
        ALEWIFE_FATAL("json: negative value for unsigned field");
    return static_cast<std::uint64_t>(d);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        ALEWIFE_FATAL("json: not a string");
    return str_;
}

void
Json::push(Json v)
{
    if (type_ != Type::Array)
        ALEWIFE_FATAL("json: push on non-array");
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    ALEWIFE_FATAL("json: size() on scalar");
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        ALEWIFE_FATAL("json: bad array index ", i);
    return arr_[i];
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ != Type::Object)
        ALEWIFE_FATAL("json: set on non-object");
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

bool
Json::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *p = find(key);
    if (!p)
        ALEWIFE_FATAL("json: missing key \"", key, "\"");
    return *p;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const std::vector<std::pair<std::string, Json>> &
Json::items() const
{
    if (type_ != Type::Object)
        ALEWIFE_FATAL("json: items() on non-object");
    return obj_;
}

namespace {

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
numberInto(std::string &out, double d)
{
    if (!std::isfinite(d))
        ALEWIFE_FATAL("json: non-finite number");
    // Integers print exactly; everything else round-trips via %.17g.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (!pretty)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        numberInto(out, num_);
        break;
      case Type::String:
        escapeInto(out, str_);
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeInto(out, obj_[i].first);
            out += pretty ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser; positions reported on failure. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool failed() const { return !error.empty(); }

    void
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return Json();
        }
        const char c = text[pos];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return Json();
        }
        return number();
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos) {
            if (pos >= text.size() || text[pos] != *p) {
                fail(std::string("bad literal (expected ") + word + ")");
                return;
            }
        }
    }

    Json
    boolean()
    {
        if (text[pos] == 't') {
            literal("true");
            return Json(true);
        }
        literal("false");
        return Json(false);
    }

    Json
    number()
    {
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start) {
            fail("bad number");
            return Json();
        }
        pos += static_cast<std::size_t>(end - start);
        return Json(d);
    }

    std::string
    string()
    {
        std::string out;
        ++pos; // opening quote
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                const unsigned code = static_cast<unsigned>(
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr,
                                 16));
                pos += 4;
                // ASCII only; anything beyond comes out as '?'. The
                // emitter never writes non-ASCII escapes.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                fail("bad escape");
                return out;
            }
        }
        if (pos >= text.size()) {
            fail("unterminated string");
            return out;
        }
        ++pos; // closing quote
        return out;
    }

    Json
    array()
    {
        Json j = Json::array();
        ++pos; // '['
        skipWs();
        if (consume(']'))
            return j;
        for (;;) {
            j.push(value());
            if (failed())
                return j;
            if (consume(','))
                continue;
            if (consume(']'))
                return j;
            fail("expected ',' or ']'");
            return j;
        }
    }

    Json
    object()
    {
        Json j = Json::object();
        ++pos; // '{'
        skipWs();
        if (consume('}'))
            return j;
        for (;;) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"') {
                fail("expected object key");
                return j;
            }
            std::string key = string();
            if (failed())
                return j;
            if (!consume(':')) {
                fail("expected ':'");
                return j;
            }
            j.set(key, value());
            if (failed())
                return j;
            if (consume(','))
                continue;
            if (consume('}'))
                return j;
            fail("expected ',' or '}'");
            return j;
        }
    }
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p{text};
    Json j = p.value();
    if (!p.failed()) {
        p.skipWs();
        if (p.pos != text.size())
            p.fail("trailing garbage");
    }
    if (p.failed()) {
        if (error)
            *error = p.error;
        return Json();
    }
    if (error)
        error->clear();
    return j;
}

} // namespace alewife::exp
