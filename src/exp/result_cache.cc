#include "exp/result_cache.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/snapshot.hh"
#include "exp/serialize.hh"
#include "sim/logging.hh"

namespace alewife::exp {

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::key(const core::RunSpec &spec, const std::string &appKey)
{
    if (appKey.empty())
        return "";
    // Perturbed runs explore alternate-but-legal schedules; their
    // results are seed-dependent and must never be cached. Delay
    // injections change results by design and are likewise never
    // cached (the knob is not part of the key).
    if (spec.perturb.enabled() || spec.delay.enabled())
        return "";
    char cross[96];
    std::snprintf(cross, sizeof(cross),
                  "crossBpc=%.17g;crossMsgBytes=%u;",
                  spec.crossTraffic.bytesPerCycle,
                  spec.crossTraffic.messageBytes);
    // The key carries both serialization schema versions: results
    // cached under an older result layout *or* an older checkpoint
    // format (crash-tolerant sweeps may have produced them via
    // resume) are invalidated together by either version bump.
    const std::string schemas =
        "rs" + std::to_string(kResultSchemaVersion) + ".cs" +
        std::to_string(ckpt::kCkptSchemaVersion);
    return schemas + "|" + appKey + "|"
           + core::mechanismShortName(spec.mechanism) + "|"
           + spec.machine.canonicalKey() + "|" + cross;
}

std::optional<core::RunResult>
ResultCache::lookup(const std::string &key)
{
    if (key.empty())
        return std::nullopt;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = mem_.find(key);
        if (it != mem_.end()) {
            ++hits_;
            return it->second;
        }
    }
    if (!dir_.empty()) {
        if (auto r = loadFromDisk(key)) {
            std::lock_guard<std::mutex> lock(mu_);
            mem_.emplace(key, *r);
            ++hits_;
            return r;
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return std::nullopt;
}

void
ResultCache::store(const std::string &key, const core::RunResult &r)
{
    if (key.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        mem_.insert_or_assign(key, r);
    }
    if (!dir_.empty())
        persist(key, r);
}

std::string
ResultCache::filePath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return dir_ + "/" + name;
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    if (dir_.empty() || key.empty())
        return "";
    return filePath(key);
}

void
ResultCache::quarantineBadEntry(const std::string &path,
                                const std::string &why)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++quarantined_;
        if (!warnedBad_.insert(path).second)
            return; // already reported this path
    }
    ALEWIFE_WARN("result cache: corrupt entry ", path, " (", why,
                 "); quarantined to ", path, ".bad — the result will "
                 "be recomputed");
    std::error_code ec;
    std::filesystem::rename(path, path + ".bad", ec);
    if (ec)
        std::filesystem::remove(path, ec);
}

std::optional<core::RunResult>
ResultCache::loadFromDisk(const std::string &key)
{
    const std::string path = filePath(key);
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();

    // A corrupted or truncated entry (torn disk, faulty worker) is
    // quarantined — renamed to *.bad and reported once — so the sweep
    // recomputes the result instead of failing on it.
    std::string err;
    const Json j = Json::parse(buf.str(), &err);
    if (!err.empty() || !j.isObject()) {
        quarantineBadEntry(path,
                           err.empty() ? "not a JSON object" : err);
        return std::nullopt;
    }
    const Json *schema = j.find("schema");
    const Json *version = j.find("version");
    const Json *stored = j.find("key");
    if (!schema || !schema->isString() || !version
        || !version->isNumber() || !stored || !stored->isString()
        || !j.find("result")) {
        quarantineBadEntry(path, "cache-entry fields missing");
        return std::nullopt;
    }
    // Stale schema or (astronomically unlikely) hash collision: a
    // well-formed entry that simply isn't ours — a miss, not corruption.
    if (schema->asString() != "alewife-results"
        || static_cast<int>(version->asDouble()) != kResultSchemaVersion
        || stored->asString() != key) {
        return std::nullopt;
    }
    return resultFromJson(j.at("result"));
}

void
ResultCache::persist(const std::string &key, const core::RunResult &r)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        ALEWIFE_WARN("result cache: cannot create ", dir_, ": ",
                     ec.message());
        return;
    }
    Json j = Json::object();
    j.set("schema", "alewife-results");
    j.set("version", kResultSchemaVersion);
    j.set("kind", "cache-entry");
    j.set("key", key);
    j.set("result", resultToJson(r));

    // Write-then-rename so concurrent writers of the same key (or a
    // killed process) never leave a torn file behind.
    static std::atomic<std::uint64_t> tmpSeq{0};
    const std::string path = filePath(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(tmpSeq.fetch_add(1));
    {
        std::ofstream out(tmp);
        if (!out) {
            ALEWIFE_WARN("result cache: cannot write ", tmp);
            return;
        }
        out << j.dump(2) << '\n';
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        ALEWIFE_WARN("result cache: rename failed: ", ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::uint64_t
ResultCache::quarantined() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return quarantined_;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return mem_.size();
}

} // namespace alewife::exp
