#include "exp/sweep_engine.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "ckpt/driver.hh"
#include "exp/farm.hh"
#include "exp/json.hh"
#include "exp/result_cache.hh"
#include "sim/logging.hh"

namespace alewife::exp {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

SweepEngine::SweepEngine(EngineOptions opts) : opts_(std::move(opts))
{
    if (opts_.jobs < 1)
        opts_.jobs = 1;
    if (opts_.threads < 1)
        opts_.threads = 1;
}

int
SweepEngine::effectiveThreads(int jobs, int threads, unsigned hw)
{
    jobs = std::max(1, jobs);
    threads = std::max(1, threads);
    if (threads == 1 || hw == 0)
        return threads;
    if (static_cast<unsigned>(jobs) * static_cast<unsigned>(threads)
        <= hw)
        return threads;
    return std::max(1, static_cast<int>(hw) / jobs);
}

std::vector<core::RunResult>
SweepEngine::run(const std::vector<Job> &jobs)
{
    const auto start = Clock::now();
    const int n = static_cast<int>(jobs.size());

    progress_ = Progress{};
    progress_.queued = n;

    std::vector<core::RunResult> results(jobs.size());

    // Results already in the cache never reach a worker; resolving
    // them up front keeps the pool busy only with real simulations.
    std::vector<int> todo;
    todo.reserve(jobs.size());
    for (int i = 0; i < n; ++i) {
        // Audited or observed batches always simulate: a cache hit
        // would skip the invariant checks / skip writing the
        // requested obs files. Results are still stored below.
        const std::string key =
            (opts_.cache && !opts_.audit && !opts_.obs.any())
                ? ResultCache::key(jobs[i].spec, jobs[i].appKey)
                : std::string();
        if (!key.empty()) {
            if (auto hit = opts_.cache->lookup(key)) {
                results[i] = std::move(*hit);
                ++progress_.cacheHits;
                ++progress_.done;
                continue;
            }
        }
        todo.push_back(i);
    }

    // Distributed path: hand the uncached remainder to a farm
    // campaign when one is configured and the batch is serializable.
    if (!opts_.farmDir.empty() && !todo.empty()) {
        // Farm workers run obs-detached: they execute in separate
        // processes and return only RunResults, so the per-run trace/
        // metrics/flight files the caller asked for would silently
        // never be written. Reject the combination outright rather
        // than degrade it (docs/API.md, "Farm runs are obs-detached").
        if (opts_.obs.any())
            ALEWIFE_FATAL(
                "sweep: a farm campaign (farm-dir) cannot be combined "
                "with observability sinks (trace-out / metrics-out / "
                "obs-interval / flight-out): farm workers run "
                "obs-detached and would not write the per-run files. "
                "Drop the obs flags, or drop farm-dir to run "
                "in-process.");
        std::string why;
        if (opts_.audit)
            why = "audited batches must simulate in-process";
        else if (opts_.workload.empty())
            why = "no serializable workload identity "
                  "(EngineOptions::workload)";
        else {
            for (int i : todo) {
                if (ResultCache::key(jobs[i].spec, jobs[i].appKey)
                        .empty()) {
                    why = "job " + std::to_string(i)
                          + " is uncacheable (empty app key or "
                            "perturbed spec) so workers cannot "
                            "return its result";
                    break;
                }
            }
        }
        if (!why.empty()) {
            ALEWIFE_WARN("sweep: farm-dir ignored: ", why,
                         "; running in-process");
        } else {
            FarmOptions fo;
            fo.dir = opts_.farmDir;
            if (opts_.cache && !opts_.cache->dir().empty())
                fo.cacheDir = opts_.cache->dir();
            fo.ckptDir = opts_.ckptDir; // "" -> farm default
            fo.ckptIntervalCycles = opts_.ckptIntervalCycles;
            fo.tuning = opts_.farm;
            fo.workers = opts_.jobs;
            fo.threads = opts_.threads;
            FarmCoordinator coord(std::move(fo));

            std::vector<FarmJob> farmJobs;
            farmJobs.reserve(todo.size());
            for (int i : todo) {
                FarmJob fj;
                fj.id = i; // submission index: stable across restarts
                fj.appKey = jobs[i].appKey;
                fj.workload = opts_.workload;
                fj.spec = jobs[i].spec;
                farmJobs.push_back(std::move(fj));
            }
            const std::vector<core::RunResult> farmed =
                coord.runCampaign(farmJobs);
            for (std::size_t k = 0; k < todo.size(); ++k) {
                results[todo[k]] = farmed[k];
                ++progress_.done;
            }
            // Refill the in-memory cache so later batches of this
            // process hit without re-reading the farm's disk store.
            if (opts_.cache) {
                for (std::size_t k = 0; k < todo.size(); ++k) {
                    if (farmed[k].verified)
                        opts_.cache->store(
                            ResultCache::key(jobs[todo[k]].spec,
                                             jobs[todo[k]].appKey),
                            farmed[k]);
                }
            }
            if (opts_.farmReport)
                *opts_.farmReport = coord.report();
            for (const QuarantinedJob &q :
                 coord.report().quarantined) {
                ALEWIFE_WARN("sweep: farm quarantined job #", q.id,
                             " (", q.appKey, ", ", q.mechanism,
                             ") after ", q.attempts,
                             " attempts: ", q.error);
            }
            progress_.elapsedSec = secondsSince(start);
            if (opts_.onProgress)
                opts_.onProgress(progress_);
            return results;
        }
    }

    // Per-run thread count, arbitrated against the host: only as many
    // jobs as remain can run at once, so arbitrate with that number.
    const int concurrent =
        std::max(1, std::min<int>(opts_.jobs,
                                  static_cast<int>(todo.size())));
    const int runThreads = effectiveThreads(
        concurrent, opts_.threads, std::thread::hardware_concurrency());
    if (runThreads < opts_.threads) {
        std::fprintf(stderr,
                     "sweep: %d jobs x %d intra-run threads "
                     "oversubscribes this host (%u hardware threads); "
                     "running each simulation with %d worker%s instead "
                     "(results are identical at any thread count)\n",
                     concurrent, opts_.threads,
                     std::thread::hardware_concurrency(), runThreads,
                     runThreads == 1 ? "" : "s");
    }

    std::mutex mu; // guards progress_ and the hook
    auto finishJob = [&](std::uint64_t simEvents) {
        std::lock_guard<std::mutex> lock(mu);
        --progress_.running;
        ++progress_.done;
        progress_.simEvents += simEvents;
        progress_.elapsedSec = secondsSince(start);
        if (opts_.onProgress)
            opts_.onProgress(progress_);
    };

    auto runOne = [&](int i) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++progress_.running;
        }
        const Job &job = jobs[i];
        core::RunSpec spec = job.spec;
        spec.audit = spec.audit || opts_.audit;
        if (runThreads > 1)
            spec.threads = std::max(spec.threads, runThreads);
        if (opts_.obs.any()) {
            // Per-run output paths: one sink per simulation thread,
            // never a shared file between parallel workers.
            const std::string tag = "run" + std::to_string(i);
            spec.obs = opts_.obs;
            if (!spec.obs.traceOut.empty())
                spec.obs.traceOut =
                    obs::withPathTag(spec.obs.traceOut, tag);
            if (!spec.obs.metricsOut.empty())
                spec.obs.metricsOut =
                    obs::withPathTag(spec.obs.metricsOut, tag);
            if (!spec.obs.flightOut.empty())
                spec.obs.flightOut =
                    obs::withPathTag(spec.obs.flightOut, tag);
        }
        if (!opts_.ckptDir.empty()) {
            // Stable per-job snapshot path (jobSnapshotFile: batch
            // position + workload + spec identity), shared with farm
            // workers, so a restarted process — local or remote —
            // finds the same file for the same job and never another
            // job's.
            ckpt::CheckpointDriver driver(
                {opts_.ckptDir + "/"
                     + jobSnapshotFile(i, job.appKey, job.spec),
                 opts_.ckptIntervalCycles, /*resume=*/true,
                 /*deleteOnSuccess=*/true});
            results[i] = core::runApp(job.app, spec, opts_.verifyFatal,
                                      nullptr, &driver);
        } else {
            results[i] = core::runApp(job.app, spec, opts_.verifyFatal);
        }
        if (opts_.cache) {
            const std::string key =
                ResultCache::key(job.spec, job.appKey);
            if (!key.empty())
                opts_.cache->store(key, results[i]);
        }
        finishJob(results[i].simEvents);
    };

    const int workers =
        std::min<int>(opts_.jobs, static_cast<int>(todo.size()));
    if (workers <= 1) {
        for (int i : todo)
            runOne(i);
    } else {
        // Index dispatch via one shared atomic: workers pull the next
        // unstarted job, results land in their submission slot, so
        // completion order never leaks into the output.
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const std::size_t k = next.fetch_add(1);
                if (k >= todo.size())
                    return;
                runOne(todo[k]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    progress_.elapsedSec = secondsSince(start);
    if (opts_.onProgress && todo.empty())
        opts_.onProgress(progress_);

    // Fold the per-run metrics documents into one sweep-level file at
    // the configured path, in submission order.
    if (opts_.obs.any() && !opts_.obs.metricsOut.empty()) {
        Json merged = Json::object();
        merged.set("schema", "alewife-metrics-sweep");
        merged.set("version", 1);
        Json runs = Json::array();
        for (int i = 0; i < n; ++i) {
            const std::string path = obs::withPathTag(
                opts_.obs.metricsOut, "run" + std::to_string(i));
            std::ifstream in(path);
            if (!in)
                continue;
            std::ostringstream ss;
            ss << in.rdbuf();
            std::string err;
            Json doc = Json::parse(ss.str(), &err);
            if (doc.isNull())
                continue;
            Json r = Json::object();
            r.set("job", i);
            r.set("app", results[i].app);
            r.set("mechanism",
                  core::mechanismShortName(results[i].mechanism));
            r.set("file", path);
            r.set("metrics", std::move(doc));
            runs.push(std::move(r));
        }
        merged.set("runs", std::move(runs));
        std::ofstream os(opts_.obs.metricsOut);
        if (!os)
            ALEWIFE_FATAL("metrics-out: cannot open ",
                          opts_.obs.metricsOut);
        os << merged.dump(1) << "\n";
    }
    return results;
}

} // namespace alewife::exp
