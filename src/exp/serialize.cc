#include "exp/serialize.hh"

#include <ostream>

#include "sim/logging.hh"

namespace alewife::exp {

namespace {

Json
schemaHeader()
{
    Json j = Json::object();
    j.set("schema", "alewife-results");
    j.set("version", kResultSchemaVersion);
    return j;
}

void
checkSchema(const Json &j)
{
    if (j.at("schema").asString() != "alewife-results")
        ALEWIFE_FATAL("json: not an alewife-results document");
    const int v = static_cast<int>(j.at("version").asDouble());
    if (v != kResultSchemaVersion)
        ALEWIFE_FATAL("json: schema version ", v, ", expected ",
                      kResultSchemaVersion);
}

} // namespace

Json
resultToJson(const core::RunResult &r)
{
    Json j = Json::object();
    j.set("app", r.app);
    j.set("mechanism", core::mechanismShortName(r.mechanism));
    j.set("runtimeCycles", r.runtimeCycles);

    // Breakdown/volume in raw ticks/bytes (integers): exact round trip.
    Json bd = Json::object();
    for (std::size_t i = 0; i < r.breakdown.ticks.size(); ++i)
        bd.set(timeCatName(static_cast<TimeCat>(i)),
               r.breakdown.ticks[i]);
    j.set("breakdownTicks", std::move(bd));

    Json vol = Json::object();
    for (std::size_t i = 0; i < r.volume.bytes.size(); ++i)
        vol.set(volCatName(static_cast<VolCat>(i)), r.volume.bytes[i]);
    j.set("volumeBytes", std::move(vol));

    // Counters serialize by name (shared machineCounterFields table)
    // so the schema survives member reordering; absent fields decode
    // to the natural zero, renames bump the schema.
    Json ctr = Json::object();
    for (const auto &f : machineCounterFields())
        ctr.set(f.name, r.counters.*(f.member));
    j.set("counters", std::move(ctr));

    j.set("checksum", r.checksum);
    j.set("reference", r.reference);
    j.set("verified", r.verified);
    j.set("simEvents", r.simEvents);
    return j;
}

core::RunResult
resultFromJson(const Json &j)
{
    core::RunResult r;
    r.app = j.at("app").asString();
    r.mechanism = core::mechanismFromName(j.at("mechanism").asString());
    r.runtimeCycles = j.at("runtimeCycles").asDouble();

    const Json &bd = j.at("breakdownTicks");
    for (std::size_t i = 0; i < r.breakdown.ticks.size(); ++i)
        r.breakdown.ticks[i] =
            bd.at(timeCatName(static_cast<TimeCat>(i))).asU64();

    const Json &vol = j.at("volumeBytes");
    for (std::size_t i = 0; i < r.volume.bytes.size(); ++i)
        r.volume.bytes[i] =
            vol.at(volCatName(static_cast<VolCat>(i))).asU64();

    const Json &ctr = j.at("counters");
    for (const auto &f : machineCounterFields()) {
        if (const Json *v = ctr.find(f.name))
            r.counters.*(f.member) = v->asU64();
    }

    r.checksum = j.at("checksum").asDouble();
    r.reference = j.at("reference").asDouble();
    r.verified = j.at("verified").asBool();
    r.simEvents = j.at("simEvents").asU64();
    return r;
}

Json
batchToJson(const std::string &app,
            const std::vector<core::RunResult> &results)
{
    Json j = schemaHeader();
    j.set("kind", "batch");
    j.set("app", app);
    Json arr = Json::array();
    for (const auto &r : results)
        arr.push(resultToJson(r));
    j.set("results", std::move(arr));
    return j;
}

Json
seriesToJson(const std::string &title, const std::string &xlabel,
             const std::vector<core::MechSeries> &series)
{
    Json j = schemaHeader();
    j.set("kind", "sweep");
    j.set("title", title);
    j.set("xlabel", xlabel);
    Json arr = Json::array();
    for (const auto &s : series) {
        Json sj = Json::object();
        sj.set("mechanism", core::mechanismShortName(s.mech));
        Json pts = Json::array();
        for (const auto &p : s.points) {
            Json pj = Json::object();
            pj.set("x", p.x);
            pj.set("result", resultToJson(p.result));
            pts.push(std::move(pj));
        }
        sj.set("points", std::move(pts));
        arr.push(std::move(sj));
    }
    j.set("series", std::move(arr));
    return j;
}

namespace {

void
csvResultColumns(std::ostream &os, const core::RunResult &r)
{
    os << core::mechanismShortName(r.mechanism) << ','
       << r.runtimeCycles;
    for (std::size_t i = 0; i < r.breakdown.ticks.size(); ++i)
        os << ','
           << r.breakdown.cycles(static_cast<TimeCat>(i));
    for (std::size_t i = 0; i < r.volume.bytes.size(); ++i)
        os << ',' << r.volume.bytes[i];
    os << ',' << r.simEvents << ',' << (r.verified ? 1 : 0);
}

void
csvResultHeader(std::ostream &os)
{
    os << "mechanism,runtimeCycles";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TimeCat::NumCats); ++i)
        os << ",cycles:" << timeCatName(static_cast<TimeCat>(i));
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(VolCat::NumCats); ++i)
        os << ",bytes:" << volCatName(static_cast<VolCat>(i));
    os << ",simEvents,verified";
}

} // namespace

void
writeBatchCsv(std::ostream &os,
              const std::vector<core::RunResult> &results)
{
    os << "app,";
    csvResultHeader(os);
    os << '\n';
    for (const auto &r : results) {
        os << r.app << ',';
        csvResultColumns(os, r);
        os << '\n';
    }
}

void
writeSeriesCsv(std::ostream &os, const std::string &xlabel,
               const std::vector<core::MechSeries> &series)
{
    os << "app," << (xlabel.empty() ? "x" : xlabel) << ',';
    csvResultHeader(os);
    os << '\n';
    for (const auto &s : series) {
        for (const auto &p : s.points) {
            os << p.result.app << ',' << p.x << ',';
            csvResultColumns(os, p.result);
            os << '\n';
        }
    }
}

} // namespace alewife::exp
