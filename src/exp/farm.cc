#include "exp/farm.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <unordered_set>

#include "apps/em3d.hh"
#include "apps/graph/catalog.hh"
#include "apps/iccg.hh"
#include "apps/moldyn.hh"
#include "apps/stream.hh"
#include "apps/unstruc.hh"
#include "ckpt/driver.hh"
#include "exp/result_cache.hh"
#include "sim/logging.hh"

namespace alewife::exp {

namespace fs = std::filesystem;

core::AppFactory
makeWorkloadFactory(const FarmWorkload &w, std::string *err)
{
    auto fail = [&](const std::string &why) -> core::AppFactory {
        if (err)
            *err = why;
        return {};
    };
    const double s = w.scale;
    if (!(s > 0.0))
        return fail("workload scale must be positive, got "
                    + std::to_string(s));
    // Parameterization must byte-match sweep_cli's makeFactory: the
    // cache entries a farm worker writes are the same entries a local
    // `sweep_cli --app X --scale s` reads.
    if (w.app == "em3d") {
        apps::Em3d::Params p;
        p.graph.nodesPerSide = static_cast<int>(1024 * s);
        p.graph.degree = 8;
        p.iters = 2;
        return apps::Em3d::factory(p);
    }
    if (w.app == "unstruc") {
        apps::Unstruc::Params p;
        p.mesh.nodes = static_cast<int>(1200 * s);
        p.iters = 2;
        return apps::Unstruc::factory(p);
    }
    if (w.app == "iccg") {
        apps::Iccg::Params p;
        p.matrix.rows = static_cast<int>(1200 * s);
        return apps::Iccg::factory(p);
    }
    if (w.app == "moldyn") {
        apps::Moldyn::Params p;
        p.box.molecules = static_cast<int>(768 * s);
        p.iters = 2;
        return apps::Moldyn::factory(p);
    }
    if (w.app == "stream") {
        apps::Stream::Params p;
        p.valuesPerIter = static_cast<int>(64 * s);
        p.iters = 4;
        return apps::Stream::factory(p);
    }
    if (apps::graph::findApp(w.app)) {
        // graphFamilyFromName() is fatal on unknown names; a bad name
        // in a job file must fail that job, not the worker process.
        bool known = false;
        for (const char *f : {"uniform", "rmat", "grid", "grid2d"})
            known |= w.graph == f;
        if (!known)
            return fail("unknown graph family '" + w.graph
                        + "' (valid: uniform, rmat, grid)");
        apps::graph::GraphAppParams p;
        p.graph.family = workload::graphFamilyFromName(w.graph);
        p.graph.vertices = static_cast<int>(1024 * s);
        p.graph.avgDegree = 8;
        p.graph.nprocs = 32;
        p.iters = 3;
        return apps::graph::makeApp(w.app, p);
    }
    return fail("unknown app '" + w.app
                + "' (valid: em3d, unstruc, iccg, moldyn, stream, "
                  "bfs, pagerank, pagerank-push, sssp)");
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

namespace {

constexpr const char *kFarmManifestSchema = "alewife-farm-manifest";

std::string
manifestPath(const std::string &dir)
{
    return dir + "/farm.json";
}

std::string
statusPath(const std::string &dir)
{
    return dir + "/status.json";
}

/** Sleep ~@p ms in small slices, bailing early when @p stop turns. */
void
sleepInterruptible(std::int64_t ms, const std::atomic<bool> &stop)
{
    const std::int64_t sliceMs = 20;
    for (std::int64_t waited = 0; waited < ms && !stop.load();
         waited += sliceMs)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(sliceMs, ms - waited)));
}

} // namespace

bool
writeFarmManifest(const std::string &dir, const FarmManifest &m,
                  std::string *err)
{
    Json t = Json::object();
    t.set("leaseTtlMs", static_cast<double>(m.tuning.leaseTtlMs));
    t.set("heartbeatMs", static_cast<double>(m.tuning.heartbeatMs));
    t.set("pollMs", static_cast<double>(m.tuning.pollMs));
    t.set("backoffBaseMs", static_cast<double>(m.tuning.backoffBaseMs));
    t.set("retryBudget", m.tuning.retryBudget);

    Json j = Json::object();
    j.set("schema", kFarmManifestSchema);
    j.set("version", kFarmSchemaVersion);
    j.set("cacheDir", m.cacheDir);
    j.set("ckptDir", m.ckptDir);
    j.set("ckptIntervalCycles", m.ckptIntervalCycles);
    j.set("tuning", std::move(t));
    return writeFileAtomic(manifestPath(dir), j.dump(1) + "\n", err);
}

std::optional<FarmManifest>
readFarmManifest(const std::string &dir, std::string *err)
{
    auto fail = [&](const std::string &why)
        -> std::optional<FarmManifest> {
        if (err)
            *err = why;
        return std::nullopt;
    };
    auto j = readJsonFile(manifestPath(dir));
    if (!j)
        return fail("no readable farm manifest at "
                    + manifestPath(dir));
    const Json *schema = j->find("schema");
    const Json *version = j->find("version");
    if (!schema || !schema->isString()
        || schema->asString() != kFarmManifestSchema)
        return fail("farm manifest: wrong schema tag");
    if (!version || !version->isNumber()
        || static_cast<int>(version->asDouble()) != kFarmSchemaVersion)
        return fail("farm manifest: unsupported version");

    FarmManifest m;
    auto str = [&](const char *k, std::string &out) {
        if (const Json *v = j->find(k); v && v->isString())
            out = v->asString();
    };
    str("cacheDir", m.cacheDir);
    str("ckptDir", m.ckptDir);
    if (const Json *v = j->find("ckptIntervalCycles");
        v && v->isNumber())
        m.ckptIntervalCycles = v->asDouble();
    if (const Json *t = j->find("tuning"); t && t->isObject()) {
        auto i64 = [&](const char *k, std::int64_t &out) {
            if (const Json *v = t->find(k); v && v->isNumber())
                out = static_cast<std::int64_t>(v->asDouble());
        };
        i64("leaseTtlMs", m.tuning.leaseTtlMs);
        i64("heartbeatMs", m.tuning.heartbeatMs);
        i64("pollMs", m.tuning.pollMs);
        i64("backoffBaseMs", m.tuning.backoffBaseMs);
        if (const Json *v = t->find("retryBudget");
            v && v->isNumber())
            m.tuning.retryBudget = static_cast<int>(v->asDouble());
    }
    return m;
}

// ---------------------------------------------------------------------
// FarmWorker
// ---------------------------------------------------------------------

std::optional<FarmWorker::Options>
FarmWorker::optionsFromManifest(const std::string &farmDir,
                                std::string *err)
{
    auto m = readFarmManifest(farmDir, err);
    if (!m)
        return std::nullopt;
    Options o;
    o.farmDir = farmDir;
    o.cacheDir = m->cacheDir;
    o.ckptDir = m->ckptDir;
    o.ckptIntervalCycles = m->ckptIntervalCycles;
    o.tuning = m->tuning;
    o.tuning.fault = farmFaultFromEnv();
    return o;
}

FarmWorker::FarmWorker(Options o) : opts_(std::move(o))
{
    if (opts_.workerId.empty())
        opts_.workerId = WorkQueue::defaultWorkerId();
    if (opts_.threads < 1)
        opts_.threads = 1;
}

int
FarmWorker::runLoop()
{
    WorkQueue q(opts_.farmDir, opts_.workerId, opts_.tuning);
    ResultCache cache(opts_.cacheDir);
    int completed = 0;
    while (!stop_.load()) {
        if (!q.ready()) {
            // Queue directory gone (NFS blip, rm -rf): the current job
            // was already drained — its result is in the cache — so
            // exit cleanly instead of crash-looping on ENOENT.
            degraded_ = true;
            ALEWIFE_WARN("farm worker ", opts_.workerId,
                         ": queue directory ", opts_.farmDir,
                         " is unreachable; draining and exiting");
            break;
        }
        std::optional<FarmJob> job = q.claim(farmNowMs());
        if (job) {
            runOne(q, cache, *job);
            ++completed;
            if (opts_.maxJobs >= 0 && completed >= opts_.maxJobs)
                break;
            continue;
        }
        const QueueCounts c = q.counts();
        if (c.drained())
            break;
        // Jobs exist but none is claimable right now (held by other
        // workers or backing off after a failure).
        sleepInterruptible(opts_.tuning.pollMs, stop_);
    }
    return completed;
}

void
FarmWorker::runOne(WorkQueue &q, ResultCache &cache, const FarmJob &job)
{
    const std::string key = ResultCache::key(job.spec, job.appKey);

    // A retried job whose previous holder stored the result but died
    // before completing finishes instantly off the shared cache.
    if (!key.empty() && cache.lookup(key)) {
        q.complete(job, farmNowMs());
        return;
    }

    std::string err;
    core::AppFactory factory = makeWorkloadFactory(job.workload, &err);
    if (!factory) {
        q.fail(job, err, farmNowMs());
        return;
    }

    // Heartbeat on a side thread so lease renewal never waits on the
    // simulation; small sleep slices keep teardown prompt.
    std::atomic<bool> running{true};
    std::thread hb([&] {
        std::int64_t last = farmNowMs();
        while (running.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            const std::int64_t now = farmNowMs();
            if (now - last >= q.tuning().heartbeatMs) {
                q.heartbeat(job.id, now);
                last = now;
            }
        }
    });

    core::RunSpec spec = job.spec;
    spec.threads = std::max(spec.threads, opts_.threads);
    core::RunResult result;
    if (!opts_.ckptDir.empty()) {
        // Shared snapshot path (jobSnapshotFile): a job reclaimed from
        // a dead worker warm-resumes that worker's partial run here.
        ckpt::CheckpointDriver driver(
            {opts_.ckptDir + "/"
                 + jobSnapshotFile(job.id, job.appKey, job.spec),
             opts_.ckptIntervalCycles, /*resume=*/true,
             /*deleteOnSuccess=*/true});
        result = core::runApp(factory, spec, /*verify_fatal=*/false,
                              nullptr, &driver);
    } else {
        result = core::runApp(factory, spec, /*verify_fatal=*/false);
    }
    running.store(false);
    hb.join();

    if (!result.verified) {
        q.fail(job,
               "verification failed (checksum "
                   + std::to_string(result.checksum) + " vs reference "
                   + std::to_string(result.reference) + ")",
               farmNowMs());
        return;
    }

    if (!key.empty())
        cache.store(key, result);
    if (faultArmed_ && opts_.tuning.fault == FarmFault::CorruptResult) {
        faultArmed_ = false;
        const std::string path = cache.entryPath(key);
        std::error_code ec;
        const auto size = fs::file_size(path, ec);
        if (!ec)
            fs::resize_file(path, size / 2, ec); // torn mid-write
        q.logEvent("fault", job.id, farmNowMs(),
                   "corrupt-result: truncated " + path);
    }
    q.complete(job, farmNowMs());
}

// ---------------------------------------------------------------------
// FarmCoordinator
// ---------------------------------------------------------------------

FarmCoordinator::FarmCoordinator(FarmOptions opts)
    : opts_(std::move(opts)),
      queue_(opts_.dir, "coord:" + WorkQueue::defaultWorkerId(),
             opts_.tuning)
{
    if (opts_.cacheDir.empty())
        opts_.cacheDir = opts_.dir + "/cache";
    if (opts_.ckptDir.empty())
        opts_.ckptDir = opts_.dir + "/ckpt";
    if (opts_.workers < 0)
        opts_.workers = 0;
    if (opts_.threads < 1)
        opts_.threads = 1;
}

void
FarmCoordinator::seedCountersFromStatus()
{
    // A restarted coordinator resumes a half-finished campaign; carry
    // the monotonic counters of the previous incarnation forward so
    // the status JSON never goes backwards.
    auto j = readJsonFile(statusPath(opts_.dir));
    if (!j || !j->isObject())
        return;
    const Json *cnt = j->find("counters");
    if (!cnt || !cnt->isObject())
        return;
    auto get = [&](const char *k, std::uint64_t &out) {
        if (const Json *v = cnt->find(k); v && v->isNumber())
            out = static_cast<std::uint64_t>(v->asDouble());
    };
    get("leaseExpiries", report_.leaseExpiries);
    get("reclaims", report_.reclaims);
    get("recomputes", report_.recomputes);
    get("rescued", report_.rescued);
}

bool
FarmCoordinator::materialize(const std::vector<FarmJob> &jobs)
{
    jobs_ = jobs;
    if (!queue_.initDirs()) {
        ALEWIFE_WARN("farm: cannot create queue directories under ",
                     opts_.dir);
        return false;
    }
    FarmManifest m;
    m.cacheDir = opts_.cacheDir;
    m.ckptDir = opts_.ckptDir;
    m.ckptIntervalCycles = opts_.ckptIntervalCycles;
    m.tuning = opts_.tuning;
    std::string err;
    if (!writeFarmManifest(opts_.dir, m, &err)) {
        ALEWIFE_WARN("farm: cannot write manifest: ", err);
        return false;
    }
    seedCountersFromStatus();

    // Snapshots whose job is not in this campaign belong to a dead
    // one; reclaim the disk before workers start writing new ones.
    std::vector<std::string> keep;
    keep.reserve(jobs_.size());
    for (const FarmJob &job : jobs_)
        keep.push_back(jobSnapshotFile(job.id, job.appKey, job.spec));
    report_.orphanSnapshotsDeleted +=
        ckpt::cleanOrphanSnapshots(opts_.ckptDir, keep);

    // Re-entrancy: jobs already present in some state directory are a
    // previous incarnation's progress, not an error — skip them.
    std::unordered_set<int> present;
    for (const char *state : {"pending", "leased", "done", "poison"})
        for (int id : queue_.idsIn(state))
            present.insert(id);

    int skipped = 0;
    for (const FarmJob &job : jobs_) {
        if (present.count(job.id)) {
            ++skipped;
            continue;
        }
        if (!queue_.enqueue(job, &err)) {
            ALEWIFE_WARN("farm: cannot enqueue job #", job.id, ": ",
                         err);
            return false;
        }
    }
    if (skipped > 0)
        ALEWIFE_WARN("farm: resuming campaign in ", opts_.dir, ": ",
                     skipped, " of ", jobs_.size(),
                     " jobs already materialized");
    report_.farmed = true;
    writeStatus();
    return true;
}

void
FarmCoordinator::runUntilDrained()
{
    const int total = static_cast<int>(jobs_.size());

    std::vector<std::unique_ptr<FarmWorker>> workers;
    std::vector<std::thread> threads;
    for (int w = 0; w < opts_.workers; ++w) {
        FarmWorker::Options wo;
        wo.farmDir = opts_.dir;
        wo.workerId = queue_.workerId() + ":w" + std::to_string(w);
        wo.cacheDir = opts_.cacheDir;
        wo.ckptDir = opts_.ckptDir;
        wo.ckptIntervalCycles = opts_.ckptIntervalCycles;
        wo.tuning = opts_.tuning;
        // In-process workers share our address space: a fault like
        // kill-after-claim would take the coordinator down with it.
        // Faults are for external worker processes (farm_cli worker)
        // and directly constructed FarmWorker instances.
        wo.tuning.fault = FarmFault::None;
        wo.threads = opts_.threads;
        workers.push_back(std::make_unique<FarmWorker>(wo));
        threads.emplace_back(
            [&worker = *workers.back()] { worker.runLoop(); });
    }

    std::atomic<bool> never{false};
    for (;;) {
        const ReapStats stats = queue_.reapExpired(farmNowMs());
        report_.leaseExpiries += stats.leaseExpiries;
        report_.reclaims += stats.reclaims;
        writeStatus();
        const QueueCounts c = queue_.counts();
        if (opts_.onStatus)
            opts_.onStatus(c);
        if (c.done + c.poisoned >= total)
            break;
        if (!queue_.ready()) {
            ALEWIFE_WARN("farm: queue directory ", opts_.dir,
                         " is unreachable; abandoning the drain loop "
                         "(collect() will recompute what's missing)");
            break;
        }
        sleepInterruptible(opts_.tuning.pollMs, never);
    }

    for (auto &worker : workers)
        worker->requestStop();
    for (auto &t : threads)
        t.join();
    writeStatus();
}

std::vector<core::RunResult>
FarmCoordinator::collect()
{
    ResultCache cache(opts_.cacheDir);
    std::vector<core::RunResult> results;
    results.reserve(jobs_.size());
    for (const FarmJob &job : jobs_) {
        const std::string key = ResultCache::key(job.spec, job.appKey);
        std::optional<core::RunResult> hit = cache.lookup(key);
        const std::optional<FarmJob> poisoned =
            queue_.readEntry("poison", job.id);

        if (hit) {
            if (poisoned) {
                // A straggler delivered the result after the job was
                // quarantined — rescue it rather than dropping work
                // that actually finished.
                ++report_.rescued;
                queue_.logEvent("rescue", job.id, farmNowMs());
            }
            results.push_back(std::move(*hit));
            continue;
        }
        if (poisoned) {
            report_.quarantined.push_back(
                {job.id, job.appKey,
                 core::mechanismShortName(job.spec.mechanism),
                 poisoned->attempts, poisoned->lastError});
            core::RunResult placeholder;
            placeholder.app = job.workload.app;
            placeholder.mechanism = job.spec.mechanism;
            placeholder.verified = false;
            results.push_back(std::move(placeholder));
            continue;
        }

        // Done (or never-drained) without a usable cache entry — a
        // corrupt entry was just quarantined to *.bad, or the cache
        // dir was lost. The run is deterministic: recompute locally.
        std::string err;
        core::AppFactory factory =
            makeWorkloadFactory(job.workload, &err);
        if (!factory) {
            report_.quarantined.push_back(
                {job.id, job.appKey,
                 core::mechanismShortName(job.spec.mechanism),
                 job.attempts, err});
            core::RunResult placeholder;
            placeholder.app = job.workload.app;
            placeholder.mechanism = job.spec.mechanism;
            placeholder.verified = false;
            results.push_back(std::move(placeholder));
            continue;
        }
        ALEWIFE_WARN("farm: job #", job.id,
                     " has no usable cache entry; recomputing "
                     "locally");
        core::RunSpec spec = job.spec;
        spec.threads = std::max(spec.threads, opts_.threads);
        core::RunResult r =
            core::runApp(factory, spec, /*verify_fatal=*/false);
        if (!key.empty())
            cache.store(key, r);
        ++report_.recomputes;
        results.push_back(std::move(r));
    }
    writeStatus();
    return results;
}

std::vector<core::RunResult>
FarmCoordinator::runCampaign(const std::vector<FarmJob> &jobs)
{
    if (!materialize(jobs)) {
        // The farm directory is unusable; the batch still runs — just
        // not distributed. collect() recomputes everything locally.
        ALEWIFE_WARN("farm: cannot materialize the campaign under ",
                     opts_.dir, "; running the batch locally instead");
        report_.farmed = false;
        return collect();
    }
    runUntilDrained();
    return collect();
}

Json
FarmCoordinator::statusJson() const
{
    const QueueCounts c = queue_.counts();

    Json counts = Json::object();
    counts.set("pending", c.pending);
    counts.set("leased", c.leased);
    counts.set("done", c.done);
    counts.set("poisoned", c.poisoned);

    Json counters = Json::object();
    counters.set("claims", queue_.countEvents("claim"));
    counters.set("completions", queue_.countEvents("complete"));
    counters.set("lateCompletions",
                 queue_.countEvents("late-complete"));
    counters.set("requeues", queue_.countEvents("requeue"));
    counters.set("leaseExpiries", report_.leaseExpiries);
    counters.set("reclaims", report_.reclaims);
    counters.set("quarantines", c.poisoned);
    counters.set("recomputes", report_.recomputes);
    counters.set("rescued", report_.rescued);
    counters.set("orphanSnapshotsDeleted",
                 report_.orphanSnapshotsDeleted);

    Json quarantined = Json::array();
    for (int id : queue_.idsIn("poison")) {
        Json q = Json::object();
        q.set("id", id);
        if (auto job = queue_.readEntry("poison", id)) {
            q.set("appKey", job->appKey);
            q.set("mechanism",
                  core::mechanismShortName(job->spec.mechanism));
            q.set("attempts", job->attempts);
            q.set("lastError", job->lastError);
        } else {
            q.set("lastError", "unreadable queue entry");
        }
        quarantined.push(std::move(q));
    }

    Json j = Json::object();
    j.set("schema", kFarmStatusSchema);
    j.set("version", kFarmSchemaVersion);
    j.set("dir", opts_.dir);
    j.set("jobsTotal", static_cast<int>(jobs_.size()));
    j.set("counts", std::move(counts));
    j.set("counters", std::move(counters));
    j.set("quarantined", std::move(quarantined));
    return j;
}

void
FarmCoordinator::writeStatus()
{
    writeFileAtomic(statusPath(opts_.dir),
                    statusJson().dump(1) + "\n");
}

Json
readFarmStatus(const std::string &dir)
{
    if (!readFarmManifest(dir))
        return Json();
    auto j = readJsonFile(statusPath(dir));
    if (!j || !j->isObject()) {
        j = Json::object();
        j->set("schema", kFarmStatusSchema);
        j->set("version", kFarmSchemaVersion);
        j->set("dir", dir);
    }
    // The coordinator's document is a point-in-time write; refresh the
    // census so `farm_cli status` is live even between its passes.
    WorkQueue q(dir, "status", FarmTuning{});
    const QueueCounts c = q.counts();
    Json counts = Json::object();
    counts.set("pending", c.pending);
    counts.set("leased", c.leased);
    counts.set("done", c.done);
    counts.set("poisoned", c.poisoned);
    j->set("counts", std::move(counts));
    return *j;
}

} // namespace alewife::exp
