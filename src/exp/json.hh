/**
 * @file
 * Minimal JSON value type for the experiment-orchestration subsystem:
 * result emission, on-disk cache files, and schema round-tripping.
 *
 * Deliberately small — objects, arrays, strings, finite doubles, bools
 * and null — because everything we persist is built from those. Object
 * keys keep insertion order so emitted files are stable and diffable.
 */

#ifndef ALEWIFE_EXP_JSON_HH
#define ALEWIFE_EXP_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace alewife::exp {

/** A JSON document node. */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(std::int64_t i)
        : type_(Type::Number), num_(static_cast<double>(i))
    {
    }
    Json(std::uint64_t u)
        : type_(Type::Number), num_(static_cast<double>(u))
    {
    }
    Json(int i) : type_(Type::Number), num_(i) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** Fresh empty array / object. */
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; fatal on type mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;

    /** Array access. */
    void push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;

    /** Object access. set() replaces an existing key. */
    void set(const std::string &key, Json v);
    bool has(const std::string &key) const;
    /** Fatal if the key is absent. */
    const Json &at(const std::string &key) const;
    /** nullptr if the key is absent. */
    const Json *find(const std::string &key) const;

    const std::vector<std::pair<std::string, Json>> &items() const;

    /**
     * Serialize. @p indent < 0 emits one compact line; >= 0 pretty-
     * prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse a document. On malformed input returns null and sets
     * @p error (when given) to a message with an offset.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace alewife::exp

#endif // ALEWIFE_EXP_JSON_HH
