#include "proc/processor.hh"

#include <algorithm>

#include "check/hooks.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace alewife::proc {

void
Op::await_suspend(std::coroutine_handle<> h)
{
    proc_->suspendOnOp(h, state_);
}

Proc::Proc(NodeId id, EventQueue &eq, const MachineConfig &cfg)
    : id_(id), eq_(eq), cfg_(cfg)
{
    // Bound how far a node may run ahead of global time through the
    // fast path so interrupt timing stays accurate (see file comment).
    aheadLimit_ = cyclesToTicks(std::uint64_t(128));
}

void
Proc::start(sim::Thread program)
{
    if (state_ != State::Ready)
        ALEWIFE_PANIC("Proc::start called twice");
    program_ = std::move(program);
    resumeHandle_ = program_.raw();
    localNow_ = std::max(localNow_, eq_.now());
    scheduleResume(localNow_);
}

void
Proc::advance(TimeCat cat, double cycles)
{
    const Tick t = cyclesToTicks(cycles);
    localNow_ += t;
    ahead_ += t;
    breakdown_.add(cat, t);
    if (hooks_)
        noteSpan(cat, localNow_ - t, localNow_);
}

void
Proc::noteSpan(TimeCat cat, Tick start, Tick end)
{
    if (start >= end)
        return;
    if (spanOpen_ && cat == spanCat_ && start == spanEnd_) {
        spanEnd_ = end;
        return;
    }
    flushSpans();
    spanCat_ = cat;
    spanStart_ = start;
    spanEnd_ = end;
    spanOpen_ = true;
}

void
Proc::flushSpans()
{
    if (!spanOpen_)
        return;
    spanOpen_ = false;
    if (hooks_)
        hooks_->onProcSpan(id_, spanCat_, spanStart_, spanEnd_);
}

void
Proc::scheduleResume(Tick at)
{
    if (resumeEvent_.pending()) {
        if (resumeAt_ == at)
            return;
        resumeEvent_.cancel();
    }
    resumeAt_ = at;
    resumeEvent_ = eq_.schedule(
        at, EventMeta{EventTag::ProcResume,
                      static_cast<std::uint64_t>(id_), 0},
        [this]() { fireResume(); });
}

void
Proc::accountWait(TimeCat cat, Tick start_local, Tick stolen_at_start,
                  Tick end)
{
    const Tick stolen_delta = stolen_ - stolen_at_start;
    const Tick raw = end > start_local ? end - start_local : 0;
    const Tick net = raw > stolen_delta ? raw - stolen_delta : 0;
    breakdown_.add(cat, net);
    if (hooks_)
        noteSpan(cat, end - net, end);
}

void
Proc::suspendCompute(std::coroutine_handle<> h, Tick dur, TimeCat cat)
{
    breakdown_.add(cat, dur);
    computeUntil_ = localNow_ + dur;
    if (hooks_)
        noteSpan(cat, localNow_, computeUntil_);
    state_ = State::ComputeBlock;
    resumeHandle_ = h;
    ahead_ = 0;
    scheduleResume(computeUntil_);
}

void
Proc::suspendOnOp(std::coroutine_handle<> h, std::shared_ptr<OpState> op)
{
    state_ = State::WaitingOp;
    currentOp_ = std::move(op);
    resumeHandle_ = h;
    ahead_ = 0;
    // completeOp schedules the resume; if the op raced to completion
    // between issue and await, Op::await_ready already returned true.
    if (currentOp_->done)
        scheduleResume(std::max(eq_.now(), localNow_));
}

void
Proc::suspendSync(std::coroutine_handle<> h)
{
    state_ = State::Waiting;
    cond_.reset();
    resumeHandle_ = h;
    ahead_ = 0;
    scheduleResume(localNow_);
}

void
Proc::suspendOnCond(std::coroutine_handle<> h, std::function<bool()> pred,
                    TimeCat cat)
{
    state_ = State::Waiting;
    cond_ = CondWait{std::move(pred), cat, localNow_, stolen_};
    resumeHandle_ = h;
    ahead_ = 0;
    // A handler may already have satisfied the predicate between the
    // caller's check and this suspension (it cannot in the current
    // single-threaded kernel, but recheck is cheap and future-proof).
    if (cond_->pred())
        scheduleResume(std::max(eq_.now(), localNow_));
}

Tick
Proc::chargeHandler(double cycles, TimeCat cat)
{
    const Tick cost = cyclesToTicks(cycles);
    const Tick now = eq_.now();
    ALEWIFE_TRACE_EVENT(TraceCat::Proc, now, "node ", id_, " charge ",
                        cycles, "cyc state ",
                        static_cast<int>(state_));
    breakdown_.add(cat, cost);
    stolen_ += cost;

    switch (state_) {
      case State::Running:
        // Polled handlers execute as part of the program's own flow.
        localNow_ += cost;
        ahead_ += cost;
        if (hooks_)
            hooks_->onHandlerRun(id_, localNow_ - cost, localNow_);
        return localNow_;

      case State::ComputeBlock:
        // Interrupt preempts the compute burst and pushes out its end.
        computeUntil_ += cost;
        scheduleResume(computeUntil_);
        if (hooks_)
            hooks_->onHandlerRun(id_, now, now + cost);
        return now + cost;

      case State::WaitingOp:
      case State::Waiting:
      case State::Ready:
      case State::Done: {
        const Tick begin = std::max(now, localNow_);
        localNow_ = begin + cost;
        if (resumeEvent_.pending() && resumeAt_ < localNow_)
            scheduleResume(localNow_);
        if (hooks_)
            hooks_->onHandlerRun(id_, begin, localNow_);
        return localNow_;
      }
    }
    ALEWIFE_PANIC("bad proc state");
}

void
Proc::completeOp(const std::shared_ptr<OpState> &op, std::uint64_t value)
{
    op->value = value;
    op->done = true;
    if (state_ == State::WaitingOp && currentOp_ == op)
        scheduleResume(std::max(eq_.now(), localNow_));
}

void
Proc::recheckCond()
{
    if (state_ == State::Waiting && cond_ && cond_->pred())
        scheduleResume(std::max(eq_.now(), localNow_));
}

Tick
Proc::busyHorizon() const
{
    if (state_ == State::ComputeBlock)
        return computeUntil_;
    return localNow_;
}

void
Proc::fireResume()
{
    const Tick t = eq_.now();

    switch (state_) {
      case State::Ready:
        localNow_ = std::max(localNow_, t);
        break;

      case State::ComputeBlock:
        if (computeUntil_ > t) {
            // A handler pushed the block's end after this event was
            // already committed; try again later.
            scheduleResume(computeUntil_);
            return;
        }
        localNow_ = computeUntil_;
        break;

      case State::WaitingOp: {
        if (!currentOp_ || !currentOp_->done)
            ALEWIFE_PANIC("resume of incomplete op on node ", id_);
        const Tick end = std::max(localNow_, t);
        accountWait(currentOp_->waitCat, currentOp_->startLocal,
                    currentOp_->stolenAtStart, end);
        localNow_ = end;
        currentOp_.reset();
        break;
      }

      case State::Waiting: {
        if (cond_) {
            if (!cond_->pred()) {
                // Predicate flickered back off before we ran; stay
                // suspended until the next recheck.
                return;
            }
            const Tick end = std::max(localNow_, t);
            accountWait(cond_->cat, cond_->startLocal,
                        cond_->stolenAtStart, end);
            cond_.reset();
        }
        localNow_ = std::max(localNow_, t);
        break;
      }

      case State::Running:
      case State::Done:
        ALEWIFE_PANIC("resume in state ", static_cast<int>(state_),
                      " on node ", id_);
    }

    state_ = State::Running;
    ahead_ = 0;
    auto h = resumeHandle_;
    resumeHandle_ = nullptr;
    h.resume();

    if (program_.done()) {
        state_ = State::Done;
        program_.rethrowIfFailed();
        // The machine's finish time is max over nodes of localNow_,
        // which may have run ahead of this event's tick; report the
        // run-ahead so trace analysis can reconstruct the finish.
        if (hooks_)
            hooks_->onProgramDone(
                id_, localNow_ > t ? localNow_ - t : Tick{0});
    } else if (state_ == State::Running) {
        ALEWIFE_PANIC("program on node ", id_,
                      " suspended outside the processor model");
    }
}

} // namespace alewife::proc
