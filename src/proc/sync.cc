#include "proc/sync.hh"

#include "check/hooks.hh"
#include "proc/context.hh"
#include "sim/logging.hh"

namespace alewife::proc {

SyncSystem::SyncSystem(int nprocs, SyncStyle style)
    : nprocs_(nprocs), style_(style), epoch_(nprocs, 0),
      arrivals_(nprocs, 0), released_(nprocs, 0)
{
}

std::vector<int>
SyncSystem::children(int p) const
{
    std::vector<int> out;
    for (int i = 1; i <= arity_; ++i) {
        const int c = p * arity_ + i;
        if (c < nprocs_)
            out.push_back(c);
    }
    return out;
}

void
SyncSystem::setupSharedMemory(mem::AddressSpace &mem)
{
    lineBytes_ = mem.lineBytes();
    const std::uint64_t wpl = mem.wordsPerLine();
    // One line per node for each flag array; Blocked placement with
    // exactly one line per node homes flag p at node p.
    arriveBase_ = mem.alloc(wpl * nprocs_, mem::HomePolicy::Blocked, 0,
                            "barrier-arrive");
    releaseBase_ = mem.alloc(wpl * nprocs_, mem::HomePolicy::Blocked, 0,
                             "barrier-release");
}

void
SyncSystem::setupMessagePassing(msg::HandlerRegistry &handlers)
{
    hArrive_ = handlers.add([this](msg::HandlerEnv &env) {
        ++arrivals_[env.self()];
    });
    hRelease_ = handlers.add([this](msg::HandlerEnv &env) {
        // Cascade the release down the tree from within the handler.
        const int p = env.self();
        ++released_[p];
        for (int c : children(p))
            env.send(c, hRelease_, {});
    });
}

Addr
SyncSystem::arriveAddr(int p) const
{
    return arriveBase_ + static_cast<Addr>(p) * lineBytes_;
}

Addr
SyncSystem::releaseAddr(int p) const
{
    return releaseBase_ + static_cast<Addr>(p) * lineBytes_;
}

sim::SubTask<void>
SyncSystem::barrier(Ctx &ctx)
{
    ++ctx.counters().barrierEpisodes;
    // Bracket the episode in node-local time for the observability
    // layer; the wrapper adds no simulated time of its own.
    check::Hooks *h = ctx.proc().auditHooks();
    const Tick start = h ? ctx.proc().localNow() : 0;
    if (style_ == SyncStyle::SharedMemory)
        co_await barrierSm(ctx);
    else
        co_await barrierMp(ctx);
    if (h)
        h->onBarrierEpisode(ctx.self(), start, ctx.proc().localNow());
}

sim::SubTask<void>
SyncSystem::barrierSm(Ctx &ctx)
{
    const int p = ctx.self();
    const std::uint64_t e = ++epoch_[p];

    // Combine up: wait for all children's subtrees, then publish ours.
    for (int c : children(p)) {
        co_await ctx.spinUntil(
            arriveAddr(c), [e](std::uint64_t v) { return v >= e; },
            TimeCat::Sync);
    }
    if (p == 0) {
        // Root: everyone has arrived; start the release wave.
        co_await ctx.write(releaseAddr(0), e, TimeCat::Sync);
    } else {
        co_await ctx.write(arriveAddr(p), e, TimeCat::Sync);
        co_await ctx.spinUntil(
            releaseAddr(parent(p)), [e](std::uint64_t v) { return v >= e; },
            TimeCat::Sync);
        if (!children(p).empty())
            co_await ctx.write(releaseAddr(p), e, TimeCat::Sync);
    }
}

sim::SubTask<void>
SyncSystem::barrierMp(Ctx &ctx)
{
    const int p = ctx.self();
    const std::uint64_t e = ++epoch_[p];
    const std::uint64_t nkids = children(p).size();

    // Wait for arrive messages from all children subtrees.
    if (nkids > 0) {
        co_await ctx.waitUntil(
            [this, p, nkids, e]() { return arrivals_[p] >= nkids * e; },
            TimeCat::Sync);
    }
    if (p == 0) {
        ++released_[0];
        for (int c : children(0))
            co_await ctx.send(c, hRelease_, {});
    } else {
        co_await ctx.send(parent(p), hArrive_, {});
        co_await ctx.waitUntil(
            [this, p, e]() { return released_[p] >= e; }, TimeCat::Sync);
        // Non-leaf release cascading is done inside the handler.
    }
}

} // namespace alewife::proc
