#include "proc/prefetch_buffer.hh"

#include "check/hooks.hh"
#include "sim/logging.hh"

namespace alewife::proc {

PrefetchBuffer::PrefetchBuffer(int entries)
{
    if (entries < 1)
        ALEWIFE_FATAL("prefetch buffer needs at least one entry");
    slots_.resize(entries);
}

bool
PrefetchBuffer::contains(Addr line) const
{
    return find(line) != nullptr;
}

const PrefetchBuffer::Entry *
PrefetchBuffer::find(Addr line) const
{
    for (const Entry &e : slots_) {
        if (e.valid && e.lineAddr == line)
            return &e;
    }
    return nullptr;
}

void
PrefetchBuffer::install(Addr line, mem::LineState st,
                        std::vector<std::uint64_t> words)
{
    // Reuse an existing entry for the same line, else take a free slot,
    // else FIFO-evict.
    Entry *target = nullptr;
    for (Entry &e : slots_) {
        if (e.valid && e.lineAddr == line) {
            target = &e;
            break;
        }
    }
    if (!target) {
        for (Entry &e : slots_) {
            if (!e.valid) {
                target = &e;
                break;
            }
        }
    }
    if (!target) {
        target = &slots_[fifoNext_];
        fifoNext_ = (fifoNext_ + 1) % slots_.size();
        if (hooks_ && target->valid && target->lineAddr != line)
            hooks_->onPfbRemove(node_, target->lineAddr);
    }
    target->valid = true;
    target->lineAddr = line;
    target->st = st;
    target->words = std::move(words);
    if (hooks_)
        hooks_->onPfbInstall(node_, line, st, target->words);
}

std::optional<PrefetchBuffer::Entry>
PrefetchBuffer::take(Addr line)
{
    for (Entry &e : slots_) {
        if (e.valid && e.lineAddr == line) {
            Entry out = std::move(e);
            e.valid = false;
            if (hooks_)
                hooks_->onPfbRemove(node_, line);
            return out;
        }
    }
    return std::nullopt;
}

std::optional<PrefetchBuffer::Entry>
PrefetchBuffer::evictOldest()
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Entry &e = slots_[(fifoNext_ + i) % slots_.size()];
        if (e.valid) {
            fifoNext_ = (fifoNext_ + i + 1) % slots_.size();
            Entry out = std::move(e);
            e.valid = false;
            if (hooks_)
                hooks_->onPfbRemove(node_, out.lineAddr);
            return out;
        }
    }
    return std::nullopt;
}

bool
PrefetchBuffer::invalidate(Addr line)
{
    for (Entry &e : slots_) {
        if (e.valid && e.lineAddr == line) {
            e.valid = false;
            if (hooks_)
                hooks_->onPfbRemove(node_, line);
            return true;
        }
    }
    return false;
}

bool
PrefetchBuffer::downgrade(Addr line)
{
    for (Entry &e : slots_) {
        if (e.valid && e.lineAddr == line) {
            e.st = mem::LineState::Shared;
            if (hooks_)
                hooks_->onPfbDowngrade(node_, line);
            return true;
        }
    }
    return false;
}

int
PrefetchBuffer::occupancy() const
{
    int n = 0;
    for (const Entry &e : slots_)
        n += e.valid ? 1 : 0;
    return n;
}

void
PrefetchBuffer::clear()
{
    for (Entry &e : slots_)
        e.valid = false;
}

} // namespace alewife::proc
