/**
 * @file
 * Non-binding software prefetch buffer (Alewife Section 3.2).
 *
 * Prefetch instructions initiate coherence transactions whose data lands
 * in this small buffer rather than the cache; a later demand reference
 * moves the line into the cache cheaply. "Non-binding" means a line
 * sitting in the buffer can still be invalidated or recalled by the
 * coherence protocol, so prefetching never violates sequential
 * consistency.
 */

#ifndef ALEWIFE_PROC_PREFETCH_BUFFER_HH
#define ALEWIFE_PROC_PREFETCH_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/cache.hh"
#include "sim/types.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife::proc {

/**
 * A small fully-associative buffer of prefetched lines.
 */
class PrefetchBuffer
{
  public:
    struct Entry
    {
        bool valid = false;
        Addr lineAddr = 0;
        mem::LineState st = mem::LineState::Shared;
        std::vector<std::uint64_t> words;
    };

    explicit PrefetchBuffer(int entries);

    /** True if a completed prefetch for @p line is buffered. */
    bool contains(Addr line) const;

    /** The buffered entry for @p line, if any. */
    const Entry *find(Addr line) const;

    /**
     * Install a completed prefetch. Evicts the oldest entry if full
     * (FIFO). Clean data only — the buffer never holds dirty words.
     */
    void install(Addr line, mem::LineState st,
                 std::vector<std::uint64_t> words);

    /** Remove and return the entry for @p line (demand consumption). */
    std::optional<Entry> take(Addr line);

    /** Invalidate the entry for @p line; true if one existed. */
    bool invalidate(Addr line);

    /**
     * Evict one entry FIFO-style to make room. The caller must write
     * back Modified victims (the buffer cannot reach the network).
     */
    std::optional<Entry> evictOldest();

    /** Downgrade a Modified entry to Shared; true if one existed. */
    bool downgrade(Addr line);

    /** Number of valid entries. */
    int occupancy() const;

    int capacity() const { return static_cast<int>(slots_.size()); }

    /** Drop everything. */
    void clear();

    /** Observer notified of installs/removals; may be null. */
    void setAuditHooks(check::Hooks *hooks, NodeId node)
    {
        hooks_ = hooks;
        node_ = node;
    }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    std::vector<Entry> slots_;
    std::size_t fifoNext_ = 0;
    check::Hooks *hooks_ = nullptr;
    NodeId node_ = -1;
};

} // namespace alewife::proc

#endif // ALEWIFE_PROC_PREFETCH_BUFFER_HH
