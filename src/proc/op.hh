/**
 * @file
 * Split-phase operation futures.
 *
 * Every simulated operation with an unknown completion time (remote cache
 * miss, bulk-transfer completion, lock acquisition step, ...) is
 * represented by a shared OpState. The issuing coroutine awaits an Op
 * wrapping that state; the completing subsystem (coherence controller,
 * DMA engine) calls Proc::completeOp. Operations that complete
 * synchronously (cache hits) never suspend.
 */

#ifndef ALEWIFE_PROC_OP_HH
#define ALEWIFE_PROC_OP_HH

#include <coroutine>
#include <cstdint>
#include <memory>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife::proc {

class Proc;

/** Shared completion state of a split-phase operation. */
struct OpState
{
    bool done = false;
    std::uint64_t value = 0;

    /** Time category the issuer's wait is attributed to. */
    TimeCat waitCat = TimeCat::MemWait;

    /** Issuer's local time at issue (for wait attribution). */
    Tick startLocal = 0;

    /** Issuer's stolen-cycles counter at issue (to net out handlers). */
    Tick stolenAtStart = 0;
};

/**
 * Awaitable handle on an OpState. Returned by Ctx memory operations.
 */
class Op
{
  public:
    Op(Proc &proc, std::shared_ptr<OpState> state)
        : proc_(&proc), state_(std::move(state))
    {
    }

    bool await_ready() const { return state_->done; }

    void await_suspend(std::coroutine_handle<> h);

    std::uint64_t await_resume() const { return state_->value; }

    const std::shared_ptr<OpState> &state() const { return state_; }

  private:
    Proc *proc_;
    std::shared_ptr<OpState> state_;
};

} // namespace alewife::proc

#endif // ALEWIFE_PROC_OP_HH
