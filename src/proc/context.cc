#include "proc/context.hh"

#include "proc/sync.hh"
#include "sim/logging.hh"

namespace alewife::proc {

Ctx::Ctx(NodeId self, int nprocs, const MachineConfig &cfg, Proc &proc,
         coh::CoherenceController &coh, msg::NetIface &ni, SyncSystem &sync,
         MachineCounters &counters)
    : self_(self), nprocs_(nprocs), cfg_(cfg), proc_(proc), coh_(coh),
      ni_(ni), sync_(sync), counters_(counters)
{
}

ComputeAwait
Ctx::compute(double cycles)
{
    return ComputeAwait{proc_, cycles, TimeCat::Compute};
}

ComputeAwait
Ctx::computeFlops(std::uint64_t n)
{
    return ComputeAwait{proc_, cfg_.cyclesPerFlop * static_cast<double>(n),
                        TimeCat::Compute};
}

ComputeAwait
Ctx::computeFlopsSP(std::uint64_t n)
{
    return ComputeAwait{proc_,
                        cfg_.cyclesPerFlopSP * static_cast<double>(n),
                        TimeCat::Compute};
}

ComputeAwait
Ctx::chargeCopy(std::uint64_t words)
{
    const double lines = static_cast<double>(words * 8)
                         / static_cast<double>(cfg_.lineBytes);
    return ComputeAwait{proc_, lines * cfg_.gatherScatterPerLineCycles,
                        TimeCat::MsgOverhead};
}

MemAwait
Ctx::read(Addr a, TimeCat cat)
{
    MemAwait aw{proc_};
    std::uint64_t v = 0;
    if (!proc_.needsSync() && coh_.tryFastRead(a, v)) {
        aw.fast = true;
        aw.value = v;
        return aw;
    }
    if (proc_.needsSync() && coh_.tryFastRead(a, v)) {
        // Hit, but the node has run too far ahead: complete the value
        // now and let the op resolve at the (already reached) time.
        auto op = std::make_shared<OpState>();
        op->waitCat = cat;
        op->startLocal = proc_.localNow();
        op->stolenAtStart = proc_.stolenTicks();
        proc_.completeOp(op, v);
        aw.op = std::move(op);
        // Force a sync suspension via the op path.
        aw.fast = false;
        return aw;
    }
    aw.op = coh_.startRead(a, cat);
    return aw;
}

MemAwait
Ctx::write(Addr a, std::uint64_t v, TimeCat cat)
{
    MemAwait aw{proc_};
    if (!proc_.needsSync() && coh_.tryFastWrite(a, v)) {
        aw.fast = true;
        aw.value = v;
        return aw;
    }
    if (proc_.needsSync() && coh_.tryFastWrite(a, v)) {
        auto op = std::make_shared<OpState>();
        op->waitCat = cat;
        op->startLocal = proc_.localNow();
        op->stolenAtStart = proc_.stolenTicks();
        proc_.completeOp(op, v);
        aw.op = std::move(op);
        return aw;
    }
    aw.op = coh_.startWrite(a, v, cat);
    return aw;
}

MemAwait
Ctx::rmw(Addr a, std::function<std::uint64_t(std::uint64_t)> fn,
         TimeCat cat)
{
    MemAwait aw{proc_};
    // rmw has no pure fast path helper on the controller; do it here.
    if (coh_.tryFastRmw(a, fn, aw.value)) {
        if (!proc_.needsSync()) {
            aw.fast = true;
            return aw;
        }
        auto op = std::make_shared<OpState>();
        op->waitCat = cat;
        op->startLocal = proc_.localNow();
        op->stolenAtStart = proc_.stolenTicks();
        proc_.completeOp(op, aw.value);
        aw.op = std::move(op);
        return aw;
    }
    aw.op = coh_.startRmw(a, std::move(fn), cat);
    return aw;
}

sim::SubTask<void>
Ctx::writeNB(Addr a, std::uint64_t v, TimeCat cat)
{
    // Window full: retire the oldest write first (FIFO, like a small
    // hardware write buffer).
    while (static_cast<int>(pendingWrites_.size())
           >= cfg_.maxOutstandingWrites) {
        auto oldest = pendingWrites_.front();
        pendingWrites_.erase(pendingWrites_.begin());
        if (!oldest->done)
            co_await Op(proc_, oldest);
    }
    // Completed entries can be reaped without waiting.
    std::erase_if(pendingWrites_,
                  [](const auto &op) { return op->done; });

    std::uint64_t dummy = v;
    if (coh_.tryFastWrite(a, v)) {
        (void)dummy;
        co_return;
    }
    pendingWrites_.push_back(coh_.startWrite(a, v, cat));
}

sim::SubTask<void>
Ctx::fence(TimeCat cat)
{
    (void)cat;
    while (!pendingWrites_.empty()) {
        auto op = pendingWrites_.back();
        pendingWrites_.pop_back();
        if (!op->done)
            co_await Op(proc_, op);
    }
}

sim::SubTask<std::uint64_t>
Ctx::spinUntil(Addr a, std::function<bool(std::uint64_t)> pred,
               TimeCat cat)
{
    for (;;) {
        // Capture the epoch before reading so an invalidation landing
        // between fill and test is never missed.
        const std::uint64_t e = coh_.lineEpoch(a);
        const std::uint64_t v = co_await read(a, cat);
        if (pred(v))
            co_return v;
        co_await CondAwait{
            proc_, [this, a, e]() { return coh_.lineEpoch(a) != e; }, cat};
    }
}

sim::SubTask<void>
Ctx::lock(Addr a)
{
    ++counters_.lockAcquires;
    for (;;) {
        const std::uint64_t old = co_await rmw(
            a, [](std::uint64_t) { return std::uint64_t(1); },
            TimeCat::Sync);
        if (old == 0)
            co_return;
        ++counters_.lockRetries;
        co_await spinUntil(
            a, [](std::uint64_t v) { return v == 0; }, TimeCat::Sync);
    }
}

sim::SubTask<void>
Ctx::unlock(Addr a)
{
    co_await write(a, 0, TimeCat::Sync);
}

sim::SubTask<void>
Ctx::send(NodeId dst, msg::HandlerId h, std::vector<std::uint64_t> args)
{
    proc_.advance(TimeCat::MsgOverhead,
                  cfg_.amSendCycles
                      + cfg_.amSendPerWordCycles
                            * static_cast<double>(args.size()));
    co_await SyncAwait{proc_};
    const Tick waited = ni_.inject(dst, h, args, {}, false,
                                   proc_.eventQueue().now());
    // A small output queue absorbs short injection delays; anything
    // beyond stalls the processor on the network interface.
    const Tick slack = cyclesToTicks(32.0);
    if (waited > slack) {
        co_await ComputeAwait{proc_,
                              ticksToCycles(waited - slack),
                              TimeCat::MemWait};
    }
}

sim::SubTask<void>
Ctx::sendBulk(NodeId dst, msg::HandlerId h, std::vector<std::uint64_t> args,
              std::vector<std::uint64_t> body)
{
    proc_.advance(TimeCat::MsgOverhead,
                  cfg_.amSendCycles + cfg_.dmaSetupCycles
                      + cfg_.amSendPerWordCycles
                            * static_cast<double>(args.size()));
    co_await SyncAwait{proc_};
    const Tick waited = ni_.inject(dst, h, args, body, true,
                                   proc_.eventQueue().now());
    const Tick slack = cyclesToTicks(32.0);
    if (waited > slack) {
        co_await ComputeAwait{proc_,
                              ticksToCycles(waited - slack),
                              TimeCat::MemWait};
    }
}

sim::SubTask<int>
Ctx::poll()
{
    proc_.advance(TimeCat::MsgOverhead, cfg_.pollEmptyCycles);
    co_await SyncAwait{proc_};
    co_return ni_.pollDrain();
}

sim::SubTask<void>
Ctx::pollPoint()
{
    if (ni_.mode() != msg::RecvMode::Polling)
        co_return;
    proc_.advance(TimeCat::MsgOverhead, cfg_.pollEmptyCycles);
    if (!ni_.queueEmpty()) {
        co_await SyncAwait{proc_};
        ni_.pollDrain();
    }
}

sim::SubTask<void>
Ctx::waitUntil(std::function<bool()> pred, TimeCat cat)
{
    if (ni_.mode() == msg::RecvMode::Interrupt) {
        if (pred())
            co_return;
        co_await CondAwait{proc_, std::move(pred), cat};
        co_return;
    }

    // Polling: alternate between draining the queue and blocking until
    // either a message arrives or the predicate flips.
    for (;;) {
        proc_.advance(cat, cfg_.pollEmptyCycles);
        co_await SyncAwait{proc_};
        ni_.pollDrain();
        if (pred())
            co_return;
        co_await CondAwait{
            proc_,
            [this, &pred]() { return !ni_.queueEmpty() || pred(); }, cat};
        if (pred()) {
            // Still drain whatever arrived with the wake-up.
            co_await SyncAwait{proc_};
            ni_.pollDrain();
            co_return;
        }
    }
}

sim::SubTask<void>
Ctx::barrier()
{
    return sync_.barrier(*this);
}

} // namespace alewife::proc
