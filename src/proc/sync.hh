/**
 * @file
 * Synchronization subsystem: barriers for both programming styles.
 *
 * Shared-memory style uses a 4-ary combining tree of per-node arrive
 * and release flags, each on its own cache line homed at its writer.
 * Every flag line has at most five sharers (writer plus up to four
 * readers), which keeps barrier traffic inside the LimitLESS hardware
 * pointers — the tuned idiom for a limited-directory machine.
 *
 * Message-passing style uses the same 4-ary tree with arrive messages
 * combining up toward the root and a release broadcast cascading down
 * through handlers.
 */

#ifndef ALEWIFE_PROC_SYNC_HH
#define ALEWIFE_PROC_SYNC_HH

#include <cstdint>
#include <vector>

#include "mem/address_space.hh"
#include "msg/active_messages.hh"
#include "sim/coro.hh"
#include "sim/types.hh"

namespace alewife::ckpt {
class Access;
}

namespace alewife::proc {

class Ctx;

/** Which barrier implementation Ctx::barrier() uses. */
enum class SyncStyle : std::uint8_t
{
    SharedMemory,
    MessagePassing,
};

/**
 * Machine-wide synchronization state.
 */
class SyncSystem
{
  public:
    SyncSystem(int nprocs, SyncStyle style);

    /** Allocate the shared-memory flag lines (SharedMemory style). */
    void setupSharedMemory(mem::AddressSpace &mem);

    /** Register the arrive/release handlers (MessagePassing style). */
    void setupMessagePassing(msg::HandlerRegistry &handlers);

    SyncStyle style() const { return style_; }

    /** Run one barrier episode for node @p ctx. */
    sim::SubTask<void> barrier(Ctx &ctx);

    // Tree helpers (4-ary, node 0 is the root).
    int parent(int p) const { return (p - 1) / arity_; }
    std::vector<int> children(int p) const;
    int arity() const { return arity_; }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    sim::SubTask<void> barrierSm(Ctx &ctx);
    sim::SubTask<void> barrierMp(Ctx &ctx);

    Addr arriveAddr(int p) const;
    Addr releaseAddr(int p) const;

    int nprocs_;
    SyncStyle style_;
    int arity_ = 4;

    // Shared-memory flags.
    Addr arriveBase_ = 0;
    Addr releaseBase_ = 0;
    std::uint32_t lineBytes_ = 0;

    // Per-node local state.
    std::vector<std::uint64_t> epoch_;

    // Message-passing state (node-local memory, updated by handlers).
    std::vector<std::uint64_t> arrivals_;
    std::vector<std::uint64_t> released_;
    msg::HandlerId hArrive_ = -1;
    msg::HandlerId hRelease_ = -1;
};

} // namespace alewife::proc

#endif // ALEWIFE_PROC_SYNC_HH
