/**
 * @file
 * The Sparcle processor model.
 *
 * Each node runs one program coroutine. The processor keeps a *local*
 * clock (localNow) that runs ahead of global simulated time through
 * cache hits and short compute bursts (direct-execution fast path), and
 * synchronizes with the event queue at communication and waiting points.
 * The distance it may run ahead is bounded (aheadLimit) so interrupt
 * timing stays accurate.
 *
 * Message handlers and LimitLESS software traps *steal* processor cycles:
 * chargeHandler() extends the current compute block or pushes back a
 * pending resume, which is precisely the progress perturbation the paper
 * identifies as the cost of interrupt-driven message passing (Sec. 4.3).
 */

#ifndef ALEWIFE_PROC_PROCESSOR_HH
#define ALEWIFE_PROC_PROCESSOR_HH

#include <coroutine>
#include <functional>
#include <memory>
#include <optional>

#include "machine/config.hh"
#include "proc/op.hh"
#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife::proc {

/**
 * One simulated processor.
 */
class Proc
{
  public:
    /** Where the program coroutine currently stands. */
    enum class State : std::uint8_t
    {
        Ready,        ///< program bound, not yet started
        Running,      ///< executing synchronously between awaits
        ComputeBlock, ///< suspended inside a timed compute burst
        WaitingOp,    ///< suspended on a split-phase operation
        Waiting,      ///< suspended on a condition / forced sync
        Done,         ///< program finished
    };

    Proc(NodeId id, EventQueue &eq, const MachineConfig &cfg);

    NodeId id() const { return id_; }
    Tick localNow() const { return localNow_; }
    State state() const { return state_; }
    bool done() const { return state_ == State::Done; }
    TimeBreakdown &breakdown() { return breakdown_; }
    const TimeBreakdown &breakdown() const { return breakdown_; }
    EventQueue &eventQueue() { return eq_; }
    const MachineConfig &config() const { return cfg_; }

    /** Bind the program and schedule its start at the current time. */
    void start(sim::Thread program);

    // ------------------------------------------------------------------
    // Called from the program coroutine (state == Running)
    // ------------------------------------------------------------------

    /** Fast path: advance local time by @p cycles in category @p cat. */
    void advance(TimeCat cat, double cycles);

    /** True if the program should force a sync suspension soon. */
    bool needsSync() const { return ahead_ > aheadLimit_; }

    /** Suspend in a timed compute block of @p dur ticks. */
    void suspendCompute(std::coroutine_handle<> h, Tick dur, TimeCat cat);

    /** Suspend until @p op completes. */
    void suspendOnOp(std::coroutine_handle<> h, std::shared_ptr<OpState> op);

    /** Suspend until global time reaches localNow (forced sync). */
    void suspendSync(std::coroutine_handle<> h);

    /**
     * Suspend until @p pred becomes true. Handlers and protocol events
     * that might change the predicate must call recheckCond(). The wait
     * is attributed to @p cat.
     */
    void suspendOnCond(std::coroutine_handle<> h, std::function<bool()> pred,
                       TimeCat cat);

    // ------------------------------------------------------------------
    // Called from outside the coroutine (handlers, coherence, NI, DMA)
    // ------------------------------------------------------------------

    /**
     * Steal @p cycles of processor time for a message handler, interrupt
     * entry, or protocol software trap, starting no earlier than the
     * current global time.
     * @return the tick at which the stolen work completes
     */
    Tick chargeHandler(double cycles, TimeCat cat = TimeCat::MsgOverhead);

    /** Complete a split-phase operation with @p value. */
    void completeOp(const std::shared_ptr<OpState> &op, std::uint64_t value);

    /** Re-test a pending condition wait (call after mutating state). */
    void recheckCond();

    /** Total ticks stolen by handlers so far (for wait attribution). */
    Tick stolenTicks() const { return stolen_; }

    /**
     * Earliest tick at which the processor could run new work, as seen
     * from global time; used by the NI to serialize handler execution.
     */
    Tick busyHorizon() const;

    /**
     * Observer notified of attributed time spans (onProcSpan, in
     * node-local time) and handler runs; may be null. Adjacent
     * same-category spans are coalesced before emission, so call
     * flushSpans() at end of run to push out the tail span.
     */
    void setAuditHooks(check::Hooks *hooks) { hooks_ = hooks; }
    check::Hooks *auditHooks() const { return hooks_; }

    /** Emit the still-open coalesced span, if any. */
    void flushSpans();

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    /** Record an attributed span; coalesces with the previous one. */
    void noteSpan(TimeCat cat, Tick start, Tick end);
    /** Schedule (or move) the pending resume event to @p at. */
    void scheduleResume(Tick at);

    /** The resume event body. */
    void fireResume();

    /** Attribute a completed wait interval ending at @p end. */
    void accountWait(TimeCat cat, Tick start_local, Tick stolen_at_start,
                     Tick end);

    NodeId id_;
    EventQueue &eq_;
    const MachineConfig &cfg_;
    sim::Thread program_;
    State state_ = State::Ready;

    Tick localNow_ = 0;
    Tick ahead_ = 0;       ///< ticks run ahead since last sync
    Tick aheadLimit_;      ///< max run-ahead before forced sync
    Tick stolen_ = 0;      ///< cumulative handler-stolen ticks

    TimeBreakdown breakdown_;

    // Pending resume bookkeeping.
    EventHandle resumeEvent_;
    Tick resumeAt_ = 0;
    std::coroutine_handle<> resumeHandle_;

    // ComputeBlock state.
    Tick computeUntil_ = 0;

    // WaitingOp state.
    std::shared_ptr<OpState> currentOp_;

    // Condition wait state.
    struct CondWait
    {
        std::function<bool()> pred;
        TimeCat cat;
        Tick startLocal;
        Tick stolenAtStart;
    };
    std::optional<CondWait> cond_;

    // Observation (null when detached). Span coalescing state.
    check::Hooks *hooks_ = nullptr;
    TimeCat spanCat_ = TimeCat::Compute;
    Tick spanStart_ = 0;
    Tick spanEnd_ = 0;
    bool spanOpen_ = false;
};

} // namespace alewife::proc

#endif // ALEWIFE_PROC_PROCESSOR_HH
