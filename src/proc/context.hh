/**
 * @file
 * Ctx — the programming interface node programs are written against.
 *
 * One Ctx per node wraps the processor, coherence controller, network
 * interface and synchronization system. Application variants use
 * different subsets:
 *   shared memory:    read/write/rmw/lock/spinUntil (+ prefetch*)
 *   message passing:  send/sendBulk/poll/waitUntil
 *   all:              compute/barrier
 *
 * Every operation is an awaitable; cheap operations (cache hits, short
 * compute) complete without touching the event queue.
 */

#ifndef ALEWIFE_PROC_CONTEXT_HH
#define ALEWIFE_PROC_CONTEXT_HH

#include <bit>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "coh/coherence.hh"
#include "machine/config.hh"
#include "msg/active_messages.hh"
#include "proc/processor.hh"
#include "sim/coro.hh"
#include "sim/stats.hh"

namespace alewife::proc {

class SyncSystem;

// NOTE: none of the awaitable types below may be braced-initialized
// aggregates with non-trivial members: GCC 12's coroutine lowering
// double-destroys such temporaries (verified with a minimal repro).
// Each has a user-declared constructor, which sidesteps the bug.

/** Fast-or-suspend timed advance (compute bursts, copy costs, stalls). */
struct ComputeAwait
{
    ComputeAwait(Proc &proc, double cyc, TimeCat c)
        : p(proc), cycles(cyc), cat(c)
    {
    }

    Proc &p;
    double cycles;
    TimeCat cat;
    bool fast = false;

    bool
    await_ready()
    {
        const Tick dur = cyclesToTicks(cycles);
        if (dur < cyclesToTicks(std::uint64_t(32)) && !p.needsSync()) {
            p.advance(cat, cycles);
            fast = true;
            return true;
        }
        return false;
    }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        p.suspendCompute(h, cyclesToTicks(cycles), cat);
    }

    void await_resume() const {}
};

/** Memory-access awaitable: ready on hit, suspends on miss. */
struct MemAwait
{
    explicit MemAwait(Proc &proc) : p(proc) {}

    Proc &p;
    bool fast = false;
    std::uint64_t value = 0;
    std::shared_ptr<OpState> op;

    bool await_ready() const { return fast || (op && op->done); }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        p.suspendOnOp(h, op);
    }

    std::uint64_t
    await_resume() const
    {
        return fast ? value : op->value;
    }
};

/** Suspend until global time catches up to the node's local time. */
struct SyncAwait
{
    explicit SyncAwait(Proc &proc) : p(proc) {}

    Proc &p;

    bool
    await_ready() const
    {
        return p.localNow() <= p.eventQueue().now();
    }

    void await_suspend(std::coroutine_handle<> h) const { p.suspendSync(h); }
    void await_resume() const {}
};

/** Suspend until a predicate holds (handlers must recheckCond()). */
struct CondAwait
{
    CondAwait(Proc &proc, std::function<bool()> fn, TimeCat c)
        : p(proc), pred(std::move(fn)), cat(c)
    {
    }

    Proc &p;
    std::function<bool()> pred;
    TimeCat cat;

    bool await_ready() const { return pred(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        p.suspendOnCond(h, std::move(pred), cat);
    }

    void await_resume() const {}
};

/**
 * Per-node application programming context.
 */
class Ctx
{
  public:
    Ctx(NodeId self, int nprocs, const MachineConfig &cfg, Proc &proc,
        coh::CoherenceController &coh, msg::NetIface &ni,
        SyncSystem &sync, MachineCounters &counters);

    NodeId self() const { return self_; }
    int nprocs() const { return nprocs_; }
    const MachineConfig &config() const { return cfg_; }
    Proc &proc() { return proc_; }
    msg::NetIface &ni() { return ni_; }
    MachineCounters &counters() { return counters_; }

    // ------------------------------------------------------------------
    // Compute
    // ------------------------------------------------------------------

    /** Spend @p cycles of useful computation. */
    ComputeAwait compute(double cycles);

    /** Spend @p n double-precision FLOPs of computation. */
    ComputeAwait computeFlops(std::uint64_t n);

    /** Spend @p n single-precision FLOPs of computation. */
    ComputeAwait computeFlopsSP(std::uint64_t n);

    /** Charge gather/scatter copying of @p words words (MsgOverhead). */
    ComputeAwait chargeCopy(std::uint64_t words);

    // ------------------------------------------------------------------
    // Shared memory
    // ------------------------------------------------------------------

    MemAwait read(Addr a, TimeCat cat = TimeCat::MemWait);
    MemAwait write(Addr a, std::uint64_t v, TimeCat cat = TimeCat::MemWait);
    MemAwait rmw(Addr a, std::function<std::uint64_t(std::uint64_t)> fn,
                 TimeCat cat = TimeCat::MemWait);

    /**
     * Non-blocking store (relaxed-consistency extension; Section 2 of
     * the paper names relaxed models as the other latency-tolerance
     * technique besides prefetching). The write retires in the
     * background; the issuing program continues immediately unless the
     * outstanding-write window (MachineConfig::maxOutstandingWrites)
     * is full, in which case it stalls for the oldest.
     *
     * Ordering caveat: writes issued this way are only globally
     * ordered at the next fence()/barrier(); programs relying on
     * write-then-flag idioms must fence first.
     */
    sim::SubTask<void> writeNB(Addr a, std::uint64_t v,
                               TimeCat cat = TimeCat::MemWait);

    /** writeNB of a double. */
    sim::SubTask<void>
    writeNBD(Addr a, double v, TimeCat cat = TimeCat::MemWait)
    {
        return writeNB(a, std::bit_cast<std::uint64_t>(v), cat);
    }

    /** Drain all outstanding non-blocking writes (release fence). */
    sim::SubTask<void> fence(TimeCat cat = TimeCat::MemWait);

    /** Double-precision wrappers (values bit-cast through words). */
    MemAwait readD(Addr a, TimeCat cat = TimeCat::MemWait)
    {
        return read(a, cat);
    }

    MemAwait
    writeD(Addr a, double v, TimeCat cat = TimeCat::MemWait)
    {
        return write(a, std::bit_cast<std::uint64_t>(v), cat);
    }

    static double asDouble(std::uint64_t w) { return std::bit_cast<double>(w); }

    void prefetchRead(Addr a) { coh_.prefetch(a, false); }
    void prefetchWrite(Addr a) { coh_.prefetch(a, true); }

    /** Spin until @p pred holds on the word at @p a (invalidation-driven). */
    sim::SubTask<std::uint64_t>
    spinUntil(Addr a, std::function<bool(std::uint64_t)> pred,
              TimeCat cat = TimeCat::Sync);

    /** Acquire / release a shared-memory spin lock word. */
    sim::SubTask<void> lock(Addr a);
    sim::SubTask<void> unlock(Addr a);

    // ------------------------------------------------------------------
    // Message passing
    // ------------------------------------------------------------------

    /** Send an active message (fine-grained). */
    sim::SubTask<void> send(NodeId dst, msg::HandlerId h,
                            std::vector<std::uint64_t> args);

    /** Send a bulk transfer: args + DMA body. */
    sim::SubTask<void> sendBulk(NodeId dst, msg::HandlerId h,
                                std::vector<std::uint64_t> args,
                                std::vector<std::uint64_t> body);

    /** Poll the NI, running any queued handlers. Returns count. */
    sim::SubTask<int> poll();

    /**
     * A compiler/user-inserted polling call inside a compute loop
     * (Section 3.2: polled reception requires explicit poll points).
     * No-op under interrupt delivery; under polling it charges the
     * poll-check cost and drains the queue when messages are waiting.
     */
    sim::SubTask<void> pollPoint();

    /**
     * Wait until @p pred holds. In interrupt mode this blocks; in
     * polling mode it poll-spins. Handlers changing the predicate's
     * inputs wake the waiter automatically.
     */
    sim::SubTask<void> waitUntil(std::function<bool()> pred,
                                 TimeCat cat = TimeCat::Sync);

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /** Global barrier (implementation depends on the machine's style). */
    sim::SubTask<void> barrier();

  private:
    NodeId self_;
    int nprocs_;
    const MachineConfig &cfg_;
    Proc &proc_;
    coh::CoherenceController &coh_;
    msg::NetIface &ni_;
    SyncSystem &sync_;
    MachineCounters &counters_;

    /** In-flight non-blocking writes (relaxed-consistency window). */
    std::vector<std::shared_ptr<OpState>> pendingWrites_;
};

} // namespace alewife::proc

#endif // ALEWIFE_PROC_CONTEXT_HH
