#include "core/runner.hh"

#include <cmath>
#include <iostream>
#include <optional>

#include "check/auditor.hh"
#include "obs/critpath.hh"
#include "obs/recorder.hh"
#include "sim/logging.hh"

namespace alewife::core {

double
RunResult::avgCycles(TimeCat c) const
{
    // breakdown holds the per-node average already (see runApp).
    return breakdown.cycles(c);
}

RunResult
runApp(App &app, const RunSpec &spec, bool verify_fatal,
       check::InvariantAuditor *auditor, RunDriver *driver,
       obs::CritPathRecorder *critpath)
{
    Machine m(spec.machine, syncStyle(spec.mechanism),
              recvMode(spec.mechanism));
    if (spec.crossTraffic.bytesPerCycle > 0.0)
        m.addCrossTraffic(spec.crossTraffic);
    if (spec.perturb.enabled())
        m.setPerturbation(spec.perturb);
    // An enabled delay injection schedules an untagged event, which
    // the parallel engine's LP classifier cannot place; it pins the
    // serial kernel (as does an attached dependency recorder, via
    // Machine::parallelEligible).
    if (spec.threads > 1 && !spec.delay.enabled())
        m.setThreads(spec.threads);

    // Attach the dependency recorder before anything schedules events,
    // so it sees sequence numbers from 0.
    if (critpath)
        critpath->attach(m);

    if (spec.delay.enabled()) {
        Machine *mp = &m;
        const NodeId dnode = spec.delay.node;
        const double stall = spec.delay.stallCycles;
        if (dnode >= m.nodes())
            ALEWIFE_FATAL("delay injection node ", dnode,
                          " out of range (machine has ", m.nodes(),
                          " nodes)");
        m.eq().schedule(cyclesToTicks(spec.delay.atCycles),
                        [mp, dnode, stall]() {
                            mp->procAt(dnode).chargeHandler(
                                stall, TimeCat::MsgOverhead);
                        });
    }

    std::optional<check::InvariantAuditor> owned;
    if (!auditor && spec.audit)
        auditor = &owned.emplace();
    if (auditor)
        auditor->attach(m);

    std::optional<obs::Recorder> rec;
    if (spec.obs.any()) {
        rec.emplace(spec.obs, m.nodes());
        rec->attach(m);
        if (auditor && rec->flight()) {
            // A violation dumps the recent-event window before the
            // auditor aborts or collects, so the failure is
            // immediately inspectable.
            obs::Recorder &r = *rec;
            auditor->setOnViolation(
                [&r](const check::InvariantAuditor::Violation &v) {
                    const std::string path = r.dumpFlight();
                    std::cerr << "flight recorder dump (invariant "
                              << v.invariant << "): " << path << "\n";
                });
        }
    }

    app.setup(m, spec.mechanism);

    const Machine::ProgramFactory programs =
        [&app](proc::Ctx &ctx) { return app.program(ctx); };
    const Tick finish =
        driver ? driver->drive(m, programs) : m.run(programs);

    if (auditor)
        auditor->finalize();
    if (rec) {
        app.exportMetrics(rec->metrics());
        rec->finalize();
        if (auditor)
            auditor->setOnViolation(nullptr); // recorder dies with us
    }

    RunResult r;
    r.app = app.name();
    r.mechanism = spec.mechanism;
    r.runtimeCycles = ticksToCycles(finish);

    TimeBreakdown sum = m.breakdownSum();
    for (std::size_t i = 0; i < sum.ticks.size(); ++i)
        r.breakdown.ticks[i] = sum.ticks[i] / m.nodes();

    r.volume = m.volume();
    r.counters = m.counters();
    r.simEvents = m.eq().eventsExecuted();
    r.parallelWindows = m.parallelWindows();

    r.checksum = app.checksum();
    r.reference = app.reference();
    const double denom = std::max(std::abs(r.reference), 1.0);
    r.verified =
        std::abs(r.checksum - r.reference) / denom <= app.tolerance();

    if (!r.verified && verify_fatal) {
        ALEWIFE_FATAL("result verification failed for ", r.app, " under ",
                      mechanismName(r.mechanism), ": got ", r.checksum,
                      " want ", r.reference);
    }
    return r;
}

RunResult
runApp(const AppFactory &factory, const RunSpec &spec, bool verify_fatal,
       check::InvariantAuditor *auditor, RunDriver *driver,
       obs::CritPathRecorder *critpath)
{
    auto app = factory();
    return runApp(*app, spec, verify_fatal, auditor, driver, critpath);
}

} // namespace alewife::core
