/**
 * @file
 * The paper's parametric experiments (Section 5), packaged as reusable
 * sweeps over machine parameters:
 *
 *  - runAllMechanisms: Figures 4 and 5 (breakdowns at the base design)
 *  - bisectionSweep:   Figure 8 (cross-traffic emulation)
 *  - msgLenSweep:      Figure 7 (cross-traffic message-length artifact)
 *  - clockSweep:       Figure 9 (relative network latency via clock)
 *  - idealLatencySweep: Figure 10 (uniform-latency network emulation)
 *
 * Every sweep executes through exp::SweepEngine: pass EngineOptions
 * with jobs > 1 to fan the independent simulations out over worker
 * threads (results are byte-identical to the serial order), and an
 * exp::ResultCache plus appKey to skip runs already computed. The
 * default options reproduce the historical serial behavior exactly.
 */

#ifndef ALEWIFE_CORE_EXPERIMENTS_HH
#define ALEWIFE_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <vector>

#include "core/runner.hh"
#include "exp/sweep_engine.hh"

namespace alewife::core {

/** One point of a sweep: x is the swept parameter. */
struct SweepPoint
{
    double x = 0.0;
    RunResult result;
};

/** One mechanism's curve through a sweep. */
struct MechSeries
{
    Mechanism mech = Mechanism::SharedMemory;
    std::vector<SweepPoint> points;
};

/** Run every mechanism once at the base machine (Figures 4 and 5). */
std::vector<RunResult>
runAllMechanisms(const AppFactory &app, const MachineConfig &base,
                 const std::vector<Mechanism> &mechs,
                 const exp::EngineOptions &opts = {});

/**
 * Figure 8: sweep effective bisection bandwidth by injecting cross
 * traffic. @p bisections are the *effective* bytes/cycle targets (the
 * native bisection minus injected traffic); x = effective bisection.
 */
std::vector<MechSeries>
bisectionSweep(const AppFactory &app, const MachineConfig &base,
               const std::vector<Mechanism> &mechs,
               const std::vector<double> &bisections,
               std::uint32_t cross_msg_bytes = 64,
               const exp::EngineOptions &opts = {});

/**
 * Figure 7: fixed cross-traffic volume, varying message length;
 * x = cross-traffic message bytes.
 */
std::vector<MechSeries>
msgLenSweep(const AppFactory &app, const MachineConfig &base,
            const std::vector<Mechanism> &mechs,
            double cross_bytes_per_cycle,
            const std::vector<std::uint32_t> &lengths,
            const exp::EngineOptions &opts = {});

/**
 * Figure 9: vary processor clock against the fixed-wall-clock network;
 * x = one-way latency of a 24-byte packet in processor cycles.
 */
std::vector<MechSeries>
clockSweep(const AppFactory &app, const MachineConfig &base,
           const std::vector<Mechanism> &mechs,
           const std::vector<double> &mhz_values,
           const exp::EngineOptions &opts = {});

/**
 * Figure 10: ideal uniform-latency network. Shared-memory mechanisms
 * sweep @p latencies (cycles); message-passing mechanisms are run once
 * at the base machine and replicated flat, as in the paper ("plotted
 * for reference only"). x = emulated one-way latency in cycles.
 */
std::vector<MechSeries>
idealLatencySweep(const AppFactory &app, const MachineConfig &base,
                  const std::vector<Mechanism> &mechs,
                  const std::vector<double> &latencies,
                  const exp::EngineOptions &opts = {});

} // namespace alewife::core

#endif // ALEWIFE_CORE_EXPERIMENTS_HH
