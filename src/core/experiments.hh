/**
 * @file
 * The paper's parametric experiments (Section 5), packaged as reusable
 * sweeps over machine parameters:
 *
 *  - runAllMechanisms: Figures 4 and 5 (breakdowns at the base design)
 *  - bisectionSweep:   Figure 8 (cross-traffic emulation)
 *  - msgLenSweep:      Figure 7 (cross-traffic message-length artifact)
 *  - clockSweep:       Figure 9 (relative network latency via clock)
 *  - idealLatencySweep: Figure 10 (uniform-latency network emulation)
 *
 * Every sweep executes through exp::SweepEngine: pass EngineOptions
 * with jobs > 1 to fan the independent simulations out over worker
 * threads (results are byte-identical to the serial order), and an
 * exp::ResultCache plus appKey to skip runs already computed. The
 * default options reproduce the historical serial behavior exactly.
 */

#ifndef ALEWIFE_CORE_EXPERIMENTS_HH
#define ALEWIFE_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "exp/sweep_engine.hh"

namespace alewife::core {

/** One point of a sweep: x is the swept parameter. */
struct SweepPoint
{
    double x = 0.0;
    RunResult result;
};

/** One mechanism's curve through a sweep. */
struct MechSeries
{
    Mechanism mech = Mechanism::SharedMemory;
    std::vector<SweepPoint> points;
};

/** The parametric sweeps, by name (sweepKindFromName). */
enum class SweepKind
{
    None,         ///< every mechanism once at the base machine
    Bisection,    ///< Figure 8: effective bisection via cross traffic
    MsgLen,       ///< Figure 7: cross-traffic message length
    Clock,        ///< Figure 9: processor clock vs fixed network
    IdealLatency, ///< Figure 10: ideal uniform-latency network
};

/** Parse "none|bisection|msglen|clock|ideal-latency"; nullopt on
 *  unknown names (callers report their own errors). */
std::optional<SweepKind> sweepKindFromName(const std::string &s);

/** What to sweep: everything needed to materialize the spec list. */
struct SweepRequest
{
    SweepKind kind = SweepKind::None;
    std::vector<Mechanism> mechs;
    /**
     * The swept points; meaning depends on kind: effective bisection
     * bytes/cycle (Bisection), cross-message bytes (MsgLen), processor
     * MHz (Clock), emulated one-way latency cycles (IdealLatency).
     * Ignored for None.
     */
    std::vector<double> points;
    /** Cross-traffic message bytes (Bisection only). */
    std::uint32_t crossMsgBytes = 64;
    /** Injected cross-traffic volume (MsgLen only). */
    double crossBytesPerCycle = 0.0;
};

/**
 * A materialized sweep: the flat spec list in canonical submission
 * order plus the shape needed to fold flat results back into series.
 * Everyone who executes a sweep — the wrappers below, sweep_cli, and
 * farm_cli workers on other hosts — goes through the same plan, which
 * is what makes distributed results bit-identical (job index for job
 * index) to a local run.
 */
struct SweepPlan
{
    SweepKind kind = SweepKind::None;
    std::vector<Mechanism> mechs;
    /** One SweepEngine job per entry, canonical submission order. */
    std::vector<RunSpec> specs;
    /** x-axis value for (mechanism i, point j). */
    std::vector<std::vector<double>> xs;
    /** specs index backing (mechanism i, point j) — several points
     *  may share one spec (flat-replicated message-passing curves). */
    std::vector<std::vector<std::size_t>> specIndex;
};

/** Materialize @p req against @p base. Fatal on unsatisfiable
 *  requests (e.g. a bisection target above native). */
SweepPlan planSweep(const MachineConfig &base, const SweepRequest &req);

/** Fold flat submission-ordered @p results back into series. */
std::vector<MechSeries>
seriesFromPlan(const SweepPlan &plan,
               const std::vector<RunResult> &results);

/** Run every mechanism once at the base machine (Figures 4 and 5). */
std::vector<RunResult>
runAllMechanisms(const AppFactory &app, const MachineConfig &base,
                 const std::vector<Mechanism> &mechs,
                 const exp::EngineOptions &opts = {});

/**
 * Figure 8: sweep effective bisection bandwidth by injecting cross
 * traffic. @p bisections are the *effective* bytes/cycle targets (the
 * native bisection minus injected traffic); x = effective bisection.
 */
std::vector<MechSeries>
bisectionSweep(const AppFactory &app, const MachineConfig &base,
               const std::vector<Mechanism> &mechs,
               const std::vector<double> &bisections,
               std::uint32_t cross_msg_bytes = 64,
               const exp::EngineOptions &opts = {});

/**
 * Figure 7: fixed cross-traffic volume, varying message length;
 * x = cross-traffic message bytes.
 */
std::vector<MechSeries>
msgLenSweep(const AppFactory &app, const MachineConfig &base,
            const std::vector<Mechanism> &mechs,
            double cross_bytes_per_cycle,
            const std::vector<std::uint32_t> &lengths,
            const exp::EngineOptions &opts = {});

/**
 * Figure 9: vary processor clock against the fixed-wall-clock network;
 * x = one-way latency of a 24-byte packet in processor cycles.
 */
std::vector<MechSeries>
clockSweep(const AppFactory &app, const MachineConfig &base,
           const std::vector<Mechanism> &mechs,
           const std::vector<double> &mhz_values,
           const exp::EngineOptions &opts = {});

/**
 * Figure 10: ideal uniform-latency network. Shared-memory mechanisms
 * sweep @p latencies (cycles); message-passing mechanisms are run once
 * at the base machine and replicated flat, as in the paper ("plotted
 * for reference only"). x = emulated one-way latency in cycles.
 */
std::vector<MechSeries>
idealLatencySweep(const AppFactory &app, const MachineConfig &base,
                  const std::vector<Mechanism> &mechs,
                  const std::vector<double> &latencies,
                  const exp::EngineOptions &opts = {});

} // namespace alewife::core

#endif // ALEWIFE_CORE_EXPERIMENTS_HH
