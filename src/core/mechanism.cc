#include "core/mechanism.hh"

#include "sim/logging.hh"

namespace alewife::core {

const char *
mechanismShortName(Mechanism m)
{
    switch (m) {
      case Mechanism::SharedMemory: return "SM";
      case Mechanism::SharedMemoryPrefetch: return "SM+PF";
      case Mechanism::MpInterrupt: return "MP-I";
      case Mechanism::MpPolling: return "MP-P";
      case Mechanism::BulkTransfer: return "BULK";
      default: return "?";
    }
}

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::SharedMemory: return "shared-memory";
      case Mechanism::SharedMemoryPrefetch: return "shared-memory+prefetch";
      case Mechanism::MpInterrupt: return "message-passing-interrupt";
      case Mechanism::MpPolling: return "message-passing-polling";
      case Mechanism::BulkTransfer: return "bulk-transfer-dma";
      default: return "?";
    }
}

bool
isSharedMemory(Mechanism m)
{
    return m == Mechanism::SharedMemory
           || m == Mechanism::SharedMemoryPrefetch;
}

bool
usesPrefetch(Mechanism m)
{
    return m == Mechanism::SharedMemoryPrefetch;
}

proc::SyncStyle
syncStyle(Mechanism m)
{
    return isSharedMemory(m) ? proc::SyncStyle::SharedMemory
                             : proc::SyncStyle::MessagePassing;
}

msg::RecvMode
recvMode(Mechanism m)
{
    // Polling only for the explicit polling variant; bulk transfer on
    // Alewife received via interrupts.
    return m == Mechanism::MpPolling ? msg::RecvMode::Polling
                                     : msg::RecvMode::Interrupt;
}

Mechanism
mechanismFromName(const std::string &s)
{
    for (Mechanism m : allMechanisms()) {
        if (s == mechanismShortName(m) || s == mechanismName(m))
            return m;
    }
    ALEWIFE_FATAL("unknown mechanism name: ", s);
}

} // namespace alewife::core
