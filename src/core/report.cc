#include "core/report.hh"

#include <iomanip>
#include <ostream>

#include "machine/gallery.hh"
#include "obs/metrics.hh"

namespace alewife::core {

namespace {

void
hrule(std::ostream &os, int width)
{
    for (int i = 0; i < width; ++i)
        os << '-';
    os << '\n';
}

std::string
fmtOpt(const std::optional<double> &v, int prec = 1)
{
    if (!v)
        return "N/A";
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << *v;
    return ss.str();
}

} // namespace

void
printBreakdownTable(std::ostream &os, const std::string &title,
                    const std::vector<RunResult> &results)
{
    os << title << '\n';
    hrule(os, 78);
    os << std::left << std::setw(8) << "mech" << std::right
       << std::setw(12) << "runtime" << std::setw(12) << "compute"
       << std::setw(12) << "mem+ni" << std::setw(12) << "msg-ovhd"
       << std::setw(12) << "sync" << std::setw(10) << "verified"
       << '\n';
    hrule(os, 78);
    for (const RunResult &r : results) {
        os << std::left << std::setw(8) << mechanismShortName(r.mechanism)
           << std::right << std::fixed << std::setprecision(0)
           << std::setw(12) << r.runtimeCycles << std::setw(12)
           << r.avgCycles(TimeCat::Compute) << std::setw(12)
           << r.avgCycles(TimeCat::MemWait) << std::setw(12)
           << r.avgCycles(TimeCat::MsgOverhead) << std::setw(12)
           << r.avgCycles(TimeCat::Sync) << std::setw(10)
           << (r.verified ? "yes" : "NO") << '\n';
    }
    hrule(os, 78);
}

void
printVolumeTable(std::ostream &os, const std::string &title,
                 const std::vector<RunResult> &results)
{
    os << title << '\n';
    hrule(os, 78);
    os << std::left << std::setw(8) << "mech" << std::right
       << std::setw(14) << "total-bytes" << std::setw(12) << "invals"
       << std::setw(12) << "requests" << std::setw(12) << "headers"
       << std::setw(12) << "data" << '\n';
    hrule(os, 78);
    for (const RunResult &r : results) {
        os << std::left << std::setw(8) << mechanismShortName(r.mechanism)
           << std::right << std::setw(14) << r.volume.total()
           << std::setw(12) << r.volume.get(VolCat::Invalidates)
           << std::setw(12) << r.volume.get(VolCat::Requests)
           << std::setw(12) << r.volume.get(VolCat::Headers)
           << std::setw(12) << r.volume.get(VolCat::Data) << '\n';
    }
    hrule(os, 78);
}

void
printSeries(std::ostream &os, const std::string &title,
            const std::string &xlabel,
            const std::vector<MechSeries> &series)
{
    os << title << '\n';
    hrule(os, 16 + 14 * static_cast<int>(series.size()));
    os << std::left << std::setw(16) << xlabel << std::right;
    for (const MechSeries &s : series)
        os << std::setw(14) << mechanismShortName(s.mech);
    os << '\n';
    hrule(os, 16 + 14 * static_cast<int>(series.size()));
    if (series.empty())
        return;
    const std::size_t rows = series.front().points.size();
    for (std::size_t i = 0; i < rows; ++i) {
        os << std::left << std::fixed << std::setprecision(2)
           << std::setw(16) << series.front().points[i].x << std::right
           << std::setprecision(0);
        for (const MechSeries &s : series)
            os << std::setw(14) << s.points[i].result.runtimeCycles;
        os << '\n';
    }
    hrule(os, 16 + 14 * static_cast<int>(series.size()));
}

void
printTable1(std::ostream &os)
{
    os << "Table 1: parameter estimates for 32-processor machines\n";
    hrule(os, 96);
    os << std::left << std::setw(16) << "machine" << std::setw(8)
       << "MHz" << std::setw(18) << "topology" << std::right
       << std::setw(12) << "bsctn MB/s" << std::setw(12) << "B/cycle"
       << std::setw(10) << "net lat" << std::setw(10) << "rmt miss"
       << std::setw(10) << "lcl miss" << '\n';
    hrule(os, 96);
    for (const auto &e : galleryMachines()) {
        os << std::left << std::setw(16) << e.name << std::setw(8)
           << e.procMhz << std::setw(18) << e.topology << std::right
           << std::setw(12) << fmtOpt(e.bisectionMBps, 0)
           << std::setw(12) << fmtOpt(e.bytesPerCycle) << std::setw(10)
           << fmtOpt(e.netLatencyCycles, 0) << std::setw(10)
           << fmtOpt(e.remoteMissCycles, 0) << std::setw(10)
           << e.localMissCycles << '\n';
    }
    hrule(os, 96);
}

void
printTable2(std::ostream &os)
{
    os << "Table 2: parameters in terms of local cache-miss latency\n";
    hrule(os, 60);
    os << std::left << std::setw(16) << "machine" << std::right
       << std::setw(22) << "bsctn B/lcl-miss" << std::setw(22)
       << "net-lat / lcl-miss" << '\n';
    hrule(os, 60);
    for (const auto &e : galleryMachines()) {
        os << std::left << std::setw(16) << e.name << std::right
           << std::setw(22) << fmtOpt(e.bytesPerLocalMiss(), 0)
           << std::setw(22) << fmtOpt(e.netLatInLocalMisses()) << '\n';
    }
    hrule(os, 60);
}

void
printCounters(std::ostream &os, const RunResult &r)
{
    // Ingest the counter block through the same metrics registry the
    // JSON export uses, so the ASCII names/values and the machine-
    // readable ones come from one table and cannot disagree.
    obs::MetricsRegistry reg(1);
    reg.ingest(r.counters);
    os << "  [" << mechanismShortName(r.mechanism) << "]";
    int col = 0;
    for (const auto &f : machineCounterFields()) {
        const int id = reg.counterId(std::string("cmmu.") + f.name);
        if (col++ % 6 == 0 && col > 1)
            os << "\n       ";
        os << " " << f.name << "=" << reg.counterTotal(id);
    }
    os << " simEvents=" << r.simEvents << '\n';
}

} // namespace alewife::core
