/**
 * @file
 * ASCII report formatting: the tables and series the benches print to
 * regenerate the paper's figures and tables.
 */

#ifndef ALEWIFE_CORE_REPORT_HH
#define ALEWIFE_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiments.hh"

namespace alewife::core {

/** Figure 4 style: per-mechanism execution-time breakdown table. */
void printBreakdownTable(std::ostream &os, const std::string &title,
                         const std::vector<RunResult> &results);

/** Figure 5 style: per-mechanism communication-volume breakdown. */
void printVolumeTable(std::ostream &os, const std::string &title,
                      const std::vector<RunResult> &results);

/** Sweep series: one column per mechanism, one row per x value. */
void printSeries(std::ostream &os, const std::string &title,
                 const std::string &xlabel,
                 const std::vector<MechSeries> &series);

/** Table 1: parameter gallery. */
void printTable1(std::ostream &os);

/** Table 2: gallery normalized to local-miss latency. */
void printTable2(std::ostream &os);

/** One-line diagnostic counters for a run. */
void printCounters(std::ostream &os, const RunResult &r);

} // namespace alewife::core

#endif // ALEWIFE_CORE_REPORT_HH
