#include "core/app.hh"

namespace alewife::core {

// App is an interface; this file anchors its vtable/key function.

} // namespace alewife::core
