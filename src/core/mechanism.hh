/**
 * @file
 * The five communication mechanisms compared by the paper.
 */

#ifndef ALEWIFE_CORE_MECHANISM_HH
#define ALEWIFE_CORE_MECHANISM_HH

#include <array>
#include <cstdint>
#include <string>

#include "msg/active_messages.hh"
#include "proc/sync.hh"

namespace alewife::core {

/** Communication mechanism / programming model of an application run. */
enum class Mechanism : std::uint8_t
{
    SharedMemory = 0,     ///< sequentially consistent shared memory
    SharedMemoryPrefetch, ///< + non-binding software prefetch
    MpInterrupt,          ///< active messages, interrupt delivery
    MpPolling,            ///< active messages, polled delivery
    BulkTransfer,         ///< DMA bulk transfer over active messages
    NumMechanisms
};

constexpr int kNumMechanisms =
    static_cast<int>(Mechanism::NumMechanisms);

/** All mechanisms, in the paper's presentation order. */
constexpr std::array<Mechanism, kNumMechanisms>
allMechanisms()
{
    return {Mechanism::SharedMemory, Mechanism::SharedMemoryPrefetch,
            Mechanism::MpInterrupt, Mechanism::MpPolling,
            Mechanism::BulkTransfer};
}

/** Short display name ("SM", "SM+PF", "MP-I", "MP-P", "BULK"). */
const char *mechanismShortName(Mechanism m);

/** Long display name. */
const char *mechanismName(Mechanism m);

/** True for the two shared-memory mechanisms. */
bool isSharedMemory(Mechanism m);

/** True when the variant issues software prefetches. */
bool usesPrefetch(Mechanism m);

/** Barrier/lock style the mechanism uses. */
proc::SyncStyle syncStyle(Mechanism m);

/** NI receive mode the mechanism uses. */
msg::RecvMode recvMode(Mechanism m);

/** Parse a short or long name; throws via fatal() on unknown names. */
Mechanism mechanismFromName(const std::string &s);

} // namespace alewife::core

#endif // ALEWIFE_CORE_MECHANISM_HH
