/**
 * @file
 * AppRunner: execute one application under one mechanism on one machine
 * configuration and collect every statistic the paper reports.
 */

#ifndef ALEWIFE_CORE_RUNNER_HH
#define ALEWIFE_CORE_RUNNER_HH

#include <cstdint>
#include <string>

#include "check/perturb.hh"
#include "core/app.hh"
#include "core/mechanism.hh"
#include "machine/config.hh"
#include "machine/machine.hh"
#include "net/cross_traffic.hh"
#include "obs/options.hh"
#include "sim/stats.hh"

namespace alewife::check {
class InvariantAuditor;
}

namespace alewife::obs {
class CritPathRecorder;
}

namespace alewife::core {

/**
 * Deterministic one-off delay injection: charge node @p node a
 * handler-style stall of @p stallCycles at global time @p atCycles
 * (arXiv 1905.10603-style perturbation probing). Changes results by
 * design, so an enabled injection makes the run uncacheable (see
 * ResultCache::key) and pins the serial kernel; disabled (the
 * default) schedules nothing and is bit-identical to no knob at all.
 */
struct DelayInjection
{
    NodeId node = -1;
    double atCycles = 0.0;
    double stallCycles = 0.0;

    bool enabled() const { return node >= 0 && stallCycles > 0.0; }
};

/** Everything a single application run produced. */
struct RunResult
{
    std::string app;
    Mechanism mechanism = Mechanism::SharedMemory;

    /** Application runtime in processor cycles. */
    double runtimeCycles = 0.0;

    /** Per-node average execution-time breakdown (cycles). */
    TimeBreakdown breakdown;

    /** Communication volume injected into the network. */
    VolumeBreakdown volume;

    /** Machine-wide event counters. */
    MachineCounters counters;

    /** Numeric verification. */
    double checksum = 0.0;
    double reference = 0.0;
    bool verified = false;

    /** Simulator diagnostics. */
    std::uint64_t simEvents = 0;

    /** Windows committed by the parallel engine; 0 = serial kernel.
     *  Diagnostic only — every other field is identical either way. */
    std::uint64_t parallelWindows = 0;

    /** Cycles per category, averaged over nodes. */
    double avgCycles(TimeCat c) const;
};

/** One experiment point: machine + mechanism + optional cross traffic. */
struct RunSpec
{
    MachineConfig machine;
    Mechanism mechanism = Mechanism::SharedMemory;
    net::CrossTrafficConfig crossTraffic; ///< bytesPerCycle==0 disables

    /** Attach an invariant auditor that panics at the first violation. */
    bool audit = false;
    /** Schedule perturbation (fuzzing); disabled by default. */
    check::PerturbConfig perturb;
    /**
     * Observability (trace/metrics/interval/flight); all-off by
     * default. Results are bit-identical attached or detached, so obs
     * settings are not part of result-cache keys; the sweep engine
     * bypasses cache reads instead so the files actually get written.
     */
    obs::RecorderOptions obs;

    /**
     * Intra-run worker threads (Machine::setThreads). Results are
     * bit-identical at any thread count, so — like obs — this is not
     * part of result-cache keys.
     */
    int threads = 1;

    /**
     * One-off delay injection (off by default). Enabled injections
     * run on the serial kernel and are never cached.
     */
    DelayInjection delay;
};

/**
 * Seam into runApp's machine-driving loop. Without a driver runApp
 * calls Machine::run(); with one it delegates the whole launch-step-
 * finish sequence, which is how the checkpoint subsystem pauses a run
 * at precise event counts (periodic snapshots) or starts it from a
 * snapshot instead of from scratch (resume, warm-start). A driver must
 * leave the machine fully finished (Machine::finishRun() called) and
 * return the finish tick, so every statistic runApp collects afterwards
 * means the same thing on every path.
 */
class RunDriver
{
  public:
    virtual ~RunDriver() = default;

    /** Drive @p m from fresh state to completion. */
    virtual Tick drive(Machine &m, const Machine::ProgramFactory &f) = 0;
};

/**
 * Run @p app under @p spec.
 * @param verify_fatal abort (vs. just flag) on checksum mismatch
 * @param auditor externally owned auditor to attach (e.g. one that
 *        collects violations instead of aborting); when null and
 *        spec.audit is set, an aborting auditor is used internally
 * @param driver optional machine-driving seam (checkpointing); null
 *        uses Machine::run()
 * @param critpath externally owned critical-path dependency recorder
 *        to attach (obs/critpath.hh); forces the serial kernel
 */
RunResult runApp(App &app, const RunSpec &spec, bool verify_fatal = true,
                 check::InvariantAuditor *auditor = nullptr,
                 RunDriver *driver = nullptr,
                 obs::CritPathRecorder *critpath = nullptr);

/** Convenience: build an App from a factory and run it. */
RunResult runApp(const AppFactory &factory, const RunSpec &spec,
                 bool verify_fatal = true,
                 check::InvariantAuditor *auditor = nullptr,
                 RunDriver *driver = nullptr,
                 obs::CritPathRecorder *critpath = nullptr);

} // namespace alewife::core

#endif // ALEWIFE_CORE_RUNNER_HH
