/**
 * @file
 * Application interface: one implementation per paper benchmark.
 *
 * An App knows how to (a) generate its workload deterministically,
 * (b) compute a sequential reference result, and (c) run itself on a
 * Machine under any of the five mechanisms. Numeric results are checked
 * against the reference on every run, so the coherence protocol and
 * message plumbing are verified by real data, not just counters.
 */

#ifndef ALEWIFE_CORE_APP_HH
#define ALEWIFE_CORE_APP_HH

#include <memory>
#include <string>

#include "core/mechanism.hh"
#include "machine/machine.hh"
#include "sim/coro.hh"

namespace alewife::obs {
class MetricsRegistry;
}

namespace alewife::core {

/**
 * Base class for the paper's four applications (and any user app).
 */
class App
{
  public:
    virtual ~App() = default;

    /** Workload name ("em3d", "unstruc", "iccg", "moldyn"). */
    virtual std::string name() const = 0;

    /**
     * Allocate shared state / register handlers / partition data on
     * @p m for a run under @p mech. Called once per Machine.
     */
    virtual void setup(Machine &m, Mechanism mech) = 0;

    /** Build the program coroutine for one node. */
    virtual sim::Thread program(proc::Ctx &ctx) = 0;

    /**
     * Result checksum after the run (gathered from shared memory or the
     * per-node partitions, depending on the mechanism).
     */
    virtual double checksum() const = 0;

    /** Sequential-reference checksum for verification. */
    virtual double reference() const = 0;

    /** Relative tolerance for checksum verification. */
    virtual double tolerance() const { return 1e-9; }

    /**
     * Export application-level metrics into an attached recorder's
     * registry. Called by runApp after the run completes and before
     * the recorder finalizes, only when observability is on — so apps
     * may account workload-specific traffic (e.g. per-edge message
     * counts) without ever perturbing the simulation. Must not touch
     * machine or application state (results are bit-identical with
     * observability attached or detached).
     */
    virtual void exportMetrics(obs::MetricsRegistry &) const {}
};

/** Creates fresh App instances (one per run). */
using AppFactory = std::function<std::unique_ptr<App>()>;

} // namespace alewife::core

#endif // ALEWIFE_CORE_APP_HH
