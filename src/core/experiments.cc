#include "core/experiments.hh"

#include "sim/logging.hh"

namespace alewife::core {

std::vector<RunResult>
runAllMechanisms(const AppFactory &app, const MachineConfig &base,
                 const std::vector<Mechanism> &mechs)
{
    std::vector<RunResult> out;
    for (Mechanism m : mechs) {
        RunSpec spec;
        spec.machine = base;
        spec.mechanism = m;
        out.push_back(runApp(app, spec));
    }
    return out;
}

std::vector<MechSeries>
bisectionSweep(const AppFactory &app, const MachineConfig &base,
               const std::vector<Mechanism> &mechs,
               const std::vector<double> &bisections,
               std::uint32_t cross_msg_bytes)
{
    std::vector<MechSeries> out;
    const double native = base.bisectionBytesPerCycle();
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        for (double target : bisections) {
            if (target > native)
                ALEWIFE_FATAL("cannot emulate a bisection above native");
            RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            spec.crossTraffic.bytesPerCycle = native - target;
            spec.crossTraffic.messageBytes = cross_msg_bytes;
            s.points.push_back({target, runApp(app, spec)});
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<MechSeries>
msgLenSweep(const AppFactory &app, const MachineConfig &base,
            const std::vector<Mechanism> &mechs,
            double cross_bytes_per_cycle,
            const std::vector<std::uint32_t> &lengths)
{
    std::vector<MechSeries> out;
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        for (std::uint32_t len : lengths) {
            RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            spec.crossTraffic.bytesPerCycle = cross_bytes_per_cycle;
            spec.crossTraffic.messageBytes = len;
            s.points.push_back(
                {static_cast<double>(len), runApp(app, spec)});
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<MechSeries>
clockSweep(const AppFactory &app, const MachineConfig &base,
           const std::vector<Mechanism> &mechs,
           const std::vector<double> &mhz_values)
{
    std::vector<MechSeries> out;
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        for (double mhz : mhz_values) {
            RunSpec spec;
            spec.machine = base;
            spec.machine.procMhz = mhz;
            spec.mechanism = m;
            const double lat = spec.machine.onewayLatencyCycles(
                24, static_cast<int>(spec.machine.averageHops() + 0.5));
            s.points.push_back({lat, runApp(app, spec)});
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<MechSeries>
idealLatencySweep(const AppFactory &app, const MachineConfig &base,
                  const std::vector<Mechanism> &mechs,
                  const std::vector<double> &latencies)
{
    std::vector<MechSeries> out;
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        if (isSharedMemory(m)) {
            for (double lat : latencies) {
                RunSpec spec;
                spec.machine = base;
                spec.machine.idealNet = true;
                spec.machine.idealNetLatencyCycles = lat;
                spec.mechanism = m;
                s.points.push_back({lat, runApp(app, spec)});
            }
        } else {
            // Message passing is asynchronous and unacknowledged; the
            // paper plots it flat at the base machine's performance.
            RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            RunResult r = runApp(app, spec);
            for (double lat : latencies)
                s.points.push_back({lat, r});
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace alewife::core
