#include "core/experiments.hh"

#include "sim/logging.hh"

namespace alewife::core {

namespace {

/**
 * Sweeps build a flat job list (one entry per mechanism x point),
 * execute the whole batch through one SweepEngine pass, then reshape
 * the flat, submission-ordered results back into per-mechanism series.
 */
std::vector<RunResult>
runBatch(const AppFactory &app, const std::vector<RunSpec> &specs,
         const exp::EngineOptions &opts)
{
    std::vector<exp::Job> jobs;
    jobs.reserve(specs.size());
    for (const auto &spec : specs)
        jobs.push_back(exp::Job{app, spec, opts.appKey});
    exp::SweepEngine engine(opts);
    return engine.run(jobs);
}

} // namespace

std::optional<SweepKind>
sweepKindFromName(const std::string &s)
{
    if (s == "none")
        return SweepKind::None;
    if (s == "bisection")
        return SweepKind::Bisection;
    if (s == "msglen")
        return SweepKind::MsgLen;
    if (s == "clock")
        return SweepKind::Clock;
    if (s == "ideal-latency")
        return SweepKind::IdealLatency;
    return std::nullopt;
}

SweepPlan
planSweep(const MachineConfig &base, const SweepRequest &req)
{
    SweepPlan plan;
    plan.kind = req.kind;
    plan.mechs = req.mechs;

    // The per-kind loops below define the canonical submission order
    // (outer mechanisms, inner points). Nothing may reorder them: the
    // flat index doubles as the farm job id, and distributed runs are
    // bit-identical to local ones precisely because both sides walk
    // this list the same way.
    switch (req.kind) {
    case SweepKind::None:
        for (Mechanism m : req.mechs) {
            RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            plan.specs.push_back(std::move(spec));
        }
        break;

    case SweepKind::Bisection: {
        const double native = base.bisectionBytesPerCycle();
        for (Mechanism m : req.mechs) {
            std::vector<double> xs;
            std::vector<std::size_t> idx;
            for (double target : req.points) {
                if (target > native)
                    ALEWIFE_FATAL(
                        "cannot emulate a bisection above native");
                RunSpec spec;
                spec.machine = base;
                spec.mechanism = m;
                spec.crossTraffic.bytesPerCycle = native - target;
                spec.crossTraffic.messageBytes = req.crossMsgBytes;
                idx.push_back(plan.specs.size());
                plan.specs.push_back(std::move(spec));
                xs.push_back(target);
            }
            plan.xs.push_back(std::move(xs));
            plan.specIndex.push_back(std::move(idx));
        }
        break;
    }

    case SweepKind::MsgLen:
        for (Mechanism m : req.mechs) {
            std::vector<double> xs;
            std::vector<std::size_t> idx;
            for (double len : req.points) {
                RunSpec spec;
                spec.machine = base;
                spec.mechanism = m;
                spec.crossTraffic.bytesPerCycle =
                    req.crossBytesPerCycle;
                spec.crossTraffic.messageBytes =
                    static_cast<std::uint32_t>(len);
                idx.push_back(plan.specs.size());
                plan.specs.push_back(std::move(spec));
                xs.push_back(len);
            }
            plan.xs.push_back(std::move(xs));
            plan.specIndex.push_back(std::move(idx));
        }
        break;

    case SweepKind::Clock:
        for (Mechanism m : req.mechs) {
            std::vector<double> xs;
            std::vector<std::size_t> idx;
            for (double mhz : req.points) {
                RunSpec spec;
                spec.machine = base;
                spec.machine.procMhz = mhz;
                spec.mechanism = m;
                // x = one-way latency of a 24-byte packet in cycles.
                xs.push_back(spec.machine.onewayLatencyCycles(
                    24, static_cast<int>(
                            spec.machine.averageHops() + 0.5)));
                idx.push_back(plan.specs.size());
                plan.specs.push_back(std::move(spec));
            }
            plan.xs.push_back(std::move(xs));
            plan.specIndex.push_back(std::move(idx));
        }
        break;

    case SweepKind::IdealLatency:
        // Shared-memory mechanisms contribute one job per latency
        // point; message passing is asynchronous and unacknowledged,
        // so the paper plots it flat: one job at the base machine,
        // replicated across the axis.
        for (Mechanism m : req.mechs) {
            std::vector<double> xs;
            std::vector<std::size_t> idx;
            if (isSharedMemory(m)) {
                for (double lat : req.points) {
                    RunSpec spec;
                    spec.machine = base;
                    spec.machine.idealNet = true;
                    spec.machine.idealNetLatencyCycles = lat;
                    spec.mechanism = m;
                    idx.push_back(plan.specs.size());
                    plan.specs.push_back(std::move(spec));
                    xs.push_back(lat);
                }
            } else {
                RunSpec spec;
                spec.machine = base;
                spec.mechanism = m;
                const std::size_t flat = plan.specs.size();
                plan.specs.push_back(std::move(spec));
                for (double lat : req.points) {
                    idx.push_back(flat);
                    xs.push_back(lat);
                }
            }
            plan.xs.push_back(std::move(xs));
            plan.specIndex.push_back(std::move(idx));
        }
        break;
    }
    return plan;
}

std::vector<MechSeries>
seriesFromPlan(const SweepPlan &plan,
               const std::vector<RunResult> &results)
{
    std::vector<MechSeries> out;
    out.reserve(plan.mechs.size());
    for (std::size_t i = 0; i < plan.mechs.size(); ++i) {
        MechSeries s;
        s.mech = plan.mechs[i];
        for (std::size_t j = 0; j < plan.xs[i].size(); ++j)
            s.points.push_back(
                {plan.xs[i][j], results[plan.specIndex[i][j]]});
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<RunResult>
runAllMechanisms(const AppFactory &app, const MachineConfig &base,
                 const std::vector<Mechanism> &mechs,
                 const exp::EngineOptions &opts)
{
    SweepRequest req;
    req.kind = SweepKind::None;
    req.mechs = mechs;
    return runBatch(app, planSweep(base, req).specs, opts);
}

std::vector<MechSeries>
bisectionSweep(const AppFactory &app, const MachineConfig &base,
               const std::vector<Mechanism> &mechs,
               const std::vector<double> &bisections,
               std::uint32_t cross_msg_bytes,
               const exp::EngineOptions &opts)
{
    SweepRequest req;
    req.kind = SweepKind::Bisection;
    req.mechs = mechs;
    req.points = bisections;
    req.crossMsgBytes = cross_msg_bytes;
    const SweepPlan plan = planSweep(base, req);
    return seriesFromPlan(plan, runBatch(app, plan.specs, opts));
}

std::vector<MechSeries>
msgLenSweep(const AppFactory &app, const MachineConfig &base,
            const std::vector<Mechanism> &mechs,
            double cross_bytes_per_cycle,
            const std::vector<std::uint32_t> &lengths,
            const exp::EngineOptions &opts)
{
    SweepRequest req;
    req.kind = SweepKind::MsgLen;
    req.mechs = mechs;
    for (std::uint32_t len : lengths)
        req.points.push_back(static_cast<double>(len));
    req.crossBytesPerCycle = cross_bytes_per_cycle;
    const SweepPlan plan = planSweep(base, req);
    return seriesFromPlan(plan, runBatch(app, plan.specs, opts));
}

std::vector<MechSeries>
clockSweep(const AppFactory &app, const MachineConfig &base,
           const std::vector<Mechanism> &mechs,
           const std::vector<double> &mhz_values,
           const exp::EngineOptions &opts)
{
    SweepRequest req;
    req.kind = SweepKind::Clock;
    req.mechs = mechs;
    req.points = mhz_values;
    const SweepPlan plan = planSweep(base, req);
    return seriesFromPlan(plan, runBatch(app, plan.specs, opts));
}

std::vector<MechSeries>
idealLatencySweep(const AppFactory &app, const MachineConfig &base,
                  const std::vector<Mechanism> &mechs,
                  const std::vector<double> &latencies,
                  const exp::EngineOptions &opts)
{
    SweepRequest req;
    req.kind = SweepKind::IdealLatency;
    req.mechs = mechs;
    req.points = latencies;
    const SweepPlan plan = planSweep(base, req);
    return seriesFromPlan(plan, runBatch(app, plan.specs, opts));
}

} // namespace alewife::core
