#include "core/experiments.hh"

#include "sim/logging.hh"

namespace alewife::core {

namespace {

/**
 * Sweeps build a flat job list (one entry per mechanism x point),
 * execute the whole batch through one SweepEngine pass, then reshape
 * the flat, submission-ordered results back into per-mechanism series.
 */
std::vector<RunResult>
runBatch(const AppFactory &app, std::vector<RunSpec> specs,
         const exp::EngineOptions &opts)
{
    std::vector<exp::Job> jobs;
    jobs.reserve(specs.size());
    for (auto &spec : specs)
        jobs.push_back(exp::Job{app, std::move(spec), opts.appKey});
    exp::SweepEngine engine(opts);
    return engine.run(jobs);
}

} // namespace

std::vector<RunResult>
runAllMechanisms(const AppFactory &app, const MachineConfig &base,
                 const std::vector<Mechanism> &mechs,
                 const exp::EngineOptions &opts)
{
    std::vector<RunSpec> specs;
    specs.reserve(mechs.size());
    for (Mechanism m : mechs) {
        RunSpec spec;
        spec.machine = base;
        spec.mechanism = m;
        specs.push_back(std::move(spec));
    }
    return runBatch(app, std::move(specs), opts);
}

std::vector<MechSeries>
bisectionSweep(const AppFactory &app, const MachineConfig &base,
               const std::vector<Mechanism> &mechs,
               const std::vector<double> &bisections,
               std::uint32_t cross_msg_bytes,
               const exp::EngineOptions &opts)
{
    const double native = base.bisectionBytesPerCycle();
    std::vector<RunSpec> specs;
    specs.reserve(mechs.size() * bisections.size());
    for (Mechanism m : mechs) {
        for (double target : bisections) {
            if (target > native)
                ALEWIFE_FATAL("cannot emulate a bisection above native");
            RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            spec.crossTraffic.bytesPerCycle = native - target;
            spec.crossTraffic.messageBytes = cross_msg_bytes;
            specs.push_back(std::move(spec));
        }
    }
    const auto results = runBatch(app, std::move(specs), opts);

    std::vector<MechSeries> out;
    std::size_t k = 0;
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        for (double target : bisections)
            s.points.push_back({target, results[k++]});
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<MechSeries>
msgLenSweep(const AppFactory &app, const MachineConfig &base,
            const std::vector<Mechanism> &mechs,
            double cross_bytes_per_cycle,
            const std::vector<std::uint32_t> &lengths,
            const exp::EngineOptions &opts)
{
    std::vector<RunSpec> specs;
    specs.reserve(mechs.size() * lengths.size());
    for (Mechanism m : mechs) {
        for (std::uint32_t len : lengths) {
            RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            spec.crossTraffic.bytesPerCycle = cross_bytes_per_cycle;
            spec.crossTraffic.messageBytes = len;
            specs.push_back(std::move(spec));
        }
    }
    const auto results = runBatch(app, std::move(specs), opts);

    std::vector<MechSeries> out;
    std::size_t k = 0;
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        for (std::uint32_t len : lengths)
            s.points.push_back(
                {static_cast<double>(len), results[k++]});
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<MechSeries>
clockSweep(const AppFactory &app, const MachineConfig &base,
           const std::vector<Mechanism> &mechs,
           const std::vector<double> &mhz_values,
           const exp::EngineOptions &opts)
{
    std::vector<RunSpec> specs;
    std::vector<double> xs; // one-way latency axis, per point
    specs.reserve(mechs.size() * mhz_values.size());
    for (Mechanism m : mechs) {
        for (double mhz : mhz_values) {
            RunSpec spec;
            spec.machine = base;
            spec.machine.procMhz = mhz;
            spec.mechanism = m;
            xs.push_back(spec.machine.onewayLatencyCycles(
                24,
                static_cast<int>(spec.machine.averageHops() + 0.5)));
            specs.push_back(std::move(spec));
        }
    }
    const auto results = runBatch(app, std::move(specs), opts);

    std::vector<MechSeries> out;
    std::size_t k = 0;
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        for (std::size_t i = 0; i < mhz_values.size(); ++i, ++k)
            s.points.push_back({xs[k], results[k]});
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<MechSeries>
idealLatencySweep(const AppFactory &app, const MachineConfig &base,
                  const std::vector<Mechanism> &mechs,
                  const std::vector<double> &latencies,
                  const exp::EngineOptions &opts)
{
    // Shared-memory mechanisms contribute one job per latency point;
    // message passing is asynchronous and unacknowledged, so the paper
    // plots it flat: one job at the base machine, replicated.
    std::vector<RunSpec> specs;
    for (Mechanism m : mechs) {
        if (isSharedMemory(m)) {
            for (double lat : latencies) {
                RunSpec spec;
                spec.machine = base;
                spec.machine.idealNet = true;
                spec.machine.idealNetLatencyCycles = lat;
                spec.mechanism = m;
                specs.push_back(std::move(spec));
            }
        } else {
            RunSpec spec;
            spec.machine = base;
            spec.mechanism = m;
            specs.push_back(std::move(spec));
        }
    }
    const auto results = runBatch(app, std::move(specs), opts);

    std::vector<MechSeries> out;
    std::size_t k = 0;
    for (Mechanism m : mechs) {
        MechSeries s;
        s.mech = m;
        if (isSharedMemory(m)) {
            for (double lat : latencies)
                s.points.push_back({lat, results[k++]});
        } else {
            const RunResult &r = results[k++];
            for (double lat : latencies)
                s.points.push_back({lat, r});
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace alewife::core
