#include "msg/active_messages.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace alewife::msg {

void
HandlerEnv::send(NodeId dst, HandlerId h,
                 std::span<const std::uint64_t> args,
                 std::span<const std::uint64_t> body, bool bulk)
{
    Outgoing o;
    o.dst = dst;
    o.handler = h;
    o.args.assign(args.begin(), args.end());
    o.body.assign(body.begin(), body.end());
    o.bulk = bulk;
    outgoing_.push_back(std::move(o));
}

HandlerId
HandlerRegistry::add(HandlerFn fn)
{
    table_.push_back(std::move(fn));
    return static_cast<HandlerId>(table_.size() - 1);
}

void
HandlerRegistry::run(HandlerId id, HandlerEnv &env) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= table_.size())
        ALEWIFE_PANIC("unknown handler id ", id);
    table_[id](env);
}

NetIface::NetIface(NodeId self, EventQueue &eq, const MachineConfig &cfg,
                   proc::Proc &proc, net::Mesh &mesh,
                   HandlerRegistry &handlers, MachineCounters &counters)
    : self_(self), eq_(eq), cfg_(cfg), proc_(proc), mesh_(mesh),
      handlers_(handlers), counters_(counters)
{
}

Tick
NetIface::inject(NodeId dst, HandlerId h,
                 std::span<const std::uint64_t> args,
                 std::span<const std::uint64_t> body, bool bulk, Tick when)
{
    auto msg = std::make_unique<AmMessage>();
    msg->handler = h;
    msg->src = self_;
    msg->args.assign(args.begin(), args.end());
    msg->body.assign(body.begin(), body.end());
    msg->bulk = bulk;

    auto pkt = std::make_unique<net::Packet>();
    pkt->src = self_;
    pkt->dst = dst;
    pkt->kind = net::PacketKind::ActiveMessage;
    pkt->addBytes(VolCat::Headers, cfg_.amHeaderBytes);
    if (!msg->args.empty())
        pkt->addBytes(VolCat::Data,
                      static_cast<std::uint32_t>(8 * msg->args.size()));
    if (bulk) {
        // (address, length) descriptor plus the body padded to the DMA
        // alignment granularity (the padding loss Figure 5 shows for
        // ICCG's small bulk transfers).
        pkt->addBytes(VolCat::Headers, 8);
        const std::uint32_t raw =
            static_cast<std::uint32_t>(8 * msg->body.size());
        const std::uint32_t align = cfg_.dmaAlignBytes;
        const std::uint32_t padded = (raw + align - 1) / align * align;
        pkt->addBytes(VolCat::Data, padded);
        ++counters_.dmaTransfers;
    } else if (!msg->body.empty()) {
        pkt->addBytes(VolCat::Data,
                      static_cast<std::uint32_t>(8 * msg->body.size()));
    }
    pkt->payload = std::move(msg);

    if (when <= eq_.now())
        return mesh_.send(std::move(pkt));

    auto *raw = pkt.release();
    eq_.schedule(when,
                 EventMeta{EventTag::AmPacketLaunch,
                           reinterpret_cast<std::uintptr_t>(raw), 0},
                 [this, raw]() {
                     mesh_.send(std::unique_ptr<net::Packet>(raw));
                 });
    return 0;
}

bool
NetIface::receive(net::Packet &pkt)
{
    if (static_cast<int>(inq_.size()) >= cfg_.niInputQueueSlots) {
        ++counters_.niQueueFullStalls;
        return false;
    }
    auto *am = dynamic_cast<AmMessage *>(pkt.payload.get());
    if (!am)
        ALEWIFE_PANIC("non-AM packet delivered to NI at node ", self_);
    pkt.payload.release();
    inq_.emplace_back(am);

    if (mode_ == RecvMode::Interrupt && !drainScheduled_) {
        drainScheduled_ = true;
        const Tick at = std::max(eq_.now(), lastHandlerDone_);
        eq_.schedule(at,
                     EventMeta{EventTag::AmDrain,
                               static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(self_)),
                               0},
                     [this]() { drainNext(); });
    }
    // Polling mode: the program discovers the message at its next poll.
    proc_.recheckCond();
    return true;
}

Tick
NetIface::runHandler(const AmMessage &m)
{
    ALEWIFE_TRACE_EVENT(TraceCat::Msg, eq_.now(), "handler ",
                        m.handler, " at ", self_, " from ", m.src,
                        " args ", m.args.size(), " body ",
                        m.body.size(),
                        mode_ == RecvMode::Interrupt ? " (int)"
                                                     : " (poll)");
    HandlerEnv env(self_, m, *this);
    handlers_.run(m.handler, env);

    double cost = cfg_.amDispatchCycles
                  + cfg_.amRecvPerWordCycles
                        * static_cast<double>(m.args.size())
                  + env.extraCycles_;
    if (mode_ == RecvMode::Interrupt) {
        cost += cfg_.amInterruptCycles;
        ++counters_.interruptsTaken;
    } else {
        ++counters_.messagesPolled;
    }
    // Replies cost normal send overhead, paid inside the handler.
    for (const auto &o : env.outgoing_) {
        cost += cfg_.amSendCycles
                + cfg_.amSendPerWordCycles
                      * static_cast<double>(o.args.size());
        if (o.bulk)
            cost += cfg_.dmaSetupCycles;
    }

    const Tick done = proc_.chargeHandler(cost, TimeCat::MsgOverhead);

    for (auto &o : env.outgoing_)
        inject(o.dst, o.handler, o.args, o.body, o.bulk, done);

    ++delivered_;
    proc_.recheckCond();
    return done;
}

void
NetIface::drainNext()
{
    if (inq_.empty()) {
        drainScheduled_ = false;
        return;
    }
    auto m = std::move(inq_.front());
    inq_.pop_front();
    lastHandlerDone_ = runHandler(*m);
    eq_.schedule(lastHandlerDone_,
                 EventMeta{EventTag::AmDrain,
                           static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(self_)),
                           0},
                 [this]() { drainNext(); });
}

int
NetIface::pollDrain()
{
    int n = 0;
    while (!inq_.empty()) {
        auto m = std::move(inq_.front());
        inq_.pop_front();
        runHandler(*m);
        ++n;
    }
    return n;
}

} // namespace alewife::msg
