#include "msg/dma.hh"

namespace alewife::msg {

double
DmaCostModel::gatherCycles(std::uint64_t words) const
{
    // gatherScatterPerLineCycles is quoted per cache line of data.
    const double lines = static_cast<double>(words * 8)
                         / static_cast<double>(cfg_.lineBytes);
    return lines * cfg_.gatherScatterPerLineCycles;
}

double
DmaCostModel::scatterCycles(std::uint64_t words) const
{
    return gatherCycles(words);
}

std::uint32_t
DmaCostModel::paddedBytes(std::uint64_t words) const
{
    const std::uint32_t raw = static_cast<std::uint32_t>(words * 8);
    const std::uint32_t align = cfg_.dmaAlignBytes;
    return (raw + align - 1) / align * align;
}

} // namespace alewife::msg
