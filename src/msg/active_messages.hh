/**
 * @file
 * Active messages and the network interface (NI).
 *
 * Models Alewife's user-level messaging (Section 3.2):
 *   send_am(proc, handler, args...) — construct and launch costs charged
 *   to the sender; delivery either interrupts the receiving processor
 *   (amInterruptCycles per message) or waits for an explicit poll
 *   (Remote Queues style). Bulk transfer appends a DMA body to the
 *   message, padded to the DMA alignment granularity.
 *
 * The NI input queue is finite: when handlers cannot keep up, the queue
 * fills, the mesh parks packets against the final link, and congestion
 * backs up into the network — the endpoint-occupancy effect of
 * Section 5.1.
 */

#ifndef ALEWIFE_MSG_ACTIVE_MESSAGES_HH
#define ALEWIFE_MSG_ACTIVE_MESSAGES_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "machine/config.hh"
#include "net/mesh.hh"
#include "net/packet.hh"
#include "proc/processor.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace alewife::ckpt {
class Access;
}

namespace alewife::msg {

/** Index into the machine-wide handler table. */
using HandlerId = int;

/**
 * Build an argument-word vector. Use this instead of a braced
 * initializer list at co_await'ed send sites: GCC 12's coroutine
 * lowering miscompiles init-list backing arrays that span a suspension
 * point ("array used as initializer" / double frees).
 */
template <typename... Ts>
std::vector<std::uint64_t>
amArgs(Ts... vs)
{
    std::vector<std::uint64_t> out;
    out.reserve(sizeof...(vs));
    (out.push_back(static_cast<std::uint64_t>(vs)), ...);
    return out;
}

/** An active message (possibly with a DMA bulk body). */
struct AmMessage : net::PayloadBase
{
    HandlerId handler = -1;
    NodeId src = -1;
    /** Register-file arguments (at most MachineConfig::amMaxWords/2). */
    std::vector<std::uint64_t> args;
    /** DMA body, present only for bulk transfers. */
    std::vector<std::uint64_t> body;
    bool bulk = false;
};

class NetIface;

/**
 * Execution environment handed to a message handler.
 *
 * Handlers mutate application state synchronously, may charge extra
 * processor cycles for their work, and may send replies; replies leave
 * the node when the handler's stolen cycles complete.
 */
class HandlerEnv
{
  public:
    HandlerEnv(NodeId self, const AmMessage &m, NetIface &ni)
        : self_(self), msg_(m), ni_(ni)
    {
    }

    NodeId self() const { return self_; }
    const AmMessage &msg() const { return msg_; }

    /** Charge @p cycles of handler work beyond the dispatch cost. */
    void charge(double cycles) { extraCycles_ += cycles; }

    /** Queue a reply; injected when this handler completes. */
    void send(NodeId dst, HandlerId h,
              std::span<const std::uint64_t> args,
              std::span<const std::uint64_t> body = {}, bool bulk = false);

  private:
    friend class NetIface;

    struct Outgoing
    {
        NodeId dst;
        HandlerId handler;
        std::vector<std::uint64_t> args;
        std::vector<std::uint64_t> body;
        bool bulk;
    };

    NodeId self_;
    const AmMessage &msg_;
    NetIface &ni_;
    double extraCycles_ = 0.0;
    std::vector<Outgoing> outgoing_;
};

using HandlerFn = std::function<void(HandlerEnv &)>;

/**
 * Machine-wide table of registered handlers.
 */
class HandlerRegistry
{
  public:
    HandlerId add(HandlerFn fn);
    void run(HandlerId id, HandlerEnv &env) const;
    void clear() { table_.clear(); }

  private:
    std::vector<HandlerFn> table_;
};

/** How this node extracts messages from the network. */
enum class RecvMode : std::uint8_t
{
    Interrupt,
    Polling,
};

/**
 * One node's network interface.
 */
class NetIface
{
  public:
    NetIface(NodeId self, EventQueue &eq, const MachineConfig &cfg,
             proc::Proc &proc, net::Mesh &mesh, HandlerRegistry &handlers,
             MachineCounters &counters);

    void setMode(RecvMode m) { mode_ = m; }
    RecvMode mode() const { return mode_; }

    /**
     * Launch a message at time @p when (>= now). Caller has already
     * charged the construction overhead.
     * @return ticks the packet waited to enter its first link (sender
     *         back-pressure indication)
     */
    Tick inject(NodeId dst, HandlerId h,
                std::span<const std::uint64_t> args,
                std::span<const std::uint64_t> body, bool bulk, Tick when);

    /** Network sink; false when the input queue is full. */
    bool receive(net::Packet &pkt);

    /**
     * Drain the input queue inline (polling mode; program Running).
     * @return number of messages handled
     */
    int pollDrain();

    bool queueEmpty() const { return inq_.empty(); }
    int queueDepth() const { return static_cast<int>(inq_.size()); }

    /** Total messages this NI has delivered to handlers. */
    std::uint64_t delivered() const { return delivered_; }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    /** Run one handler; returns its completion tick. */
    Tick runHandler(const AmMessage &m);

    /** Interrupt-mode drain chain. */
    void drainNext();

    NodeId self_;
    EventQueue &eq_;
    const MachineConfig &cfg_;
    proc::Proc &proc_;
    net::Mesh &mesh_;
    HandlerRegistry &handlers_;
    MachineCounters &counters_;

    RecvMode mode_ = RecvMode::Interrupt;
    std::deque<std::unique_ptr<AmMessage>> inq_;
    bool drainScheduled_ = false;
    Tick lastHandlerDone_ = 0;
    std::uint64_t delivered_ = 0;
};

} // namespace alewife::msg

#endif // ALEWIFE_MSG_ACTIVE_MESSAGES_HH
