/**
 * @file
 * DMA bulk-transfer cost helpers.
 *
 * Alewife's bulk transfer appends (address, length) pairs to an active
 * message; the CMMU streams the data via DMA. The hardware part is
 * cheap — the expensive parts on irregular applications are the software
 * gather into a contiguous buffer on the send side and the scatter on
 * the receive side (up to 60 cycles per 16-byte line, Section 4), plus
 * double-word alignment padding on small transfers (Figure 5, ICCG).
 * This module centralizes those cost formulas so application variants
 * and tests agree on them.
 */

#ifndef ALEWIFE_MSG_DMA_HH
#define ALEWIFE_MSG_DMA_HH

#include <cstdint>

#include "machine/config.hh"

namespace alewife::msg {

/** Cost model for gather/scatter copying around DMA transfers. */
class DmaCostModel
{
  public:
    explicit DmaCostModel(const MachineConfig &cfg) : cfg_(cfg) {}

    /** Processor cycles to gather @p words 64-bit words into a buffer. */
    double gatherCycles(std::uint64_t words) const;

    /** Processor cycles to scatter @p words out of a receive buffer. */
    double scatterCycles(std::uint64_t words) const;

    /** Sender-side setup cost of one DMA descriptor. */
    double setupCycles() const { return cfg_.dmaSetupCycles; }

    /** Bytes on the wire for a body of @p words after alignment. */
    std::uint32_t paddedBytes(std::uint64_t words) const;

  private:
    const MachineConfig &cfg_;
};

} // namespace alewife::msg

#endif // ALEWIFE_MSG_DMA_HH
