/**
 * @file
 * MOLDYN workload: molecules in a cuboidal region with a Maxwellian
 * velocity distribution, a cutoff-radius interaction list rebuilt
 * periodically, and a recursive-coordinate-bisection (RCB) partition
 * (Berger-Bokhari) assigning molecule groups to processors
 * (Section 4.4 of the paper).
 */

#ifndef ALEWIFE_WORKLOAD_MOLECULES_HH
#define ALEWIFE_WORKLOAD_MOLECULES_HH

#include <cstdint>
#include <vector>

namespace alewife::workload {

/** Parameters of the molecular-dynamics box. */
struct MoldynParams
{
    int molecules = 1024;
    double boxSide = 8.0;     ///< cuboid side length
    double cutoff = 1.3;      ///< interaction cutoff radius
    int nprocs = 32;
    std::uint64_t seed = 31337;
};

/** One molecule's state. */
struct Molecule
{
    double x[3];
    double v[3];
};

/** An interacting pair (i < j), with both owners cached. */
struct Pair
{
    std::int32_t i;
    std::int32_t j;
};

/**
 * The generated system: molecules reordered so that each processor owns
 * a contiguous block chosen by RCB.
 */
struct MoldynSystem
{
    MoldynParams params;
    std::vector<Molecule> init;       ///< initial state, RCB order
    std::vector<std::int32_t> firstOf; ///< block starts, size nprocs+1
    std::vector<Pair> pairs;          ///< cutoff pairs, i < j

    int owner(std::int32_t mol) const;
    std::int32_t numMoleculesOn(int proc) const;

    /**
     * Reference computation: @p iters steps of
     *   force phase: for each pair, a spring-like force
     *     f_i += k*(x_j - x_i), f_j -= k*(x_j - x_i)
     *   update phase: v += f*dt; x += v*dt (no list rebuild).
     * @return checksum (sum of all coordinates)
     */
    double sequential(int iters) const;
};

/** Generate the system deterministically (RCB + pair list). */
MoldynSystem makeMoldyn(const MoldynParams &p);

} // namespace alewife::workload

#endif // ALEWIFE_WORKLOAD_MOLECULES_HH
