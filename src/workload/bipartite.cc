#include "workload/bipartite.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace alewife::workload {

namespace {

/**
 * Pick a source node for an in-edge of node @p n (which lives on
 * @p my_proc): with probability pctRemote the source lies on a
 * different processor within +/- span partitions, else on my_proc.
 */
std::int32_t
pickSource(const BipartiteParams &p, Rng &rng, int my_proc)
{
    const int per = (p.nodesPerSide + p.nprocs - 1) / p.nprocs;
    int proc = my_proc;
    if (rng.nextDouble() < p.pctRemote && p.nprocs > 1) {
        // Remote: uniform over the 2*span neighbouring partitions.
        int offset = 1 + static_cast<int>(rng.nextBounded(p.span));
        if (rng.nextDouble() < 0.5)
            offset = -offset;
        proc = (my_proc + offset % p.nprocs + p.nprocs) % p.nprocs;
        if (proc == my_proc)
            proc = (my_proc + 1) % p.nprocs;
    }
    const std::int32_t lo = static_cast<std::int32_t>(proc) * per;
    const std::int32_t hi =
        std::min<std::int32_t>(lo + per, p.nodesPerSide);
    if (lo >= hi)
        return static_cast<std::int32_t>(rng.nextBounded(p.nodesPerSide));
    return lo + static_cast<std::int32_t>(rng.nextBounded(hi - lo));
}

void
buildSide(const BipartiteParams &p, Rng &rng,
          std::vector<std::int32_t> &row, std::vector<BipartiteEdge> &edges)
{
    const int per = (p.nodesPerSide + p.nprocs - 1) / p.nprocs;
    row.resize(p.nodesPerSide + 1);
    edges.reserve(static_cast<std::size_t>(p.nodesPerSide) * p.degree);
    for (std::int32_t n = 0; n < p.nodesPerSide; ++n) {
        row[n] = static_cast<std::int32_t>(edges.size());
        const int my_proc = n / per;
        for (int d = 0; d < p.degree; ++d) {
            BipartiteEdge e;
            e.src = pickSource(p, rng, my_proc);
            e.weight = rng.nextRange(0.001, 0.1);
            edges.push_back(e);
        }
    }
    row[p.nodesPerSide] = static_cast<std::int32_t>(edges.size());
}

} // namespace

int
BipartiteGraph::owner(std::int32_t node) const
{
    const int per =
        (params.nodesPerSide + params.nprocs - 1) / params.nprocs;
    return node / per;
}

std::int32_t
BipartiteGraph::firstNode(int proc) const
{
    const int per =
        (params.nodesPerSide + params.nprocs - 1) / params.nprocs;
    return std::min<std::int32_t>(proc * per, params.nodesPerSide);
}

std::int32_t
BipartiteGraph::numNodesOn(int proc) const
{
    return std::min<std::int32_t>(firstNode(proc + 1),
                                  params.nodesPerSide)
           - firstNode(proc);
}

double
BipartiteGraph::sequential(int iters) const
{
    std::vector<double> e = eInit;
    std::vector<double> h = hInit;
    for (int it = 0; it < iters; ++it) {
        // E phase reads H, then H phase reads the updated E — the
        // red/black structure makes per-phase updates independent.
        for (std::int32_t n = 0; n < params.nodesPerSide; ++n) {
            double v = e[n];
            for (std::int32_t k = eRow[n]; k < eRow[n + 1]; ++k)
                v -= eEdges[k].weight * h[eEdges[k].src];
            e[n] = v;
        }
        for (std::int32_t n = 0; n < params.nodesPerSide; ++n) {
            double v = h[n];
            for (std::int32_t k = hRow[n]; k < hRow[n + 1]; ++k)
                v -= hEdges[k].weight * e[hEdges[k].src];
            h[n] = v;
        }
    }
    double sum = 0.0;
    for (double v : e)
        sum += v;
    for (double v : h)
        sum += v;
    return sum;
}

BipartiteGraph
makeBipartite(const BipartiteParams &p)
{
    if (p.nodesPerSide < p.nprocs)
        ALEWIFE_FATAL("EM3D graph smaller than the machine");
    BipartiteGraph g;
    g.params = p;
    Rng rng(p.seed);
    buildSide(p, rng, g.eRow, g.eEdges);
    buildSide(p, rng, g.hRow, g.hEdges);
    g.eInit.resize(p.nodesPerSide);
    g.hInit.resize(p.nodesPerSide);
    for (auto &v : g.eInit)
        v = rng.nextRange(0.5, 1.5);
    for (auto &v : g.hInit)
        v = rng.nextRange(0.5, 1.5);
    return g;
}

} // namespace alewife::workload
