/**
 * @file
 * ICCG workload: synthetic level-structured sparse triangular system.
 *
 * The paper solves the triangular systems arising from an incomplete
 * Cholesky factorization of BCSSTK32 (a 2M-element Harwell-Boeing
 * automobile-chassis matrix). That dataset is not available offline, so
 * we synthesize a lower-triangular matrix with the same computational
 * character: a directed acyclic dependence graph with a banded-plus-
 * random sparsity pattern, a deep level structure, and a couple of
 * in-edges per row on average. The substitution preserves exactly what
 * drives the paper's ICCG results — fine-grained dataflow communication
 * along DAG edges with low computation per edge (2 FLOPs).
 */

#ifndef ALEWIFE_WORKLOAD_SPARSE_MATRIX_HH
#define ALEWIFE_WORKLOAD_SPARSE_MATRIX_HH

#include <cstdint>
#include <vector>

namespace alewife::workload {

/** Parameters of the synthetic triangular system. */
struct TriangularParams
{
    int rows = 2000;
    int avgInEdges = 3;  ///< sub-diagonal nonzeros per row (approx)
    int band = 64;       ///< most dependencies within this distance
    int nprocs = 32;
    std::uint64_t seed = 4242;
};

/** One sub-diagonal nonzero: row depends on col. */
struct TriEntry
{
    std::int32_t col;
    double val;
};

/**
 * The system L x = b with unit-ish diagonal, in CSR by row.
 * Rows are wrap-mapped (interleaved) over processors for load balance,
 * as in parallel ICCG implementations.
 */
struct TriangularSystem
{
    TriangularParams params;
    std::vector<std::int32_t> row;  ///< CSR offsets, size rows+1
    std::vector<TriEntry> entries;  ///< in-edges (dependencies)
    std::vector<double> diag;       ///< diagonal of L
    std::vector<double> b;          ///< right-hand side

    /** Owning processor of a row (wrap mapping). */
    int owner(std::int32_t r) const { return r % params.nprocs; }

    /** Rows owned by @p proc, in ascending order. */
    std::vector<std::int32_t> rowsOf(int proc) const;

    /** Number of in-edges of row @p r. */
    std::int32_t
    inDegree(std::int32_t r) const
    {
        return row[r + 1] - row[r];
    }

    /** Sequential forward substitution; returns sum of x. */
    double sequential() const;

    /** Full solution vector (for per-element verification). */
    std::vector<double> solve() const;

    /** Longest dependence chain (the DAG's critical path length). */
    int levels() const;
};

/** Generate a system deterministically. */
TriangularSystem makeTriangular(const TriangularParams &p);

} // namespace alewife::workload

#endif // ALEWIFE_WORKLOAD_SPARSE_MATRIX_HH
