/**
 * @file
 * UNSTRUC workload: synthetic 3D unstructured mesh.
 *
 * The paper uses MESH2K, a 2000-node irregular mesh distributed with the
 * Maryland/Wisconsin code. We synthesize a mesh with the same character:
 * nodes scattered in a unit cube, edges connecting spatial neighbours,
 * block-partitioned after a spatial sort so most edges are processor-
 * local. Each edge computation costs 75 single-precision FLOPs and
 * accumulates contributions into both endpoint nodes (Section 4.2).
 */

#ifndef ALEWIFE_WORKLOAD_UNSTRUCTURED_MESH_HH
#define ALEWIFE_WORKLOAD_UNSTRUCTURED_MESH_HH

#include <cstdint>
#include <vector>

namespace alewife::workload {

/** Parameters of the synthetic mesh. */
struct MeshParams
{
    int nodes = 2000;        ///< MESH2K: 2000
    int avgDegree = 7;       ///< edges per node (approx)
    int nprocs = 32;
    std::uint64_t seed = 999;
};

/** An undirected edge with a coupling weight. */
struct MeshEdge
{
    std::int32_t u;
    std::int32_t v;
    double w;
};

/** The generated mesh, spatially sorted and block-partitioned. */
struct UnstructuredMesh
{
    MeshParams params;
    std::vector<MeshEdge> edges;   ///< u < v, sorted by (owner(u), u)
    std::vector<double> xInit;     ///< initial node state

    int owner(std::int32_t node) const;
    std::int32_t firstNode(int proc) const;
    std::int32_t numNodesOn(int proc) const;

    /**
     * Reference computation: @p iters sweeps of
     *   f[u] += c, f[v] -= c with c = w * (x[u] - x[v]);
     *   then x[n] += 0.10 * f[n], f[n] = 0.
     * @return checksum (sum of x)
     */
    double sequential(int iters) const;
};

/** Generate a mesh deterministically. */
UnstructuredMesh makeMesh(const MeshParams &p);

} // namespace alewife::workload

#endif // ALEWIFE_WORKLOAD_UNSTRUCTURED_MESH_HH
