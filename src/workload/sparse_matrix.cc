#include "workload/sparse_matrix.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace alewife::workload {

std::vector<std::int32_t>
TriangularSystem::rowsOf(int proc) const
{
    std::vector<std::int32_t> out;
    for (std::int32_t r = proc; r < params.rows; r += params.nprocs)
        out.push_back(r);
    return out;
}

std::vector<double>
TriangularSystem::solve() const
{
    std::vector<double> x(params.rows, 0.0);
    for (std::int32_t r = 0; r < params.rows; ++r) {
        double acc = b[r];
        for (std::int32_t k = row[r]; k < row[r + 1]; ++k)
            acc -= entries[k].val * x[entries[k].col];
        x[r] = acc / diag[r];
    }
    return x;
}

double
TriangularSystem::sequential() const
{
    const std::vector<double> x = solve();
    double sum = 0.0;
    for (double v : x)
        sum += v;
    return sum;
}

int
TriangularSystem::levels() const
{
    std::vector<int> level(params.rows, 0);
    int deepest = 0;
    for (std::int32_t r = 0; r < params.rows; ++r) {
        int lv = 0;
        for (std::int32_t k = row[r]; k < row[r + 1]; ++k)
            lv = std::max(lv, level[entries[k].col] + 1);
        level[r] = lv;
        deepest = std::max(deepest, lv);
    }
    return deepest + 1;
}

TriangularSystem
makeTriangular(const TriangularParams &p)
{
    if (p.rows < p.nprocs)
        ALEWIFE_FATAL("triangular system smaller than the machine");
    Rng rng(p.seed);
    TriangularSystem t;
    t.params = p;
    t.row.resize(p.rows + 1);
    t.diag.resize(p.rows);
    t.b.resize(p.rows);

    for (std::int32_t r = 0; r < p.rows; ++r) {
        t.row[r] = static_cast<std::int32_t>(t.entries.size());
        // Rows early in the order have fewer dependencies (sources).
        const int maxdeps =
            std::min<std::int32_t>(r, p.avgInEdges * 2);
        const int ndeps = maxdeps == 0
                              ? 0
                              : static_cast<int>(
                                    rng.nextBounded(maxdeps + 1));
        std::vector<std::int32_t> cols;
        for (int k = 0; k < ndeps; ++k) {
            std::int32_t c;
            if (rng.nextDouble() < 0.8) {
                const std::int32_t lo =
                    std::max<std::int32_t>(0, r - p.band);
                c = lo + static_cast<std::int32_t>(
                        rng.nextBounded(r - lo));
            } else {
                c = static_cast<std::int32_t>(rng.nextBounded(r));
            }
            cols.push_back(c);
        }
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        for (std::int32_t c : cols) {
            // Keep the system well-conditioned: small off-diagonals.
            t.entries.push_back({c, rng.nextRange(-0.05, 0.05)});
        }
        t.diag[r] = rng.nextRange(1.0, 2.0);
        t.b[r] = rng.nextRange(-1.0, 1.0);
    }
    t.row[p.rows] = static_cast<std::int32_t>(t.entries.size());
    return t;
}

} // namespace alewife::workload
