#include "workload/molecules.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace alewife::workload {

namespace {

constexpr double kSpring = 0.001;
constexpr double kDt = 0.01;

/**
 * Recursive coordinate bisection: split the index range into nparts
 * contiguous groups by recursively halving along the widest dimension.
 */
void
rcb(std::vector<Molecule> &mols, std::size_t lo, std::size_t hi,
    int part_lo, int nparts, std::vector<std::int32_t> &first_of)
{
    first_of[part_lo] = static_cast<std::int32_t>(lo);
    if (nparts <= 1 || hi - lo <= 1) {
        for (int q = 1; q < nparts; ++q)
            first_of[part_lo + q] = static_cast<std::int32_t>(hi);
        return;
    }
    // Find the widest spatial dimension of this group.
    double mins[3] = {1e30, 1e30, 1e30}, maxs[3] = {-1e30, -1e30, -1e30};
    for (std::size_t k = lo; k < hi; ++k) {
        for (int d = 0; d < 3; ++d) {
            mins[d] = std::min(mins[d], mols[k].x[d]);
            maxs[d] = std::max(maxs[d], mols[k].x[d]);
        }
    }
    int dim = 0;
    for (int d = 1; d < 3; ++d) {
        if (maxs[d] - mins[d] > maxs[dim] - mins[dim])
            dim = d;
    }
    const int left_parts = nparts / 2;
    const std::size_t mid =
        lo + (hi - lo) * left_parts / nparts;
    std::nth_element(mols.begin() + lo, mols.begin() + mid,
                     mols.begin() + hi,
                     [dim](const Molecule &a, const Molecule &b) {
                         return a.x[dim] < b.x[dim];
                     });
    rcb(mols, lo, mid, part_lo, left_parts, first_of);
    rcb(mols, mid, hi, part_lo + left_parts, nparts - left_parts,
        first_of);
}

} // namespace

int
MoldynSystem::owner(std::int32_t mol) const
{
    // firstOf is ascending; binary search the containing block.
    int lo = 0, hi = params.nprocs;
    while (lo + 1 < hi) {
        const int mid = (lo + hi) / 2;
        if (mol >= firstOf[mid])
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::int32_t
MoldynSystem::numMoleculesOn(int proc) const
{
    return firstOf[proc + 1] - firstOf[proc];
}

double
MoldynSystem::sequential(int iters) const
{
    std::vector<Molecule> m = init;
    std::vector<double> f(3 * m.size(), 0.0);
    for (int it = 0; it < iters; ++it) {
        std::fill(f.begin(), f.end(), 0.0);
        for (const Pair &p : pairs) {
            for (int d = 0; d < 3; ++d) {
                const double dx = m[p.j].x[d] - m[p.i].x[d];
                f[3 * p.i + d] += kSpring * dx;
                f[3 * p.j + d] -= kSpring * dx;
            }
        }
        for (std::size_t i = 0; i < m.size(); ++i) {
            for (int d = 0; d < 3; ++d) {
                m[i].v[d] += f[3 * i + d] * kDt;
                m[i].x[d] += m[i].v[d] * kDt;
            }
        }
    }
    double sum = 0.0;
    for (const Molecule &mol : m)
        for (int d = 0; d < 3; ++d)
            sum += mol.x[d];
    return sum;
}

MoldynSystem
makeMoldyn(const MoldynParams &p)
{
    if (p.molecules < p.nprocs)
        ALEWIFE_FATAL("fewer molecules than processors");
    Rng rng(p.seed);
    MoldynSystem s;
    s.params = p;
    s.init.resize(p.molecules);
    for (auto &m : s.init) {
        for (int d = 0; d < 3; ++d) {
            m.x[d] = rng.nextDouble() * p.boxSide;
            m.v[d] = rng.nextGaussian(); // Maxwellian components
        }
    }

    s.firstOf.assign(p.nprocs + 1, 0);
    rcb(s.init, 0, s.init.size(), 0, p.nprocs, s.firstOf);
    s.firstOf[p.nprocs] = p.molecules;

    // Pair list: all pairs within the cutoff radius.
    for (std::int32_t i = 0; i < p.molecules; ++i) {
        for (std::int32_t j = i + 1; j < p.molecules; ++j) {
            double d2 = 0.0;
            for (int d = 0; d < 3; ++d) {
                const double dx = s.init[j].x[d] - s.init[i].x[d];
                d2 += dx * dx;
            }
            if (d2 < p.cutoff * p.cutoff)
                s.pairs.push_back({i, j});
        }
    }
    return s;
}

} // namespace alewife::workload
