/**
 * @file
 * Synthetic partitioned graphs for the graph-analytics workload family
 * (BFS, PageRank, SSSP).
 *
 * Three generators with deterministic seeded construction:
 *  - Uniform: every vertex draws `avgDegree` out-neighbours uniformly
 *    at random (Erdos-Renyi-like, balanced degrees);
 *  - RMat: recursive-matrix / power-law generator (Chakrabarti et al.),
 *    skewed in- and out-degree distributions — the irregular traffic
 *    regime where polled vs interrupt message delivery diverges;
 *  - Grid2d: a side x side torus-free 2D grid, 4-neighbour stencil —
 *    long-diameter, low-degree contrast case.
 *
 * Vertices are block-partitioned over processors (same owner/firstNode
 * scheme as the EM3D bipartite workload). Edge weights are small
 * positive integers so SSSP distances are exact integers and every
 * distributed relaxation is order-independent (min-combining), which is
 * what lets the apps bit-audit their results against the references.
 *
 * Reference algorithms (sequential, on the whole graph) live here too:
 * level-synchronous BFS with deterministic min-parent trees, power-
 * iteration PageRank summing in fixed in-edge CSR order, and Dijkstra
 * for SSSP (deliberately a different algorithm than the distributed
 * delta-stepping it verifies).
 */

#ifndef ALEWIFE_WORKLOAD_GRAPH_HH
#define ALEWIFE_WORKLOAD_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace alewife::workload {

/** Graph generator family. */
enum class GraphFamily : std::uint8_t
{
    Uniform = 0, ///< uniform random out-neighbours
    RMat,        ///< power-law recursive-matrix generator
    Grid2d,      ///< 2D grid stencil
};

const char *graphFamilyName(GraphFamily f);
GraphFamily graphFamilyFromName(const std::string &s);

/** Parameters of a synthetic partitioned graph. */
struct GraphParams
{
    GraphFamily family = GraphFamily::Uniform;
    /** Requested vertex count (RMat rounds up to a power of two,
     *  Grid2d rounds down to a square). */
    std::int32_t vertices = 1024;
    /** Directed edges per vertex (edge factor). */
    int avgDegree = 8;
    /** RMat quadrant probabilities; d = 1 - a - b - c. */
    double rmatA = 0.57, rmatB = 0.19, rmatC = 0.19;
    /** Edge weights drawn uniformly from [1, maxWeight]. */
    int maxWeight = 15;
    int nprocs = 32;
    std::uint64_t seed = 42;
};

/** A directed graph in CSR form, block-partitioned over processors. */
struct PartitionedGraph
{
    GraphParams params;
    std::int32_t n = 0; ///< actual vertex count after rounding

    /** Out-edges: dst/weight of edge k of vertex v in
     *  [outRow[v], outRow[v+1]). */
    std::vector<std::int32_t> outRow;
    std::vector<std::int32_t> outDst;
    std::vector<std::int32_t> outW;

    /** In-edges (transpose), sources in ascending order per vertex. */
    std::vector<std::int32_t> inRow;
    std::vector<std::int32_t> inSrc;
    std::vector<std::int32_t> inW;

    int owner(std::int32_t v) const;
    std::int32_t firstVertex(int proc) const;
    std::int32_t numVerticesOn(int proc) const;

    std::int64_t numEdges() const
    {
        return static_cast<std::int64_t>(outDst.size());
    }

    std::int32_t outDegree(std::int32_t v) const
    {
        return outRow[v + 1] - outRow[v];
    }

    /** First vertex with at least one out-edge (default BFS/SSSP root). */
    std::int32_t defaultRoot() const;
};

/** Generate a graph deterministically from @p p. */
PartitionedGraph makeGraph(const GraphParams &p);

// ---------------------------------------------------------------------
// Sequential references
// ---------------------------------------------------------------------

/** BFS result: depth[v] (-1 unreached) and the deterministic parent
 *  tree parent[v] = min{u : u->v edge, depth[u] == depth[v]-1}
 *  (parent[root] == root, parent of unreached == -1). */
struct BfsRef
{
    std::vector<std::int32_t> depth;
    std::vector<std::int32_t> parent;
    std::int32_t maxDepth = 0; ///< largest finite depth
};

BfsRef bfsReference(const PartitionedGraph &g, std::int32_t root);

/**
 * Power-iteration PageRank, @p iters rounds, summing each vertex's
 * contributions in in-edge CSR order — the exact double-arithmetic
 * order the distributed variants use, so results are bit-identical.
 * Dangling vertices simply leak their mass (identically in the
 * distributed implementations).
 */
std::vector<double> pagerankReference(const PartitionedGraph &g,
                                      int iters, double damping);

/** Dijkstra distances from @p root; -1 for unreachable vertices. */
std::vector<std::int64_t> dijkstraReference(const PartitionedGraph &g,
                                            std::int32_t root);

} // namespace alewife::workload

#endif // ALEWIFE_WORKLOAD_GRAPH_HH
