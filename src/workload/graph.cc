#include "workload/graph.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace alewife::workload {

const char *
graphFamilyName(GraphFamily f)
{
    switch (f) {
      case GraphFamily::Uniform: return "uniform";
      case GraphFamily::RMat: return "rmat";
      case GraphFamily::Grid2d: return "grid";
    }
    return "?";
}

GraphFamily
graphFamilyFromName(const std::string &s)
{
    if (s == "uniform")
        return GraphFamily::Uniform;
    if (s == "rmat")
        return GraphFamily::RMat;
    if (s == "grid" || s == "grid2d")
        return GraphFamily::Grid2d;
    ALEWIFE_FATAL("unknown graph family '", s,
                  "' (uniform, rmat, grid)");
}

int
PartitionedGraph::owner(std::int32_t v) const
{
    const std::int32_t per =
        (n + params.nprocs - 1) / params.nprocs;
    return static_cast<int>(v / per);
}

std::int32_t
PartitionedGraph::firstVertex(int proc) const
{
    const std::int32_t per =
        (n + params.nprocs - 1) / params.nprocs;
    return std::min<std::int32_t>(per * proc, n);
}

std::int32_t
PartitionedGraph::numVerticesOn(int proc) const
{
    return firstVertex(proc + 1) - firstVertex(proc);
}

std::int32_t
PartitionedGraph::defaultRoot() const
{
    for (std::int32_t v = 0; v < n; ++v)
        if (outDegree(v) > 0)
            return v;
    ALEWIFE_PANIC("graph has no edges");
}

namespace {

struct RawEdge
{
    std::int32_t src, dst, w;
};

/** Build out/in CSR from an edge list, preserving per-source order. */
void
buildCsr(PartitionedGraph &g, std::vector<RawEdge> edges)
{
    std::stable_sort(edges.begin(), edges.end(),
                     [](const RawEdge &a, const RawEdge &b) {
                         return a.src < b.src;
                     });
    const std::int32_t n = g.n;
    g.outRow.assign(n + 1, 0);
    for (const RawEdge &e : edges)
        ++g.outRow[e.src + 1];
    for (std::int32_t v = 0; v < n; ++v)
        g.outRow[v + 1] += g.outRow[v];
    g.outDst.reserve(edges.size());
    g.outW.reserve(edges.size());
    for (const RawEdge &e : edges) {
        g.outDst.push_back(e.dst);
        g.outW.push_back(e.w);
    }

    // Transpose; counting sort keyed on dst keeps in-sources sorted by
    // (src, source-edge order) — the fixed accumulation order the
    // PageRank variants and reference share.
    g.inRow.assign(n + 1, 0);
    for (const RawEdge &e : edges)
        ++g.inRow[e.dst + 1];
    for (std::int32_t v = 0; v < n; ++v)
        g.inRow[v + 1] += g.inRow[v];
    g.inSrc.assign(edges.size(), 0);
    g.inW.assign(edges.size(), 0);
    std::vector<std::int32_t> fill(g.inRow.begin(), g.inRow.end() - 1);
    for (std::int32_t v = 0; v < n; ++v) {
        for (std::int32_t k = g.outRow[v]; k < g.outRow[v + 1]; ++k) {
            const std::int32_t at = fill[g.outDst[k]]++;
            g.inSrc[at] = v;
            g.inW[at] = g.outW[k];
        }
    }
}

std::vector<RawEdge>
genUniform(std::int32_t n, const GraphParams &p, Rng &rng)
{
    std::vector<RawEdge> edges;
    edges.reserve(static_cast<std::size_t>(n) * p.avgDegree);
    for (std::int32_t v = 0; v < n; ++v) {
        for (int j = 0; j < p.avgDegree; ++j) {
            std::int32_t dst = -1;
            for (int tries = 0; tries < 8; ++tries) {
                dst = static_cast<std::int32_t>(rng.nextBounded(n));
                if (dst != v)
                    break;
                dst = -1;
            }
            if (dst < 0)
                continue;
            const std::int32_t w = 1 + static_cast<std::int32_t>(
                                       rng.nextBounded(p.maxWeight));
            edges.push_back({v, dst, w});
        }
    }
    return edges;
}

std::vector<RawEdge>
genRmat(std::int32_t n, const GraphParams &p, Rng &rng)
{
    int levels = 0;
    while ((std::int32_t(1) << levels) < n)
        ++levels;
    const std::int64_t want =
        static_cast<std::int64_t>(n) * p.avgDegree;
    std::vector<RawEdge> edges;
    edges.reserve(static_cast<std::size_t>(want));
    for (std::int64_t e = 0; e < want; ++e) {
        std::int32_t src = -1, dst = -1;
        for (int tries = 0; tries < 8; ++tries) {
            std::int32_t s = 0, d = 0;
            for (int l = 0; l < levels; ++l) {
                const double r = rng.nextDouble();
                s <<= 1;
                d <<= 1;
                if (r < p.rmatA) {
                    // top-left quadrant
                } else if (r < p.rmatA + p.rmatB) {
                    d |= 1;
                } else if (r < p.rmatA + p.rmatB + p.rmatC) {
                    s |= 1;
                } else {
                    s |= 1;
                    d |= 1;
                }
            }
            if (s != d) {
                src = s;
                dst = d;
                break;
            }
        }
        if (src < 0)
            continue;
        const std::int32_t w = 1 + static_cast<std::int32_t>(
                                   rng.nextBounded(p.maxWeight));
        edges.push_back({src, dst, w});
    }
    return edges;
}

std::vector<RawEdge>
genGrid2d(std::int32_t side, const GraphParams &p, Rng &rng)
{
    std::vector<RawEdge> edges;
    edges.reserve(static_cast<std::size_t>(side) * side * 4);
    for (std::int32_t y = 0; y < side; ++y) {
        for (std::int32_t x = 0; x < side; ++x) {
            const std::int32_t v = y * side + x;
            const std::int32_t nb[4] = {
                x > 0 ? v - 1 : -1, x + 1 < side ? v + 1 : -1,
                y > 0 ? v - side : -1, y + 1 < side ? v + side : -1};
            for (std::int32_t u : nb) {
                if (u < 0)
                    continue;
                const std::int32_t w = 1 + static_cast<std::int32_t>(
                                           rng.nextBounded(p.maxWeight));
                edges.push_back({v, u, w});
            }
        }
    }
    return edges;
}

} // namespace

PartitionedGraph
makeGraph(const GraphParams &p)
{
    if (p.vertices <= 0 || p.avgDegree <= 0 || p.nprocs <= 0
        || p.maxWeight <= 0)
        ALEWIFE_PANIC("bad graph params");
    PartitionedGraph g;
    g.params = p;
    Rng rng(p.seed ^ 0x67726170680000ULL
            ^ (static_cast<std::uint64_t>(p.family) << 56));

    std::vector<RawEdge> edges;
    switch (p.family) {
      case GraphFamily::Uniform:
        g.n = p.vertices;
        edges = genUniform(g.n, p, rng);
        break;
      case GraphFamily::RMat: {
        std::int32_t n = 1;
        while (n < p.vertices)
            n <<= 1;
        g.n = n;
        edges = genRmat(g.n, p, rng);
        break;
      }
      case GraphFamily::Grid2d: {
        const auto side = static_cast<std::int32_t>(
            std::sqrt(static_cast<double>(p.vertices)));
        g.n = side * side;
        edges = genGrid2d(side, p, rng);
        break;
      }
    }
    buildCsr(g, std::move(edges));
    return g;
}

BfsRef
bfsReference(const PartitionedGraph &g, std::int32_t root)
{
    BfsRef r;
    r.depth.assign(g.n, -1);
    r.parent.assign(g.n, -1);
    r.depth[root] = 0;
    r.parent[root] = root;
    std::vector<std::int32_t> frontier{root}, next;
    std::int32_t level = 0;
    while (!frontier.empty()) {
        next.clear();
        for (std::int32_t u : frontier) {
            for (std::int32_t k = g.outRow[u]; k < g.outRow[u + 1];
                 ++k) {
                const std::int32_t v = g.outDst[k];
                if (r.depth[v] < 0) {
                    r.depth[v] = level + 1;
                    next.push_back(v);
                }
            }
        }
        r.maxDepth = level;
        frontier.swap(next);
        ++level;
    }
    // Deterministic parent tree: smallest in-neighbour one level up.
    for (std::int32_t v = 0; v < g.n; ++v) {
        if (v == root || r.depth[v] < 0)
            continue;
        std::int32_t best = -1;
        for (std::int32_t k = g.inRow[v]; k < g.inRow[v + 1]; ++k) {
            const std::int32_t u = g.inSrc[k];
            if (r.depth[u] == r.depth[v] - 1
                && (best < 0 || u < best))
                best = u;
        }
        r.parent[v] = best;
    }
    return r;
}

std::vector<double>
pagerankReference(const PartitionedGraph &g, int iters, double damping)
{
    std::vector<double> rank(g.n, 1.0 / g.n), next(g.n, 0.0);
    const double base = (1.0 - damping) / g.n;
    for (int it = 0; it < iters; ++it) {
        for (std::int32_t v = 0; v < g.n; ++v) {
            double sum = 0.0;
            for (std::int32_t k = g.inRow[v]; k < g.inRow[v + 1];
                 ++k) {
                const std::int32_t u = g.inSrc[k];
                sum += rank[u] / g.outDegree(u);
            }
            next[v] = base + damping * sum;
        }
        rank.swap(next);
    }
    return rank;
}

std::vector<std::int64_t>
dijkstraReference(const PartitionedGraph &g, std::int32_t root)
{
    std::vector<std::int64_t> dist(g.n, -1);
    using Item = std::pair<std::int64_t, std::int32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[root] = 0;
    pq.push({0, root});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d != dist[u])
            continue;
        for (std::int32_t k = g.outRow[u]; k < g.outRow[u + 1]; ++k) {
            const std::int32_t v = g.outDst[k];
            const std::int64_t nd = d + g.outW[k];
            if (dist[v] < 0 || nd < dist[v]) {
                dist[v] = nd;
                pq.push({nd, v});
            }
        }
    }
    return dist;
}

} // namespace alewife::workload
