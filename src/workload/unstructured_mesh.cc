#include "workload/unstructured_mesh.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace alewife::workload {

namespace {

struct Point
{
    double x, y, z;
    std::int32_t orig;
};

} // namespace

int
UnstructuredMesh::owner(std::int32_t node) const
{
    const int per = (params.nodes + params.nprocs - 1) / params.nprocs;
    return node / per;
}

std::int32_t
UnstructuredMesh::firstNode(int proc) const
{
    const int per = (params.nodes + params.nprocs - 1) / params.nprocs;
    return std::min<std::int32_t>(proc * per, params.nodes);
}

std::int32_t
UnstructuredMesh::numNodesOn(int proc) const
{
    return std::min<std::int32_t>(firstNode(proc + 1), params.nodes)
           - firstNode(proc);
}

double
UnstructuredMesh::sequential(int iters) const
{
    std::vector<double> x = xInit;
    std::vector<double> f(x.size(), 0.0);
    for (int it = 0; it < iters; ++it) {
        for (const MeshEdge &e : edges) {
            const double c = e.w * (x[e.u] - x[e.v]);
            f[e.u] += c;
            f[e.v] -= c;
        }
        for (std::size_t n = 0; n < x.size(); ++n) {
            x[n] += 0.10 * f[n];
            f[n] = 0.0;
        }
    }
    double sum = 0.0;
    for (double v : x)
        sum += v;
    return sum;
}

UnstructuredMesh
makeMesh(const MeshParams &p)
{
    if (p.nodes < p.nprocs)
        ALEWIFE_FATAL("mesh smaller than the machine");
    Rng rng(p.seed);

    // Scatter points, then sort along a space-filling-ish key (z-major
    // with jitter) so that block partitions are spatially coherent.
    std::vector<Point> pts(p.nodes);
    for (std::int32_t i = 0; i < p.nodes; ++i) {
        pts[i] = {rng.nextDouble(), rng.nextDouble(), rng.nextDouble(),
                  i};
    }
    std::sort(pts.begin(), pts.end(), [](const Point &a, const Point &b) {
        const double ka = std::floor(a.z * 4) * 100 + std::floor(a.y * 4)
                          * 10 + a.x;
        const double kb = std::floor(b.z * 4) * 100 + std::floor(b.y * 4)
                          * 10 + b.x;
        return ka < kb;
    });

    UnstructuredMesh m;
    m.params = p;

    // Connect each node to avgDegree spatial neighbours: mostly nearby
    // in sorted order (local), occasionally farther (remote edges).
    const std::int64_t target =
        static_cast<std::int64_t>(p.nodes) * p.avgDegree / 2;
    std::vector<std::pair<std::int32_t, std::int32_t>> seen;
    for (std::int64_t k = 0; k < target; ++k) {
        const std::int32_t u =
            static_cast<std::int32_t>(rng.nextBounded(p.nodes));
        std::int32_t span;
        if (rng.nextDouble() < 0.85)
            span = 1 + static_cast<std::int32_t>(rng.nextBounded(20));
        else
            span = 1 + static_cast<std::int32_t>(
                       rng.nextBounded(p.nodes / 4));
        std::int32_t v = u + (rng.nextDouble() < 0.5 ? span : -span);
        if (v < 0)
            v = u + span;
        if (v >= p.nodes)
            v = u - span;
        if (v < 0 || v == u)
            continue;
        MeshEdge e;
        e.u = std::min(u, v);
        e.v = std::max(u, v);
        e.w = rng.nextRange(0.01, 0.2);
        m.edges.push_back(e);
    }

    // Deduplicate and order edges by owning processor of u.
    std::sort(m.edges.begin(), m.edges.end(),
              [](const MeshEdge &a, const MeshEdge &b) {
                  if (a.u != b.u)
                      return a.u < b.u;
                  return a.v < b.v;
              });
    m.edges.erase(std::unique(m.edges.begin(), m.edges.end(),
                              [](const MeshEdge &a, const MeshEdge &b) {
                                  return a.u == b.u && a.v == b.v;
                              }),
                  m.edges.end());

    m.xInit.resize(p.nodes);
    for (auto &v : m.xInit)
        v = rng.nextRange(0.0, 2.0);
    return m;
}

} // namespace alewife::workload
