/**
 * @file
 * EM3D workload: random irregular bipartite graph.
 *
 * Follows the Split-C EM3D generator (Culler et al. 93) as used by the
 * paper: E nodes on one side, H nodes on the other; each node has
 * `degree` in-edges from the opposite side; a fraction `pctRemote` of
 * edges lands on a different processor within `span` neighbouring
 * partitions. Edge weights are deterministic pseudo-random doubles.
 */

#ifndef ALEWIFE_WORKLOAD_BIPARTITE_HH
#define ALEWIFE_WORKLOAD_BIPARTITE_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace alewife::workload {

/** Parameters of an EM3D graph. */
struct BipartiteParams
{
    int nodesPerSide = 2000;   ///< paper: 10000
    int degree = 10;           ///< paper: 10
    double pctRemote = 0.20;   ///< paper: 20%
    int span = 3;              ///< paper: 3
    int nprocs = 32;
    std::uint64_t seed = 12345;
};

/** One directed dependency edge (value flows src side -> dst side). */
struct BipartiteEdge
{
    std::int32_t src; ///< index on the producing side
    double weight;
};

/**
 * The generated graph. Sides are "E" and "H"; each side's nodes are
 * block-partitioned over processors (node i lives on proc owner(i)).
 */
struct BipartiteGraph
{
    BipartiteParams params;

    /** In-edges of each E node (sources are H indices), CSR layout. */
    std::vector<std::int32_t> eRow;
    std::vector<BipartiteEdge> eEdges;

    /** In-edges of each H node (sources are E indices). */
    std::vector<std::int32_t> hRow;
    std::vector<BipartiteEdge> hEdges;

    /** Initial node values. */
    std::vector<double> eInit;
    std::vector<double> hInit;

    int owner(std::int32_t node) const;
    std::int32_t firstNode(int proc) const;
    std::int32_t numNodesOn(int proc) const;

    /**
     * Run the computation sequentially for @p iters iterations and
     * return the checksum (sum of all node values).
     */
    double sequential(int iters) const;
};

/** Generate a graph deterministically from @p p. */
BipartiteGraph makeBipartite(const BipartiteParams &p);

} // namespace alewife::workload

#endif // ALEWIFE_WORKLOAD_BIPARTITE_HH
