/**
 * @file
 * Analytical latency/bandwidth prediction over a captured DepGraph.
 *
 * Predictor replays one recorded dependency graph symbolically under a
 * *different* machine configuration (hopNs, netFixedNs, linkMBps,
 * procMhz, emulated cross-bisection traffic) and produces the runtime
 * that configuration would measure — one instrumented run plus O(n)
 * solves instead of one full simulation per sweep point (LLAMP-style,
 * arXiv 2404.14193; ROADMAP item 3).
 *
 * Cost model, per event delta:
 *  - network edges (mesh deliver events) are re-costed from first
 *    principles using the recorded hop counts and byte sizes:
 *        fixed'(netFixedNs) + hops * hop'(hopNs) + ser'(bytes, linkMBps)
 *    plus contention: the recorded queueing wait scaled by the ratio
 *    of per-byte serialization times, and — for emulated
 *    cross-traffic — the expected residual-service wait behind the
 *    deterministic periodic row streams,
 *        E[xHops] * u * serCross' / 2,  u = crossBpc / native bisection,
 *    charged per routed edge at the graph-mean horizontal-hop count
 *    (see the CostModel comment for why the mean, not each edge's
 *    own xHops);
 *  - every other delta (compute bursts, handler charges, protocol
 *    occupancy, NI retries, cross-tick periods) is processor-clocked
 *    and replays verbatim — ticks are 1/100 *cycle*, invariant under
 *    all swept knobs including procMhz.
 *
 * Replaying the graph under its own base configuration reproduces every
 * recorded event time and the recorded finish tick *exactly* (the
 * identity anchor, selfCheckExact()); model error at other points
 * comes from schedule invariance (the recorded event tree is assumed
 * stable under the re-costing) and the analytic queueing terms, and is
 * reported as MAPE by the fig08/fig09 benches.
 *
 * The same graph yields per-node latency-tolerance (slack) histograms
 * via a CPM backward pass, a Figure-4-style breakdown of the predicted
 * critical path, and a symbolic one-off delay injection; two captured
 * runs (base vs. a real RunSpec::delay injection) are compared by
 * compareInjectedRuns() into a propagation/decay report.
 */

#ifndef ALEWIFE_OBS_PREDICT_HH
#define ALEWIFE_OBS_PREDICT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "machine/config.hh"
#include "obs/critpath.hh"
#include "sim/types.hh"

namespace alewife::obs {

/** One sweep point to predict. */
struct PredictTarget
{
    MachineConfig machine;
    /** Emulated cross-bisection traffic (fig08); 0 = none. */
    double crossBytesPerCycle = 0.0;
    std::uint32_t crossMessageBytes = 64;
};

/** Figure-4-style decomposition of the predicted critical path. */
struct CritPathBreakdown
{
    double computeCycles = 0.0;      ///< ProcResume deltas + run-ahead
    double protocolCycles = 0.0;     ///< coherence occupancy/launch
    double messageCycles = 0.0;      ///< active-message launch/drain
    double retryCycles = 0.0;        ///< NI-reject redelivery
    double netFixedCycles = 0.0;     ///< latency: fixed per traversal
    double netHopCycles = 0.0;       ///< latency: per hop
    double netSerCycles = 0.0;       ///< bandwidth: serialization
    double netQueueCycles = 0.0;     ///< contention: queueing waits
    double crossTrafficCycles = 0.0; ///< added analytic cross-queueing
    double otherCycles = 0.0;
    double totalCycles = 0.0;
    std::uint64_t pathEvents = 0;
    std::uint64_t pathNetEdges = 0;
};

/**
 * Per-node latency-tolerance histogram: slack (cycles the edge could
 * slow down without moving the finish time) of every network edge
 * delivered to the node, in log-spaced buckets.
 */
struct SlackStats
{
    /** Bucket upper bounds in cycles: <1, <4, <16, <64, <256, <1024. */
    static constexpr int kBuckets = 7; ///< last bucket = >= 1024
    std::array<std::uint64_t, kBuckets> bucket{};
    /** Edges that never constrain the finish (infinite slack). */
    std::uint64_t unbounded = 0;
    std::uint64_t edges = 0;
    double meanCycles = 0.0;
    double maxCycles = 0.0;
};

/** Result of comparing a delay-injected run against its base run. */
struct InjectionReport
{
    NodeId injectNode = -1;
    double finishShiftCycles = 0.0;

    struct NodeImpact
    {
        NodeId node = -1;
        /** Mesh (Manhattan) distance from the injected node. */
        int hopsFromInjection = 0;
        /** Completion-time shift, injected minus base. */
        double doneShiftCycles = 0.0;
        /** Barrier episodes compared (min of the two runs). */
        std::uint64_t barrierEpisodes = 0;
        /** Largest per-episode barrier-end shift. */
        double maxBarrierShiftCycles = 0.0;
        /** Episodes whose end moved by more than one cycle. */
        std::uint64_t barriersShifted = 0;
    };
    std::vector<NodeImpact> nodes;
    /** Nodes whose completion moved by more than one cycle. */
    std::uint32_t nodesShifted = 0;
};

/** Analytical replay of one captured DepGraph. */
class Predictor
{
  public:
    explicit Predictor(const DepGraph &g);

    /** The captured run's own configuration as a target (no cross). */
    PredictTarget baseTarget() const;

    /** Predicted runtime, in processor cycles of the target clock. */
    double predictRuntimeCycles(const PredictTarget &t) const;

    /**
     * Identity anchor: replaying under baseTarget() must reproduce the
     * recorded finish tick bit-exactly. False indicates the capture
     * violated a model precondition (hop jitter, perturbation).
     */
    bool selfCheckExact() const;

    /** Decompose the predicted critical path (longest chain). */
    CritPathBreakdown breakdown(const PredictTarget &t) const;

    /** Per-node slack histograms; index = NodeId. */
    std::vector<SlackStats> slackByNode(const PredictTarget &t) const;

    /**
     * Symbolic one-off delay injection: stall the first event of
     * @p node at or after @p atCycles by @p stallCycles.
     *
     * Propagation follows the *recorded* scheduling edges only — a
     * barrier release stays pinned to the base run's last arriver, so
     * a stall on a node with slack reports zero downstream shift.
     * This makes it a criticality probe (shift > 0 iff the stalled
     * event is an ancestor of the finish) and a lower bound on a real
     * injection's effect; compareInjectedRuns() measures the true
     * propagation from two real runs.
     */
    InjectionReport injectDelay(const PredictTarget &t, NodeId node,
                                double atCycles,
                                double stallCycles) const;

    /** Events replayed per solve (throughput accounting). */
    std::uint64_t solveEvents() const;

  private:
    struct CostModel;
    void forwardPass(const CostModel &m, std::vector<Tick> &pred,
                     std::vector<Tick> &pdelta) const;
    Tick finishOf(const std::vector<Tick> &pred,
                  Tick *extraOut = nullptr,
                  std::size_t *argmaxOut = nullptr) const;

    const DepGraph &g_;
    /** Net edges re-sorted by seq: the forward pass walks this with a
     *  cursor instead of one hash lookup per event (the lookup would
     *  otherwise dominate solve time). */
    std::vector<std::pair<std::uint32_t, DepGraph::NetEdge>>
        edgesBySeq_;
    /** Reused across solves; the Predictor is single-threaded. */
    mutable std::vector<Tick> scratchPred_, scratchDelta_;
};

/**
 * Propagation/decay report of a real delay injection: compares two
 * captured runs (identical specs except RunSpec::delay) by per-node
 * completion times and per-episode barrier ends.
 */
InjectionReport compareInjectedRuns(const DepGraph &base,
                                    const DepGraph &injected,
                                    NodeId injectNode);

} // namespace alewife::obs

#endif // ALEWIFE_OBS_PREDICT_HH
