#include "obs/predict.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace alewife::obs {

namespace {

constexpr Tick kInfTick = std::numeric_limits<Tick>::max();

int
manhattan(NodeId a, NodeId b, int meshX)
{
    const int ax = a % meshX, ay = a / meshX;
    const int bx = b % meshX, by = b / meshX;
    return std::abs(ax - bx) + std::abs(ay - by);
}

/** Ticks of @p spans (sorted, disjoint) overlapping [lo, hi). */
Tick
overlapTicks(const std::vector<std::pair<Tick, Tick>> &spans, Tick lo,
             Tick hi)
{
    if (lo >= hi || spans.empty())
        return 0;
    auto it = std::lower_bound(
        spans.begin(), spans.end(), lo,
        [](const std::pair<Tick, Tick> &s, Tick v) {
            return s.second <= v;
        });
    Tick total = 0;
    for (; it != spans.end() && it->first < hi; ++it)
        total += std::min(hi, it->second) - std::max(lo, it->first);
    return total;
}

int
slackBucket(double cycles)
{
    static constexpr double kEdge[] = {1.0, 4.0, 16.0, 64.0, 256.0,
                                       1024.0};
    for (int i = 0; i < 6; ++i)
        if (cycles < kEdge[i])
            return i;
    return SlackStats::kBuckets - 1;
}

} // namespace

/** Per-target constants of the edge re-costing model. */
struct Predictor::CostModel
{
    Tick fixedTicks = 0;
    Tick hopTicks = 0;
    Tick idealTicks = 0;
    double bytesPerCycle = 1.0;
    /** Ratio of per-byte serialization times, target / base. */
    double qscale = 1.0;
    /** Cross-traffic utilization of each horizontal link. */
    double u = 0.0;
    /** Analytic added cross-traffic wait per routed edge, in ticks. */
    double perEdgeAdded = 0.0;
    /** Symbolic injection: extra ticks added to one event's delta. */
    std::uint32_t injectSeq = DepGraph::kNoParent;
    Tick injectTicks = 0;

    CostModel(const DepGraph &g, const PredictTarget &t)
    {
        const MachineConfig &m = t.machine;
        fixedTicks = cyclesToTicks(m.netFixedCycles());
        hopTicks = cyclesToTicks(m.hopCycles());
        idealTicks = cyclesToTicks(m.idealNetLatencyCycles);
        bytesPerCycle = m.linkBytesPerCycle();
        qscale = g.baseConfig.linkBytesPerCycle() / bytesPerCycle;
        if (t.crossBytesPerCycle > 0.0) {
            // Each of the 2*meshY row streams loads every horizontal
            // link of its row at rate cross/(2*meshY) bytes/cycle, as
            // a *deterministic periodic* stream (one messageBytes
            // packet per fixed period per stream). A packet head
            // arriving at a random phase therefore waits the residual
            // of the current cross-packet service — u * serCross / 2
            // per horizontal link on average — with no open-ended
            // M/M/1-style queue buildup, because the stream is
            // strictly paced below link capacity. (Validated against
            // direct simulation: the measured added queueing per
            // horizontal hop matches this within a few percent.)
            //
            // The wait is charged at the graph-mean horizontal-hop
            // count per routed edge rather than each edge's own xHops:
            // barrier-synchronized programs finish at per-phase maxima
            // over nodes, and the recorded tree pins each barrier to
            // the base run's last arriver — typically a tail-route
            // node. Inflating that one chain by its own (tail) route
            // lengths double-counts the selection; the fleet-average
            // horizontal load predicts the shifted maxima well.
            u = std::min(
                t.crossBytesPerCycle / m.bisectionBytesPerCycle(), 1.0);
            const double serCross = static_cast<double>(cyclesToTicks(
                static_cast<double>(t.crossMessageBytes)
                / bytesPerCycle));
            double xHopSum = 0.0;
            std::uint64_t routed = 0;
            for (const auto &[seq, e] : g.netEdges) {
                if (e.ideal || e.hops == 0)
                    continue;
                xHopSum += e.xHops;
                ++routed;
            }
            const double meanXHops =
                routed > 0 ? xHopSum / static_cast<double>(routed)
                           : 0.0;
            perEdgeAdded = meanXHops * u * serCross / 2.0;
        }
    }

    Tick
    serTicks(std::uint32_t bytes) const
    {
        return cyclesToTicks(static_cast<double>(bytes)
                             / bytesPerCycle);
    }

    Tick
    edgeDelta(const DepGraph::NetEdge &e) const
    {
        if (e.ideal)
            return idealTicks;
        double q = static_cast<double>(e.queueTicks) * qscale;
        if (e.hops > 0)
            q += perEdgeAdded;
        const Tick det = fixedTicks
                         + static_cast<Tick>(e.hops) * hopTicks
                         + serTicks(e.bytes);
        return det + static_cast<Tick>(std::llround(q));
    }
};

Predictor::Predictor(const DepGraph &g) : g_(g)
{
    edgesBySeq_.reserve(g_.netEdges.size());
    for (const auto &[seq, e] : g_.netEdges)
        edgesBySeq_.emplace_back(seq, e);
    std::sort(edgesBySeq_.begin(), edgesBySeq_.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
}

PredictTarget
Predictor::baseTarget() const
{
    PredictTarget t;
    t.machine = g_.baseConfig;
    return t;
}

std::uint64_t
Predictor::solveEvents() const
{
    return g_.size();
}

void
Predictor::forwardPass(const CostModel &m, std::vector<Tick> &pred,
                       std::vector<Tick> &pdelta) const
{
    const std::size_t n = g_.size();
    pred.resize(n);
    pdelta.resize(n);
    // Events are replayed in seq order and edgesBySeq_ is sorted by
    // seq, so one advancing cursor replaces a hash lookup per event.
    std::size_t ei = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto s = static_cast<std::uint32_t>(i);
        Tick delta;
        if (ei < edgesBySeq_.size() && edgesBySeq_[ei].first == s)
            delta = m.edgeDelta(edgesBySeq_[ei++].second);
        else
            delta = g_.deltaTicks(s);
        if (s == m.injectSeq) [[unlikely]]
            delta += m.injectTicks;
        pdelta[i] = delta;
        const std::uint32_t p = g_.parent[i];
        Tick base = 0;
        if (p == DepGraph::kNoParent) {
            const auto r = g_.rootNow.find(s);
            if (r != g_.rootNow.end())
                base = r->second;
        } else {
            base = pred[p];
        }
        pred[i] = base + delta;
    }
}

Tick
Predictor::finishOf(const std::vector<Tick> &pred, Tick *extraOut,
                    std::size_t *argmaxOut) const
{
    Tick finish = 0;
    Tick extra = 0;
    std::size_t argmax = 0;
    for (std::size_t i = 0; i < g_.finish.size(); ++i) {
        const DepGraph::FinishContrib &f = g_.finish[i];
        const Tick t = pred[f.seq] + f.extraTicks;
        if (t > finish) {
            finish = t;
            extra = f.extraTicks;
            argmax = i;
        }
    }
    if (g_.finish.empty()) {
        for (std::size_t i = 0; i < pred.size(); ++i)
            if (g_.executed(static_cast<std::uint32_t>(i)))
                finish = std::max(finish, pred[i]);
    }
    if (extraOut)
        *extraOut = extra;
    if (argmaxOut)
        *argmaxOut = argmax;
    return finish;
}

double
Predictor::predictRuntimeCycles(const PredictTarget &t) const
{
    const CostModel m(g_, t);
    forwardPass(m, scratchPred_, scratchDelta_);
    return ticksToCycles(finishOf(scratchPred_));
}

bool
Predictor::selfCheckExact() const
{
    const CostModel m(g_, baseTarget());
    std::vector<Tick> pred, pdelta;
    forwardPass(m, pred, pdelta);
    for (const DepGraph::FinishContrib &f : g_.finish)
        if (pred[f.seq] + f.extraTicks != f.atTick)
            return false;
    return finishOf(pred) == g_.recordedFinishTick;
}

CritPathBreakdown
Predictor::breakdown(const PredictTarget &t) const
{
    const CostModel m(g_, t);
    std::vector<Tick> pred, pdelta;
    forwardPass(m, pred, pdelta);
    // Base-configuration pass: the recorded event times, used to
    // window the compute-span overlap below. Non-edge deltas are
    // identical under every target, so the compute content of a delta
    // is target-invariant even though absolute times shift.
    std::vector<Tick> pred0, pdelta0;
    forwardPass(CostModel(g_, baseTarget()), pred0, pdelta0);

    CritPathBreakdown b;
    Tick extra = 0;
    std::size_t argmax = 0;
    const Tick finish = finishOf(pred, &extra, &argmax);
    b.totalCycles = ticksToCycles(finish);
    if (g_.finish.empty())
        return b;

    b.computeCycles += ticksToCycles(extra); // final run-ahead
    std::uint32_t cur = g_.finish[argmax].seq;
    for (;;) {
        ++b.pathEvents;
        const auto e = g_.netEdges.find(cur);
        if (e != g_.netEdges.end()) {
            ++b.pathNetEdges;
            const DepGraph::NetEdge &ne = e->second;
            if (ne.ideal) {
                b.netFixedCycles += ticksToCycles(m.idealTicks);
            } else {
                b.netFixedCycles += ticksToCycles(m.fixedTicks);
                b.netHopCycles += ticksToCycles(
                    static_cast<Tick>(ne.hops) * m.hopTicks);
                b.netSerCycles += ticksToCycles(m.serTicks(ne.bytes));
                const double q =
                    static_cast<double>(ne.queueTicks) * m.qscale;
                const double cross =
                    ne.hops > 0 ? m.perEdgeAdded : 0.0;
                b.netQueueCycles += q / kTicksPerCycle;
                b.crossTrafficCycles += cross / kTicksPerCycle;
            }
        } else {
            const double cyc = ticksToCycles(pdelta[cur]);
            // The processor charges compute by running its local
            // clock ahead, so an event's schedule delta can embed the
            // compute burst that preceded its issue; separate it back
            // out via the recorded compute spans of the scheduling
            // node over this delta's base-run window.
            double comp = 0.0;
            const std::uint32_t par = g_.parent[cur];
            if (par != DepGraph::kNoParent) {
                const std::int16_t n =
                    g_.node[par] >= 0 ? g_.node[par] : g_.node[cur];
                if (n >= 0
                    && static_cast<std::size_t>(n)
                           < g_.computeSpans.size())
                    comp = std::min(
                        cyc,
                        ticksToCycles(overlapTicks(
                            g_.computeSpans[static_cast<std::size_t>(n)],
                            pred0[par], pred0[cur])));
            }
            switch (static_cast<EventTag>(g_.tag[cur])) {
              case EventTag::ProcResume:
                b.computeCycles += cyc;
                comp = 0.0;
                break;
              case EventTag::CohLocalDeliver:
              case EventTag::CohPacketLaunch:
              case EventTag::CohProcess:
              case EventTag::CohFill:
              case EventTag::CohHomeDrain:
              case EventTag::CohHomeComplete:
                b.protocolCycles += cyc - comp;
                break;
              case EventTag::AmPacketLaunch:
              case EventTag::AmDrain:
                b.messageCycles += cyc - comp;
                break;
              case EventTag::MeshRetry:
                b.retryCycles += cyc - comp;
                break;
              default:
                b.otherCycles += cyc - comp;
                break;
            }
            b.computeCycles += comp;
        }
        const std::uint32_t p = g_.parent[cur];
        if (p == DepGraph::kNoParent) {
            const auto r = g_.rootNow.find(cur);
            if (r != g_.rootNow.end())
                b.otherCycles += ticksToCycles(r->second);
            break;
        }
        cur = p;
    }
    return b;
}

std::vector<SlackStats>
Predictor::slackByNode(const PredictTarget &t) const
{
    const CostModel m(g_, t);
    std::vector<Tick> pred, pdelta;
    forwardPass(m, pred, pdelta);
    const Tick finish = finishOf(pred);

    const std::size_t n = g_.size();
    std::vector<Tick> late(n, kInfTick);
    for (const DepGraph::FinishContrib &f : g_.finish) {
        const Tick bound = finish - f.extraTicks;
        late[f.seq] = std::min(late[f.seq], bound);
    }
    for (std::size_t i = n; i-- > 0;) {
        if (late[i] == kInfTick)
            continue;
        const std::uint32_t p = g_.parent[i];
        if (p == DepGraph::kNoParent)
            continue;
        const Tick bound = late[i] - pdelta[i];
        late[p] = std::min(late[p], bound);
    }

    std::vector<SlackStats> stats(
        static_cast<std::size_t>(g_.baseConfig.nodes()));
    for (const auto &[seq, edge] : g_.netEdges) {
        if (!g_.executed(seq))
            continue;
        const auto dst = static_cast<std::size_t>(edge.dst);
        if (dst >= stats.size())
            continue;
        SlackStats &s = stats[dst];
        ++s.edges;
        if (late[seq] == kInfTick) {
            ++s.unbounded;
            continue;
        }
        const double cycles = ticksToCycles(late[seq] - pred[seq]);
        ++s.bucket[slackBucket(cycles)];
        s.meanCycles += cycles;
        s.maxCycles = std::max(s.maxCycles, cycles);
    }
    for (SlackStats &s : stats) {
        const std::uint64_t bounded = s.edges - s.unbounded;
        if (bounded > 0)
            s.meanCycles /= static_cast<double>(bounded);
    }
    return stats;
}

InjectionReport
Predictor::injectDelay(const PredictTarget &t, NodeId node,
                       double atCycles, double stallCycles) const
{
    CostModel m(g_, t);
    std::vector<Tick> pred0, pdelta0;
    forwardPass(m, pred0, pdelta0);

    // Stall the first event the node executes at or after the chosen
    // tick: every transitively dependent event shifts with it.
    const Tick atTicks = cyclesToTicks(atCycles);
    for (std::size_t i = 0; i < g_.size(); ++i) {
        const auto s = static_cast<std::uint32_t>(i);
        if (g_.node[i] == static_cast<std::int16_t>(node)
            && g_.executed(s) && pred0[i] >= atTicks) {
            m.injectSeq = s;
            m.injectTicks = cyclesToTicks(stallCycles);
            break;
        }
    }
    std::vector<Tick> pred1, pdelta1;
    forwardPass(m, pred1, pdelta1);

    InjectionReport rep;
    rep.injectNode = node;
    rep.finishShiftCycles =
        ticksToCycles(finishOf(pred1)) - ticksToCycles(finishOf(pred0));

    const int nodes = g_.baseConfig.nodes();
    std::vector<double> done0(static_cast<std::size_t>(nodes), 0.0);
    std::vector<double> done1(static_cast<std::size_t>(nodes), 0.0);
    for (const DepGraph::FinishContrib &f : g_.finish) {
        const auto i = static_cast<std::size_t>(f.node);
        if (i >= done0.size())
            continue;
        done0[i] = std::max(done0[i],
                            ticksToCycles(pred0[f.seq] + f.extraTicks));
        done1[i] = std::max(done1[i],
                            ticksToCycles(pred1[f.seq] + f.extraTicks));
    }
    for (int i = 0; i < nodes; ++i) {
        InjectionReport::NodeImpact imp;
        imp.node = i;
        imp.hopsFromInjection =
            manhattan(i, node, g_.baseConfig.meshX);
        imp.doneShiftCycles = done1[static_cast<std::size_t>(i)]
                              - done0[static_cast<std::size_t>(i)];
        if (imp.doneShiftCycles > 1.0)
            ++rep.nodesShifted;
        rep.nodes.push_back(imp);
    }
    return rep;
}

InjectionReport
compareInjectedRuns(const DepGraph &base, const DepGraph &injected,
                    NodeId injectNode)
{
    InjectionReport rep;
    rep.injectNode = injectNode;
    rep.finishShiftCycles =
        ticksToCycles(injected.recordedFinishTick)
        - ticksToCycles(base.recordedFinishTick);

    const int nodes = base.baseConfig.nodes();
    const auto sz = static_cast<std::size_t>(nodes);
    std::vector<Tick> done0(sz, 0), done1(sz, 0);
    for (const DepGraph::FinishContrib &f : base.finish)
        if (static_cast<std::size_t>(f.node) < sz)
            done0[static_cast<std::size_t>(f.node)] = std::max(
                done0[static_cast<std::size_t>(f.node)], f.atTick);
    for (const DepGraph::FinishContrib &f : injected.finish)
        if (static_cast<std::size_t>(f.node) < sz)
            done1[static_cast<std::size_t>(f.node)] = std::max(
                done1[static_cast<std::size_t>(f.node)], f.atTick);

    std::vector<std::vector<Tick>> bar0(sz), bar1(sz);
    for (const DepGraph::Barrier &b : base.barriers)
        if (static_cast<std::size_t>(b.node) < sz)
            bar0[static_cast<std::size_t>(b.node)].push_back(b.endTick);
    for (const DepGraph::Barrier &b : injected.barriers)
        if (static_cast<std::size_t>(b.node) < sz)
            bar1[static_cast<std::size_t>(b.node)].push_back(b.endTick);

    for (int i = 0; i < nodes; ++i) {
        const auto n = static_cast<std::size_t>(i);
        InjectionReport::NodeImpact imp;
        imp.node = i;
        imp.hopsFromInjection =
            manhattan(i, injectNode, base.baseConfig.meshX);
        imp.doneShiftCycles =
            ticksToCycles(done1[n]) - ticksToCycles(done0[n]);
        const std::size_t eps = std::min(bar0[n].size(), bar1[n].size());
        imp.barrierEpisodes = eps;
        for (std::size_t e = 0; e < eps; ++e) {
            const double shift = ticksToCycles(bar1[n][e])
                                 - ticksToCycles(bar0[n][e]);
            imp.maxBarrierShiftCycles =
                std::max(imp.maxBarrierShiftCycles, std::abs(shift));
            if (std::abs(shift) > 1.0)
                ++imp.barriersShifted;
        }
        if (imp.doneShiftCycles > 1.0)
            ++rep.nodesShifted;
        rep.nodes.push_back(imp);
    }
    return rep;
}

} // namespace alewife::obs
