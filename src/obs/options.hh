/**
 * @file
 * Observability options carried by a core::RunSpec.
 *
 * Kept in a leaf header (no obs machinery) so core/runner and
 * exp::SweepEngine can embed the options by value without pulling the
 * recorder, timeline, or metrics types into their headers. The options
 * do NOT participate in result-cache keys: observation never changes a
 * result (bit-identical attached or detached), but a cached hit would
 * skip producing the requested files, so the sweep engine bypasses
 * cache reads when any() is set — the same rule audit runs use.
 */

#ifndef ALEWIFE_OBS_OPTIONS_HH
#define ALEWIFE_OBS_OPTIONS_HH

#include <cstddef>
#include <string>

namespace alewife::obs {

/** What to observe and where to write it; default is all-off. */
struct RecorderOptions
{
    /** Chrome trace / Perfetto JSON output path ("" = no timeline). */
    std::string traceOut;

    /** Metrics-registry JSON output path ("" = no metrics file). */
    std::string metricsOut;

    /** Interval-profile sampling period in cycles (0 = off). */
    double intervalCycles = 0.0;

    /** Flight-recorder ring capacity in events (0 = off). */
    std::size_t flightEvents = 0;

    /**
     * Where a violation-triggered flight dump lands; "" derives
     * "alewife-flight.dump" next to the other outputs.
     */
    std::string flightOut;

    /** True when any observation is requested. */
    bool
    any() const
    {
        return !traceOut.empty() || !metricsOut.empty()
               || intervalCycles > 0.0 || flightEvents > 0;
    }
};

/**
 * Derive a per-run variant of @p path by inserting "-<tag>" before the
 * extension ("m.json", "run3" -> "m-run3.json"). Used by the sweep
 * engine so parallel runs never share an output file.
 */
std::string withPathTag(const std::string &path, const std::string &tag);

} // namespace alewife::obs

#endif // ALEWIFE_OBS_OPTIONS_HH
