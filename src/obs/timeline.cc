#include "obs/timeline.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "sim/logging.hh"

namespace alewife::obs {

namespace {

/**
 * Print a JSON number: integers (the common case — tick counts are
 * integral and cycles have at most two decimals) without exponents,
 * anything else with enough digits to round-trip.
 */
void
putNum(std::ostream &os, double v)
{
    char buf[32];
    if (v == static_cast<double>(static_cast<long long>(v))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    os << buf;
}

void
putStr(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void
putStr(std::ostream &os, const std::string &s)
{
    putStr(os, s.c_str());
}

/** Export scale: ticks -> cycles, mapped onto the trace's "us" unit. */
double
ts(Tick t)
{
    return ticksToCycles(t);
}

} // namespace

void
TraceWriter::complete(int pid, int tid, const char *name,
                      const char *cat, Tick start, Tick end)
{
    Ev e;
    e.ts = start;
    e.dur = end - start;
    e.name = name;
    e.cat = cat;
    e.pid = pid;
    e.tid = tid;
    e.ph = 'X';
    evs_.push_back(e);
}

void
TraceWriter::asyncPair(int pid, const char *name, const char *cat,
                       std::uint64_t id, Tick start, Tick end)
{
    Ev b;
    b.ts = start;
    b.id = id;
    b.name = name;
    b.cat = cat;
    b.pid = pid;
    b.ph = 'b';
    evs_.push_back(b);

    Ev e = b;
    e.ts = end;
    e.ph = 'e';
    evs_.push_back(e);
}

void
TraceWriter::instant(int pid, int tid, const char *name,
                     const char *cat, Tick at, const char *argName,
                     double arg)
{
    Ev e;
    e.ts = at;
    e.name = name;
    e.cat = cat;
    e.argName = argName;
    e.arg = arg;
    e.pid = pid;
    e.tid = tid;
    e.ph = 'i';
    evs_.push_back(e);
}

void
TraceWriter::counter(int pid, const char *name, const char *series,
                     Tick at, double value)
{
    Ev e;
    e.ts = at;
    e.name = name;
    e.cat = "obs";
    e.argName = series;
    e.arg = value;
    e.pid = pid;
    e.ph = 'C';
    evs_.push_back(e);
}

void
TraceWriter::processName(int pid, std::string name)
{
    meta_.push_back(Meta{pid, 0, false, std::move(name)});
}

void
TraceWriter::threadName(int pid, int tid, std::string name)
{
    meta_.push_back(Meta{pid, tid, true, std::move(name)});
}

void
TraceWriter::writeTo(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\","
          "\"otherData\":{\"tsUnit\":\"cycles (1 cycle = 1us)\"},"
          "\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    for (const auto &m : meta_) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << m.pid << ",\"tid\":" << m.tid
           << ",\"name\":"
           << (m.thread ? "\"thread_name\"" : "\"process_name\"")
           << ",\"args\":{\"name\":";
        putStr(os, m.name);
        os << "}}";
    }

    for (const auto &e : evs_) {
        sep();
        os << "{\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid;
        if (e.ph == 'X' || e.ph == 'i')
            os << ",\"tid\":" << e.tid;
        os << ",\"name\":";
        putStr(os, e.name);
        if (e.cat != nullptr) {
            os << ",\"cat\":";
            putStr(os, e.cat);
        }
        os << ",\"ts\":";
        putNum(os, ts(e.ts));
        switch (e.ph) {
          case 'X':
            os << ",\"dur\":";
            putNum(os, ts(e.dur));
            break;
          case 'b':
          case 'e':
            os << ",\"id\":" << e.id;
            break;
          case 'i':
            os << ",\"s\":\"t\"";
            break;
          default:
            break;
        }
        if (e.ph == 'C' || (e.ph == 'i' && e.argName != nullptr)) {
            os << ",\"args\":{";
            putStr(os, e.argName);
            os << ":";
            putNum(os, e.arg);
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
TraceWriter::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        ALEWIFE_FATAL("trace-out: cannot open ", path);
    writeTo(os);
}

} // namespace alewife::obs
