#include "obs/flight.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>

#include "sim/logging.hh"

namespace alewife::obs {

const char *
FlightRecorder::kindName(Kind k)
{
    switch (k) {
      case Kind::PacketInjected: return "pkt-inject";
      case Kind::PacketDelivered: return "pkt-deliver";
      case Kind::Hop: return "hop";
      case Kind::ProcSpan: return "proc-span";
      case Kind::HandlerRun: return "handler-run";
      case Kind::BarrierEpisode: return "barrier";
      case Kind::CacheFill: return "cache-fill";
      case Kind::CacheEvict: return "cache-evict";
      case Kind::CacheInvalidate: return "cache-inval";
      case Kind::CacheDowngrade: return "cache-down";
      case Kind::CacheUpgrade: return "cache-up";
      case Kind::PfbInstall: return "pfb-install";
      case Kind::PfbRemove: return "pfb-remove";
      case Kind::ProtoSend: return "proto-send";
      case Kind::ProtoProcess: return "proto-proc";
      case Kind::LocalGrant: return "local-grant";
      case Kind::Fill: return "fill";
      case Kind::MshrOpen: return "mshr-open";
      case Kind::MshrClose: return "mshr-close";
      case Kind::TxnOpen: return "txn-open";
      case Kind::TxnClose: return "txn-close";
      case Kind::RecallStashed: return "recall-stash";
      case Kind::RecallHonored: return "recall-honor";
      default: return "?";
    }
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity))
{
}

std::size_t
FlightRecorder::size() const
{
    return std::min<std::uint64_t>(total_, ring_.size());
}

void
FlightRecorder::dump(std::ostream &os) const
{
    const std::size_t n = size();
    os << "flight recorder: " << n << " of " << total_
       << " events retained (capacity " << ring_.size() << ")\n";
    if (n == 0)
        return;
    // Oldest retained record: next_ once the ring has wrapped, 0
    // before that.
    std::size_t i = (total_ > ring_.size()) ? next_ : 0;
    for (std::size_t k = 0; k < n; ++k) {
        const Rec &r = ring_[i];
        os << "  [" << std::setw(6) << (total_ - n + k) << "] cyc "
           << std::setw(10) << ticksToCycles(r.tick) << "  node "
           << std::setw(3) << r.node << "  " << std::setw(12)
           << kindName(r.kind) << "  a=0x" << std::hex << r.a
           << " b=0x" << r.b << std::dec << "\n";
        i = (i + 1 == ring_.size()) ? 0 : i + 1;
    }
}

void
FlightRecorder::dumpToFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        ALEWIFE_FATAL("flight recorder: cannot open ", path);
    dump(os);
}

} // namespace alewife::obs
