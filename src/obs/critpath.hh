/**
 * @file
 * Critical-path dependency recorder.
 *
 * CritPathRecorder captures the *happens-before graph* of one run as a
 * compact event tree: every event scheduled on the kernel is a node
 * whose single parent is the event that scheduled it (sim::DepListener
 * seam), annotated with its schedule->fire delay. Because every
 * blocking wait in the machine model is released by an explicit event
 * (completeOp / recheckCond / resume), the tree is exactly the data-
 * dependency graph of the run. Network edges additionally carry the
 * cost decomposition the mesh reports through
 * check::Hooks::onPacketEdgeCost — fixed (netFixedNs), per-hop
 * (hopNs), serialization (linkMBps) and queueing components — which is
 * what lets obs::Predictor re-cost the whole run under a different
 * machine configuration without re-simulating (see predict.hh).
 *
 * Non-network event delays (compute bursts, handler charges, protocol
 * occupancy, NI retries) are processor-clocked: their tick values are
 * invariant under every knob the predictor sweeps (hopNs, netFixedNs,
 * linkMBps, procMhz — ticks count 1/100 *cycle*), so they replay
 * verbatim.
 *
 * The recorder implements both check::Hooks and DepListener; attaching
 * it forces the serial kernel (the parallel window engine re-assigns
 * sequence numbers at commit, which would scramble the tree) and never
 * changes results — the graph of a run is bit-identical run-to-run and
 * identical whether or not an obs::Recorder is attached alongside
 * (pinned by tests/obs/critpath).
 */

#ifndef ALEWIFE_OBS_CRITPATH_HH
#define ALEWIFE_OBS_CRITPATH_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/hooks.hh"
#include "machine/config.hh"
#include "sim/event_queue.hh"
#include "sim/event_tag.hh"
#include "sim/types.hh"

namespace alewife {
class Machine;
}

namespace alewife::obs {

/**
 * The recorded dependency graph of one run. Plain data; produced by
 * CritPathRecorder, consumed by obs::Predictor. Storage is
 * struct-of-arrays indexed by kernel sequence number (seq ids are
 * assigned monotonically at schedule time, so index order is a valid
 * topological order of the tree).
 */
class DepGraph
{
  public:
    /** Parent index of events scheduled outside any event (roots). */
    static constexpr std::uint32_t kNoParent = 0xffffffffu;
    /** Sentinel in delta32 for the rare delay that exceeds 32 bits. */
    static constexpr std::uint32_t kBigDelta = 0xffffffffu;

    /** Cost decomposition of a network edge (mesh deliver event). */
    struct NetEdge
    {
        NodeId src = 0;
        NodeId dst = 0;
        std::uint32_t bytes = 0;
        std::uint16_t hops = 0;
        std::uint16_t xHops = 0;
        Tick fixedTicks = 0;
        Tick hopTicksTotal = 0;
        Tick serTicks = 0;
        Tick queueTicks = 0;
        bool ideal = false;
    };

    /**
     * One contribution to the machine's finish time: finishTick is the
     * max over nodes of the node-local clock, which advances inside
     * events (run-ahead) — so each contribution is an event plus the
     * local-clock excess over that event's tick. Emitted at program
     * completion and for post-completion handler charges.
     */
    struct FinishContrib
    {
        std::uint32_t seq = 0;
        NodeId node = 0;
        Tick extraTicks = 0;
        /** Absolute node-local completion tick (event tick + extra). */
        Tick atTick = 0;
    };

    /** One barrier episode, in node-local ticks (onBarrierEpisode). */
    struct Barrier
    {
        NodeId node = 0;
        Tick startTick = 0;
        Tick endTick = 0;
    };

    // -- per-event columns, indexed by seq --------------------------
    std::vector<std::uint32_t> parent;
    std::vector<std::uint32_t> delta32;
    std::vector<std::uint8_t> tag;      ///< EventTag
    std::vector<std::uint8_t> flags;    ///< bit 0: executed
    std::vector<std::int16_t> node;     ///< owning node, -1 if none

    /** Deltas that did not fit delta32 (delta32 == kBigDelta). */
    std::unordered_map<std::uint32_t, Tick> bigDelta;
    /** Absolute schedule-time `now` of root events. */
    std::unordered_map<std::uint32_t, Tick> rootNow;
    /** Network-edge annotations, keyed by deliver-event seq. */
    std::unordered_map<std::uint32_t, NetEdge> netEdges;

    std::vector<FinishContrib> finish;
    std::vector<Barrier> barriers;

    /**
     * Compute spans per node, in absolute node-local ticks (from
     * check::Hooks::onProcSpan, Compute category only, emitted in
     * nondecreasing order). The processor charges compute by running
     * its local clock ahead, so compute time is embedded in the
     * schedule deltas of the *next* request-launch events; these spans
     * let the critical-path breakdown separate it back out.
     */
    std::vector<std::vector<std::pair<Tick, Tick>>> computeSpans;

    /** Machine configuration the run was captured under. */
    MachineConfig baseConfig;
    /** Finish tick the captured run actually reported. */
    Tick recordedFinishTick = 0;
    /** Total events the captured run executed (cost accounting). */
    std::uint64_t eventsExecuted = 0;

    std::size_t size() const { return parent.size(); }

    /** Schedule->fire delay of event @p seq in ticks. */
    Tick
    deltaTicks(std::uint32_t seq) const
    {
        const std::uint32_t d = delta32[seq];
        if (d == kBigDelta) [[unlikely]] {
            const auto it = bigDelta.find(seq);
            return it == bigDelta.end() ? Tick{kBigDelta} : it->second;
        }
        return d;
    }

    bool executed(std::uint32_t seq) const { return flags[seq] & 1u; }

    /**
     * FNV-1a digest over the full graph (tree, annotations, finish
     * contributions, barriers). Two runs with identical schedules have
     * identical digests — the determinism anchor for tests.
     */
    std::uint64_t digest() const;

    /** Approximate heap footprint in bytes (capture-cost reporting). */
    std::size_t memoryBytes() const;
};

/**
 * Records a DepGraph while attached to a Machine. Attach before
 * Machine::run; the graph is complete once the run finishes.
 */
class CritPathRecorder final : public check::Hooks,
                               public DepListener
{
  public:
    CritPathRecorder();

    /** Hook into @p m (hooks fanout + kernel dependency listener). */
    void attach(Machine &m);

    /** The captured graph. Valid after the run completes. */
    const DepGraph &graph() const { return g_; }
    DepGraph &graph() { return g_; }

    // -- DepListener ------------------------------------------------
    void onSchedule(std::uint64_t seq, std::uint64_t parentSeq,
                    Tick when, Tick now,
                    const EventMeta &meta) override;
    void onExecute(std::uint64_t seq, Tick when) override;

    // -- check::Hooks -----------------------------------------------
    void onPacketEdgeCost(const check::PacketEdgeCost &cost) override;
    void onProgramDone(NodeId node, Tick extraTicks) override;
    void onHandlerRun(NodeId node, Tick start, Tick end) override;
    void onBarrierEpisode(NodeId node, Tick start, Tick end) override;
    void onProcSpan(NodeId node, TimeCat cat, Tick start,
                    Tick end) override;

  private:
    DepGraph g_;
    /** Edge cost reported just before the matching deliver schedule. */
    check::PacketEdgeCost pendingEdge_;
    bool havePendingEdge_ = false;
    /** Seq + tick of the event currently executing. */
    std::uint32_t curSeq_ = DepGraph::kNoParent;
    Tick curWhen_ = 0;
    /** Nodes whose program has completed (post-done handler charges
     *  also contribute to the finish time). */
    std::vector<bool> doneNodes_;
};

} // namespace alewife::obs

#endif // ALEWIFE_OBS_CRITPATH_HH
