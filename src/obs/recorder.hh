/**
 * @file
 * Recorder: the observability layer's check::Hooks implementation.
 *
 * One Recorder owns one run's observation state — the metrics
 * registry, the timeline writer, the interval-profile samples, and the
 * optional flight-recorder ring — and is attached to a Machine next to
 * (or instead of) the invariant auditor via Machine::attachHooks. A
 * detached machine pays one null check per observation point; an
 * attached recorder only ever reads simulator state and appends to its
 * own buffers, never schedules events, so results are bit-identical
 * with the recorder attached or detached (pinned by
 * tests/obs/determinism).
 *
 * Thread-safety follows the one-sink-per-simulation-thread discipline:
 * a Recorder is single-threaded state, and parallel sweeps construct
 * one per job with per-run output paths (obs::withPathTag).
 */

#ifndef ALEWIFE_OBS_RECORDER_HH
#define ALEWIFE_OBS_RECORDER_HH

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/hooks.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/options.hh"
#include "obs/timeline.hh"
#include "sim/types.hh"

namespace alewife {
class Machine;
class EventQueue;
}

namespace alewife::obs {

/** Observes one run; write outputs with finalize(). */
class Recorder final : public check::Hooks
{
  public:
    /** One interval-profile sample (cumulative values at @p tick). */
    struct Sample
    {
        Tick tick = 0;
        std::array<Tick, static_cast<std::size_t>(TimeCat::NumCats)>
            breakdown{};
        std::uint64_t volumeBytes = 0;
        std::uint64_t events = 0;
    };

    Recorder(RecorderOptions opts, int nodes);

    /** Wire into @p m (Machine::attachHooks) and name the tracks. */
    void attach(Machine &m);

    MetricsRegistry &metrics() { return metrics_; }
    TraceWriter &trace() { return trace_; }
    FlightRecorder *flight() { return flight_ ? &*flight_ : nullptr; }
    const std::vector<Sample> &samples() const { return samples_; }

    /**
     * Dump the flight ring to @p pathHint, or to the configured /
     * derived path when empty. Returns the path written, "" when the
     * flight recorder is off.
     */
    std::string dumpFlight(const std::string &pathHint = "");

    /**
     * Flush pending processor spans, fold end-of-run machine state
     * (CMMU counters, link occupancy, mesh gauges) into the registry,
     * and write the trace / metrics files named in the options.
     */
    void finalize();

    // --- Hooks overrides ---

    void onEventExecuted(Tick now) override;
    void onPacketInjected(const net::Packet &pkt) override;
    void onPacketDelivered(const net::Packet &pkt) override;
    void onHop(const net::Packet &pkt, int link, Tick depart,
               Tick waited) override;
    void onProcSpan(NodeId node, TimeCat cat, Tick start,
                    Tick end) override;
    void onHandlerRun(NodeId node, Tick start, Tick end) override;
    void onBarrierEpisode(NodeId node, Tick start, Tick end) override;
    void onCacheFill(NodeId node, Addr line, mem::LineState st,
                     const std::vector<std::uint64_t> &words) override;
    void onCacheInvalidate(NodeId node, Addr line,
                           bool wasModified) override;
    void onProtoSend(NodeId src, NodeId dst,
                     const coh::ProtoMsg &msg) override;
    void onMshrOpen(NodeId node, Addr line, bool exclusive) override;
    void onFill(NodeId node, Addr line, bool exclusive) override;
    void onTxnOpen(NodeId home, Addr line,
                   const coh::DirTxn &txn) override;
    void onTxnClose(NodeId home, Addr line) override;

  private:
    /** Current tick: the event queue when attached, else the last
     *  onEventExecuted tick (bare-EventQueue microbench attach). */
    Tick tick() const;

    /** (node, line/addr) composite map key. */
    static std::uint64_t
    key(NodeId node, Addr a)
    {
        return (static_cast<std::uint64_t>(node) << 48)
               ^ static_cast<std::uint64_t>(a);
    }

    void takeSample(Tick at);

    RecorderOptions opts_;
    int nodes_;
    Machine *machine_ = nullptr;
    EventQueue *eq_ = nullptr;
    Tick lastTick_ = 0;

    MetricsRegistry metrics_;
    TraceWriter trace_;
    std::optional<FlightRecorder> flight_;
    bool traceOn_ = false;

    // Interval profiling.
    Tick intervalTicks_ = 0;
    Tick nextSample_ = 0;
    std::vector<Sample> samples_;

    // Open-span bookkeeping (lookup only; never iterated for output).
    std::unordered_map<std::uint64_t, Tick> injectTick_; ///< pkt id
    std::unordered_map<std::uint64_t, Tick> mshrOpen_;   ///< key(node,line)
    std::unordered_map<std::uint64_t, Tick> txnOpen_;    ///< key(home,line)

    // Metric ids (registered in the ctor, deterministic order).
    int cPktInjected_, cPktDelivered_, cHops_, cProtoSends_;
    int cCacheFills_, cInvalidations_;
    int hRemoteMiss_, hLocalMiss_, hPktTransit_, hLinkWait_;
    int hHandlerRun_, hBarrierWait_, hTxn_;
};

} // namespace alewife::obs

#endif // ALEWIFE_OBS_RECORDER_HH
