#include "obs/recorder.hh"

#include <fstream>
#include <utility>

#include "machine/machine.hh"
#include "net/packet.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace alewife::obs {

namespace {

/** Shared log-ish bucket ladder for latency histograms, in cycles. */
std::vector<double>
cycleBuckets()
{
    return {1,   2,   5,    10,   20,   50,   100,
            200, 500, 1000, 2000, 5000, 10000};
}

} // namespace

std::string
withPathTag(const std::string &path, const std::string &tag)
{
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.rfind('/');
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash))
        return path + "-" + tag;
    return path.substr(0, dot) + "-" + tag + path.substr(dot);
}

Recorder::Recorder(RecorderOptions opts, int nodes)
    : opts_(std::move(opts)), nodes_(nodes), metrics_(nodes)
{
    traceOn_ = !opts_.traceOut.empty();
    if (opts_.flightEvents > 0)
        flight_.emplace(opts_.flightEvents);
    intervalTicks_ = cyclesToTicks(opts_.intervalCycles);
    nextSample_ = intervalTicks_;

    // Fixed metric set, registered in one deterministic order so the
    // exported key order is stable run to run.
    cPktInjected_ = metrics_.counterId("net.packets_injected");
    cPktDelivered_ = metrics_.counterId("net.packets_delivered");
    cHops_ = metrics_.counterId("net.hops");
    cProtoSends_ = metrics_.counterId("coh.proto_sends");
    cCacheFills_ = metrics_.counterId("mem.cache_fills");
    cInvalidations_ = metrics_.counterId("mem.invalidations");

    hRemoteMiss_ =
        metrics_.histogramId("remote_miss_cycles", cycleBuckets());
    hLocalMiss_ =
        metrics_.histogramId("local_miss_cycles", cycleBuckets());
    hPktTransit_ =
        metrics_.histogramId("packet_transit_cycles", cycleBuckets());
    hLinkWait_ = metrics_.histogramId("link_wait_cycles", cycleBuckets());
    hHandlerRun_ =
        metrics_.histogramId("handler_run_cycles", cycleBuckets());
    hBarrierWait_ =
        metrics_.histogramId("barrier_wait_cycles", cycleBuckets());
    hTxn_ = metrics_.histogramId("coh_txn_cycles", cycleBuckets());
}

void
Recorder::attach(Machine &m)
{
    machine_ = &m;
    eq_ = &m.eq();
    m.attachHooks(this);

    if (traceOn_) {
        for (int i = 0; i < nodes_; ++i) {
            trace_.processName(i, "node " + std::to_string(i));
            trace_.threadName(i, 0, "phases");
            trace_.threadName(i, 1, "handlers");
            trace_.threadName(i, 2, "sync");
            trace_.threadName(i, 3, "mesh");
        }
        trace_.processName(nodes_, "machine");
    }
}

Tick
Recorder::tick() const
{
    return eq_ ? eq_->now() : lastTick_;
}

// ---------------------------------------------------------------------
// Hooks
// ---------------------------------------------------------------------

void
Recorder::onEventExecuted(Tick now)
{
    lastTick_ = now;
    if (intervalTicks_ == 0 || machine_ == nullptr)
        return;
    while (now >= nextSample_) {
        takeSample(nextSample_);
        nextSample_ += intervalTicks_;
    }
}

void
Recorder::takeSample(Tick at)
{
    Sample s;
    s.tick = at;
    const TimeBreakdown bd = machine_->breakdownSum();
    s.breakdown = bd.ticks;
    s.volumeBytes = machine_->volume().total();
    s.events = machine_->eq().eventsExecuted();
    samples_.push_back(s);

    if (traceOn_) {
        // One counter track per Figure-4 category on the machine pid.
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(TimeCat::NumCats); ++c) {
            trace_.counter(nodes_,
                           timeCatName(static_cast<TimeCat>(c)),
                           "cycles", at,
                           ticksToCycles(s.breakdown[c]));
        }
        trace_.counter(nodes_, "net-volume", "bytes", at,
                       static_cast<double>(s.volumeBytes));
    }
}

void
Recorder::onPacketInjected(const net::Packet &pkt)
{
    const NodeId n = pkt.src >= 0 && pkt.src < nodes_ ? pkt.src : 0;
    metrics_.addCounter(cPktInjected_, n);
    injectTick_[pkt.id] = tick();
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::PacketInjected, n,
                      pkt.id, static_cast<std::uint64_t>(pkt.dst));
}

void
Recorder::onPacketDelivered(const net::Packet &pkt)
{
    const NodeId n = pkt.dst >= 0 && pkt.dst < nodes_ ? pkt.dst : 0;
    metrics_.addCounter(cPktDelivered_, n);
    const auto it = injectTick_.find(pkt.id);
    if (it != injectTick_.end()) {
        const Tick start = it->second;
        const Tick end = tick();
        metrics_.observe(hPktTransit_, n,
                         ticksToCycles(end - start));
        if (traceOn_) {
            // Emitted as a matched pair only now that the end is
            // known, so every "b" in the file has its "e".
            trace_.asyncPair(pkt.src >= 0 ? pkt.src : 0, "pkt", "net",
                             pkt.id, start, end);
        }
        injectTick_.erase(it);
    }
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::PacketDelivered, n,
                      pkt.id, static_cast<std::uint64_t>(pkt.src));
}

void
Recorder::onHop(const net::Packet &pkt, int link, Tick depart,
                Tick waited)
{
    const NodeId n = pkt.src >= 0 && pkt.src < nodes_ ? pkt.src : 0;
    metrics_.addCounter(cHops_, n);
    metrics_.observe(hLinkWait_, n, ticksToCycles(waited));
    if (traceOn_) {
        trace_.instant(link / 4, 3, "hop", "net", depart,
                       "waited_cycles", ticksToCycles(waited));
    }
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::Hop, n, pkt.id,
                      static_cast<std::uint64_t>(link));
}

void
Recorder::onProcSpan(NodeId node, TimeCat cat, Tick start, Tick end)
{
    if (traceOn_)
        trace_.complete(node, 0, timeCatName(cat), "proc", start, end);
    if (flight_)
        flight_->push(end, FlightRecorder::Kind::ProcSpan, node,
                      static_cast<std::uint64_t>(cat), end - start);
}

void
Recorder::onHandlerRun(NodeId node, Tick start, Tick end)
{
    metrics_.observe(hHandlerRun_, node, ticksToCycles(end - start));
    if (traceOn_)
        trace_.complete(node, 1, "handler", "proc", start, end);
    if (flight_)
        flight_->push(end, FlightRecorder::Kind::HandlerRun, node,
                      end - start);
}

void
Recorder::onBarrierEpisode(NodeId node, Tick start, Tick end)
{
    metrics_.observe(hBarrierWait_, node, ticksToCycles(end - start));
    if (traceOn_)
        trace_.complete(node, 2, "barrier", "sync", start, end);
    if (flight_)
        flight_->push(end, FlightRecorder::Kind::BarrierEpisode, node,
                      end - start);
}

void
Recorder::onCacheFill(NodeId node, Addr line, mem::LineState,
                      const std::vector<std::uint64_t> &)
{
    metrics_.addCounter(cCacheFills_, node);
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::CacheFill, node,
                      line);
}

void
Recorder::onCacheInvalidate(NodeId node, Addr line, bool wasModified)
{
    metrics_.addCounter(cInvalidations_, node);
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::CacheInvalidate,
                      node, line, wasModified ? 1 : 0);
}

void
Recorder::onProtoSend(NodeId src, NodeId dst, const coh::ProtoMsg &)
{
    metrics_.addCounter(cProtoSends_, src);
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::ProtoSend, src,
                      static_cast<std::uint64_t>(dst));
}

void
Recorder::onMshrOpen(NodeId node, Addr line, bool exclusive)
{
    mshrOpen_[key(node, line)] = tick();
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::MshrOpen, node,
                      line, exclusive ? 1 : 0);
}

void
Recorder::onFill(NodeId node, Addr line, bool exclusive)
{
    const auto it = mshrOpen_.find(key(node, line));
    if (it != mshrOpen_.end()) {
        const double cyc = ticksToCycles(tick() - it->second);
        const bool remote =
            machine_ != nullptr && machine_->mem().home(line) != node;
        metrics_.observe(remote ? hRemoteMiss_ : hLocalMiss_, node,
                         cyc);
        mshrOpen_.erase(it);
    }
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::Fill, node, line,
                      exclusive ? 1 : 0);
}

void
Recorder::onTxnOpen(NodeId home, Addr line, const coh::DirTxn &)
{
    txnOpen_[key(home, line)] = tick();
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::TxnOpen, home,
                      line);
}

void
Recorder::onTxnClose(NodeId home, Addr line)
{
    const auto it = txnOpen_.find(key(home, line));
    if (it != txnOpen_.end()) {
        const Tick start = it->second;
        const Tick end = tick();
        metrics_.observe(hTxn_, home, ticksToCycles(end - start));
        if (traceOn_)
            trace_.asyncPair(home, "txn", "coh", line, start, end);
        txnOpen_.erase(it);
    }
    if (flight_)
        flight_->push(tick(), FlightRecorder::Kind::TxnClose, home,
                      line);
}

// ---------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------

std::string
Recorder::dumpFlight(const std::string &pathHint)
{
    if (!flight_)
        return "";
    std::string path = pathHint;
    if (path.empty())
        path = opts_.flightOut;
    if (path.empty())
        path = "alewife-flight.dump";
    flight_->dumpToFile(path);
    return path;
}

void
Recorder::finalize()
{
    if (machine_ != nullptr) {
        // Push out the tail coalesced span of every processor so the
        // timeline covers the full run.
        for (int i = 0; i < nodes_; ++i)
            machine_->procAt(i).flushSpans();

        metrics_.ingest(machine_->counters());
        metrics_.setGauge("mesh.bisection_utilization",
                          machine_->mesh().bisectionUtilization());
        metrics_.setGauge("mesh.bisection_bytes",
                          static_cast<double>(
                              machine_->mesh().bisectionBytes()));
        metrics_.setGauge("mesh.ni_rejects",
                          static_cast<double>(
                              machine_->mesh().niRejects()));
        metrics_.setGauge("sim.events",
                          static_cast<double>(
                              machine_->eq().eventsExecuted()));
        metrics_.setGauge("sim.finish_cycles",
                          ticksToCycles(machine_->eq().now()));
    }

    if (!opts_.metricsOut.empty()) {
        exp::Json j = metrics_.toJson();

        if (machine_ != nullptr) {
            const Tick now = machine_->eq().now();
            exp::Json links = exp::Json::array();
            for (const auto &l : machine_->mesh().linkStats()) {
                exp::Json lj = exp::Json::object();
                lj.set("busyTicks", l.busyTicks);
                lj.set("bytes", l.bytes);
                lj.set("utilization",
                       now > 0 ? static_cast<double>(l.busyTicks)
                                     / static_cast<double>(now)
                               : 0.0);
                links.push(std::move(lj));
            }
            j.set("links", std::move(links));
        }

        exp::Json ivs = exp::Json::array();
        for (const auto &s : samples_) {
            exp::Json sj = exp::Json::object();
            sj.set("cycle", ticksToCycles(s.tick));
            exp::Json bd = exp::Json::object();
            for (std::size_t c = 0; c < s.breakdown.size(); ++c)
                bd.set(timeCatName(static_cast<TimeCat>(c)),
                       ticksToCycles(s.breakdown[c]));
            sj.set("breakdownCycles", std::move(bd));
            sj.set("volumeBytes", s.volumeBytes);
            sj.set("events", s.events);
            ivs.push(std::move(sj));
        }
        j.set("intervals", std::move(ivs));

        std::ofstream os(opts_.metricsOut);
        if (!os)
            ALEWIFE_FATAL("metrics-out: cannot open ",
                          opts_.metricsOut);
        os << j.dump(1) << "\n";
        ALEWIFE_TRACE_EVENT(TraceCat::Obs, tick(), "metrics -> ",
                            opts_.metricsOut);
    }

    if (traceOn_) {
        trace_.writeFile(opts_.traceOut);
        ALEWIFE_TRACE_EVENT(TraceCat::Obs, tick(), "trace -> ",
                            opts_.traceOut, " (", trace_.events(),
                            " events)");
    }
}

} // namespace alewife::obs
