/**
 * @file
 * Chrome trace-event (Perfetto-compatible) timeline writer.
 *
 * Events accumulate in a compact in-memory vector (one POD record per
 * event, names/categories as pointers to string literals) and are
 * streamed out as a single JSON-object-format trace on writeTo(): a
 * `traceEvents` array plus metadata, loadable directly in
 * ui.perfetto.dev or chrome://tracing.
 *
 * Timestamps are recorded in simulator ticks and exported in *cycles*
 * mapped onto the trace's microsecond unit (1 cycle == 1 us), so the
 * Perfetto ruler reads directly in machine cycles. `otherData.tsUnit`
 * documents the mapping.
 *
 * Phase legend (Chrome trace format):
 *   "X"  complete slice (ts + dur)      — processor phases, handlers
 *   "b"/"e" async begin/end (cat + id)  — packets in flight, coherence
 *                                         transactions; this writer
 *                                         emits them as matched pairs
 *                                         by construction
 *   "i"  instant                        — mesh hops, audit violations
 *   "C"  counter                        — interval-profile samples
 *   "M"  metadata                       — process / thread names
 */

#ifndef ALEWIFE_OBS_TIMELINE_HH
#define ALEWIFE_OBS_TIMELINE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace alewife::obs {

/** Collects trace events and streams them as Chrome trace JSON. */
class TraceWriter
{
  public:
    /** A complete ("X") slice on track @p tid of process @p pid. */
    void complete(int pid, int tid, const char *name, const char *cat,
                  Tick start, Tick end);

    /**
     * An async span as a matched "b"/"e" pair (same cat + id). Emitted
     * together once the span's end is known, which is what guarantees
     * every begin has its end in the file.
     */
    void asyncPair(int pid, const char *name, const char *cat,
                   std::uint64_t id, Tick start, Tick end);

    /** A thread-scoped instant ("i") event. */
    void instant(int pid, int tid, const char *name, const char *cat,
                 Tick ts, const char *argName = nullptr, double arg = 0);

    /** A counter ("C") sample: one named series value at @p ts. */
    void counter(int pid, const char *name, const char *series, Tick ts,
                 double value);

    /** Name the process (Perfetto group) for @p pid. */
    void processName(int pid, std::string name);

    /** Name a thread (track) within @p pid. */
    void threadName(int pid, int tid, std::string name);

    std::size_t events() const { return evs_.size(); }

    /** Stream the whole trace as one JSON object document. */
    void writeTo(std::ostream &os) const;

    /** writeTo() an on-disk file; fatal if the file cannot be opened. */
    void writeFile(const std::string &path) const;

  private:
    /**
     * One trace event. @p name / @p cat / @p argName point at string
     * literals (static storage) supplied by the instrumentation sites,
     * so records stay trivially copyable and allocation-free.
     */
    struct Ev
    {
        Tick ts = 0;
        Tick dur = 0;
        std::uint64_t id = 0;
        double arg = 0.0;
        const char *name = nullptr;
        const char *cat = nullptr;
        const char *argName = nullptr;
        std::int32_t pid = 0;
        std::int32_t tid = 0;
        char ph = 'X';
    };

    struct Meta
    {
        std::int32_t pid = 0;
        std::int32_t tid = 0;
        bool thread = false; ///< thread_name vs process_name
        std::string name;
    };

    std::vector<Ev> evs_;
    std::vector<Meta> meta_;
};

} // namespace alewife::obs

#endif // ALEWIFE_OBS_TIMELINE_HH
