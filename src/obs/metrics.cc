#include "obs/metrics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace alewife::obs {

MetricsRegistry::MetricsRegistry(int nodes) : nodes_(std::max(1, nodes))
{
}

int
MetricsRegistry::counterId(const std::string &name)
{
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (counters_[i].name == name)
            return static_cast<int>(i);
    }
    Counter c;
    c.name = name;
    c.perNode.assign(static_cast<std::size_t>(nodes_), 0);
    counters_.push_back(std::move(c));
    return static_cast<int>(counters_.size() - 1);
}

std::uint64_t
MetricsRegistry::counterTotal(int id) const
{
    std::uint64_t t = 0;
    for (std::uint64_t v : counters_[static_cast<std::size_t>(id)].perNode)
        t += v;
    return t;
}

void
MetricsRegistry::setGauge(const std::string &name, double v)
{
    for (auto &g : gauges_) {
        if (g.name == name) {
            g.value = v;
            return;
        }
    }
    gauges_.push_back(Gauge{name, v});
}

int
MetricsRegistry::histogramId(const std::string &name,
                             std::vector<double> bounds)
{
    for (std::size_t i = 0; i < hists_.size(); ++i) {
        if (hists_[i].name == name)
            return static_cast<int>(i);
    }
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        if (bounds[i] <= bounds[i - 1])
            ALEWIFE_FATAL("histogram ", name,
                          ": bucket bounds must ascend");
    }
    Histogram h;
    h.name = name;
    h.bounds = std::move(bounds);
    h.perNode.resize(static_cast<std::size_t>(nodes_));
    for (auto &pn : h.perNode)
        pn.buckets.assign(h.bounds.size() + 1, 0);
    hists_.push_back(std::move(h));
    return static_cast<int>(hists_.size() - 1);
}

void
MetricsRegistry::observe(int id, NodeId node, double v)
{
    Histogram &h = hists_[static_cast<std::size_t>(id)];
    PerNodeHist &pn = h.perNode[static_cast<std::size_t>(node)];
    // First bucket whose inclusive upper edge holds v; else overflow.
    std::size_t b = 0;
    while (b < h.bounds.size() && v > h.bounds[b])
        ++b;
    ++pn.buckets[b];
    ++pn.count;
    pn.sum += v;
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
}

std::uint64_t
MetricsRegistry::histCount(int id) const
{
    std::uint64_t t = 0;
    for (const auto &pn : hists_[static_cast<std::size_t>(id)].perNode)
        t += pn.count;
    return t;
}

double
MetricsRegistry::histSum(int id) const
{
    double t = 0.0;
    for (const auto &pn : hists_[static_cast<std::size_t>(id)].perNode)
        t += pn.sum;
    return t;
}

void
MetricsRegistry::ingest(const MachineCounters &c, NodeId node)
{
    for (const auto &f : machineCounterFields()) {
        const int id = counterId(std::string("cmmu.") + f.name);
        addCounter(id, node, c.*(f.member));
    }
}

exp::Json
MetricsRegistry::toJson() const
{
    exp::Json j = exp::Json::object();
    j.set("schema", "alewife-metrics");
    j.set("version", kMetricsSchemaVersion);
    j.set("nodes", nodes_);

    exp::Json ctrs = exp::Json::object();
    for (const auto &c : counters_) {
        exp::Json o = exp::Json::object();
        std::uint64_t total = 0;
        exp::Json per = exp::Json::array();
        for (std::uint64_t v : c.perNode) {
            total += v;
            per.push(v);
        }
        o.set("total", total);
        o.set("perNode", std::move(per));
        ctrs.set(c.name, std::move(o));
    }
    j.set("counters", std::move(ctrs));

    exp::Json gs = exp::Json::object();
    for (const auto &g : gauges_)
        gs.set(g.name, g.value);
    j.set("gauges", std::move(gs));

    exp::Json hs = exp::Json::object();
    for (const auto &h : hists_) {
        exp::Json o = exp::Json::object();
        exp::Json bounds = exp::Json::array();
        for (double b : h.bounds)
            bounds.push(b);
        o.set("bounds", std::move(bounds));

        std::uint64_t count = 0;
        double sum = 0.0;
        std::vector<std::uint64_t> agg(h.bounds.size() + 1, 0);
        for (const auto &pn : h.perNode) {
            count += pn.count;
            sum += pn.sum;
            for (std::size_t b = 0; b < agg.size(); ++b)
                agg[b] += pn.buckets[b];
        }
        o.set("count", count);
        o.set("sum", sum);
        if (count > 0) {
            o.set("min", h.min);
            o.set("max", h.max);
        }
        exp::Json buckets = exp::Json::array();
        for (std::uint64_t b : agg)
            buckets.push(b);
        o.set("buckets", std::move(buckets));

        exp::Json per = exp::Json::array();
        for (const auto &pn : h.perNode) {
            exp::Json p = exp::Json::object();
            p.set("count", pn.count);
            p.set("sum", pn.sum);
            exp::Json pb = exp::Json::array();
            for (std::uint64_t b : pn.buckets)
                pb.push(b);
            p.set("buckets", std::move(pb));
            per.push(std::move(p));
        }
        o.set("perNode", std::move(per));
        hs.set(h.name, std::move(o));
    }
    j.set("histograms", std::move(hs));
    return j;
}

} // namespace alewife::obs
