#include "obs/critpath.hh"

#include <algorithm>

#include "machine/machine.hh"
#include "net/packet.hh"
#include "sim/logging.hh"

namespace alewife::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= kFnvPrime;
    }
}

/** Owning node of an event, derived from its typed payload. */
std::int16_t
metaNode(const EventMeta &meta)
{
    switch (meta.tag) {
      case EventTag::ProcResume:
      case EventTag::CohLocalDeliver:
      case EventTag::CohProcess:
      case EventTag::CohFill:
      case EventTag::CohHomeDrain:
      case EventTag::CohHomeComplete:
      case EventTag::AmDrain:
        return static_cast<std::int16_t>(meta.a);
      case EventTag::MeshDeliver:
      case EventTag::MeshDeliverIdeal:
      case EventTag::MeshRetry:
        // a = Packet*, alive at schedule time (the event owns it).
        return static_cast<std::int16_t>(
            reinterpret_cast<const net::Packet *>(meta.a)->dst);
      case EventTag::CohPacketLaunch:
      case EventTag::AmPacketLaunch:
        return static_cast<std::int16_t>(
            reinterpret_cast<const net::Packet *>(meta.a)->src);
      case EventTag::Untagged:
      case EventTag::CrossTrafficTick:
      case EventTag::kCount:
        break;
    }
    return -1;
}

} // namespace

std::uint64_t
DepGraph::digest() const
{
    std::uint64_t h = kFnvOffset;
    const std::uint32_t n = static_cast<std::uint32_t>(size());
    mix(h, n);
    for (std::uint32_t i = 0; i < n; ++i) {
        mix(h, parent[i]);
        mix(h, deltaTicks(i));
        mix(h, (static_cast<std::uint64_t>(tag[i]) << 24)
                   | (static_cast<std::uint64_t>(flags[i]) << 16)
                   | static_cast<std::uint16_t>(node[i]));
        if (parent[i] == kNoParent) {
            const auto it = rootNow.find(i);
            mix(h, it == rootNow.end() ? 0 : it->second);
        }
        const auto e = netEdges.find(i);
        if (e != netEdges.end()) {
            const NetEdge &ne = e->second;
            mix(h, (static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(ne.src))
                    << 32)
                       | static_cast<std::uint32_t>(ne.dst));
            mix(h, (static_cast<std::uint64_t>(ne.bytes) << 32)
                       | (static_cast<std::uint64_t>(ne.hops) << 16)
                       | ne.xHops);
            mix(h, ne.fixedTicks);
            mix(h, ne.hopTicksTotal);
            mix(h, ne.serTicks);
            mix(h, ne.queueTicks);
            mix(h, ne.ideal ? 1 : 0);
        }
    }
    for (const FinishContrib &f : finish) {
        mix(h, f.seq);
        mix(h, static_cast<std::uint32_t>(f.node));
        mix(h, f.extraTicks);
        mix(h, f.atTick);
    }
    for (const Barrier &b : barriers) {
        mix(h, static_cast<std::uint32_t>(b.node));
        mix(h, b.startTick);
        mix(h, b.endTick);
    }
    for (const auto &spans : computeSpans) {
        mix(h, spans.size());
        for (const auto &[s, e] : spans) {
            mix(h, s);
            mix(h, e);
        }
    }
    mix(h, recordedFinishTick);
    mix(h, eventsExecuted);
    return h;
}

std::size_t
DepGraph::memoryBytes() const
{
    const std::size_t perEvent = sizeof(std::uint32_t) * 2
                                 + sizeof(std::uint8_t) * 2
                                 + sizeof(std::int16_t);
    std::size_t spanBytes = 0;
    for (const auto &spans : computeSpans)
        spanBytes += spans.size() * sizeof(std::pair<Tick, Tick>);
    return size() * perEvent
           + netEdges.size() * (sizeof(NetEdge) + 2 * sizeof(void *))
           + bigDelta.size() * (sizeof(Tick) + 2 * sizeof(void *))
           + rootNow.size() * (sizeof(Tick) + 2 * sizeof(void *))
           + finish.size() * sizeof(FinishContrib)
           + barriers.size() * sizeof(Barrier) + spanBytes;
}

CritPathRecorder::CritPathRecorder() = default;

void
CritPathRecorder::attach(Machine &m)
{
    g_.baseConfig = m.config();
    doneNodes_.assign(static_cast<std::size_t>(m.nodes()), false);
    g_.computeSpans.assign(static_cast<std::size_t>(m.nodes()), {});
    m.attachHooks(this);
    m.eq().setDepListener(this);
}

void
CritPathRecorder::onSchedule(std::uint64_t seq, std::uint64_t parentSeq,
                             Tick when, Tick now, const EventMeta &meta)
{
    if (seq != g_.size())
        ALEWIFE_PANIC("critpath: non-contiguous event seq ", seq,
                      " (expected ", g_.size(),
                      "; was the recorder attached mid-run?)");
    if (seq >= DepGraph::kNoParent)
        ALEWIFE_PANIC("critpath: run exceeds ", DepGraph::kNoParent,
                      " events; the dependency graph cannot hold it");

    const auto s = static_cast<std::uint32_t>(seq);
    const Tick delta = when - now;
    g_.parent.push_back(parentSeq == DepListener::kNoParent
                            ? DepGraph::kNoParent
                            : static_cast<std::uint32_t>(parentSeq));
    if (delta >= DepGraph::kBigDelta) [[unlikely]] {
        g_.delta32.push_back(DepGraph::kBigDelta);
        g_.bigDelta.emplace(s, delta);
    } else {
        g_.delta32.push_back(static_cast<std::uint32_t>(delta));
    }
    g_.tag.push_back(static_cast<std::uint8_t>(meta.tag));
    g_.flags.push_back(0);
    if (parentSeq == DepListener::kNoParent)
        g_.rootNow.emplace(s, now);

    std::int16_t node = -1;
    if (havePendingEdge_
        && (meta.tag == EventTag::MeshDeliver
            || meta.tag == EventTag::MeshDeliverIdeal)) {
        DepGraph::NetEdge e;
        e.src = pendingEdge_.src;
        e.dst = pendingEdge_.dst;
        e.bytes = pendingEdge_.bytes;
        e.hops = pendingEdge_.hops;
        e.xHops = pendingEdge_.xHops;
        e.fixedTicks = pendingEdge_.fixedTicks;
        e.hopTicksTotal = pendingEdge_.hopTicksTotal;
        e.serTicks = pendingEdge_.serTicks;
        e.queueTicks = pendingEdge_.queueTicks;
        e.ideal = pendingEdge_.ideal;
        g_.netEdges.emplace(s, e);
        node = static_cast<std::int16_t>(pendingEdge_.dst);
        havePendingEdge_ = false;
    } else {
        node = metaNode(meta);
    }
    g_.node.push_back(node);
}

void
CritPathRecorder::onExecute(std::uint64_t seq, Tick when)
{
    curSeq_ = static_cast<std::uint32_t>(seq);
    curWhen_ = when;
    g_.flags[curSeq_] |= 1u;
    ++g_.eventsExecuted;
}

void
CritPathRecorder::onPacketEdgeCost(const check::PacketEdgeCost &cost)
{
    pendingEdge_ = cost;
    havePendingEdge_ = true;
}

void
CritPathRecorder::onProgramDone(NodeId node, Tick extraTicks)
{
    if (static_cast<std::size_t>(node) < doneNodes_.size())
        doneNodes_[static_cast<std::size_t>(node)] = true;
    g_.finish.push_back(DepGraph::FinishContrib{curSeq_, node, extraTicks,
                                                curWhen_ + extraTicks});
    g_.recordedFinishTick =
        std::max(g_.recordedFinishTick, curWhen_ + extraTicks);
}

void
CritPathRecorder::onHandlerRun(NodeId node, Tick start, Tick end)
{
    (void)start;
    // Handler charges on a completed node advance its local clock past
    // the program-done point; they contribute to the finish time.
    if (static_cast<std::size_t>(node) >= doneNodes_.size()
        || !doneNodes_[static_cast<std::size_t>(node)])
        return;
    if (end <= curWhen_)
        return;
    g_.finish.push_back(
        DepGraph::FinishContrib{curSeq_, node, end - curWhen_, end});
    g_.recordedFinishTick = std::max(g_.recordedFinishTick, end);
}

void
CritPathRecorder::onBarrierEpisode(NodeId node, Tick start, Tick end)
{
    g_.barriers.push_back(DepGraph::Barrier{node, start, end});
}

void
CritPathRecorder::onProcSpan(NodeId node, TimeCat cat, Tick start,
                             Tick end)
{
    if (cat != TimeCat::Compute || start >= end)
        return;
    const auto n = static_cast<std::size_t>(node);
    if (n < g_.computeSpans.size())
        g_.computeSpans[n].emplace_back(start, end);
}

} // namespace alewife::obs
