/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket histograms
 * recorded per node and aggregated at export.
 *
 * The registry is the single source of truth for simulator diagnostics:
 * obs::Recorder feeds it from check::Hooks observation points, the CMMU
 * counter block (MachineCounters) is ingested through the shared
 * machineCounterFields() table, and both the ASCII report
 * (core::printCounters) and the JSON export read the same snapshot, so
 * human-readable and machine-readable output can never disagree.
 *
 * Export is schema-versioned ("alewife-metrics", kMetricsSchemaVersion)
 * with stable key order: metrics appear in registration order, and the
 * Recorder registers its fixed set in a deterministic sequence.
 *
 * Everything here is plain single-threaded state. Parallel sweeps give
 * every simulation thread its own Recorder and therefore its own
 * registry (one sink per thread, like the logMutex discipline for
 * shared streams).
 */

#ifndef ALEWIFE_OBS_METRICS_HH
#define ALEWIFE_OBS_METRICS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife::obs {

/** Version of the emitted metrics schema. */
constexpr int kMetricsSchemaVersion = 1;

/**
 * Named counters / gauges / histograms with a per-node dimension.
 */
class MetricsRegistry
{
  public:
    /** @p nodes sizes the per-node dimension (>= 1). */
    explicit MetricsRegistry(int nodes);

    int nodes() const { return nodes_; }

    // --- counters ---

    /** Register (or look up) a counter; ids are stable. */
    int counterId(const std::string &name);

    /** Add @p v to counter @p id on behalf of @p node. */
    void
    addCounter(int id, NodeId node, std::uint64_t v = 1)
    {
        counters_[static_cast<std::size_t>(id)]
            .perNode[static_cast<std::size_t>(node)] += v;
    }

    /** Aggregate (all-node) value of a counter. */
    std::uint64_t counterTotal(int id) const;

    // --- gauges (machine-wide, last value wins) ---

    void setGauge(const std::string &name, double v);

    // --- histograms ---

    /**
     * Register a fixed-bucket histogram. @p bounds are inclusive upper
     * bucket edges in ascending order; one overflow bucket is implied.
     */
    int histogramId(const std::string &name, std::vector<double> bounds);

    /** Record @p v into histogram @p id on behalf of @p node. */
    void observe(int id, NodeId node, double v);

    /** Aggregate observation count of a histogram. */
    std::uint64_t histCount(int id) const;

    /** Aggregate observation sum of a histogram. */
    double histSum(int id) const;

    // --- CMMU counter ingestion ---

    /**
     * Snapshot a MachineCounters block into counters named
     * "cmmu.<field>", one per machineCounterFields() entry, attributed
     * to @p node. The field table is shared with exp/serialize, which
     * is what keeps the ASCII and JSON views in agreement.
     */
    void ingest(const MachineCounters &c, NodeId node = 0);

    // --- export ---

    /**
     * The whole registry as a schema-versioned JSON document. Key
     * order is registration order; per-node arrays are index-ordered.
     */
    exp::Json toJson() const;

  private:
    struct Counter
    {
        std::string name;
        std::vector<std::uint64_t> perNode;
    };

    struct Gauge
    {
        std::string name;
        double value = 0.0;
    };

    struct PerNodeHist
    {
        std::vector<std::uint64_t> buckets; ///< bounds.size() + 1
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    struct Histogram
    {
        std::string name;
        std::vector<double> bounds;
        std::vector<PerNodeHist> perNode;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
    };

    int nodes_;
    std::vector<Counter> counters_;
    std::vector<Gauge> gauges_;
    std::vector<Histogram> hists_;
};

} // namespace alewife::obs

#endif // ALEWIFE_OBS_METRICS_HH
