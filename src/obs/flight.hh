/**
 * @file
 * Flight recorder: a bounded ring buffer of the most recent observable
 * events of one Machine.
 *
 * The recorder costs one fixed-size store per event and never
 * allocates after construction, so it can stay attached to long runs.
 * Its payoff is forensic: when check::InvariantAuditor flags a
 * violation, the last-N event window around the failure is dumped
 * alongside the violation report, turning a one-line invariant
 * message into a replayable local timeline.
 *
 * Records carry the kind, the node, the tick of the most recently
 * executed simulator event (hook callbacks themselves don't all carry
 * timestamps), and two kind-specific operands (address / packet id /
 * span bounds).
 */

#ifndef ALEWIFE_OBS_FLIGHT_HH
#define ALEWIFE_OBS_FLIGHT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace alewife::obs {

/** Bounded ring of recent events; oldest entries are overwritten. */
class FlightRecorder
{
  public:
    enum class Kind : std::uint8_t
    {
        PacketInjected,  ///< a = pkt id, b = dst
        PacketDelivered, ///< a = pkt id, b = src
        Hop,             ///< a = pkt id, b = link index
        ProcSpan,        ///< a = TimeCat, b = span ticks
        HandlerRun,      ///< a = span ticks
        BarrierEpisode,  ///< a = span ticks
        CacheFill,       ///< a = line, b = LineState
        CacheEvict,      ///< a = line, b = dirty
        CacheInvalidate, ///< a = line, b = wasModified
        CacheDowngrade,  ///< a = line
        CacheUpgrade,    ///< a = line
        PfbInstall,      ///< a = line
        PfbRemove,       ///< a = line
        ProtoSend,       ///< a = dst
        ProtoProcess,    ///< (node = processing node)
        LocalGrant,      ///< a = line, b = exclusive
        Fill,            ///< a = line, b = exclusive
        MshrOpen,        ///< a = line, b = exclusive
        MshrClose,       ///< a = line
        TxnOpen,         ///< a = line
        TxnClose,        ///< a = line
        RecallStashed,   ///< a = line
        RecallHonored,   ///< a = line
    };

    static const char *kindName(Kind k);

    /** @p capacity is the ring size in records (>= 1). */
    explicit FlightRecorder(std::size_t capacity);

    void
    push(Tick tick, Kind k, NodeId node, std::uint64_t a = 0,
         std::uint64_t b = 0)
    {
        Rec &r = ring_[next_];
        r.tick = tick;
        r.a = a;
        r.b = b;
        r.node = node;
        r.kind = k;
        next_ = (next_ + 1 == ring_.size()) ? 0 : next_ + 1;
        ++total_;
    }

    /** Total events ever pushed (>= size()). */
    std::uint64_t recorded() const { return total_; }

    /** Events currently retained in the ring. */
    std::size_t size() const;

    /** Human-readable dump, oldest retained event first. */
    void dump(std::ostream &os) const;

    /** dump() to a file; fatal if the file cannot be opened. */
    void dumpToFile(const std::string &path) const;

  private:
    struct Rec
    {
        Tick tick = 0;
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        NodeId node = 0;
        Kind kind = Kind::PacketInjected;
    };

    std::vector<Rec> ring_;
    std::size_t next_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace alewife::obs

#endif // ALEWIFE_OBS_FLIGHT_HH
