#include "coh/directory.hh"

#include <algorithm>

namespace alewife::coh {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::Recall: return "Recall";
      case MsgType::RecallX: return "RecallX";
      case MsgType::WbData: return "WbData";
      case MsgType::WbEvict: return "WbEvict";
      case MsgType::RecallNoData: return "RecallNoData";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::Data: return "Data";
      case MsgType::DataX: return "DataX";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetX: return "FwdGetX";
      case MsgType::FwdAck: return "FwdAck";
      default: return "?";
    }
}

bool
carriesData(MsgType t)
{
    switch (t) {
      case MsgType::WbData:
      case MsgType::WbEvict:
      case MsgType::Data:
      case MsgType::DataX:
        return true;
      default:
        return false;
    }
}

bool
DirEntry::hasSharer(NodeId n) const
{
    return std::find(sharers.begin(), sharers.end(), n) != sharers.end();
}

std::size_t
DirEntry::addSharer(NodeId n)
{
    if (!hasSharer(n))
        sharers.push_back(n);
    return sharers.size();
}

void
DirEntry::removeSharer(NodeId n)
{
    sharers.erase(std::remove(sharers.begin(), sharers.end(), n),
                  sharers.end());
}

DirEntry *
Directory::find(Addr line)
{
    auto it = entries_.find(line);
    return it == entries_.end() ? nullptr : &it->second;
}

const DirEntry *
Directory::find(Addr line) const
{
    auto it = entries_.find(line);
    return it == entries_.end() ? nullptr : &it->second;
}

} // namespace alewife::coh
