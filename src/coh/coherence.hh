/**
 * @file
 * Per-node coherence controller: the CMMU of the simulated machine.
 *
 * One controller per node plays three roles:
 *  - processor side: services demand reads/writes/rmws and software
 *    prefetches issued by the node's program (MSHR bookkeeping, cache
 *    fills, prefetch-buffer management);
 *  - home side: runs the directory protocol for lines homed here,
 *    serialized per line, with a hardware occupancy per transaction and
 *    LimitLESS software traps (stealing home-processor cycles) when a
 *    line has more sharers than the hardware pointers can track;
 *  - remote-cache side: answers invalidations and recalls.
 *
 * Protocol processing never consumes program-processor time except for
 * LimitLESS traps — this endpoint-occupancy asymmetry versus message
 * passing is central to the paper's Section 5.1 findings.
 */

#ifndef ALEWIFE_COH_COHERENCE_HH
#define ALEWIFE_COH_COHERENCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coh/directory.hh"
#include "coh/proto.hh"
#include "machine/config.hh"
#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "net/mesh.hh"
#include "proc/op.hh"
#include "proc/prefetch_buffer.hh"
#include "proc/processor.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife::coh {

/**
 * The coherence engine of one node.
 */
class CoherenceController
{
  public:
    CoherenceController(NodeId self, EventQueue &eq,
                        const MachineConfig &cfg, mem::AddressSpace &mem,
                        mem::Cache &cache, proc::PrefetchBuffer &pfb,
                        proc::Proc &proc, net::Mesh &mesh,
                        MachineCounters &counters);

    // ------------------------------------------------------------------
    // Processor side (called with the node's program Running)
    // ------------------------------------------------------------------

    /**
     * Try to satisfy a read without suspending (cache hit or completed
     * prefetch). On success the access cost has been charged via
     * Proc::advance and @p out holds the word.
     */
    bool tryFastRead(Addr a, std::uint64_t &out);

    /** Same for a write (requires Modified in cache or buffer). */
    bool tryFastWrite(Addr a, std::uint64_t v);

    /**
     * Same for an atomic read-modify-write; on success @p out_old holds
     * the pre-update word.
     */
    bool tryFastRmw(Addr a,
                    const std::function<std::uint64_t(std::uint64_t)> &fn,
                    std::uint64_t &out_old);

    /**
     * Start a demand read miss; the returned op completes with the word.
     * @p wait_cat is the Figure 4 category the stall is charged to.
     */
    std::shared_ptr<proc::OpState> startRead(Addr a, TimeCat wait_cat);

    /** Start a demand write miss; completes after the store retires. */
    std::shared_ptr<proc::OpState> startWrite(Addr a, std::uint64_t v,
                                              TimeCat wait_cat);

    /**
     * Start an atomic read-modify-write (Alewife-style full/empty or
     * lock operations): obtains Modified, applies @p fn to the word,
     * completes with the *old* value.
     */
    std::shared_ptr<proc::OpState>
    startRmw(Addr a, std::function<std::uint64_t(std::uint64_t)> fn,
             TimeCat wait_cat);

    /**
     * Issue a non-binding prefetch. Never suspends; silently dropped if
     * the line is already local or resources are exhausted.
     * @param exclusive read-exclusive (write) prefetch when true
     */
    void prefetch(Addr a, bool exclusive);

    // ------------------------------------------------------------------
    // Network side
    // ------------------------------------------------------------------

    /** Deliver a coherence packet addressed to this node. */
    void receive(ProtoMsg msg);

    // ------------------------------------------------------------------
    // Spin-wait support
    // ------------------------------------------------------------------

    /**
     * Bumped every time the line containing @p a is invalidated,
     * recalled or displaced here; spin loops wait for a change.
     */
    std::uint64_t lineEpoch(Addr a) const;

    /**
     * Current owner of a line homed here, or -1 if not Modified.
     * Debug/verification only (used to read architectural state after a
     * run without perturbing the protocol).
     */
    NodeId dirOwner(Addr line);

    /** Debug read of a word from this node's cache or prefetch buffer. */
    bool debugLocalWord(Addr a, std::uint64_t &out) const;

    /** Dump outstanding MSHRs and busy directory lines (deadlocks). */
    void debugDump(std::ostream &os) const;

    /** Observer notified of protocol transitions; may be null. */
    void setAuditHooks(check::Hooks *hooks) { hooks_ = hooks; }

    /** Read-only directory view for the invariant auditor. */
    const Directory &debugDir() const { return dir_; }

    /**
     * Protocol faults injectable for auditor self-tests: each fires at
     * most once, on the next matching action at this node.
     */
    struct DebugFaults
    {
        /** Swallow one InvAck (the home waits forever). */
        bool dropInvAck = false;
        /** Ack one Inv without actually invalidating the local copy. */
        bool skipInvalidate = false;
    };

    void debugInjectFaults(const DebugFaults &f) { faults_ = f; }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    // --- requester-side machinery ---

    struct DemandWaiter
    {
        enum class Kind : std::uint8_t { Read, Write, Rmw };
        Kind kind;
        std::shared_ptr<proc::OpState> op;
        Addr addr = 0;
        std::uint64_t storeVal = 0;
        std::function<std::uint64_t(std::uint64_t)> rmwFn;
    };

    struct Mshr
    {
        Addr line = 0;
        bool wantExclusive = false;
        bool prefetchOnly = true; ///< no demand attached yet
        /** Created by a prefetch; counted in prefetchesInFlight_. */
        bool startedAsPrefetch = false;
        /**
         * An Inv overtook the data reply (possible with 3-hop
         * forwarding, where data and invalidations ride different
         * source-destination pairs): install, satisfy the ordered-
         * earlier demands, then drop the line.
         */
        bool killedByInv = false;
        /** A Recall/RecallX that overtook the data reply; honoured
         *  right after the fill. */
        std::optional<ProtoMsg> stashedRecall;
        std::vector<DemandWaiter> demands;
        /** Demands needing a stronger state; re-issued on completion. */
        std::vector<std::function<void()>> deferred;
    };

    /** Note a demand joining @p m (prefetch partial-hiding credit). */
    void noteDemandJoin(Mshr &m);

    /** Begin (or join) a miss transaction for @p line. */
    Mshr &missTo(Addr line, bool exclusive);

    /** Send a request to the line's home (local homes short-circuit). */
    void sendRequest(MsgType t, Addr line);

    /** A Data/DataX reply (or local grant) for an MSHR line arrived. */
    void fillArrived(Addr line, bool exclusive,
                     std::vector<std::uint64_t> words);

    /** Install into the cache, handling dirty victims. */
    void installLine(Addr line, mem::LineState st,
                     const std::vector<std::uint64_t> &words);

    /** Consume a buffered prefetch into the cache for a demand access. */
    void promoteFromBuffer(Addr line);

    /** Complete one demand waiter against the now-present line. */
    void satisfyDemand(const DemandWaiter &w);

    // --- home-side machinery ---

    /** Queue-or-process a request arriving at this (home) node. */
    void homeRequest(ProtoMsg msg);

    /** Actually serve a request; the line must not be busy. */
    void homeServe(const ProtoMsg &msg);

    /** Finish the current transaction on @p line and drain its queue. */
    void homeComplete(Addr line);

    /** If the line is idle and has queued requests, schedule the next. */
    void homeMaybeDrain(Addr line);

    /** Home received a recall response / writeback. */
    void homeWriteback(const ProtoMsg &msg);

    /** Home received an invalidation ack. */
    void homeInvAck(const ProtoMsg &msg);

    /**
     * Cycles of extra latency (and home-processor theft) if touching
     * this entry needs a LimitLESS software trap.
     */
    double limitlessCost(const DirEntry &e);

    // --- remote-cache side ---

    void cacheInv(const ProtoMsg &msg);
    void cacheRecall(const ProtoMsg &msg, bool exclusive);

    /** Owner side of a 3-hop forward: ship the line to the requester. */
    void cacheForward(const ProtoMsg &msg, bool exclusive);

    /** Home received the FwdGetX completion from the old owner. */
    void homeFwdAck(const ProtoMsg &msg);

    /** Respond to a recall using the just-filled cache line. */
    void answerRecall(const ProtoMsg &msg, bool exclusive);

    // --- helpers ---

    Addr lineOf(Addr a) const;

    /** Time protocol work at this node's CMMU may next start. */
    Tick cmmuSlot(double occupancy_cycles);

    /** Send a protocol packet from this node at >= localNow. */
    void sendProto(NodeId dst, ProtoMsg msg, Tick when);

    /** Build the packet for @p msg with volume accounting. */
    std::unique_ptr<net::Packet> makePacket(NodeId dst,
                                            ProtoMsg msg) const;

    void bumpEpoch(Addr line);

    NodeId self_;
    EventQueue &eq_;
    const MachineConfig &cfg_;
    mem::AddressSpace &mem_;
    mem::Cache &cache_;
    proc::PrefetchBuffer &pfb_;
    proc::Proc &proc_;
    net::Mesh &mesh_;
    MachineCounters &counters_;

    Directory dir_;
    std::unordered_map<Addr, Mshr> mshrs_;
    std::unordered_map<Addr, std::uint64_t> epochs_;
    Tick cmmuFreeAt_ = 0;
    std::uint64_t nextTxnId_ = 1;
    int prefetchesInFlight_ = 0;
    check::Hooks *hooks_ = nullptr;
    DebugFaults faults_{};
    bool faultFired_ = false;
};

} // namespace alewife::coh

#endif // ALEWIFE_COH_COHERENCE_HH
