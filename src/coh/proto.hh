/**
 * @file
 * Directory-protocol message types.
 *
 * The protocol is an MSI invalidation protocol in the LimitLESS mould:
 * the home node serializes transactions per line, collects invalidation
 * acknowledgements itself, and recalls dirty lines from their owner
 * before replying. Packet sizes follow MachineConfig; byte accounting
 * feeds the Figure 5 volume categories (requests / invalidates /
 * headers / data).
 */

#ifndef ALEWIFE_COH_PROTO_HH
#define ALEWIFE_COH_PROTO_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace alewife::coh {

/** Protocol message opcode. */
enum class MsgType : std::uint8_t
{
    GetS,         ///< requester -> home: read miss
    GetX,         ///< requester -> home: write/upgrade/rmw miss
    Recall,       ///< home -> owner: surrender dirty line, keep Shared
    RecallX,      ///< home -> owner: surrender dirty line, invalidate
    WbData,       ///< owner -> home: recall response with line data
    WbEvict,      ///< cache -> home: dirty victim writeback
    RecallNoData, ///< owner -> home: line already evicted
    Inv,          ///< home -> sharer: invalidate
    InvAck,       ///< sharer -> home: invalidation acknowledged
    Data,         ///< home/owner -> requester: line data, Shared grant
    DataX,        ///< home/owner -> requester: line data, Modified grant
    FwdGetS,      ///< home -> owner: send Shared data to requester
    FwdGetX,      ///< home -> owner: send Modified data to requester
    FwdAck,       ///< owner -> home: FwdGetX completed, ownership moved
};

/** Human-readable opcode name (debugging / traces). */
const char *msgTypeName(MsgType t);

/** True for messages that carry a full cache line of data. */
bool carriesData(MsgType t);

/** A coherence message; rides inside a net::Packet. */
struct ProtoMsg : net::PayloadBase
{
    MsgType type = MsgType::GetS;
    Addr lineAddr = 0;
    /** Original requester (recall/inv flows need it at the home). */
    NodeId requester = -1;
    /** Home-side transaction id echoed by recall responses. */
    std::uint64_t txnId = 0;
    /** Sender, filled in by the controller when the message leaves. */
    NodeId src = -1;
    /**
     * Issue time at the requester (local-home requests only; used to
     * anchor the configured local-miss penalty).
     */
    Tick issuedAt = 0;
    /** Line contents for data-carrying messages. */
    std::vector<std::uint64_t> words;
};

} // namespace alewife::coh

#endif // ALEWIFE_COH_PROTO_HH
