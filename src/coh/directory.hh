/**
 * @file
 * Per-home-node directory state (LimitLESS-style limited directory).
 *
 * The hardware tracks up to MachineConfig::dirHwPointers sharers; beyond
 * that, directory operations trap to software on the home node's
 * processor (see CoherenceController), as on the real Alewife machine.
 * The Directory itself just stores state; all protocol logic lives in
 * the CoherenceController.
 */

#ifndef ALEWIFE_COH_DIRECTORY_HH
#define ALEWIFE_COH_DIRECTORY_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "coh/proto.hh"
#include "sim/types.hh"

namespace alewife::ckpt {
class Access;
}

namespace alewife::coh {

/** Stable directory state of one line. */
enum class DirState : std::uint8_t
{
    Uncached,
    Shared,
    Modified,
};

/** An in-progress home transaction on one line. */
struct DirTxn
{
    MsgType request;           ///< GetS or GetX being served
    NodeId requester = -1;
    int pendingAcks = 0;       ///< invalidation acks still outstanding
    bool waitingRecall = false;///< a Recall/RecallX is outstanding
    /** 3-hop variant: data flows owner->requester; the home must not
     *  send its own reply when the confirmation arrives. */
    bool forwarded = false;
    std::uint64_t id = 0;      ///< matches ProtoMsg::txnId
};

/** Directory entry for one line at its home. */
struct DirEntry
{
    DirState state = DirState::Uncached;
    std::vector<NodeId> sharers; ///< valid when state == Shared
    NodeId owner = -1;           ///< valid when state == Modified
    std::optional<DirTxn> txn;   ///< present while the line is busy
    std::deque<ProtoMsg> queue;  ///< requests waiting for the line

    bool busy() const { return txn.has_value(); }

    /** True if @p n is recorded as a sharer. */
    bool hasSharer(NodeId n) const;

    /** Add @p n if absent; returns new sharer count. */
    std::size_t addSharer(NodeId n);

    /** Remove @p n if present. */
    void removeSharer(NodeId n);
};

/**
 * All directory entries homed at one node.
 */
class Directory
{
  public:
    /** Entry for @p line, default-constructed on first touch. */
    DirEntry &entry(Addr line) { return entries_[line]; }

    /** Entry if it exists already. */
    DirEntry *find(Addr line);
    const DirEntry *find(Addr line) const;

    /** Number of lines with non-default state (diagnostics). */
    std::size_t linesTracked() const { return entries_.size(); }

    /** All entries (diagnostics only). */
    const std::unordered_map<Addr, DirEntry> &all() const
    {
        return entries_;
    }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    std::unordered_map<Addr, DirEntry> entries_;
};

} // namespace alewife::coh

#endif // ALEWIFE_COH_DIRECTORY_HH
