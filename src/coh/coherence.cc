#include "coh/coherence.hh"

#include <algorithm>
#include <ostream>
#include <utility>

#include "check/hooks.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace alewife::coh {


// The protocol hot path schedules lambdas capturing [this, bool, ProtoMsg
// by value]; they must fit the event queue's inline callback buffer or
// every protocol message would silently fall back to a heap allocation.
static_assert(
    EventFn::fitsInline<decltype([p = static_cast<void *>(nullptr),
                                  ex = false, m = ProtoMsg{}]() mutable {
        (void)p, (void)ex, (void)m;
    })>(),
    "ProtoMsg capture exceeds kEventCallbackBytes; bump the constant");

namespace {

/**
 * Typed record for a pending event that holds a ProtoMsg by value.
 * The closure itself is not serializable, so the record carries the
 * message identity (node, type, requester, line) — enough for the
 * checkpoint audit to bit-compare a replayed queue against a captured
 * one; the message *content* is implied by deterministic replay.
 */
EventMeta
protoMeta(EventTag tag, NodeId node, const ProtoMsg &m)
{
    const std::uint64_t a =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
        | (static_cast<std::uint64_t>(m.type) << 32)
        | (static_cast<std::uint64_t>(static_cast<std::uint16_t>(
               m.requester))
           << 48);
    return EventMeta{tag, a, m.lineAddr};
}

/** Record for a fill-completion event (line + exclusivity). */
EventMeta
fillMeta(NodeId node, Addr line, bool ex)
{
    const std::uint64_t a =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
        | (static_cast<std::uint64_t>(ex ? 1 : 0) << 32);
    return EventMeta{EventTag::CohFill, a, line};
}

} // namespace

CoherenceController::CoherenceController(
    NodeId self, EventQueue &eq, const MachineConfig &cfg,
    mem::AddressSpace &mem, mem::Cache &cache, proc::PrefetchBuffer &pfb,
    proc::Proc &proc, net::Mesh &mesh, MachineCounters &counters)
    : self_(self), eq_(eq), cfg_(cfg), mem_(mem), cache_(cache),
      pfb_(pfb), proc_(proc), mesh_(mesh), counters_(counters)
{
}

Addr
CoherenceController::lineOf(Addr a) const
{
    return a & ~static_cast<Addr>(cfg_.lineBytes - 1);
}

std::uint64_t
CoherenceController::lineEpoch(Addr a) const
{
    auto it = epochs_.find(lineOf(a));
    return it == epochs_.end() ? 0 : it->second;
}

void
CoherenceController::debugDump(std::ostream &os) const
{
    for (const auto &[line, m] : mshrs_) {
        os << "  node " << self_ << " MSHR line " << line << " want "
           << (m.wantExclusive ? "X" : "S") << " demands "
           << m.demands.size() << " deferred " << m.deferred.size()
           << "\n";
    }
    for (const auto &[line, e] : dir_.all()) {
        if (!e.busy() && e.queue.empty())
            continue;
        os << "  home " << self_ << " line " << line << " state "
           << static_cast<int>(e.state) << " queue " << e.queue.size();
        if (e.busy()) {
            os << " txn req=" << msgTypeName(e.txn->request) << " from "
               << e.txn->requester << " acks=" << e.txn->pendingAcks
               << " recall=" << e.txn->waitingRecall;
        }
        os << "\n";
    }
}

NodeId
CoherenceController::dirOwner(Addr line)
{
    DirEntry *e = dir_.find(line);
    if (e && e->state == DirState::Modified)
        return e->owner;
    return -1;
}

bool
CoherenceController::debugLocalWord(Addr a, std::uint64_t &out) const
{
    if (cache_.contains(a)) {
        out = cache_.readWord(a);
        return true;
    }
    const Addr line = a & ~static_cast<Addr>(cfg_.lineBytes - 1);
    if (const auto *e = pfb_.find(line)) {
        out = e->words[(a - line) / 8];
        return true;
    }
    return false;
}

void
CoherenceController::bumpEpoch(Addr line)
{
    ++epochs_[line];
    proc_.recheckCond();
}

Tick
CoherenceController::cmmuSlot(double occupancy_cycles)
{
    const Tick start = std::max(eq_.now(), cmmuFreeAt_);
    cmmuFreeAt_ = start + cyclesToTicks(occupancy_cycles);
    return cmmuFreeAt_;
}

// ---------------------------------------------------------------------
// Packet plumbing
// ---------------------------------------------------------------------

std::unique_ptr<net::Packet>
CoherenceController::makePacket(NodeId dst, ProtoMsg msg) const
{
    auto pkt = std::make_unique<net::Packet>();
    pkt->src = self_;
    pkt->dst = dst;
    pkt->kind = net::PacketKind::Coherence;

    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Recall:
      case MsgType::RecallX:
      case MsgType::RecallNoData:
      case MsgType::FwdGetS:
      case MsgType::FwdGetX:
      case MsgType::FwdAck:
        pkt->addBytes(VolCat::Requests, cfg_.protoCtrlBytes);
        break;
      case MsgType::Inv:
      case MsgType::InvAck:
        pkt->addBytes(VolCat::Invalidates, cfg_.protoCtrlBytes);
        break;
      case MsgType::WbData:
      case MsgType::WbEvict:
      case MsgType::Data:
      case MsgType::DataX:
        pkt->addBytes(VolCat::Headers, cfg_.protoDataHdrBytes);
        pkt->addBytes(VolCat::Data, cfg_.lineBytes);
        break;
    }

    auto payload = std::make_unique<ProtoMsg>(std::move(msg));
    payload->src = self_;
    pkt->payload = std::move(payload);
    return pkt;
}

void
CoherenceController::sendProto(NodeId dst, ProtoMsg msg, Tick when)
{
    msg.src = self_;
    if (hooks_)
        hooks_->onProtoSend(self_, dst, msg);
    when = std::max(when, eq_.now());
    if (dst == self_) {
        // CMMU-internal: no network traversal, but still serialized
        // through the receive path for occupancy.
        // Hoisted: the capture moves `msg`, and argument evaluation
        // order relative to the capture-init is unspecified.
        const EventMeta meta =
            protoMeta(EventTag::CohLocalDeliver, self_, msg);
        eq_.schedule(when, meta, [this, m = std::move(msg)]() mutable {
            receive(std::move(m));
        });
        return;
    }
    auto pkt = makePacket(dst, std::move(msg));
    if (when == eq_.now()) {
        mesh_.send(std::move(pkt));
    } else {
        auto *raw = pkt.release();
        eq_.schedule(when,
                     EventMeta{EventTag::CohPacketLaunch,
                               reinterpret_cast<std::uintptr_t>(raw), 0},
                     [this, raw]() {
                         mesh_.send(std::unique_ptr<net::Packet>(raw));
                     });
    }
}

// ---------------------------------------------------------------------
// Processor-side fast paths
// ---------------------------------------------------------------------

bool
CoherenceController::tryFastRead(Addr a, std::uint64_t &out)
{
    if (cache_.contains(a)) {
        out = cache_.readWord(a);
        proc_.advance(TimeCat::Compute, cfg_.cacheHitCycles);
        ++counters_.cacheHits;
        return true;
    }
    const Addr line = lineOf(a);
    if (const auto *e = pfb_.find(line); e != nullptr) {
        promoteFromBuffer(line);
        out = cache_.readWord(a);
        proc_.advance(TimeCat::MemWait, cfg_.prefetchBufferHitCycles);
        ++counters_.prefetchesUseful;
        return true;
    }
    return false;
}

bool
CoherenceController::tryFastWrite(Addr a, std::uint64_t v)
{
    if (cache_.state(a) == mem::LineState::Modified) {
        cache_.writeWord(a, v);
        proc_.advance(TimeCat::Compute, cfg_.cacheHitCycles);
        ++counters_.cacheHits;
        return true;
    }
    const Addr line = lineOf(a);
    if (const auto *e = pfb_.find(line);
        e != nullptr && e->st == mem::LineState::Modified) {
        promoteFromBuffer(line);
        cache_.writeWord(a, v);
        proc_.advance(TimeCat::MemWait, cfg_.prefetchBufferHitCycles);
        ++counters_.prefetchesUseful;
        return true;
    }
    return false;
}

bool
CoherenceController::tryFastRmw(
    Addr a, const std::function<std::uint64_t(std::uint64_t)> &fn,
    std::uint64_t &out_old)
{
    if (cache_.state(a) == mem::LineState::Modified) {
        out_old = cache_.readWord(a);
        cache_.writeWord(a, fn(out_old));
        proc_.advance(TimeCat::Compute, cfg_.cacheHitCycles);
        ++counters_.cacheHits;
        return true;
    }
    const Addr line = lineOf(a);
    if (const auto *e = pfb_.find(line);
        e != nullptr && e->st == mem::LineState::Modified) {
        promoteFromBuffer(line);
        out_old = cache_.readWord(a);
        cache_.writeWord(a, fn(out_old));
        proc_.advance(TimeCat::MemWait, cfg_.prefetchBufferHitCycles);
        ++counters_.prefetchesUseful;
        return true;
    }
    return false;
}

void
CoherenceController::promoteFromBuffer(Addr line)
{
    auto e = pfb_.take(line);
    if (!e)
        ALEWIFE_PANIC("promoteFromBuffer: line not buffered");
    installLine(line, e->st, e->words);
}

void
CoherenceController::installLine(Addr line, mem::LineState st,
                                 const std::vector<std::uint64_t> &words)
{
    // A fill supersedes any buffered copy of the same line. Without
    // this, a demand GetX landing in the cache would coexist with a
    // stale Shared buffer entry left by an earlier downgraded
    // exclusive prefetch — and a later recall, finding the cache copy
    // Modified, would never clear the buffered one.
    pfb_.invalidate(line);
    auto victim = cache_.fill(line, st, words);
    if (victim) {
        ProtoMsg wb;
        wb.type = MsgType::WbEvict;
        wb.lineAddr = victim->lineAddr;
        wb.words = std::move(victim->words);
        sendProto(mem_.home(victim->lineAddr), std::move(wb), eq_.now());
        bumpEpoch(victim->lineAddr);
    }
}

// ---------------------------------------------------------------------
// Demand misses and prefetches
// ---------------------------------------------------------------------

CoherenceController::Mshr &
CoherenceController::missTo(Addr line, bool exclusive)
{
    auto it = mshrs_.find(line);
    if (it != mshrs_.end())
        return it->second;
    Mshr &m = mshrs_[line];
    m.line = line;
    m.wantExclusive = exclusive;
    if (hooks_)
        hooks_->onMshrOpen(self_, line, exclusive);
    sendRequest(exclusive ? MsgType::GetX : MsgType::GetS, line);
    ++counters_.cacheMisses;
    if (mem_.home(line) == self_)
        ++counters_.localMisses;
    else
        ++counters_.remoteMisses;
    return m;
}

void
CoherenceController::sendRequest(MsgType t, Addr line)
{
    ProtoMsg msg;
    msg.type = t;
    msg.lineAddr = line;
    msg.requester = self_;
    msg.issuedAt = proc_.localNow();
    const Tick when = proc_.localNow() + cyclesToTicks(cfg_.reqIssueCycles);
    sendProto(mem_.home(line), std::move(msg), when);
}

std::shared_ptr<proc::OpState>
CoherenceController::startRead(Addr a, TimeCat wait_cat)
{
    auto op = std::make_shared<proc::OpState>();
    op->waitCat = wait_cat;
    op->startLocal = proc_.localNow();
    op->stolenAtStart = proc_.stolenTicks();

    const Addr line = lineOf(a);
    DemandWaiter w;
    w.kind = DemandWaiter::Kind::Read;
    w.op = op;
    w.addr = a;

    Mshr &m = missTo(line, false);
    noteDemandJoin(m);
    m.demands.push_back(std::move(w));
    return op;
}

std::shared_ptr<proc::OpState>
CoherenceController::startWrite(Addr a, std::uint64_t v, TimeCat wait_cat)
{
    auto op = std::make_shared<proc::OpState>();
    op->waitCat = wait_cat;
    op->startLocal = proc_.localNow();
    op->stolenAtStart = proc_.stolenTicks();

    const Addr line = lineOf(a);
    auto it = mshrs_.find(line);
    if (it != mshrs_.end() && !it->second.wantExclusive) {
        // A shared-grade fetch is already in flight; re-run this store
        // once it lands (it will then take the upgrade path).
        it->second.deferred.push_back([this, a, v, op]() {
            std::uint64_t dummy = v;
            if (tryFastWrite(a, v)) {
                proc_.completeOp(op, dummy);
                return;
            }
            const Addr l = lineOf(a);
            DemandWaiter w;
            w.kind = DemandWaiter::Kind::Write;
            w.op = op;
            w.addr = a;
            w.storeVal = v;
            Mshr &m = missTo(l, true);
            noteDemandJoin(m);
            m.demands.push_back(std::move(w));
        });
        return op;
    }

    DemandWaiter w;
    w.kind = DemandWaiter::Kind::Write;
    w.op = op;
    w.addr = a;
    w.storeVal = v;

    Mshr &m = missTo(line, true);
    noteDemandJoin(m);
    m.demands.push_back(std::move(w));
    return op;
}

std::shared_ptr<proc::OpState>
CoherenceController::startRmw(Addr a,
                              std::function<std::uint64_t(std::uint64_t)> fn,
                              TimeCat wait_cat)
{
    auto op = std::make_shared<proc::OpState>();
    op->waitCat = wait_cat;
    op->startLocal = proc_.localNow();
    op->stolenAtStart = proc_.stolenTicks();

    const Addr line = lineOf(a);
    auto it = mshrs_.find(line);
    if (it != mshrs_.end() && !it->second.wantExclusive) {
        it->second.deferred.push_back([this, a, fn, op]() {
            const Addr l = lineOf(a);
            if (cache_.state(a) == mem::LineState::Modified) {
                const std::uint64_t old = cache_.readWord(a);
                cache_.writeWord(a, fn(old));
                proc_.completeOp(op, old);
                return;
            }
            DemandWaiter w;
            w.kind = DemandWaiter::Kind::Rmw;
            w.op = op;
            w.addr = a;
            w.rmwFn = fn;
            Mshr &m = missTo(l, true);
            noteDemandJoin(m);
            m.demands.push_back(std::move(w));
        });
        return op;
    }

    DemandWaiter w;
    w.kind = DemandWaiter::Kind::Rmw;
    w.op = op;
    w.addr = a;
    w.rmwFn = std::move(fn);

    Mshr &m = missTo(line, true);
    noteDemandJoin(m);
    m.demands.push_back(std::move(w));
    return op;
}

void
CoherenceController::prefetch(Addr a, bool exclusive)
{
    proc_.advance(TimeCat::MemWait, cfg_.prefetchIssueCycles);
    ++counters_.prefetchesIssued;

    const Addr line = lineOf(a);
    // Already local (cache or buffer, strong enough state)?
    auto cs = cache_.state(a);
    if (cs && (!exclusive || *cs == mem::LineState::Modified)) {
        ++counters_.prefetchesUseless;
        return;
    }
    if (const auto *e = pfb_.find(line);
        e && (!exclusive || e->st == mem::LineState::Modified)) {
        ++counters_.prefetchesUseless;
        return;
    }
    if (mshrs_.count(line)) {
        ++counters_.prefetchesUseless;
        return;
    }
    if (prefetchesInFlight_ >= cfg_.prefetchMaxOutstanding)
        return; // dropped, no state change
    ++prefetchesInFlight_;
    missTo(line, exclusive).startedAsPrefetch = true;
}

void
CoherenceController::noteDemandJoin(Mshr &m)
{
    if (m.startedAsPrefetch && m.prefetchOnly) {
        // The prefetch was in flight when the demand arrived: it hides
        // part of the miss latency.
        ++counters_.prefetchesUseful;
    }
    m.prefetchOnly = false;
}

void
CoherenceController::satisfyDemand(const DemandWaiter &w)
{
    switch (w.kind) {
      case DemandWaiter::Kind::Read:
        proc_.completeOp(w.op, cache_.readWord(w.addr));
        break;
      case DemandWaiter::Kind::Write:
        cache_.writeWord(w.addr, w.storeVal);
        proc_.completeOp(w.op, w.storeVal);
        break;
      case DemandWaiter::Kind::Rmw: {
        const std::uint64_t old = cache_.readWord(w.addr);
        cache_.writeWord(w.addr, w.rmwFn(old));
        proc_.completeOp(w.op, old);
        break;
      }
    }
}

void
CoherenceController::fillArrived(Addr line, bool exclusive,
                                 std::vector<std::uint64_t> words)
{
    auto it = mshrs_.find(line);
    if (it == mshrs_.end())
        ALEWIFE_PANIC("data reply without MSHR, node ", self_, " line ",
                      line);
    if (hooks_)
        hooks_->onFill(self_, line, exclusive);
    Mshr m = std::move(it->second);
    mshrs_.erase(it);
    if (hooks_)
        hooks_->onMshrClose(self_, line);
    ALEWIFE_TRACE_EVENT(TraceCat::Coh, eq_.now(), "fill at ", self_,
                        " line ", line, exclusive ? " X" : " S",
                        " demands ", m.demands.size());

    const bool pure_prefetch = m.demands.empty() && m.deferred.empty();
    const auto st =
        exclusive ? mem::LineState::Modified : mem::LineState::Shared;

    if (m.startedAsPrefetch)
        --prefetchesInFlight_;

    if (pure_prefetch && m.killedByInv) {
        // An invalidation overtook this prefetch's data reply; its ack
        // is already at the home and the epoch is bumped. Installing
        // the words now would resurrect a copy the directory no
        // longer tracks — drop them instead.
        return;
    }

    if (pure_prefetch && cache_.contains(line) && !m.stashedRecall) {
        // Exclusive prefetch upgrading a line the cache already holds
        // Shared: install straight into the cache. Splitting the line
        // between a Modified buffer entry and a stale Shared cache copy
        // would let recalls miss the cache copy.
        installLine(line, st, words);
        return;
    }

    if (pure_prefetch && !m.stashedRecall) {
        if (pfb_.occupancy() == pfb_.capacity()) {
            auto victim = pfb_.evictOldest();
            if (victim && victim->st == mem::LineState::Modified) {
                ProtoMsg wb;
                wb.type = MsgType::WbEvict;
                wb.lineAddr = victim->lineAddr;
                wb.words = std::move(victim->words);
                sendProto(mem_.home(victim->lineAddr), std::move(wb),
                          eq_.now());
            }
        }
        pfb_.install(line, st, std::move(words));
        return;
    }

    installLine(line, st, words);
    for (const DemandWaiter &w : m.demands)
        satisfyDemand(w);
    for (auto &fn : m.deferred)
        fn();

    // Protocol messages that overtook this fill (possible under 3-hop
    // forwarding, where data rides a different source pair than home
    // traffic) are honoured now, after the ordered-earlier demands.
    // An overtaken pure-prefetch grant lands in the cache (not the
    // prefetch buffer) above precisely so the stashed recall/forward
    // can answer with the data here.
    if (m.stashedRecall) {
        const ProtoMsg &rc = *m.stashedRecall;
        const bool ex = rc.type == MsgType::RecallX
                        || rc.type == MsgType::FwdGetX;
        if (hooks_)
            hooks_->onRecallHonored(self_, line);
        if (rc.type == MsgType::FwdGetS || rc.type == MsgType::FwdGetX)
            cacheForward(rc, ex);
        else
            answerRecall(rc, ex);
    } else if (m.killedByInv) {
        cache_.invalidate(line);
        bumpEpoch(line);
    }
}

// ---------------------------------------------------------------------
// Network receive and home-side protocol
// ---------------------------------------------------------------------

void
CoherenceController::receive(ProtoMsg msg)
{
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX: {
        const Tick at = cmmuSlot(cfg_.homeOccupancyCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            homeRequest(std::move(m));
        });
        break;
      }
      case MsgType::WbData:
      case MsgType::WbEvict: {
        const Tick at = cmmuSlot(cfg_.homeOccupancyCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            homeWriteback(m);
        });
        break;
      }
      case MsgType::RecallNoData: {
        const Tick at = cmmuSlot(cfg_.homeOccupancyCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            // The matching WbEvict is ordered ahead of this message and
            // has already completed the transaction; nothing to do, but
            // verify the invariant.
            DirEntry *e = dir_.find(m.lineAddr);
            if (e && e->busy() && e->txn->id == m.txnId)
                ALEWIFE_PANIC("RecallNoData without preceding writeback");
        });
        break;
      }
      case MsgType::InvAck: {
        const Tick at = cmmuSlot(cfg_.homeOccupancyCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            homeInvAck(m);
        });
        break;
      }
      case MsgType::Inv: {
        const Tick at = cmmuSlot(cfg_.invProcessCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            cacheInv(m);
        });
        break;
      }
      case MsgType::Recall:
      case MsgType::RecallX: {
        const bool ex = msg.type == MsgType::RecallX;
        const Tick at = cmmuSlot(cfg_.invProcessCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, ex, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            cacheRecall(m, ex);
        });
        break;
      }
      case MsgType::FwdGetS:
      case MsgType::FwdGetX: {
        const bool ex = msg.type == MsgType::FwdGetX;
        const Tick at = cmmuSlot(cfg_.invProcessCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, ex, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            cacheForward(m, ex);
        });
        break;
      }
      case MsgType::FwdAck: {
        const Tick at = cmmuSlot(cfg_.homeOccupancyCycles);
        const EventMeta meta = protoMeta(EventTag::CohProcess, self_, msg);
        eq_.schedule(at, meta, [this, m = std::move(msg)]() mutable {
            if (hooks_)
                hooks_->onProtoProcess(self_, m);
            homeFwdAck(m);
        });
        break;
      }
      case MsgType::Data:
      case MsgType::DataX: {
        const bool ex = msg.type == MsgType::DataX;
        const Tick at = eq_.now() + cyclesToTicks(cfg_.replyConsumeCycles);
        const EventMeta meta = fillMeta(self_, msg.lineAddr, ex);
        eq_.schedule(at, meta, [this, ex, m = std::move(msg)]() mutable {
            fillArrived(m.lineAddr, ex, std::move(m.words));
        });
        break;
      }
    }
}

double
CoherenceController::limitlessCost(const DirEntry &e)
{
    const int extra =
        static_cast<int>(e.sharers.size()) - cfg_.dirHwPointers;
    if (extra <= 0)
        return 0.0;
    ++counters_.limitlessTraps;
    return cfg_.limitlessTrapCycles + extra * cfg_.limitlessPerSharerCycles;
}

void
CoherenceController::homeRequest(ProtoMsg msg)
{
    DirEntry &e = dir_.entry(msg.lineAddr);
    if (e.busy()) {
        e.queue.push_back(std::move(msg));
        return;
    }
    const Addr line = msg.lineAddr;
    homeServe(msg);
    // The request may have completed without opening a transaction
    // (e.g. GetS on a Shared line); keep draining any queued peers.
    homeMaybeDrain(line);
}

void
CoherenceController::homeMaybeDrain(Addr line)
{
    DirEntry &e = dir_.entry(line);
    if (e.busy() || e.queue.empty())
        return;
    ProtoMsg next = std::move(e.queue.front());
    e.queue.pop_front();
    const Tick at = cmmuSlot(cfg_.homeOccupancyCycles);
    const EventMeta meta = protoMeta(EventTag::CohHomeDrain, self_, next);
    eq_.schedule(at, meta, [this, m = std::move(next)]() mutable {
        homeRequest(std::move(m));
    });
}

void
CoherenceController::homeServe(const ProtoMsg &msg)
{
    DirEntry &e = dir_.entry(msg.lineAddr);
    ALEWIFE_TRACE_EVENT(TraceCat::Coh, eq_.now(), "home ", self_,
                        " serve ", msgTypeName(msg.type), " line ",
                        msg.lineAddr, " from ", msg.requester,
                        " state ", static_cast<int>(e.state));
    const Addr line = msg.lineAddr;
    const NodeId req = msg.requester;
    Tick reply_at = eq_.now();

    // Local requesters see the configured local miss penalty end to end.
    auto local_floor = [&](Tick t) {
        if (req == self_)
            return std::max(t, msg.issuedAt
                                   + cyclesToTicks(cfg_.localMissCycles));
        return t;
    };

    auto line_words = [&]() {
        std::vector<std::uint64_t> words(mem_.wordsPerLine());
        for (std::uint32_t i = 0; i < words.size(); ++i)
            words[i] = mem_.loadWord(line + 8 * i);
        return words;
    };

    auto reply = [&](MsgType t, Tick when) {
        ProtoMsg r;
        r.type = t;
        r.lineAddr = line;
        r.requester = req;
        r.words = line_words();
        Tick dispatch = when;
        if (req == self_) {
            const bool ex = t == MsgType::DataX;
            dispatch = local_floor(when);
            if (hooks_)
                hooks_->onLocalGrant(self_, line, ex);
            eq_.schedule(dispatch, fillMeta(self_, line, ex),
                         [this, line, ex, w = std::move(r.words)]() mutable {
                             fillArrived(line, ex, std::move(w));
                         });
        } else {
            sendProto(req, std::move(r), when);
        }
        // A grant whose reply leaves later than now (LimitLESS trap,
        // local-miss floor) must hold the line busy until dispatch:
        // serving another request meanwhile could inject a Recall that
        // overtakes the granted data.
        if (dispatch > eq_.now()) {
            DirTxn hold;
            hold.request = msg.type;
            hold.requester = req;
            hold.id = nextTxnId_++;
            e.txn = hold;
            if (hooks_)
                hooks_->onTxnOpen(self_, line, *e.txn);
            eq_.schedule(dispatch,
                         EventMeta{EventTag::CohHomeComplete,
                                   static_cast<std::uint64_t>(
                                       static_cast<std::uint32_t>(self_)),
                                   line},
                         [this, line]() { homeComplete(line); });
        }
    };

    if (msg.type == MsgType::GetS) {
        switch (e.state) {
          case DirState::Uncached:
            e.state = DirState::Shared;
            e.sharers = {req};
            reply(MsgType::Data, reply_at);
            return;
          case DirState::Shared: {
            e.addSharer(req);
            const double trap = limitlessCost(e);
            if (trap > 0.0)
                reply_at = proc_.chargeHandler(trap, TimeCat::MsgOverhead);
            reply(MsgType::Data, reply_at);
            return;
          }
          case DirState::Modified: {
            if (e.owner == req)
                ALEWIFE_PANIC("GetS from recorded owner, line ", line);
            DirTxn txn;
            txn.request = MsgType::GetS;
            txn.requester = req;
            txn.waitingRecall = true;
            txn.forwarded = cfg_.threeHopForwarding;
            txn.id = nextTxnId_++;
            e.txn = txn;
            if (hooks_)
                hooks_->onTxnOpen(self_, line, txn);
            ProtoMsg rc;
            rc.type = txn.forwarded ? MsgType::FwdGetS : MsgType::Recall;
            rc.lineAddr = line;
            rc.requester = req;
            rc.txnId = txn.id;
            sendProto(e.owner, std::move(rc), reply_at);
            return;
          }
        }
    }

    if (msg.type == MsgType::GetX) {
        switch (e.state) {
          case DirState::Uncached:
            e.state = DirState::Modified;
            e.owner = req;
            reply(MsgType::DataX, reply_at);
            return;
          case DirState::Shared: {
            const double trap = limitlessCost(e);
            if (trap > 0.0)
                reply_at = proc_.chargeHandler(trap, TimeCat::MsgOverhead);
            std::vector<NodeId> to_inv;
            for (NodeId s : e.sharers) {
                if (s != req)
                    to_inv.push_back(s);
            }
            if (to_inv.empty()) {
                e.state = DirState::Modified;
                e.owner = req;
                e.sharers.clear();
                reply(MsgType::DataX, reply_at);
                return;
            }
            DirTxn txn;
            txn.request = MsgType::GetX;
            txn.requester = req;
            txn.pendingAcks = static_cast<int>(to_inv.size());
            txn.id = nextTxnId_++;
            e.txn = txn;
            if (hooks_)
                hooks_->onTxnOpen(self_, line, txn);
            for (NodeId s : to_inv) {
                ProtoMsg inv;
                inv.type = MsgType::Inv;
                inv.lineAddr = line;
                inv.requester = req;
                inv.txnId = txn.id;
                sendProto(s, std::move(inv), reply_at);
                ++counters_.invalidationsSent;
            }
            return;
          }
          case DirState::Modified: {
            if (e.owner == req)
                ALEWIFE_PANIC("GetX from recorded owner, line ", line);
            DirTxn txn;
            txn.request = MsgType::GetX;
            txn.requester = req;
            txn.waitingRecall = true;
            txn.forwarded = cfg_.threeHopForwarding;
            txn.id = nextTxnId_++;
            e.txn = txn;
            if (hooks_)
                hooks_->onTxnOpen(self_, line, txn);
            ProtoMsg rc;
            rc.type = txn.forwarded ? MsgType::FwdGetX : MsgType::RecallX;
            rc.lineAddr = line;
            rc.requester = req;
            rc.txnId = txn.id;
            sendProto(e.owner, std::move(rc), reply_at);
            return;
          }
        }
    }

    ALEWIFE_PANIC("homeServe: unexpected ", msgTypeName(msg.type));
}

void
CoherenceController::homeWriteback(const ProtoMsg &msg)
{
    DirEntry &e = dir_.entry(msg.lineAddr);
    const Addr line = msg.lineAddr;

    // Commit the written-back data.
    for (std::uint32_t i = 0; i < msg.words.size(); ++i)
        mem_.storeWord(line + 8 * i, msg.words[i]);

    if (e.busy() && e.txn->waitingRecall) {
        // This writeback satisfies the outstanding recall (either the
        // explicit WbData response or a racing eviction's WbEvict).
        const DirTxn txn = *e.txn;
        const NodeId old_owner = e.owner;
        // In the forwarded variant the owner already shipped the line
        // to the requester; the home only commits state. If the owner
        // had evicted (WbEvict beat the forward), fall back to a
        // home-sourced reply exactly as in the recall protocol.
        const bool need_reply =
            !txn.forwarded || msg.type == MsgType::WbEvict;
        ProtoMsg r;
        r.lineAddr = line;
        r.requester = txn.requester;
        r.words = msg.words;
        if (txn.request == MsgType::GetS) {
            e.state = DirState::Shared;
            e.sharers.clear();
            // The old owner keeps a Shared copy only if it actually
            // answered the recall (WbData); an eviction means it's gone.
            if (msg.type == MsgType::WbData)
                e.sharers.push_back(old_owner);
            e.sharers.push_back(txn.requester);
            r.type = MsgType::Data;
        } else {
            e.state = DirState::Modified;
            e.owner = txn.requester;
            e.sharers.clear();
            r.type = MsgType::DataX;
        }
        if (need_reply) {
            if (txn.requester == self_) {
                const bool ex = r.type == MsgType::DataX;
                if (hooks_)
                    hooks_->onLocalGrant(self_, line, ex);
                eq_.schedule(
                    eq_.now(), fillMeta(self_, line, ex),
                    [this, line, ex, w = std::move(r.words)]() mutable {
                        fillArrived(line, ex, std::move(w));
                    });
            } else {
                sendProto(txn.requester, std::move(r), eq_.now());
            }
        }
        homeComplete(line);
        return;
    }

    // Plain victim writeback.
    if (e.state == DirState::Modified && e.owner == msg.src) {
        e.state = DirState::Uncached;
        e.owner = -1;
        return;
    }
    ALEWIFE_PANIC("unexpected writeback from ", msg.src, " line ", line,
                  " state ", static_cast<int>(e.state));
}

void
CoherenceController::homeInvAck(const ProtoMsg &msg)
{
    DirEntry &e = dir_.entry(msg.lineAddr);
    if (!e.busy() || e.txn->request != MsgType::GetX
        || e.txn->pendingAcks <= 0) {
        ALEWIFE_PANIC("stray InvAck for line ", msg.lineAddr);
    }
    if (--e.txn->pendingAcks > 0)
        return;

    const NodeId req = e.txn->requester;
    e.state = DirState::Modified;
    e.owner = req;
    e.sharers.clear();

    ProtoMsg r;
    r.type = MsgType::DataX;
    r.lineAddr = msg.lineAddr;
    r.requester = req;
    r.words.resize(mem_.wordsPerLine());
    for (std::uint32_t i = 0; i < r.words.size(); ++i)
        r.words[i] = mem_.loadWord(msg.lineAddr + 8 * i);

    if (req == self_) {
        const Addr line = msg.lineAddr;
        if (hooks_)
            hooks_->onLocalGrant(self_, line, true);
        eq_.schedule(eq_.now(), fillMeta(self_, line, true),
                     [this, line, w = std::move(r.words)]() mutable {
                         fillArrived(line, true, std::move(w));
                     });
    } else {
        sendProto(req, std::move(r), eq_.now());
    }
    homeComplete(msg.lineAddr);
}

void
CoherenceController::homeComplete(Addr line)
{
    DirEntry &e = dir_.entry(line);
    if (hooks_)
        hooks_->onTxnClose(self_, line);
    e.txn.reset();
    homeMaybeDrain(line);
}

// ---------------------------------------------------------------------
// Remote-cache side
// ---------------------------------------------------------------------

void
CoherenceController::cacheInv(const ProtoMsg &msg)
{
    const Addr line = msg.lineAddr;
    const bool skipInv = faults_.skipInvalidate && !faultFired_;
    if (skipInv)
        faultFired_ = true;
    if (!skipInv) {
        auto dirty = cache_.invalidate(line);
        if (dirty)
            ALEWIFE_PANIC("Inv hit a Modified line at node ", self_);
        pfb_.invalidate(line);
        if (auto it = mshrs_.find(line);
            it != mshrs_.end() && !it->second.wantExclusive) {
            // The invalidation overtook a data reply still in flight
            // (different source pairs under 3-hop forwarding): remember
            // to drop the line right after the fill satisfies the
            // demands that were ordered before this invalidation.
            it->second.killedByInv = true;
        }
        bumpEpoch(line);
    }

    if (faults_.dropInvAck && !faultFired_) {
        faultFired_ = true;
        return; // swallow the ack: the home's txn never closes
    }
    ProtoMsg ack;
    ack.type = MsgType::InvAck;
    ack.lineAddr = line;
    ack.requester = msg.requester;
    ack.txnId = msg.txnId;
    sendProto(mem_.home(line), std::move(ack), eq_.now());
}

void
CoherenceController::cacheRecall(const ProtoMsg &msg, bool exclusive)
{
    const Addr line = msg.lineAddr;
    ProtoMsg resp;
    resp.lineAddr = line;
    resp.requester = msg.requester;
    resp.txnId = msg.txnId;

    if (cache_.state(line) == mem::LineState::Modified) {
        if (exclusive) {
            auto words = cache_.invalidate(line);
            resp.type = MsgType::WbData;
            resp.words = std::move(*words);
            bumpEpoch(line);
        } else {
            auto words = cache_.downgrade(line);
            resp.type = MsgType::WbData;
            resp.words = std::move(*words);
        }
        sendProto(mem_.home(line), std::move(resp), eq_.now());
        return;
    }

    if (const auto *e = pfb_.find(line);
        e && e->st == mem::LineState::Modified) {
        resp.type = MsgType::WbData;
        resp.words = e->words;
        if (exclusive) {
            pfb_.invalidate(line);
            // Defensive: drop any coexisting cache copy too.
            cache_.invalidate(line);
            bumpEpoch(line);
        } else {
            pfb_.downgrade(line);
        }
        sendProto(mem_.home(line), std::move(resp), eq_.now());
        return;
    }

    // Not present. Either the line was evicted (WbEvict ordered ahead
    // of this response) or — under 3-hop forwarding — the recall
    // overtook our own granted data, which is still in flight: honour
    // the recall right after the fill.
    if (auto it = mshrs_.find(line);
        it != mshrs_.end() && it->second.wantExclusive) {
        ProtoMsg stash = msg;
        stash.type = exclusive ? MsgType::RecallX : MsgType::Recall;
        it->second.stashedRecall = std::move(stash);
        if (hooks_)
            hooks_->onRecallStashed(self_, line);
        return;
    }
    resp.type = MsgType::RecallNoData;
    sendProto(mem_.home(line), std::move(resp), eq_.now());
}

void
CoherenceController::answerRecall(const ProtoMsg &msg, bool exclusive)
{
    const Addr line = msg.lineAddr;
    ProtoMsg resp;
    resp.lineAddr = line;
    resp.requester = msg.requester;
    resp.txnId = msg.txnId;
    resp.type = MsgType::WbData;
    if (exclusive) {
        auto words = cache_.invalidate(line);
        if (!words)
            ALEWIFE_PANIC("answerRecall: line vanished at ", self_);
        resp.words = std::move(*words);
        bumpEpoch(line);
    } else {
        auto words = cache_.downgrade(line);
        if (!words)
            ALEWIFE_PANIC("answerRecall: line not Modified at ", self_);
        resp.words = std::move(*words);
    }
    sendProto(mem_.home(line), std::move(resp), eq_.now());
}

void
CoherenceController::cacheForward(const ProtoMsg &msg, bool exclusive)
{
    const Addr line = msg.lineAddr;

    auto ship = [&](std::vector<std::uint64_t> words) {
        // Data straight to the requester (the 3-hop shortcut)...
        ProtoMsg d;
        d.type = exclusive ? MsgType::DataX : MsgType::Data;
        d.lineAddr = line;
        d.requester = msg.requester;
        d.words = words;
        sendProto(msg.requester, std::move(d), eq_.now());
        // ...and the home's confirmation: dirty data for a downgrade
        // (memory must be refreshed), a plain ack for a handoff.
        if (exclusive) {
            ProtoMsg a;
            a.type = MsgType::FwdAck;
            a.lineAddr = line;
            a.requester = msg.requester;
            a.txnId = msg.txnId;
            sendProto(mem_.home(line), std::move(a), eq_.now());
        } else {
            ProtoMsg wb;
            wb.type = MsgType::WbData;
            wb.lineAddr = line;
            wb.requester = msg.requester;
            wb.txnId = msg.txnId;
            wb.words = std::move(words);
            sendProto(mem_.home(line), std::move(wb), eq_.now());
        }
    };

    if (cache_.state(line) == mem::LineState::Modified) {
        if (exclusive) {
            auto words = cache_.invalidate(line);
            bumpEpoch(line);
            ship(std::move(*words));
        } else {
            auto words = cache_.downgrade(line);
            ship(std::move(*words));
        }
        return;
    }
    if (const auto *e = pfb_.find(line);
        e && e->st == mem::LineState::Modified) {
        std::vector<std::uint64_t> words = e->words;
        if (exclusive) {
            pfb_.invalidate(line);
            cache_.invalidate(line);
            bumpEpoch(line);
        } else {
            pfb_.downgrade(line);
        }
        ship(std::move(words));
        return;
    }
    if (auto it = mshrs_.find(line);
        it != mshrs_.end() && it->second.wantExclusive) {
        // The forward overtook our own granted data; honour it after
        // the fill (same stash as a recall).
        ProtoMsg stash = msg;
        stash.type = exclusive ? MsgType::FwdGetX : MsgType::FwdGetS;
        it->second.stashedRecall = std::move(stash);
        if (hooks_)
            hooks_->onRecallStashed(self_, line);
        return;
    }
    // Evicted: the WbEvict is ordered ahead at the home, which falls
    // back to a home-sourced reply; just tell it we had nothing.
    ProtoMsg resp;
    resp.lineAddr = line;
    resp.requester = msg.requester;
    resp.txnId = msg.txnId;
    resp.type = MsgType::RecallNoData;
    sendProto(mem_.home(line), std::move(resp), eq_.now());
}

void
CoherenceController::homeFwdAck(const ProtoMsg &msg)
{
    DirEntry &e = dir_.entry(msg.lineAddr);
    if (!e.busy() || !e.txn->forwarded || e.txn->id != msg.txnId)
        ALEWIFE_PANIC("stray FwdAck for line ", msg.lineAddr);
    e.state = DirState::Modified;
    e.owner = e.txn->requester;
    e.sharers.clear();
    homeComplete(msg.lineAddr);
}

} // namespace alewife::coh
