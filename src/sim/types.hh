/**
 * @file
 * Fundamental simulation types and time units.
 *
 * All simulated time is kept in integer Ticks, where one processor cycle
 * equals kTicksPerCycle ticks. Sub-cycle costs from the paper (0.8
 * cycles/hop for active messages, 1.6 cycles/hop for shared-memory
 * transits) therefore stay exact and the simulation stays deterministic.
 */

#ifndef ALEWIFE_SIM_TYPES_HH
#define ALEWIFE_SIM_TYPES_HH

#include <cstdint>

namespace alewife {

/** Simulated time. 1 tick = 1/100 processor cycle. */
using Tick = std::uint64_t;

/** Number of ticks per processor cycle. */
constexpr Tick kTicksPerCycle = 100;

/** Identifies a node (processor or I/O node) in the machine. */
using NodeId = std::int32_t;

/** Byte address in the simulated global shared address space. */
using Addr = std::uint64_t;

/** Convert a (possibly fractional) cycle count to ticks, rounding. */
constexpr Tick
cyclesToTicks(double cycles)
{
    return static_cast<Tick>(cycles * static_cast<double>(kTicksPerCycle)
                             + 0.5);
}

/** Convert whole cycles to ticks. */
constexpr Tick
cyclesToTicks(std::uint64_t cycles)
{
    return cycles * kTicksPerCycle;
}

/** Convert ticks to cycles as a double (for reporting). */
constexpr double
ticksToCycles(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerCycle);
}

} // namespace alewife

#endif // ALEWIFE_SIM_TYPES_HH
