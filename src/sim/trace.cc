#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace alewife {

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Coh: return "coh";
      case TraceCat::Net: return "net";
      case TraceCat::Msg: return "msg";
      case TraceCat::Proc: return "proc";
      case TraceCat::Sync: return "sync";
      default: return "?";
    }
}

Trace::State &
Trace::state()
{
    static State s;
    if (!s.envRead) {
        s.envRead = true;
        initFromEnv();
    }
    return s;
}

void
Trace::enable(TraceCat c, bool on)
{
    state().on[static_cast<std::size_t>(c)] = on;
}

void
Trace::enableAll(bool on)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceCat::NumCats); ++i) {
        state().on[i] = on;
    }
}

void
Trace::initFromEnv()
{
    // Mark as read *first*: state() calls us during construction.
    State &s = state();
    const char *env = std::getenv("ALEWIFE_TRACE");
    if (!env)
        return;
    const std::string spec(env);
    if (spec == "all") {
        for (auto &b : s.on)
            b = true;
        return;
    }
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(TraceCat::NumCats); ++i) {
            if (tok == traceCatName(static_cast<TraceCat>(i)))
                s.on[i] = true;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

void
Trace::emit(TraceCat c, Tick now, const std::string &msg)
{
    ++state().lines;
    std::fprintf(stderr, "%12.2f [%s] %s\n", ticksToCycles(now),
                 traceCatName(c), msg.c_str());
}

std::uint64_t
Trace::linesEmitted()
{
    return state().lines;
}

} // namespace alewife
