#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

#include "sim/logging.hh"

namespace alewife {

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Coh: return "coh";
      case TraceCat::Net: return "net";
      case TraceCat::Msg: return "msg";
      case TraceCat::Proc: return "proc";
      case TraceCat::Sync: return "sync";
      case TraceCat::Obs: return "obs";
      default: return "?";
    }
}

namespace {

/**
 * Warn (once per distinct token, to stderr) about an ALEWIFE_TRACE
 * name that matches no category — a typo would otherwise silently
 * trace nothing.
 */
void
warnUnknownToken(const std::string &tok)
{
    static std::set<std::string> warned;
    static std::mutex mtx;
    std::lock_guard<std::mutex> lock(mtx);
    if (!warned.insert(tok).second)
        return;
    std::string valid = "all";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceCat::NumCats); ++i) {
        valid += ",";
        valid += traceCatName(static_cast<TraceCat>(i));
    }
    std::fprintf(stderr,
                 "alewife: unknown ALEWIFE_TRACE category '%s' "
                 "(valid: %s)\n",
                 tok.c_str(), valid.c_str());
}

/** Parse an ALEWIFE_TRACE-style spec into the category flags. */
void
applySpec(const std::string &spec,
          std::array<std::atomic<bool>,
                     static_cast<std::size_t>(TraceCat::NumCats)> &on)
{
    if (spec == "all") {
        for (auto &b : on)
            b.store(true, std::memory_order_relaxed);
        return;
    }
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        bool known = tok.empty(); // tolerate stray commas silently
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(TraceCat::NumCats); ++i) {
            if (tok == traceCatName(static_cast<TraceCat>(i))) {
                on[i].store(true, std::memory_order_relaxed);
                known = true;
            }
        }
        if (!known)
            warnUnknownToken(tok);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

} // namespace

Trace::State::State()
{
    // Runs exactly once under the magic-static guard of state(), so
    // concurrent first uses from worker threads cannot race the
    // environment parse.
    const char *env = std::getenv("ALEWIFE_TRACE");
    if (env)
        applySpec(env, on);
}

Trace::State &
Trace::state()
{
    static State s;
    return s;
}

void
Trace::enable(TraceCat c, bool on)
{
    state().on[static_cast<std::size_t>(c)].store(
        on, std::memory_order_relaxed);
}

void
Trace::enableAll(bool on)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceCat::NumCats); ++i) {
        state().on[i].store(on, std::memory_order_relaxed);
    }
}

void
Trace::initFromEnv()
{
    const char *env = std::getenv("ALEWIFE_TRACE");
    if (env)
        applySpec(env, state().on);
}

void
Trace::emit(TraceCat c, Tick now, const std::string &msg)
{
    state().lines.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%12.2f [%s] %s\n", ticksToCycles(now),
                 traceCatName(c), msg.c_str());
}

std::uint64_t
Trace::linesEmitted()
{
    return state().lines.load(std::memory_order_relaxed);
}

} // namespace alewife
