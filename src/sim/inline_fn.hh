/**
 * @file
 * InlineFn: a move-only callable with small-buffer storage.
 *
 * std::function costs a heap allocation for any capture larger than its
 * (implementation-defined, ~16-byte) inline buffer — which is every
 * event callback this simulator schedules, since they capture at least
 * a component pointer plus a message. InlineFn<N> stores captures up to
 * N bytes inline and only falls back to the heap for oversized or
 * throwing-move captures, so the event-queue hot path allocates
 * nothing in steady state.
 *
 * Dispatch is one indirect call through a per-type operations table
 * (invoke / relocate / destroy), the same manual-vtable technique used
 * by every small-function implementation. Relocation is a move-
 * construct + destroy pair, so InlineFn is cheaply movable and can live
 * inside pooled event slots that are recycled by index.
 */

#ifndef ALEWIFE_SIM_INLINE_FN_HH
#define ALEWIFE_SIM_INLINE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace alewife::sim {

/**
 * Move-only `void()` callable with @p N bytes of inline capture storage.
 */
template <std::size_t N>
class InlineFn
{
  public:
    InlineFn() = default;

    /** Wrap any `void()` callable; inline when it fits, heap otherwise. */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFn>
                  && std::is_invocable_r_v<void, D &>>>
    InlineFn(F &&f) // NOLINT(google-explicit-constructor)
    {
        construct<F, D>(std::forward<F>(f));
    }

    /**
     * Assign a callable in place — constructs the capture directly in
     * this object's storage, with no intermediate InlineFn and no
     * relocate. This is what keeps EventQueue::schedule cheap: the
     * caller's lambda is built straight into the pooled event slot.
     */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFn>
                  && std::is_invocable_r_v<void, D &>>>
    InlineFn &
    operator=(F &&f)
    {
        reset();
        construct<F, D>(std::forward<F>(f));
        return *this;
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    /** @pre *this holds a callable */
    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** True if a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroy the held callable (if any); *this becomes empty. */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** True if a callable of type @p F would be stored inline. */
    template <typename F>
    static constexpr bool
    fitsInline()
    {
        return sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t)
               && std::is_nothrow_move_constructible_v<F>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct *src into dst storage, then destroy *src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename F, typename D>
    void
    construct(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            ::new (static_cast<void *>(buf_))
                D *(new D(std::forward<F>(f)));
            ops_ = &heapOps<D>;
        }
    }

    template <typename F>
    static F &
    as(void *p)
    {
        return *std::launder(reinterpret_cast<F *>(p));
    }

    template <typename F>
    static constexpr Ops inlineOps = {
        [](void *p) { as<F>(p)(); },
        [](void *src, void *dst) noexcept {
            ::new (dst) F(std::move(as<F>(src)));
            as<F>(src).~F();
        },
        [](void *p) noexcept { as<F>(p).~F(); },
    };

    template <typename F>
    static constexpr Ops heapOps = {
        [](void *p) { (*as<F *>(p))(); },
        [](void *src, void *dst) noexcept {
            // The stored pointer is trivially destructible: just copy it.
            ::new (dst) F *(as<F *>(src));
        },
        [](void *p) noexcept { delete as<F *>(p); },
    };

    void
    moveFrom(InlineFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(other.buf_, buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte buf_[N];
    const Ops *ops_ = nullptr;
};

} // namespace alewife::sim

#endif // ALEWIFE_SIM_INLINE_FN_HH
