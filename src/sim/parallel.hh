/**
 * @file
 * Conservative time-windowed parallel execution of one EventQueue.
 *
 * The serial kernel executes events one at a time in (when, pri, seq)
 * order. This engine partitions the machine into logical processes
 * (LPs: one per node, plus one for cross-traffic), pops every event
 * inside a safe window [start, start + lookahead) from the global
 * RadixQueue, and executes the window on a pool of worker threads —
 * each worker walking its own LPs' events in key order. The lookahead
 * is the guaranteed minimum latency of any cross-LP interaction (mesh
 * fixed cost + one hop), so no event inside the window can create
 * work for another LP inside the same window; cross-LP events created
 * during the window always land at or beyond the window bound and are
 * delivered through per-worker staging buffers (the "mailboxes"),
 * drained into the global queue at the window commit.
 *
 * Determinism contract: committed event order is exactly the serial
 * (when, pri, seq) total order, and newly scheduled events receive the
 * exact seq values the serial engine would have assigned. Two
 * mechanisms make this true:
 *
 *  1. Staged scheduling (normal runs). schedule() calls made during a
 *     window do not touch the shared seq counter; they record
 *     (parent exec record, call index) instead. At the window commit a
 *     single thread replays the window's per-worker execution logs in
 *     true serial order (a k-way merge; a staged event's order resolves
 *     through its parent's, terminating at pre-window events with
 *     concrete seqs) and assigns seq_++ in exactly the order the serial
 *     engine's schedule() calls would have run.
 *
 *  2. The order gate (shared simulation state). Operations that read
 *     or mutate state shared between LPs — mesh link occupancy, packet
 *     ids, perturbation RNG draws — spin until every other worker's
 *     published position (the exec record of its current event) is
 *     strictly after the caller's event in true order. Workers walk
 *     their events in increasing key order, so the globally least
 *     unretired event never waits and the gate is deadlock-free; gated
 *     operations therefore run mutually exclusive, in exact serial
 *     event order, with release/acquire visibility.
 *
 * Perturbed runs (EventQueue tie-break RNG) instead gate every
 * schedule() call and assign seqs/priorities live — slower, but the
 * RNG draw order is exactly serial, so fuzzed runs stay bit-identical
 * too.
 *
 * Same-LP events scheduled inside the window (processor resumes,
 * same-tick AM drains) are inserted into the owning worker's remaining
 * walk, keeping per-LP execution in key order; their keys always
 * exceed their parent's, so worker positions stay monotone and the
 * gate argument holds.
 */

#ifndef ALEWIFE_SIM_PARALLEL_HH
#define ALEWIFE_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/event_tag.hh"
#include "sim/types.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife::sim {

// Implementation details of ParallelExec (parallel.cc): per-worker
// window state and the shared barrier/pool-mutex block.
struct ParallelWorker;
struct ParallelShared;

/**
 * Execution-order record of one event run inside a window. Immutable
 * once the owning worker publishes it as its position (seq is filled
 * in for staged records by the single-threaded commit, after workers
 * quiesce). parent == nullptr marks a *concrete* event (seq was
 * assigned before the window started); otherwise the event was staged
 * during this window by `parent`'s `childIdx`-th schedule() call.
 */
struct ExecRecord
{
    Tick when = 0;
    std::uint64_t pri = 0;
    std::uint64_t seq = 0;
    const ExecRecord *parent = nullptr;
    std::uint32_t childIdx = 0;
};

/**
 * True serial order over events executed in one window: (when, pri),
 * then concrete seq; at full ties a concrete event precedes any staged
 * one (staged seqs are assigned later than every pre-window seq), and
 * two staged events order by their parents' true order, then call
 * index. Terminates because parent chains end at concrete events.
 */
bool execOrderLess(const ExecRecord *a, const ExecRecord *b);

/** Options wiring one ParallelExec to its machine. */
struct ParallelOptions
{
    /** Worker threads (including the caller, which runs worker 0). */
    int threads = 2;
    /** Safe window length; must be > 0 (minimum cross-LP latency). */
    Tick lookahead = 0;
    /** Number of LPs (machine nodes + 1 for the cross-traffic LP). */
    int lps = 0;
    /**
     * Map an event to its owning LP. Must be pure and total over every
     * tagged event; untagged events panic (they carry closures the
     * engine cannot place). Called on the planning thread.
     */
    std::function<int(const EventMeta &)> classify;
    /**
     * Called on the owning worker after each event retires, with the
     * event's LP and exec record (machine uses it to pin the record
     * that completed each node's program). May be null.
     */
    std::function<void(int lp, const ExecRecord *rec)> onRetired;
    /**
     * Observer receiving onEventExecuted on the owning worker and
     * onParallelWindowCommit on the commit thread. Must be
     * parallel-capable (Hooks::parallelCapable()); the machine falls
     * back to the serial engine otherwise.
     */
    check::Hooks *hooks = nullptr;
    /**
     * Perturbed mode: gate every schedule() call and assign seq/pri
     * live in serial order instead of staging (tie-break RNG draws
     * must happen in exactly the serial order).
     */
    bool gatedLive = false;
};

/** True when the calling thread is inside a window worker. */
bool onParallelWorker();

/** Exec record of the event the calling worker is executing. */
const ExecRecord *currentExecRecord();

/**
 * The window engine. Constructing it attaches to the queue (rerouting
 * schedule/now/cancel through per-worker state) and spawns
 * threads - 1 workers; destruction (or detach()) joins them and
 * restores the queue to pure serial operation. One window at a time:
 * runWindow() plans on the calling thread, executes on all workers,
 * and commits. The caller must be the constructing thread.
 */
class ParallelExec
{
  public:
    ParallelExec(EventQueue &eq, ParallelOptions opts);
    ~ParallelExec();

    ParallelExec(const ParallelExec &) = delete;
    ParallelExec &operator=(const ParallelExec &) = delete;

    /**
     * Execute one conservative window.
     * @return false if no live event remained (nothing ran)
     */
    bool runWindow();

    /** Join workers and restore the queue to serial operation. */
    void detach();

    /**
     * Order gate: block until every event preceding the calling
     * worker's current event (in true serial order) has retired. On
     * return the caller's shared-state operation is the globally next
     * one, and all earlier events' writes are visible. No-op off
     * worker threads (serial phases are already exclusive).
     */
    void gateWait();

    /**
     * Debug aid: panic if the calling thread is a window worker that
     * does not own @p lp (used by HookFanout's owner check to enforce
     * the per-node threading contract). No-op off worker threads —
     * serial phases may touch any LP freely.
     */
    void assertOwner(int lp) const;

    /** Windows committed so far. */
    std::uint64_t windows() const { return windows_; }
    /** Events executed by this engine so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }
    /** Exclusive upper time bound of the last window. */
    Tick lastBound() const { return bound_; }

    int threads() const { return opts_.threads; }

  private:
    friend class alewife::EventQueue;
    friend struct alewife::detail::EventPool;

    /** Extract the next window from the global queue; false if none. */
    bool plan();
    /** Worker body: execute this worker's walk for the open window. */
    void runWalk(ParallelWorker &w);
    /** Thread main for spawned workers. */
    void workerMain(int id);
    /** Single-threaded window commit: seq replay + queue refill. */
    void commit();
    /** Grab a batch of pool slots for one worker (under the mutex). */
    void refillCache(ParallelWorker &w);

    // EventQueue reroutes (called via friend from event_queue.cc).
    EventHandle workerSchedule(Tick when, std::uint32_t idx,
                               std::uint64_t gen);
    std::uint32_t workerAllocate(Tick when);
    void workerRelease(std::uint32_t idx);
    Tick workerNow() const;

    EventQueue &eq_;
    ParallelOptions opts_;
    std::unique_ptr<ParallelShared> sh_;
    std::vector<std::thread> pool_;
    Tick bound_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t eventsRun_ = 0;
    bool attached_ = false;
};

} // namespace alewife::sim

#endif // ALEWIFE_SIM_PARALLEL_HH
