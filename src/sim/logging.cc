#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace alewife {

std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Grab the lock so the message lands whole even if other threads
    // are emitting; abort() while holding it is fine — nothing after.
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace alewife
