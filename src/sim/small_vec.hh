/**
 * @file
 * SmallVec: a vector with inline storage for the common small case.
 *
 * The mesh hot path builds one route (≤ meshX + meshY link indices) per
 * packet; a std::vector would heap-allocate for every packet until its
 * capacity stabilizes and again after any move. SmallVec keeps up to N
 * elements in the object itself and only spills to the heap for larger
 * meshes — and once spilled, clear() keeps the allocation, so a
 * long-lived scratch SmallVec never allocates in steady state.
 *
 * Only what the simulator needs is implemented: trivially-copyable
 * element types, push_back/clear/indexing/iteration. Not copyable or
 * movable — it exists as a long-lived scratch buffer, not a value type.
 */

#ifndef ALEWIFE_SIM_SMALL_VEC_HH
#define ALEWIFE_SIM_SMALL_VEC_HH

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace alewife::sim {

/** Fixed-inline-capacity vector of a trivially-copyable type. */
template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec only supports trivially-copyable types");

  public:
    SmallVec() = default;
    SmallVec(const SmallVec &) = delete;
    SmallVec &operator=(const SmallVec &) = delete;

    void
    push_back(T v)
    {
        if (size_ == cap_)
            grow();
        data_[size_++] = v;
    }

    /** Drop all elements; heap capacity (if any) is retained. */
    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }

    /** True if elements currently live in the inline buffer. */
    bool inlineStorage() const { return data_ == inline_; }

    T operator[](std::size_t i) const { return data_[i]; }
    T &operator[](std::size_t i) { return data_[i]; }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

  private:
    void
    grow()
    {
        const std::size_t newCap = cap_ * 2;
        auto bigger = std::make_unique<T[]>(newCap);
        std::memcpy(bigger.get(), data_, size_ * sizeof(T));
        heap_ = std::move(bigger);
        data_ = heap_.get();
        cap_ = newCap;
    }

    T inline_[N];
    std::unique_ptr<T[]> heap_;
    T *data_ = inline_;
    std::size_t size_ = 0;
    std::size_t cap_ = N;
};

} // namespace alewife::sim

#endif // ALEWIFE_SIM_SMALL_VEC_HH
