/**
 * @file
 * Statistics containers mirroring the Alewife CMMU hardware counters.
 *
 * The paper reports two kinds of breakdowns:
 *  - Figure 4: execution time split into synchronization, message overhead,
 *    memory + network-interface wait, and compute (TimeBreakdown).
 *  - Figure 5: communication volume split into invalidates, requests,
 *    headers-for-data, and data (VolumeBreakdown).
 */

#ifndef ALEWIFE_SIM_STATS_HH
#define ALEWIFE_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "sim/types.hh"

namespace alewife {

/** Execution-time categories of Figure 4. */
enum class TimeCat : std::uint8_t
{
    Compute = 0,     ///< useful computation
    MemWait,         ///< stalled on cache misses / NI resources
    MsgOverhead,     ///< send/receive/interrupt/poll/gather-scatter cycles
    Sync,            ///< barriers, lock acquisition, spin-waiting
    NumCats
};

/** Human-readable name for a time category. */
const char *timeCatName(TimeCat c);

/** Per-node (or aggregated) execution-time breakdown, in ticks. */
struct TimeBreakdown
{
    std::array<Tick, static_cast<std::size_t>(TimeCat::NumCats)> ticks{};

    void
    add(TimeCat c, Tick t)
    {
        ticks[static_cast<std::size_t>(c)] += t;
    }

    Tick get(TimeCat c) const { return ticks[static_cast<std::size_t>(c)]; }

    Tick total() const;

    TimeBreakdown &operator+=(const TimeBreakdown &o);

    /** Each category in cycles. */
    double cycles(TimeCat c) const { return ticksToCycles(get(c)); }
};

/** Communication-volume categories of Figure 5. */
enum class VolCat : std::uint8_t
{
    Invalidates = 0, ///< invalidations and their acknowledgements
    Requests,        ///< read/write/upgrade/rmw request packets
    Headers,         ///< headers of data-carrying packets
    Data,            ///< payload bytes (cache lines / message bodies)
    NumCats
};

/** Human-readable name for a volume category. */
const char *volCatName(VolCat c);

/** Bytes injected into the network, by category. */
struct VolumeBreakdown
{
    std::array<std::uint64_t, static_cast<std::size_t>(VolCat::NumCats)>
        bytes{};

    void
    add(VolCat c, std::uint64_t b)
    {
        bytes[static_cast<std::size_t>(c)] += b;
    }

    std::uint64_t
    get(VolCat c) const
    {
        return bytes[static_cast<std::size_t>(c)];
    }

    std::uint64_t total() const;

    VolumeBreakdown &operator+=(const VolumeBreakdown &o);
};

/** Miscellaneous machine-wide counters (CMMU statistics registers). */
struct MachineCounters
{
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsDelivered = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t localMisses = 0;
    std::uint64_t remoteMisses = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t limitlessTraps = 0;
    std::uint64_t interruptsTaken = 0;
    std::uint64_t messagesPolled = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;
    std::uint64_t prefetchesUseless = 0;
    std::uint64_t dmaTransfers = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t lockRetries = 0;
    std::uint64_t barrierEpisodes = 0;
    std::uint64_t niQueueFullStalls = 0;

    MachineCounters &operator+=(const MachineCounters &o);
};

/**
 * Name <-> member mapping for one MachineCounters field. The canonical
 * table below is the single source of truth for every by-name view of
 * the counter block (exp/serialize JSON, obs::MetricsRegistry, the
 * ASCII report), so the views cannot drift apart.
 */
struct CounterField
{
    const char *name;
    std::uint64_t MachineCounters::*member;
};

/** The canonical field table, in declaration order. */
std::span<const CounterField> machineCounterFields();

} // namespace alewife

#endif // ALEWIFE_SIM_STATS_HH
