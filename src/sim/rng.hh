/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small, fast xoshiro256** generator; seeded explicitly everywhere so
 * that simulations, tests and benchmarks are reproducible bit-for-bit.
 */

#ifndef ALEWIFE_SIM_RNG_HH
#define ALEWIFE_SIM_RNG_HH

#include <cstdint>

namespace alewife {

/** xoshiro256** deterministic RNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextRange(double lo, double hi);

    /**
     * Standard normal deviate (Box-Muller); used for the Maxwellian
     * velocity distribution in MOLDYN.
     */
    double nextGaussian();

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace alewife

#endif // ALEWIFE_SIM_RNG_HH
