/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small, fast xoshiro256** generator; seeded explicitly everywhere so
 * that simulations, tests and benchmarks are reproducible bit-for-bit.
 */

#ifndef ALEWIFE_SIM_RNG_HH
#define ALEWIFE_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace alewife {

/** xoshiro256** deterministic RNG. */
class Rng
{
  public:
    /**
     * Complete generator state. Capturing and later restoring it makes
     * the subsequent output sequence bit-identical to an uninterrupted
     * stream — the contract the checkpoint subsystem's RNG section
     * relies on. The Box-Muller spare is part of the state: dropping it
     * would shift every later nextGaussian() by one deviate.
     */
    struct State
    {
        std::array<std::uint64_t, 4> s{};
        bool haveSpare = false;
        double spare = 0.0;

        bool operator==(const State &) const = default;
    };

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Snapshot the full generator state. */
    State state() const { return State{{s_[0], s_[1], s_[2], s_[3]}, haveSpare_, spare_}; }

    /** Restore a state captured by state(). */
    void
    setState(const State &st)
    {
        for (std::size_t i = 0; i < st.s.size(); ++i)
            s_[i] = st.s[i];
        haveSpare_ = st.haveSpare;
        spare_ = st.spare;
    }

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextRange(double lo, double hi);

    /**
     * Standard normal deviate (Box-Muller); used for the Maxwellian
     * velocity distribution in MOLDYN.
     */
    double nextGaussian();

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace alewife

#endif // ALEWIFE_SIM_RNG_HH
