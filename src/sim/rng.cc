#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace alewife {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        ALEWIFE_PANIC("nextBounded(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = nextRange(-1.0, 1.0);
        v = nextRange(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

} // namespace alewife
