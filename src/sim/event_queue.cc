#include "sim/event_queue.hh"

#include <limits>

#include "check/hooks.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace alewife {

namespace detail {

void
EventPool::parallelRelease(std::uint32_t idx)
{
    par->workerRelease(idx);
}

void
EventPool::addSlab()
{
    const auto base =
        static_cast<std::uint32_t>(slabs.size()) * kSlabSlots;
    slabs.push_back(std::make_unique<Slot[]>(kSlabSlots));
    // Chain the fresh slots onto the free list, last-first so slot
    // `base` is handed out next (keeps low indices hot).
    for (std::uint32_t i = kSlabSlots; i-- > 0;) {
        Slot &s = slot(base + i);
        s.nextFree = freeHead;
        freeHead = base + i;
    }
}

} // namespace detail

bool
EventHandle::pending() const
{
    detail::EventPool *pool = pool_.get();
    return pool && pool->queueAlive && pool->slot(idx_).genNow() == gen_;
}

void
EventHandle::cancel()
{
    detail::EventPool *pool = pool_.get();
    if (pool && pool->queueAlive && pool->slot(idx_).genNow() == gen_)
        pool->release(idx_); // stale heap entry is skipped on pop
}

EventQueue::EventQueue() : pool_(detail::PoolRef(new detail::EventPool))
{
}

EventQueue::~EventQueue()
{
    // Outstanding handles keep the pool's memory alive (via their
    // refcount) but must see their events as dead from here on.
    pool_->queueAlive = false;
}

void
EventQueue::panicScheduledPast(Tick when) const
{
    ALEWIFE_PANIC("event scheduled in the past: ", when, " < ", now_);
}

void
EventQueue::setTieBreak(std::uint64_t seed)
{
    tieBreak_ = true;
    rng_ = Rng(seed);
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        const Entry e = heap_.top();
        heap_.pop();
        detail::EventPool::Slot &slot = pool_->slot(e.idx);
        if (slot.genNow() != e.gen)
            continue; // cancelled
        now_ = e.when;
        ++executed_;
        // Bump the generation before invoking: every outstanding handle
        // (including the event's own — self-cancellation is a no-op)
        // and stale heap entry is dead from here on. The callback runs
        // in place in its slot, which is pushed back on the free list
        // only afterwards, so it cannot be handed out mid-execution.
        // Slot addresses are stable across addSlab, so `slot` stays
        // valid even if the callback grows the pool.
        slot.bumpGen();
        if (dep_) [[unlikely]] {
            curExec_ = e.seq;
            dep_->onExecute(e.seq, e.when);
        }
        slot.fn();
        slot.fn.reset();
        slot.nextFree = pool_->freeHead;
        pool_->freeHead = e.idx;
        if (dep_) [[unlikely]]
            curExec_ = DepListener::kNoParent;
        if (hooks_)
            hooks_->onEventExecuted(now_);
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

bool
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        // Skip over cancelled entries without advancing time.
        if (!entryLive(heap_.top())) {
            heap_.pop();
            continue;
        }
        if (heap_.top().when > limit)
            return false;
        step();
    }
    return true;
}

std::optional<Tick>
EventQueue::peekNextTick()
{
    while (!heap_.empty()) {
        if (!entryLive(heap_.top())) {
            heap_.pop();
            continue;
        }
        return heap_.top().when;
    }
    return std::nullopt;
}

Tick
EventQueue::parallelNow() const
{
    return par_->workerNow();
}

std::uint32_t
EventQueue::parallelAllocate(Tick when)
{
    return par_->workerAllocate(when);
}

EventHandle
EventQueue::parallelPush(Tick when, std::uint32_t idx,
                         std::uint64_t gen)
{
    return par_->workerSchedule(when, idx, gen);
}

bool
EventQueue::empty() const
{
    // Only used by tests; a linear scan over queued entries is fine.
    return !heap_.any([this](const Entry &e) { return entryLive(e); });
}

} // namespace alewife
