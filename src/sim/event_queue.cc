#include "sim/event_queue.hh"

#include <limits>

#include "check/hooks.hh"
#include "sim/logging.hh"

namespace alewife {

bool
EventHandle::pending() const
{
    return state_ && !state_->cancelled && !state_->fired;
}

void
EventHandle::cancel()
{
    if (state_)
        state_->cancelled = true;
}

EventHandle
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < now_)
        ALEWIFE_PANIC("event scheduled in the past: ", when, " < ", now_);
    auto state = std::make_shared<EventHandle::State>();
    state->fn = std::move(fn);
    // Same-tick events scheduled at now() keep FIFO order (they must run
    // after already-queued same-tick events), so only future events get a
    // random priority.
    std::uint64_t pri = 0;
    if (tieBreak_)
        pri = (when == now_) ? std::numeric_limits<std::uint64_t>::max()
                             : rng_.next();
    heap_.push(Entry{when, pri, seq_++, state});
    return EventHandle(state);
}

void
EventQueue::setTieBreak(std::uint64_t seed)
{
    tieBreak_ = true;
    rng_ = Rng(seed);
}

EventHandle
EventQueue::scheduleIn(Tick delay, std::function<void()> fn)
{
    return schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (e.state->cancelled)
            continue;
        now_ = e.when;
        e.state->fired = true;
        ++executed_;
        // Move the function out so the state can be released even if the
        // callback schedules more events.
        auto fn = std::move(e.state->fn);
        fn();
        if (hooks_)
            hooks_->onEventExecuted(now_);
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

bool
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        // Skip over cancelled entries without advancing time.
        if (heap_.top().state->cancelled) {
            heap_.pop();
            continue;
        }
        if (heap_.top().when > limit)
            return false;
        step();
    }
    return true;
}

bool
EventQueue::empty() const
{
    // Cheap check: cancelled-only heaps still report non-empty; callers that
    // need exactness should use runUntil(). This is only used by tests.
    auto copy = heap_;
    while (!copy.empty()) {
        if (!copy.top().state->cancelled)
            return false;
        copy.pop();
    }
    return true;
}

} // namespace alewife
