/**
 * @file
 * C++20 coroutine plumbing for node programs.
 *
 * A simulated node program is an ordinary coroutine returning sim::Thread.
 * The program suspends at every awaited simulated operation (compute
 * bursts, memory misses, barriers, blocking receives); the event queue
 * resumes it when the operation completes. One Thread per node keeps the
 * five programming-model variants of each application readable.
 */

#ifndef ALEWIFE_SIM_CORO_HH
#define ALEWIFE_SIM_CORO_HH

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/logging.hh"

namespace alewife::sim {

/**
 * Owning handle for a node-program coroutine.
 *
 * The coroutine starts suspended; the owner (the Machine) resumes it to
 * begin execution. After completion the frame stays alive (final_suspend
 * suspends) so done() can be queried; the destructor releases it.
 */
class Thread
{
  public:
    struct promise_type
    {
        Thread
        get_return_object()
        {
            return Thread(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }

        std::exception_ptr exception;
    };

    Thread() = default;

    explicit Thread(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Thread(Thread &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Thread &
    operator=(Thread &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    ~Thread() { destroy(); }

    /** True if the program ran to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /** True if this handle owns a live coroutine. */
    bool valid() const { return static_cast<bool>(handle_); }

    /**
     * Resume the program (initial start or after an await).
     * Rethrows any exception that escaped the program body.
     */
    void
    resume()
    {
        if (!handle_ || handle_.done())
            ALEWIFE_PANIC("resuming a finished node program");
        handle_.resume();
        if (handle_.done() && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    /** Raw handle, for awaitables to stash and resume later. */
    std::coroutine_handle<> raw() const { return handle_; }

    /**
     * If the program finished with an uncaught exception, rethrow it.
     * Used by the processor model after resuming an inner handle (where
     * resume() above is bypassed).
     */
    void
    rethrowIfFailed() const
    {
        if (handle_ && handle_.done() && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/**
 * A nested awaitable coroutine: multi-step helpers (barriers, locks,
 * bulk-transfer wrappers) are SubTasks co_awaited from a node program.
 * Completion resumes the awaiting coroutine by symmetric transfer, so
 * the processor model only ever sees the innermost suspended handle.
 */
template <typename T = void>
class SubTask
{
    struct PromiseBase
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            template <typename P>
            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<P> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

  public:
    struct promise_type : PromiseBase
    {
        T value{};

        SubTask
        get_return_object()
        {
            return SubTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_value(T v) { value = std::move(v); }
    };

    explicit SubTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    SubTask(SubTask &&o) noexcept
        : handle_(std::exchange(o.handle_, nullptr))
    {
    }

    SubTask(const SubTask &) = delete;
    SubTask &operator=(const SubTask &) = delete;
    SubTask &operator=(SubTask &&) = delete;

    ~SubTask()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_; // start the subtask now
    }

    T
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
        return std::move(handle_.promise().value);
    }

  private:
    std::coroutine_handle<promise_type> handle_;
};

/** void specialization. */
template <>
class SubTask<void>
{
    struct PromiseBase
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            template <typename P>
            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<P> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

  public:
    struct promise_type : PromiseBase
    {
        SubTask
        get_return_object()
        {
            return SubTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    explicit SubTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    SubTask(SubTask &&o) noexcept
        : handle_(std::exchange(o.handle_, nullptr))
    {
    }

    SubTask(const SubTask &) = delete;
    SubTask &operator=(const SubTask &) = delete;
    SubTask &operator=(SubTask &&) = delete;

    ~SubTask()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    void
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

  private:
    std::coroutine_handle<promise_type> handle_;
};

} // namespace alewife::sim

#endif // ALEWIFE_SIM_CORO_HH
