/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global EventQueue drives the whole machine. Events are ordered
 * by (tick, insertion sequence) so simulations are fully deterministic.
 * Events may be cancelled after scheduling (used by the processor model to
 * push back a pending resume when an interrupt handler steals cycles).
 *
 * The hot path is allocation-free in steady state. Callbacks are stored
 * in sim::InlineFn (no std::function heap capture), event state lives in
 * a slab-allocated free-list pool owned by the queue, and ordering is
 * kept by a sim::RadixQueue of trivially-copyable POD entries (O(1)
 * comparison-free insertion; see radix_queue.hh for why a binary heap
 * is the wrong structure here) — so schedule/fire/cancel recycle memory
 * instead of touching the allocator. Handles address their event as
 * (pool, slot index, generation): releasing a slot bumps its generation,
 * which invalidates every outstanding handle and stale heap entry for
 * the old event in one increment. The pool is kept alive by a
 * non-atomic intrusive refcount (queue + handles — the queue and its
 * handles are single-threaded by design, like the rest of a simulated
 * machine), so a handle may outlive its queue: it then reports
 * not-pending and cancel() is a no-op.
 *
 * Schedule perturbation (setTieBreak): for fuzzing, same-tick events
 * scheduled for the *future* can be ordered by a seeded random priority
 * instead of insertion order. Events scheduled at the current tick keep
 * the documented contract — they run after already-queued same-tick
 * events — so perturbation only reorders interleavings the simulation
 * never promised. Off by default; default runs are bit-identical.
 *
 * An optional check::Hooks observer is notified after every executed
 * event (the invariant auditor runs its checks on settled state there).
 */

#ifndef ALEWIFE_SIM_EVENT_QUEUE_HH
#define ALEWIFE_SIM_EVENT_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <source_location>
#include <type_traits>
#include <vector>

#include "sim/event_tag.hh"
#include "sim/inline_fn.hh"
#include "sim/radix_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife::sim {
class ParallelExec;
}

namespace alewife {

/**
 * Inline capture capacity of an event callback, in bytes. Sized so the
 * largest hot-path capture — a coherence lambda holding a ProtoMsg by
 * value — stays inline (coherence.cc asserts this at compile time).
 */
inline constexpr std::size_t kEventCallbackBytes = 104;

/** Callback type scheduled on the EventQueue. */
using EventFn = sim::InlineFn<kEventCallbackBytes>;

/**
 * Observer of the kernel's event *dependency tree* (obs::CritPathRecorder).
 *
 * Every schedule() made while some event is executing is a child of that
 * event: the simulation is single-threaded, so the (unique) parent of a
 * scheduled event is simply the event whose callback is on the stack at
 * schedule time. Because every blocking wait in the machine model is
 * released by an explicit event (completeOp / recheckCond / resume), this
 * tree is exactly the happens-before graph of one run. Sequence numbers
 * are assigned monotonically at schedule time, so child seq > parent seq
 * and a single forward pass over seq order is a valid topological replay.
 *
 * Detached cost is one predictable branch per schedule/execute. The
 * parallel window engine does not route through this seam; an attached
 * listener forces the serial kernel (Machine::parallelEligible).
 */
class DepListener
{
  public:
    /** parentSeq for events scheduled outside any event (roots). */
    static constexpr std::uint64_t kNoParent =
        std::numeric_limits<std::uint64_t>::max();

    virtual ~DepListener() = default;

    /**
     * A new event was scheduled. @p parentSeq is the seq of the event
     * executing right now, or kNoParent for roots. @p now is schedule
     * time, @p when the fire time (delta = when - now).
     */
    virtual void onSchedule(std::uint64_t seq, std::uint64_t parentSeq,
                            Tick when, Tick now,
                            const EventMeta &meta) = 0;

    /** Event @p seq is about to execute at tick @p when. Cancelled
     *  events never reach this. */
    virtual void onExecute(std::uint64_t seq, Tick when) = 0;
};

namespace detail {

/**
 * Slab-allocated free-list pool of event state, refcounted by one
 * EventQueue plus any outstanding EventHandles. The refcount goes
 * through locked RMWs only while a parallel engine is attached (par
 * below); serial runs keep the plain-increment cost.
 *
 * A slot's generation counter is bumped every time the slot is
 * released; a handle or heap entry is live iff its recorded generation
 * still matches. Slabs are never freed, so slot addresses are stable
 * and steady-state scheduling never allocates.
 */
struct EventPool
{
    static constexpr std::uint32_t kNone = 0xffffffffu;
    static constexpr std::uint32_t kSlabBits = 8;
    static constexpr std::uint32_t kSlabSlots = 1u << kSlabBits;

    struct Slot
    {
        EventFn fn;
        /** Liveness generation. Atomic only so stale handles on other
         *  worker threads may race their pending()/cancel() reads
         *  against the current owner's bump: gens are monotonic and
         *  window barriers order the owner's last bump before any slot
         *  reuse, so a relaxed read can never equal a stale handle's
         *  recorded gen. Writers are always exclusive (the executing
         *  owner), so bumps are plain load+store, never locked RMW. */
        std::atomic<std::uint64_t> gen{0};
        std::uint32_t nextFree = kNone;
        /** Typed record for checkpointing; Untagged for plain closures. */
        EventMeta meta;
        /** Schedule call site, recorded only for untagged events. */
        const char *siteFile = nullptr;
        std::uint32_t siteLine = 0;

        std::uint64_t
        genNow() const
        {
            return gen.load(std::memory_order_relaxed);
        }

        /** Exclusive-writer increment; compiles to mov/add, no lock. */
        void
        bumpGen()
        {
            gen.store(genNow() + 1, std::memory_order_relaxed);
        }
    };

    std::vector<std::unique_ptr<Slot[]>> slabs;
    std::uint32_t freeHead = kNone;
    /** Intrusive refcount: the owning queue plus live handles.
     *  Atomic because parallel-window workers create and drop handles
     *  concurrently; serial code keeps the plain-increment cost via
     *  the unlocked fast path in PoolRef (see acquire()/release()). */
    std::atomic<std::uint32_t> refs{0};
    /** Cleared by ~EventQueue; dangling handles check it first. */
    bool queueAlive = true;
    /** Set while a parallel engine drives the queue: release() then
     *  routes through per-worker free caches (see sim/parallel.hh). */
    sim::ParallelExec *par = nullptr;

    Slot &
    slot(std::uint32_t idx)
    {
        return slabs[idx >> kSlabBits][idx & (kSlabSlots - 1)];
    }

    const Slot &
    slot(std::uint32_t idx) const
    {
        return slabs[idx >> kSlabBits][idx & (kSlabSlots - 1)];
    }

    /** Pop a free slot, growing by one slab when exhausted. */
    std::uint32_t
    allocate()
    {
        if (freeHead == kNone)
            addSlab();
        const std::uint32_t idx = freeHead;
        freeHead = slot(idx).nextFree;
        return idx;
    }

    /** Destroy the slot's callback and invalidate all references. */
    void
    release(std::uint32_t idx)
    {
        if (par) [[unlikely]] {
            parallelRelease(idx);
            return;
        }
        Slot &s = slot(idx);
        s.fn.reset();
        s.bumpGen();
        s.nextFree = freeHead;
        freeHead = idx;
    }

    /** Parallel-mode release: free into the calling worker's cache. */
    void parallelRelease(std::uint32_t idx);

    void addSlab();
};

/**
 * Intrusive smart pointer to an EventPool. Dropping the last
 * reference deletes the pool; while no parallel engine is attached,
 * copies cost a plain increment, so handle creation on the
 * schedule() hot path stays a few instructions. Parallel windows
 * switch the count to locked RMWs because workers create and drop
 * handles concurrently.
 */
class PoolRef
{
  public:
    PoolRef() = default;

    explicit PoolRef(EventPool *p) : p_(p) { acquire(); }

    /**
     * Reference that does not touch the refcount: handles created on
     * parallel worker threads use this. Such handles are
     * machine-internal and never outlive the queue, so the pool's
     * lifetime is carried by the queue's own owning reference.
     */
    static PoolRef
    nonOwning(EventPool *p)
    {
        PoolRef r;
        r.p_ = p;
        r.owns_ = false;
        return r;
    }

    PoolRef(const PoolRef &o) : p_(o.p_), owns_(o.owns_) { acquire(); }

    PoolRef(PoolRef &&o) noexcept : p_(o.p_), owns_(o.owns_)
    {
        o.p_ = nullptr;
    }

    PoolRef &
    operator=(const PoolRef &o)
    {
        if (this != &o) {
            release();
            p_ = o.p_;
            owns_ = o.owns_;
            acquire();
        }
        return *this;
    }

    PoolRef &
    operator=(PoolRef &&o) noexcept
    {
        if (this != &o) {
            release();
            p_ = o.p_;
            owns_ = o.owns_;
            o.p_ = nullptr;
        }
        return *this;
    }

    ~PoolRef() { release(); }

    EventPool *get() const { return p_; }
    EventPool *operator->() const { return p_; }

  private:
    void
    acquire()
    {
        if (!p_ || !owns_)
            return;
        if (p_->par) [[unlikely]]
            p_->refs.fetch_add(1, std::memory_order_relaxed);
        else
            p_->refs.store(
                p_->refs.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    }

    void
    release()
    {
        if (!p_ || !owns_)
            return;
        if (p_->par) [[unlikely]] {
            if (p_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
                delete p_;
            return;
        }
        const std::uint32_t left =
            p_->refs.load(std::memory_order_relaxed) - 1;
        p_->refs.store(left, std::memory_order_relaxed);
        if (left == 0)
            delete p_;
    }

    EventPool *p_ = nullptr;
    bool owns_ = true;
};

} // namespace detail

/**
 * Handle to a scheduled event. Copyable; copies refer to the same
 * event. Cancelling a dead handle is a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event has neither fired nor been cancelled. */
    bool pending() const;

    /** Prevent the event from firing. Safe to call at any time. */
    void cancel();

  private:
    friend class EventQueue;
    friend class sim::ParallelExec;

    EventHandle(const detail::PoolRef &pool, std::uint32_t idx,
                std::uint64_t gen)
        : pool_(pool), idx_(idx), gen_(gen)
    {
    }

    detail::PoolRef pool_;
    std::uint32_t idx_ = 0;
    std::uint64_t gen_ = 0;
};

/**
 * The global event queue. One instance per simulated machine.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Current simulated time. Under a parallel engine this is the
     * `when` of the calling worker's current event (time advances
     * per-LP inside a window); elsewhere the global clock.
     */
    Tick
    now() const
    {
        if (par_) [[unlikely]]
            return parallelNow();
        return now_;
    }

    /**
     * Schedule @p fn to run at absolute time @p when, as an *untagged*
     * event. The call site is recorded so a checkpoint attempted while
     * the event is pending can name the offender — tag the site with
     * an EventMeta (overload below) to make it checkpointable.
     *
     * The callable is constructed directly inside a pooled event slot
     * (no temporary EventFn, no relocate) — together with the inline
     * definition this keeps the steady-state schedule path free of
     * allocation and indirect calls.
     *
     * @pre when >= now() — enforced: scheduling in the past is a
     *      simulator bug and panics (when == now() is allowed; the
     *      event runs after already-queued same-tick events).
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventHandle
    schedule(Tick when, F &&fn,
             std::source_location site = std::source_location::current())
    {
        const std::uint32_t idx = allocateChecked(when);
        detail::EventPool::Slot &slot = pool_->slot(idx);
        slot.fn = std::forward<F>(fn);
        slot.meta = EventMeta{};
        slot.siteFile = site.file_name();
        slot.siteLine = site.line();
        return pushEntry(when, idx, slot.genNow());
    }

    /**
     * Schedule a *typed* event: @p meta identifies the scheduling site
     * and payload, making the pending event serializable by src/ckpt/.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventHandle
    schedule(Tick when, EventMeta meta, F &&fn)
    {
        const std::uint32_t idx = allocateChecked(when);
        detail::EventPool::Slot &slot = pool_->slot(idx);
        slot.fn = std::forward<F>(fn);
        slot.meta = meta;
        slot.siteFile = nullptr;
        slot.siteLine = 0;
        return pushEntry(when, idx, slot.genNow());
    }

    /** Overload for an already-built EventFn (moved into the slot). */
    EventHandle
    schedule(Tick when, EventFn fn,
             std::source_location site = std::source_location::current())
    {
        const std::uint32_t idx = allocateChecked(when);
        detail::EventPool::Slot &slot = pool_->slot(idx);
        slot.fn = std::move(fn);
        slot.meta = EventMeta{};
        slot.siteFile = site.file_name();
        slot.siteLine = site.line();
        return pushEntry(when, idx, slot.genNow());
    }

    /** Schedule @p fn to run @p delay ticks from now (untagged). */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&fn,
               std::source_location site = std::source_location::current())
    {
        return schedule(now() + delay, std::forward<F>(fn), site);
    }

    /** Schedule a typed event @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, EventMeta meta, F &&fn)
    {
        return schedule(now() + delay, meta, std::forward<F>(fn));
    }

    /** Run until the queue is empty. Returns final time. */
    Tick run();

    /**
     * Run until the queue is empty or time would exceed @p limit.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool runUntil(Tick limit);

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** True if no live events remain. */
    bool empty() const;

    /**
     * Pop and run the next live event.
     * @return false if no live event remained
     */
    bool processOne() { return step(); }

    /**
     * Enable seeded random ordering among same-tick *future* events
     * (see the file comment). Call before scheduling; same seed gives
     * the same schedule, so perturbed runs stay replayable.
     */
    void setTieBreak(std::uint64_t seed);

    /** True once setTieBreak() armed the perturbation RNG (the
     *  parallel engine must then gate schedule() calls live). */
    bool tieBreakEnabled() const { return tieBreak_; }

    /** Observer notified after every executed event; may be null. */
    void setAuditHooks(check::Hooks *hooks) { hooks_ = hooks; }

    /**
     * Attach the dependency-tree observer (at most one; null detaches).
     * Incompatible with the parallel window engine: the machine falls
     * back to the serial kernel while a listener is attached.
     */
    void setDepListener(DepListener *dep) { dep_ = dep; }

    /** The attached dependency listener, or null. */
    DepListener *depListener() const { return dep_; }

    /**
     * Snapshot view of one live pending event (checkpoint capture).
     * `siteFile` is non-null only for untagged events.
     */
    struct PendingEvent
    {
        Tick when = 0;
        std::uint64_t pri = 0;
        std::uint64_t seq = 0;
        EventMeta meta;
        const char *siteFile = nullptr;
        std::uint32_t siteLine = 0;
    };

    /**
     * Invoke @p fn on every live (scheduled, uncancelled) event, in no
     * particular order; sort by `seq` for a canonical listing. Cheap
     * linear scan — checkpoint-path only, never on the hot path.
     */
    template <typename Fn>
    void
    forEachPending(Fn fn) const
    {
        heap_.forEach([&](const Entry &e) {
            const detail::EventPool::Slot &s = pool_->slot(e.idx);
            if (s.genNow() != e.gen)
                return; // cancelled
            fn(PendingEvent{e.when, e.pri, e.seq, s.meta, s.siteFile,
                            s.siteLine});
        });
    }

    /**
     * Time of the next live event without executing it, or nullopt if
     * the queue is drained. Discards dead entries encountered on the
     * way (like runUntil), so it may mutate internal bookkeeping but
     * never observable simulation state.
     */
    std::optional<Tick> peekNextTick();

  private:
    /** Checkpoint capture/verify reads private kernel state. */
    friend class alewife::ckpt::Access;
    /** The parallel window engine drives the heap/pool directly. */
    friend class sim::ParallelExec;

    /** Queue entry: trivially copyable, moves are plain word copies. */
    struct Entry
    {
        Tick when;
        std::uint64_t pri; ///< tie-break priority; 0 when unperturbed
        std::uint64_t seq;
        std::uint64_t gen;
        std::uint32_t idx;
    };

    /** Pop and run the next live event; returns false if none. */
    bool step();

    /** Past-scheduling precondition check + slot allocation. */
    std::uint32_t
    allocateChecked(Tick when)
    {
        if (par_) [[unlikely]]
            return parallelAllocate(when);
        if (when < now_) [[unlikely]]
            panicScheduledPast(when);
        return pool_->allocate();
    }

    /** Heap insertion + handle construction shared by schedule(). */
    EventHandle
    pushEntry(Tick when, std::uint32_t idx, std::uint64_t gen)
    {
        if (par_) [[unlikely]]
            return parallelPush(when, idx, gen);
        return pushEntrySerial(when, idx, gen);
    }

    EventHandle
    pushEntrySerial(Tick when, std::uint32_t idx, std::uint64_t gen)
    {
        // Same-tick events scheduled at now() keep FIFO order (they
        // must run after already-queued same-tick events), so only
        // future events get a random priority.
        std::uint64_t pri = 0;
        if (tieBreak_)
            pri = (when == now_)
                      ? std::numeric_limits<std::uint64_t>::max()
                      : rng_.next();
        const std::uint64_t seq = seq_++;
        if (dep_) [[unlikely]]
            dep_->onSchedule(seq, curExec_, when, now_,
                             pool_->slot(idx).meta);
        heap_.push(Entry{when, pri, seq, gen, idx});
        return EventHandle(pool_, idx, gen);
    }

    // Parallel-engine reroutes of the hot-path primitives, out of line
    // so this header does not depend on sim/parallel.hh. Only taken
    // while a ParallelExec is attached (par_ != nullptr).
    Tick parallelNow() const;
    std::uint32_t parallelAllocate(Tick when);
    EventHandle parallelPush(Tick when, std::uint32_t idx,
                             std::uint64_t gen);

    [[noreturn]] void panicScheduledPast(Tick when) const;

    /** True if @p e still refers to a scheduled, uncancelled event. */
    bool
    entryLive(const Entry &e) const
    {
        return pool_->slot(e.idx).genNow() == e.gen;
    }

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool tieBreak_ = false;
    Rng rng_{0};
    check::Hooks *hooks_ = nullptr;
    /** Dependency-tree observer, or null (the common case). */
    DepListener *dep_ = nullptr;
    /** Seq of the event whose callback is executing (parent of any
     *  event scheduled from inside it); kNoParent between events. */
    std::uint64_t curExec_ = DepListener::kNoParent;
    /** Attached parallel window engine, or null (serial operation). */
    sim::ParallelExec *par_ = nullptr;
    detail::PoolRef pool_;
    sim::RadixQueue<Entry> heap_;
};

} // namespace alewife

#endif // ALEWIFE_SIM_EVENT_QUEUE_HH
