/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global EventQueue drives the whole machine. Events are ordered
 * by (tick, insertion sequence) so simulations are fully deterministic.
 * Events may be cancelled after scheduling (used by the processor model to
 * push back a pending resume when an interrupt handler steals cycles).
 *
 * Schedule perturbation (setTieBreak): for fuzzing, same-tick events
 * scheduled for the *future* can be ordered by a seeded random priority
 * instead of insertion order. Events scheduled at the current tick keep
 * the documented contract — they run after already-queued same-tick
 * events — so perturbation only reorders interleavings the simulation
 * never promised. Off by default; default runs are bit-identical.
 *
 * An optional check::Hooks observer is notified after every executed
 * event (the invariant auditor runs its checks on settled state there).
 */

#ifndef ALEWIFE_SIM_EVENT_QUEUE_HH
#define ALEWIFE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife {

/**
 * Handle to a scheduled event. Cancelling a dead handle is a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event has neither fired nor been cancelled. */
    bool pending() const;

    /** Prevent the event from firing. Safe to call at any time. */
    void cancel();

  private:
    friend class EventQueue;

    struct State
    {
        std::function<void()> fn;
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}

    std::shared_ptr<State> state_;
};

/**
 * The global event queue. One instance per simulated machine.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now() — enforced: scheduling in the past is a
     *      simulator bug and panics (when == now() is allowed; the
     *      event runs after already-queued same-tick events).
     */
    EventHandle schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle scheduleIn(Tick delay, std::function<void()> fn);

    /** Run until the queue is empty. Returns final time. */
    Tick run();

    /**
     * Run until the queue is empty or time would exceed @p limit.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool runUntil(Tick limit);

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** True if no live events remain. */
    bool empty() const;

    /**
     * Pop and run the next live event.
     * @return false if no live event remained
     */
    bool processOne() { return step(); }

    /**
     * Enable seeded random ordering among same-tick *future* events
     * (see the file comment). Call before scheduling; same seed gives
     * the same schedule, so perturbed runs stay replayable.
     */
    void setTieBreak(std::uint64_t seed);

    /** Observer notified after every executed event; may be null. */
    void setAuditHooks(check::Hooks *hooks) { hooks_ = hooks; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t pri; ///< tie-break priority; 0 when unperturbed
        std::uint64_t seq;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.pri != b.pri)
                return a.pri > b.pri;
            return a.seq > b.seq;
        }
    };

    /** Pop and run the next live event; returns false if none. */
    bool step();

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool tieBreak_ = false;
    Rng rng_{0};
    check::Hooks *hooks_ = nullptr;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace alewife

#endif // ALEWIFE_SIM_EVENT_QUEUE_HH
