/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global EventQueue drives the whole machine. Events are ordered
 * by (tick, insertion sequence) so simulations are fully deterministic.
 * Events may be cancelled after scheduling (used by the processor model to
 * push back a pending resume when an interrupt handler steals cycles).
 */

#ifndef ALEWIFE_SIM_EVENT_QUEUE_HH
#define ALEWIFE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace alewife {

/**
 * Handle to a scheduled event. Cancelling a dead handle is a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event has neither fired nor been cancelled. */
    bool pending() const;

    /** Prevent the event from firing. Safe to call at any time. */
    void cancel();

  private:
    friend class EventQueue;

    struct State
    {
        std::function<void()> fn;
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}

    std::shared_ptr<State> state_;
};

/**
 * The global event queue. One instance per simulated machine.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now() — enforced: scheduling in the past is a
     *      simulator bug and panics (when == now() is allowed; the
     *      event runs after already-queued same-tick events).
     */
    EventHandle schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle scheduleIn(Tick delay, std::function<void()> fn);

    /** Run until the queue is empty. Returns final time. */
    Tick run();

    /**
     * Run until the queue is empty or time would exceed @p limit.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool runUntil(Tick limit);

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** True if no live events remain. */
    bool empty() const;

    /**
     * Pop and run the next live event.
     * @return false if no live event remained
     */
    bool processOne() { return step(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop and run the next live event; returns false if none. */
    bool step();

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace alewife

#endif // ALEWIFE_SIM_EVENT_QUEUE_HH
