/**
 * @file
 * RadixQueue: a monotone integer priority queue for event scheduling.
 *
 * A comparison-based binary heap spends most of an event-queue pop on
 * branch mispredictions: with interleaved deadlines every comparison
 * during sift-down is a coin flip, which costs ~60 ns per event at
 * typical queue depths. A discrete-event simulator never needs the
 * general structure, though — EventQueue::schedule enforces
 * `when >= now()`, so keys are popped in nondecreasing order. That
 * monotonicity admits a radix heap: O(1) comparison-free pushes that
 * bucket an entry by the highest bit in which its tick differs from
 * the current floor, and amortized-constant pops that redistribute one
 * bucket only when simulated time advances past the floor.
 *
 * Ordering contract: pops ascend in (when, pri, seq). Since `seq` is
 * unique this is a *total* order, so the pop sequence — and therefore
 * every simulation result — is bit-identical to what any correct
 * comparison heap produces, perturbed tie-break priorities included.
 *
 * Entries at the floor tick live in a (pri, seq)-sorted ready list and
 * pop by cursor. One wrinkle: peeking (top) can advance the floor past
 * now(), and the caller may then legally schedule an event below the
 * settled floor (e.g. a test scheduling right after runUntil hit its
 * limit). Those entries go to a side buffer that is scanned linearly —
 * it is empty in steady state, so the hot path never pays for it.
 *
 * @tparam Entry POD with `when` (Tick), `pri`, `seq` (uint64) fields.
 */

#ifndef ALEWIFE_SIM_RADIX_QUEUE_HH
#define ALEWIFE_SIM_RADIX_QUEUE_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace alewife::sim {

template <typename Entry>
class RadixQueue
{
  public:
    RadixQueue()
    {
        ready_.reserve(64);
        for (auto &b : buckets_)
            b.reserve(16);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Minimum entry by (when, pri, seq). @pre !empty() */
    const Entry &
    top()
    {
        settle();
        if (!under_.empty()) [[unlikely]] {
            const std::size_t m = underMin();
            if (ready_.size() == head_ || later(ready_[head_], under_[m]))
                return under_[m];
        }
        return ready_[head_];
    }

    /**
     * Insert @p e.
     * @pre e.when >= the `when` of the last popped entry (pushes below
     *      the *peeked* floor are legal and take the slow side buffer)
     */
    void
    push(const Entry &e)
    {
        ++size_;
        if (e.when < floor_) [[unlikely]] {
            under_.push_back(e);
            return;
        }
        const unsigned b = bucketOf(e.when);
        if (b == 0) {
            // Floor-tick entry: keep the ready list (pri, seq)-sorted.
            // Appending is the common case — unperturbed events carry
            // pri 0 and monotone seq, and perturbed at-now events get
            // max priority — so probe the back before binary-searching.
            if (ready_.size() == head_ || !priSeqLess(e, ready_.back()))
                ready_.push_back(e);
            else
                ready_.insert(std::upper_bound(ready_.begin()
                                                   + static_cast<
                                                       std::ptrdiff_t>(
                                                       head_),
                                               ready_.end(), e,
                                               priSeqLess),
                              e);
            return;
        }
        buckets_[b - 1].push_back(e);
        occupied_ |= 1ull << (b - 1);
    }

    /** Remove the minimum entry. @pre !empty() */
    void
    pop()
    {
        settle();
        --size_;
        if (!under_.empty()) [[unlikely]] {
            const std::size_t m = underMin();
            if (ready_.size() == head_
                || later(ready_[head_], under_[m])) {
                under_[m] = under_.back();
                under_.pop_back();
                return;
            }
        }
        if (++head_ == ready_.size()) {
            ready_.clear();
            head_ = 0;
        }
    }

    /**
     * Invoke @p fn on every queued entry, in no particular order.
     * Non-mutating scan (checkpoint capture sorts by seq afterwards).
     */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (std::size_t i = head_; i < ready_.size(); ++i)
            fn(ready_[i]);
        for (const auto &bucket : buckets_)
            for (const Entry &e : bucket)
                fn(e);
        for (const Entry &e : under_)
            fn(e);
    }

    /** True if any queued entry satisfies @p pred. Non-mutating scan. */
    template <typename Pred>
    bool
    any(Pred pred) const
    {
        for (std::size_t i = head_; i < ready_.size(); ++i)
            if (pred(ready_[i]))
                return true;
        for (const auto &bucket : buckets_)
            for (const Entry &e : bucket)
                if (pred(e))
                    return true;
        for (const Entry &e : under_)
            if (pred(e))
                return true;
        return false;
    }

  private:
    static bool
    later(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.pri != b.pri)
            return a.pri > b.pri;
        return a.seq > b.seq;
    }

    /** Sort key among same-tick entries. */
    static bool
    priSeqLess(const Entry &a, const Entry &b)
    {
        if (a.pri != b.pri)
            return a.pri < b.pri;
        return a.seq < b.seq;
    }

    std::size_t
    underMin() const
    {
        std::size_t m = 0;
        for (std::size_t i = 1; i < under_.size(); ++i)
            if (later(under_[m], under_[i]))
                m = i;
        return m;
    }

    /**
     * Refill the ready list from the lowest occupied bucket when it
     * runs dry: advance the floor to that bucket's minimum tick, move
     * its floor-tick entries into the ready list (sorted once), and
     * re-bucket the rest relative to the new floor. Each entry's
     * bucket index strictly decreases on redistribution, bounding the
     * total work per entry.
     */
    void
    settle()
    {
        if (ready_.size() != head_)
            return;
        ready_.clear();
        head_ = 0;
        if (occupied_ == 0)
            return; // empty, or only side-buffer entries
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(occupied_));
        std::vector<Entry> &src = buckets_[b];
        Tick min = src[0].when;
        for (std::size_t i = 1; i < src.size(); ++i)
            if (src[i].when < min)
                min = src[i].when;
        floor_ = min;
        for (const Entry &e : src) {
            if (e.when == min) {
                ready_.push_back(e);
            } else {
                const unsigned nb = bucketOf(e.when); // < b + 1, > 0
                buckets_[nb - 1].push_back(e);
                occupied_ |= 1ull << (nb - 1);
            }
        }
        src.clear();
        occupied_ &= ~(1ull << b);
        std::sort(ready_.begin(), ready_.end(), priSeqLess);
    }

    /** 0 = floor tick, else 1 + index of the highest differing bit. */
    unsigned
    bucketOf(Tick when) const
    {
        const Tick x = when ^ floor_;
        return x == 0
                   ? 0u
                   : 64u - static_cast<unsigned>(std::countl_zero(x));
    }

    Tick floor_ = 0; ///< tick of the ready list
    std::uint64_t occupied_ = 0; ///< bitmask of non-empty buckets
    std::size_t size_ = 0;
    std::size_t head_ = 0; ///< pop cursor into ready_
    std::vector<Entry> ready_; ///< floor-tick entries, (pri, seq)-sorted
    std::vector<Entry> buckets_[64];
    std::vector<Entry> under_; ///< pushed below a peeked floor; rare
};

} // namespace alewife::sim

#endif // ALEWIFE_SIM_RADIX_QUEUE_HH
