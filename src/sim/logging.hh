/**
 * @file
 * Error reporting helpers in the gem5 spirit.
 *
 * panic()  — a simulator bug: something that must never happen did.
 * fatal()  — a user/configuration error the simulation cannot survive.
 * warn()   — questionable but survivable condition.
 */

#ifndef ALEWIFE_SIM_LOGGING_HH
#define ALEWIFE_SIM_LOGGING_HH

#include <mutex>
#include <sstream>
#include <string>

namespace alewife {

/**
 * Process-wide mutex serializing diagnostic output (warn/trace lines).
 * Parallel sweeps run one simulation per worker thread; taking this
 * lock around each emitted line keeps interleaved output readable and
 * the emit paths race-free under TSan.
 */
std::mutex &logMutex();

/** Abort with a message; use for internal simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) with a message; use for user/configuration errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, const Args &...args)
{
    panicImpl(file, line, detail::formatAll(args...));
}

template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, const Args &...args)
{
    fatalImpl(file, line, detail::formatAll(args...));
}

template <typename... Args>
void
warnAt(const char *file, int line, const Args &...args)
{
    warnImpl(file, line, detail::formatAll(args...));
}

} // namespace alewife

#define ALEWIFE_PANIC(...) ::alewife::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define ALEWIFE_FATAL(...) ::alewife::fatalAt(__FILE__, __LINE__, __VA_ARGS__)
#define ALEWIFE_WARN(...) ::alewife::warnAt(__FILE__, __LINE__, __VA_ARGS__)

#endif // ALEWIFE_SIM_LOGGING_HH
