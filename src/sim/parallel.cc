#include "sim/parallel.hh"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>

#include "check/hooks.hh"
#include "sim/logging.hh"

namespace alewife::sim {

namespace {

/** Polite spin: pause the pipeline without yielding the core. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/** Spin for a while, then fall back to the scheduler. */
inline void
spinBackoff(unsigned &spins)
{
    if (++spins < (1u << 14))
        cpuRelax();
    else
        std::this_thread::yield();
}

/**
 * Published before any worker's first event of a window (every real
 * event orders at-or-after it, so the gate always waits for a worker
 * that has not started), and after its last (every real event orders
 * before it, so exhausted workers never block anyone).
 */
constexpr ExecRecord kStartRec{0, 0, 0, nullptr, 0};
constexpr ExecRecord kDoneRec{std::numeric_limits<Tick>::max(),
                              std::numeric_limits<std::uint64_t>::max(),
                              std::numeric_limits<std::uint64_t>::max(),
                              nullptr, 0};

/** Sense-reversing spin barrier; std::barrier is too heavy for the
 *  two crossings per (microsecond-scale) window. */
class SpinBarrier
{
  public:
    explicit SpinBarrier(int n) : n_(n) {}

    void
    arriveAndWait()
    {
        const std::uint64_t phase =
            phase_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
            arrived_.store(0, std::memory_order_relaxed);
            phase_.store(phase + 1, std::memory_order_release);
        } else {
            unsigned spins = 0;
            while (phase_.load(std::memory_order_acquire) == phase)
                spinBackoff(spins);
        }
    }

  private:
    const int n_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> phase_{0};
};

/** Slots handed to a worker's free cache per pool-mutex acquisition. */
constexpr int kPoolRefill = 128;

} // namespace

/** One event of a worker's window walk, in (when, pri, ord) order. */
struct WalkEv
{
    Tick when;
    std::uint64_t pri;
    /**
     * Walk-order scalar: the seq for concrete events; for staged
     * events, bit 63 + a per-worker counter. Staged seqs are assigned
     * after every pre-window seq, so staged-after-concrete at key ties
     * is the serial order; two staged events on one worker were staged
     * in their serial schedule order (in-window children are always
     * same-LP, so no other worker can interleave calls), making the
     * counter order exact as well.
     */
    std::uint64_t ord;
    std::int32_t stagedSlot; ///< index into staged[]; -1 = concrete
    std::uint32_t idx;
    std::uint64_t gen;
    std::int32_t lp;
};

/** One schedule() call made during the window (normal mode). */
struct StagedEv
{
    Tick when;
    std::uint32_t idx;
    std::uint64_t gen;
    const ExecRecord *parent;
    std::uint32_t childIdx;
    /** Exec record if the event also ran inside this window. */
    ExecRecord *rec;
};

/** Per-executed-event log entry driving the commit seq replay. */
struct LogEnt
{
    ExecRecord *rec;
    std::uint32_t stagedBase;
    std::uint32_t stagedCount;
};

struct alignas(64) ParallelWorker
{
    int id = 0;
    std::int32_t curLp = -1;
    /** This worker's share of the window, sorted by (when, pri, ord). */
    std::vector<WalkEv> walk;
    std::size_t cursor = 0;
    /** Exec records; deque so pointers stay stable across growth. */
    std::deque<ExecRecord> arena;
    std::vector<StagedEv> staged;
    std::vector<LogEnt> log;
    std::uint64_t localOrd = 0;
    /** Current event context, read by the queue reroutes. */
    ExecRecord *cur = nullptr;
    Tick curWhen = 0;
    std::uint32_t childCount = 0;
    /** Private cache of pool free slots (slot reuse stays per-worker
     *  within a window, so generation words have a single writer). */
    std::vector<std::uint32_t> freeCache;
    std::uint64_t executed = 0;
    Tick maxWhen = 0;
    /** Published position: exec record of the current event. */
    std::atomic<const ExecRecord *> pos{&kStartRec};
};

struct ParallelShared
{
    SpinBarrier bar;
    std::atomic<bool> shutdown{false};
    std::mutex poolMu;
    std::vector<std::unique_ptr<ParallelWorker>> workers;
    std::vector<std::size_t> mergeCursor;

    explicit ParallelShared(int n) : bar(n) {}
};

namespace {
thread_local ParallelWorker *t_worker = nullptr;

bool
walkLess(const WalkEv &a, const WalkEv &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.pri != b.pri)
        return a.pri < b.pri;
    return a.ord < b.ord;
}

/** Insert an in-window child into the owner's remaining walk. */
void
insertWalk(ParallelWorker &w, const WalkEv &we)
{
    const auto it = std::lower_bound(
        w.walk.begin() + static_cast<std::ptrdiff_t>(w.cursor),
        w.walk.end(), we, walkLess);
    w.walk.insert(it, we);
}

} // namespace

bool
onParallelWorker()
{
    return t_worker != nullptr;
}

const ExecRecord *
currentExecRecord()
{
    return t_worker ? t_worker->cur : nullptr;
}

bool
execOrderLess(const ExecRecord *a, const ExecRecord *b)
{
    if (a == b)
        return false;
    if (a->when != b->when)
        return a->when < b->when;
    if (a->pri != b->pri)
        return a->pri < b->pri;
    const ExecRecord *pa = a->parent;
    const ExecRecord *pb = b->parent;
    if (!pa && !pb)
        return a->seq < b->seq;
    // Staged seqs are assigned after every pre-window seq, so a
    // concrete event precedes any staged one at a full key tie.
    if (!pa)
        return true;
    if (!pb)
        return false;
    if (pa == pb)
        return a->childIdx < b->childIdx;
    // A parent's schedule call runs during the parent's execution, so
    // an event follows its own parent; otherwise two staged events
    // order by when their parents executed.
    if (pa == b)
        return false;
    if (pb == a)
        return true;
    return execOrderLess(pa, pb);
}

ParallelExec::ParallelExec(EventQueue &eq, ParallelOptions opts)
    : eq_(eq), opts_(std::move(opts))
{
    if (opts_.threads < 1 || opts_.lookahead == 0 || opts_.lps < 1
        || !opts_.classify)
        ALEWIFE_PANIC("ParallelExec: bad options (threads=",
                      opts_.threads, " lookahead=", opts_.lookahead,
                      " lps=", opts_.lps, ")");
    sh_ = std::make_unique<ParallelShared>(opts_.threads);
    sh_->mergeCursor.resize(static_cast<std::size_t>(opts_.threads));
    for (int i = 0; i < opts_.threads; ++i) {
        auto w = std::make_unique<ParallelWorker>();
        w->id = i;
        sh_->workers.push_back(std::move(w));
    }
    // Concurrent slot() readers index slabs[] while the planning
    // thread may grow it under the pool mutex; reserving up front
    // keeps the element array in place (push_back within capacity
    // never moves it), so growth and reads never touch the same
    // memory. Capacity overflow panics in refillCache.
    detail::EventPool &pool = *eq_.pool_.get();
    pool.slabs.reserve(pool.slabs.size() + (1u << 16));
    eq_.par_ = this;
    pool.par = this;
    attached_ = true;
    for (int i = 1; i < opts_.threads; ++i)
        pool_.emplace_back([this, i] { workerMain(i); });
}

ParallelExec::~ParallelExec() { detach(); }

void
ParallelExec::detach()
{
    if (!attached_)
        return;
    sh_->shutdown.store(true, std::memory_order_release);
    sh_->bar.arriveAndWait();
    for (auto &t : pool_)
        t.join();
    pool_.clear();
    // Return every worker's cached free slots to the global list
    // (their callbacks are already destroyed and generations bumped).
    detail::EventPool &pool = *eq_.pool_.get();
    for (auto &w : sh_->workers) {
        for (const std::uint32_t idx : w->freeCache) {
            pool.slot(idx).nextFree = pool.freeHead;
            pool.freeHead = idx;
        }
        w->freeCache.clear();
    }
    pool.par = nullptr;
    eq_.par_ = nullptr;
    attached_ = false;
}

void
ParallelExec::workerMain(int id)
{
    ParallelWorker &w = *sh_->workers[static_cast<std::size_t>(id)];
    while (true) {
        sh_->bar.arriveAndWait();
        if (sh_->shutdown.load(std::memory_order_acquire))
            return;
        runWalk(w);
        sh_->bar.arriveAndWait();
    }
}

bool
ParallelExec::plan()
{
    auto &heap = eq_.heap_;
    while (!heap.empty() && !eq_.entryLive(heap.top()))
        heap.pop();
    if (heap.empty())
        return false;

    for (auto &wp : sh_->workers) {
        ParallelWorker &w = *wp;
        w.walk.clear();
        w.cursor = 0;
        w.arena.clear();
        w.staged.clear();
        w.log.clear();
        w.localOrd = 0;
        w.cur = nullptr;
        w.curLp = -1;
        w.childCount = 0;
        w.executed = 0;
        w.maxWhen = 0;
        w.pos.store(&kStartRec, std::memory_order_relaxed);
    }

    const Tick start = heap.top().when;
    const Tick la = opts_.lookahead;
    bound_ = start > std::numeric_limits<Tick>::max() - la
                 ? std::numeric_limits<Tick>::max()
                 : start + la;

    const auto threads = static_cast<std::size_t>(opts_.threads);
    const auto lps = static_cast<std::size_t>(opts_.lps);
    while (!heap.empty()) {
        const EventQueue::Entry e = heap.top();
        if (!eq_.entryLive(e)) {
            heap.pop();
            continue;
        }
        if (e.when >= bound_)
            break;
        heap.pop();
        const detail::EventPool::Slot &slot = eq_.pool_->slot(e.idx);
        const int lp = opts_.classify(slot.meta);
        if (lp < 0 || lp >= opts_.lps) {
            if (slot.siteFile)
                ALEWIFE_PANIC("parallel engine: unclassifiable event "
                              "scheduled at ",
                              slot.siteFile, ":", slot.siteLine);
            ALEWIFE_PANIC("parallel engine: event tag ",
                          static_cast<int>(slot.meta.tag),
                          " maps to LP ", lp, " (of ", opts_.lps, ")");
        }
        // Contiguous LP blocks per worker: heap pops ascend in
        // (when, pri, seq), so each walk is born sorted.
        ParallelWorker &w =
            *sh_->workers[static_cast<std::size_t>(lp) * threads / lps];
        w.walk.push_back(
            WalkEv{e.when, e.pri, e.seq, -1, e.idx, e.gen, lp});
    }
    return true;
}

void
ParallelExec::runWalk(ParallelWorker &w)
{
    t_worker = &w;
    detail::EventPool &pool = *eq_.pool_.get();
    check::Hooks *const hooks = opts_.hooks;
    const bool staged = !opts_.gatedLive;
    while (w.cursor < w.walk.size()) {
        const WalkEv ev = w.walk[w.cursor++];
        detail::EventPool::Slot &slot = pool.slot(ev.idx);
        if (slot.genNow() != ev.gen)
            continue; // cancelled
        w.arena.emplace_back();
        ExecRecord *const rec = &w.arena.back();
        if (ev.stagedSlot < 0) {
            *rec = ExecRecord{ev.when, ev.pri, ev.ord, nullptr, 0};
        } else {
            StagedEv &st =
                w.staged[static_cast<std::size_t>(ev.stagedSlot)];
            *rec = ExecRecord{ev.when, ev.pri, 0, st.parent,
                              st.childIdx};
            st.rec = rec;
        }
        w.cur = rec;
        w.curWhen = ev.when;
        w.curLp = ev.lp;
        w.childCount = 0;
        w.pos.store(rec, std::memory_order_release);
        const auto stagedBase =
            static_cast<std::uint32_t>(w.staged.size());
        // Mirrors EventQueue::step(): the generation bump kills every
        // outstanding handle/entry before the callback runs in place.
        slot.bumpGen();
        slot.fn();
        slot.fn.reset();
        w.freeCache.push_back(ev.idx);
        ++w.executed;
        if (ev.when > w.maxWhen)
            w.maxWhen = ev.when;
        if (staged)
            w.log.push_back(LogEnt{
                rec, stagedBase,
                static_cast<std::uint32_t>(w.staged.size())
                    - stagedBase});
        if (hooks)
            hooks->onEventExecuted(ev.when);
        if (opts_.onRetired)
            opts_.onRetired(ev.lp, rec);
    }
    w.pos.store(&kDoneRec, std::memory_order_release);
    w.cur = nullptr;
    t_worker = nullptr;
}

void
ParallelExec::gateWait()
{
    ParallelWorker *const w = t_worker;
    if (!w)
        return; // serial phase: already exclusive
    const ExecRecord *const me = w->cur;
    const int threads = opts_.threads;
    for (int i = 0; i < threads; ++i) {
        if (i == w->id)
            continue;
        const ParallelWorker &o =
            *sh_->workers[static_cast<std::size_t>(i)];
        unsigned spins = 0;
        while (!execOrderLess(
            me, o.pos.load(std::memory_order_acquire)))
            spinBackoff(spins);
    }
}

void
ParallelExec::assertOwner(int lp) const
{
    const ParallelWorker *const w = t_worker;
    if (!w)
        return; // serial phase
    if (lp < 0 || lp >= opts_.lps)
        ALEWIFE_PANIC("assertOwner: LP ", lp, " out of range (",
                      opts_.lps, ")");
    const int owner = static_cast<int>(
        static_cast<std::size_t>(lp)
        * static_cast<std::size_t>(opts_.threads)
        / static_cast<std::size_t>(opts_.lps));
    if (owner != w->id)
        ALEWIFE_PANIC("per-node hook for LP ", lp, " fired on worker ",
                      w->id, " (owner is worker ", owner,
                      "): threading contract violated");
}

void
ParallelExec::commit()
{
    const auto threads = static_cast<std::size_t>(opts_.threads);
    if (!opts_.gatedLive) {
        // Replay the window's schedule() calls in true serial order: a
        // k-way merge over the per-worker execution logs, replaying
        // each event's calls in call order. A head record's seq is
        // always final by the time it surfaces — concrete events
        // carried theirs in, and a staged event's parent sits earlier
        // in the same worker's log.
        std::vector<std::size_t> &li = sh_->mergeCursor;
        std::fill(li.begin(), li.end(), 0);
        while (true) {
            std::size_t best = threads;
            const ExecRecord *bestRec = nullptr;
            for (std::size_t t = 0; t < threads; ++t) {
                const ParallelWorker &w = *sh_->workers[t];
                if (li[t] >= w.log.size())
                    continue;
                const ExecRecord *const r = w.log[li[t]].rec;
                if (!bestRec || execOrderLess(r, bestRec)) {
                    best = t;
                    bestRec = r;
                }
            }
            if (best == threads)
                break;
            ParallelWorker &w = *sh_->workers[best];
            const LogEnt le = w.log[li[best]++];
            for (std::uint32_t i = 0; i < le.stagedCount; ++i) {
                StagedEv &st = w.staged[le.stagedBase + i];
                // Cancelled or in-window events still consumed a seq
                // in the serial order; assign it unconditionally.
                const std::uint64_t s = eq_.seq_++;
                if (st.rec)
                    st.rec->seq = s;
                else if (eq_.pool_->slot(st.idx).genNow() == st.gen)
                    eq_.heap_.push(EventQueue::Entry{st.when, 0, s,
                                                     st.gen, st.idx});
            }
        }
    }
    Tick maxWhen = eq_.now_;
    std::uint64_t ran = 0;
    for (auto &wp : sh_->workers) {
        ran += wp->executed;
        maxWhen = std::max(maxWhen, wp->maxWhen);
    }
    eq_.executed_ += ran;
    eventsRun_ += ran;
    eq_.now_ = maxWhen;
    ++windows_;
    if (opts_.hooks)
        opts_.hooks->onParallelWindowCommit(bound_);
}

bool
ParallelExec::runWindow()
{
    if (!plan())
        return false;
    sh_->bar.arriveAndWait();
    runWalk(*sh_->workers[0]);
    sh_->bar.arriveAndWait();
    commit();
    return true;
}

EventHandle
ParallelExec::workerSchedule(Tick when, std::uint32_t idx,
                             std::uint64_t gen)
{
    ParallelWorker *const wp = t_worker;
    if (!wp) // between windows: plain serial scheduling
        return eq_.pushEntrySerial(when, idx, gen);
    ParallelWorker &w = *wp;
    if (opts_.gatedLive) {
        // Perturbed mode: the tie-break RNG and seq counter must be
        // drawn in exact serial order, so every schedule() is a gated
        // (serialized) operation. Correct but slow; perturbation is a
        // fuzzing mode, not a measurement mode.
        gateWait();
        std::uint64_t pri = 0;
        if (eq_.tieBreak_)
            pri = when == w.curWhen
                      ? std::numeric_limits<std::uint64_t>::max()
                      : eq_.rng_.next();
        const std::uint64_t seq = eq_.seq_++;
        if (when < bound_)
            insertWalk(w, WalkEv{when, pri, seq, -1, idx, gen, w.curLp});
        else
            eq_.heap_.push(
                EventQueue::Entry{when, pri, seq, gen, idx});
    } else {
        const auto stagedSlot =
            static_cast<std::int32_t>(w.staged.size());
        w.staged.push_back(
            StagedEv{when, idx, gen, w.cur, w.childCount++, nullptr});
        // An in-window target is necessarily same-LP (anything
        // cross-LP arrives at least one lookahead away, i.e. at or
        // beyond the bound), so it joins this worker's own walk.
        if (when < bound_)
            insertWalk(w, WalkEv{when, 0,
                                 (1ull << 63) | w.localOrd++,
                                 stagedSlot, idx, gen, w.curLp});
    }
    // Worker handles skip the pool refcount (a non-atomic counter);
    // they are machine-internal and never outlive the queue.
    return EventHandle(detail::PoolRef::nonOwning(eq_.pool_.get()),
                       idx, gen);
}

std::uint32_t
ParallelExec::workerAllocate(Tick when)
{
    ParallelWorker *const w = t_worker;
    if (!w) {
        if (when < eq_.now_) [[unlikely]]
            eq_.panicScheduledPast(when);
        return eq_.pool_->allocate();
    }
    if (when < w->curWhen) [[unlikely]]
        ALEWIFE_PANIC("event scheduled in the past: ", when, " < ",
                      w->curWhen);
    if (w->freeCache.empty())
        refillCache(*w);
    const std::uint32_t idx = w->freeCache.back();
    w->freeCache.pop_back();
    return idx;
}

void
ParallelExec::refillCache(ParallelWorker &w)
{
    std::lock_guard<std::mutex> lock(sh_->poolMu);
    detail::EventPool &pool = *eq_.pool_.get();
    for (int i = 0; i < kPoolRefill; ++i) {
        if (pool.freeHead == detail::EventPool::kNone) {
            if (pool.slabs.size() == pool.slabs.capacity())
                ALEWIFE_PANIC("parallel engine: event pool exceeded "
                              "its reserved slab capacity");
            pool.addSlab();
        }
        w.freeCache.push_back(pool.freeHead);
        pool.freeHead = pool.slot(pool.freeHead).nextFree;
    }
}

void
ParallelExec::workerRelease(std::uint32_t idx)
{
    detail::EventPool &pool = *eq_.pool_.get();
    detail::EventPool::Slot &s = pool.slot(idx);
    s.fn.reset();
    s.bumpGen();
    if (ParallelWorker *const w = t_worker) {
        w->freeCache.push_back(idx);
    } else {
        s.nextFree = pool.freeHead;
        pool.freeHead = idx;
    }
}

Tick
ParallelExec::workerNow() const
{
    const ParallelWorker *const w = t_worker;
    return w ? w->curWhen : eq_.now_;
}

} // namespace alewife::sim
