/**
 * @file
 * Lightweight categorized tracing (gem5 DPRINTF in spirit).
 *
 * Categories are enabled via the ALEWIFE_TRACE environment variable
 * (comma-separated list, or "all"), or programmatically through
 * Trace::enable(). Disabled categories cost one branch. Output goes
 * to stderr, prefixed with the simulated tick and category:
 *
 *   ALEWIFE_TRACE=coh,net ./build/examples/quickstart
 *   ALEWIFE_TRACE=all     ./build/tests/coh_test --gtest_filter=...
 */

#ifndef ALEWIFE_SIM_TRACE_HH
#define ALEWIFE_SIM_TRACE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace alewife {

/** Trace categories, one per subsystem. */
enum class TraceCat : std::uint8_t
{
    Coh = 0, ///< coherence protocol transitions
    Net,     ///< packet injection / delivery
    Msg,     ///< active messages and handlers
    Proc,    ///< program resume/suspend, handler charges
    Sync,    ///< barriers and locks
    Obs,     ///< observability layer (recorder, exporters)
    NumCats
};

/** Category name as used in ALEWIFE_TRACE. */
const char *traceCatName(TraceCat c);

/**
 * Global trace switchboard.
 *
 * Thread-safe: parallel sweeps simulate on several threads at once, so
 * the category flags and line counter are atomics (relaxed — they are
 * independent flags, not synchronization), initialization happens once
 * via a magic static, and each emitted line is serialized through
 * logMutex().
 */
class Trace
{
  public:
    /** True if @p c should emit. */
    static bool
    enabled(TraceCat c)
    {
        return state()
            .on[static_cast<std::size_t>(c)]
            .load(std::memory_order_relaxed);
    }

    /** True if any category is enabled (parallel-engine eligibility:
     *  trace lines carry eq.now(), which is per-LP inside a window, so
     *  traced runs stay on the serial engine). */
    static bool
    anyEnabled()
    {
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(TraceCat::NumCats); ++i) {
            if (state().on[i].load(std::memory_order_relaxed))
                return true;
        }
        return false;
    }

    /** Enable/disable a category at runtime (tests). */
    static void enable(TraceCat c, bool on = true);

    /** Enable every category. */
    static void enableAll(bool on = true);

    /** Re-read ALEWIFE_TRACE (also applied once at first use). */
    static void initFromEnv();

    /** Emit one line; use the ALEWIFE_TRACE macro instead. */
    static void emit(TraceCat c, Tick now, const std::string &msg);

    /** Lines emitted so far (tests). */
    static std::uint64_t linesEmitted();

  private:
    struct State
    {
        /** Constructed once (thread-safe); parses ALEWIFE_TRACE. */
        State();

        std::array<std::atomic<bool>,
                   static_cast<std::size_t>(TraceCat::NumCats)>
            on{};
        std::atomic<std::uint64_t> lines{0};
    };

    static State &state();
};

namespace detail {

template <typename... Args>
std::string
traceFormat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace alewife

/**
 * Emit a trace line when the category is enabled. @p now_expr is a
 * Tick; remaining arguments are streamed.
 */
#define ALEWIFE_TRACE_EVENT(cat, now_expr, ...)                           \
    do {                                                                  \
        if (::alewife::Trace::enabled(cat)) {                             \
            ::alewife::Trace::emit(                                       \
                cat, (now_expr),                                          \
                ::alewife::detail::traceFormat(__VA_ARGS__));             \
        }                                                                 \
    } while (0)

#endif // ALEWIFE_SIM_TRACE_HH
