/**
 * @file
 * Typed event records for checkpointable event-queue contents.
 *
 * Every event scheduled on the EventQueue carries an EventMeta: a tag
 * identifying which subsystem call site created it plus two payload
 * words whose meaning is tag-specific (documented per enumerator).
 * The checkpoint subsystem (src/ckpt/) serializes pending events by
 * (when, tag, payload) rather than by closure bytes — InlineFn frames
 * capture raw pointers and coroutine handles and are not serializable.
 *
 * Events scheduled through the untagged EventQueue::schedule() overload
 * get EventTag::Untagged plus the call site's file:line; a checkpoint
 * taken while such an event is pending fails with an error naming that
 * site, so every new schedule site must either be tagged here or be
 * provably drained before any snapshot point.
 */

#ifndef ALEWIFE_SIM_EVENT_TAG_HH
#define ALEWIFE_SIM_EVENT_TAG_HH

#include <cstdint>

namespace alewife {

/** Identifies the scheduling site / semantic class of a pending event. */
enum class EventTag : std::uint8_t {
    /** Closure scheduled without a tag; not checkpointable. */
    Untagged = 0,

    // -- net/ ---------------------------------------------------------
    /** Mesh packet arrival (routed). a = Packet*. */
    MeshDeliver,
    /** Mesh packet arrival (ideal network). a = Packet*. */
    MeshDeliverIdeal,
    /** Mesh delivery retry after NI rejection. a = Packet*. */
    MeshRetry,
    /** CrossTraffic periodic injection heartbeat. */
    CrossTrafficTick,

    // -- proc/ --------------------------------------------------------
    /** Processor resume at end of a timed wait. a = NodeId. */
    ProcResume,

    // -- coh/ ---------------------------------------------------------
    /** Protocol message delivered to the local controller. a = NodeId. */
    CohLocalDeliver,
    /** Deferred mesh_.send of a protocol packet. a = Packet*. */
    CohPacketLaunch,
    /** Home/cache-side processing of a received ProtoMsg. a = NodeId. */
    CohProcess,
    /** Data/DataX reply consumed into the requesting cache. a = NodeId. */
    CohFill,
    /** Drain of a queued home request after a transaction closes. a = NodeId. */
    CohHomeDrain,
    /** Deferred close of an open directory transaction. a = NodeId, b = line. */
    CohHomeComplete,

    // -- msg/ ---------------------------------------------------------
    /** Deferred mesh_.send of an active-message packet. a = Packet*. */
    AmPacketLaunch,
    /** Interrupt-mode handler drain step. a = NodeId. */
    AmDrain,

    kCount,
};

/** Stable display name for an EventTag (used in snapshots and errors). */
constexpr const char *
eventTagName(EventTag t)
{
    switch (t) {
      case EventTag::Untagged:          return "untagged";
      case EventTag::MeshDeliver:       return "mesh.deliver";
      case EventTag::MeshDeliverIdeal:  return "mesh.deliver_ideal";
      case EventTag::MeshRetry:         return "mesh.retry";
      case EventTag::CrossTrafficTick:  return "cross_traffic.tick";
      case EventTag::ProcResume:        return "proc.resume";
      case EventTag::CohLocalDeliver:   return "coh.local_deliver";
      case EventTag::CohPacketLaunch:   return "coh.packet_launch";
      case EventTag::CohProcess:        return "coh.process";
      case EventTag::CohFill:           return "coh.fill";
      case EventTag::CohHomeDrain:      return "coh.home_drain";
      case EventTag::CohHomeComplete:   return "coh.home_complete";
      case EventTag::AmPacketLaunch:    return "am.packet_launch";
      case EventTag::AmDrain:           return "am.drain";
      case EventTag::kCount:            break;
    }
    return "?";
}

/**
 * Tag plus two tag-specific payload words attached to every scheduled
 * event. For packet-carrying tags `a` holds the in-flight net::Packet*
 * (expanded to canonical content at capture time, never serialized as a
 * pointer); for per-node tags `a` holds the owning NodeId. `b` carries
 * tag-specific extra data (e.g. the ProtoMsg sequence id for coh tags).
 */
struct EventMeta
{
    EventTag tag = EventTag::Untagged;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

} // namespace alewife

#endif // ALEWIFE_SIM_EVENT_TAG_HH
