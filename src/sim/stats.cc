#include "sim/stats.hh"

namespace alewife {

const char *
timeCatName(TimeCat c)
{
    switch (c) {
      case TimeCat::Compute: return "compute";
      case TimeCat::MemWait: return "mem+ni-wait";
      case TimeCat::MsgOverhead: return "msg-overhead";
      case TimeCat::Sync: return "sync";
      default: return "?";
    }
}

Tick
TimeBreakdown::total() const
{
    Tick sum = 0;
    for (Tick t : ticks)
        sum += t;
    return sum;
}

TimeBreakdown &
TimeBreakdown::operator+=(const TimeBreakdown &o)
{
    for (std::size_t i = 0; i < ticks.size(); ++i)
        ticks[i] += o.ticks[i];
    return *this;
}

const char *
volCatName(VolCat c)
{
    switch (c) {
      case VolCat::Invalidates: return "invalidates";
      case VolCat::Requests: return "requests";
      case VolCat::Headers: return "headers";
      case VolCat::Data: return "data";
      default: return "?";
    }
}

std::uint64_t
VolumeBreakdown::total() const
{
    std::uint64_t sum = 0;
    for (auto b : bytes)
        sum += b;
    return sum;
}

VolumeBreakdown &
VolumeBreakdown::operator+=(const VolumeBreakdown &o)
{
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] += o.bytes[i];
    return *this;
}

namespace {

constexpr CounterField kCounterFields[] = {
    {"packetsInjected", &MachineCounters::packetsInjected},
    {"packetsDelivered", &MachineCounters::packetsDelivered},
    {"cacheHits", &MachineCounters::cacheHits},
    {"cacheMisses", &MachineCounters::cacheMisses},
    {"localMisses", &MachineCounters::localMisses},
    {"remoteMisses", &MachineCounters::remoteMisses},
    {"invalidationsSent", &MachineCounters::invalidationsSent},
    {"limitlessTraps", &MachineCounters::limitlessTraps},
    {"interruptsTaken", &MachineCounters::interruptsTaken},
    {"messagesPolled", &MachineCounters::messagesPolled},
    {"prefetchesIssued", &MachineCounters::prefetchesIssued},
    {"prefetchesUseful", &MachineCounters::prefetchesUseful},
    {"prefetchesUseless", &MachineCounters::prefetchesUseless},
    {"dmaTransfers", &MachineCounters::dmaTransfers},
    {"lockAcquires", &MachineCounters::lockAcquires},
    {"lockRetries", &MachineCounters::lockRetries},
    {"barrierEpisodes", &MachineCounters::barrierEpisodes},
    {"niQueueFullStalls", &MachineCounters::niQueueFullStalls},
};

} // namespace

std::span<const CounterField>
machineCounterFields()
{
    return kCounterFields;
}

MachineCounters &
MachineCounters::operator+=(const MachineCounters &o)
{
    packetsInjected += o.packetsInjected;
    packetsDelivered += o.packetsDelivered;
    cacheHits += o.cacheHits;
    cacheMisses += o.cacheMisses;
    localMisses += o.localMisses;
    remoteMisses += o.remoteMisses;
    invalidationsSent += o.invalidationsSent;
    limitlessTraps += o.limitlessTraps;
    interruptsTaken += o.interruptsTaken;
    messagesPolled += o.messagesPolled;
    prefetchesIssued += o.prefetchesIssued;
    prefetchesUseful += o.prefetchesUseful;
    prefetchesUseless += o.prefetchesUseless;
    dmaTransfers += o.dmaTransfers;
    lockAcquires += o.lockAcquires;
    lockRetries += o.lockRetries;
    barrierEpisodes += o.barrierEpisodes;
    niQueueFullStalls += o.niQueueFullStalls;
    return *this;
}

} // namespace alewife
