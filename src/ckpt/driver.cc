#include "ckpt/driver.hh"

#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "sim/logging.hh"

namespace alewife::ckpt {

std::uint64_t
cleanOrphanSnapshots(const std::string &dir,
                     const std::vector<std::string> &keepFiles)
{
    namespace fs = std::filesystem;
    constexpr const char *kSuffix = "-latest.ckpt.json";
    const std::unordered_set<std::string> keep(keepFiles.begin(),
                                               keepFiles.end());
    std::uint64_t removed = 0;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return 0;
    for (const auto &entry : it) {
        const std::string name = entry.path().filename().string();
        // Only files shaped like per-job snapshots are candidates —
        // never temp files mid-rename or anything a user put there.
        if (name.size() <= std::strlen(kSuffix)
            || name.compare(name.size() - std::strlen(kSuffix),
                            std::string::npos, kSuffix)
                   != 0)
            continue;
        if (keep.count(name))
            continue;
        fs::remove(entry.path(), ec);
        if (!ec)
            ++removed;
    }
    if (removed > 0)
        ALEWIFE_WARN("ckpt: removed ", removed,
                     " orphaned per-job snapshot",
                     removed == 1 ? "" : "s", " from ", dir,
                     " (no pending job matches them)");
    return removed;
}

Tick
CheckpointDriver::drive(Machine &m, const Machine::ProgramFactory &f)
{
    resumed_ = false;
    saved_ = 0;

    if (!opts_.path.empty() && opts_.resume &&
        std::filesystem::exists(opts_.path)) {
        std::string err;
        std::optional<Snapshot> snap = loadFile(opts_.path, &err);
        if (!snap) {
            // Unreadable or wrong-schema snapshot: start over rather
            // than fail the job (the file is only an optimization).
            ALEWIFE_WARN("ckpt: ignoring snapshot: ", err);
        } else if (snap->configKey() != m.config().canonicalKey()) {
            ALEWIFE_WARN("ckpt: ignoring snapshot '", opts_.path,
                        "': config mismatch");
        } else {
            ResumeResult r = resume(m, f, *snap);
            if (!r.ok) {
                // A failed audit means the snapshot does not describe
                // this (machine, program) — a bug, not a stale file.
                ALEWIFE_FATAL(r.error);
            }
            resumed_ = true;
        }
    }
    if (!resumed_)
        m.start(f);

    bool saving = !opts_.path.empty() && opts_.intervalCycles > 0.0;
    const Tick interval =
        saving ? cyclesToTicks(opts_.intervalCycles) : Tick{0};
    Tick nextSave = saving ? m.eq().now() + interval : Tick{0};

    while (m.stepOne()) {
        if (saving && m.eq().now() >= nextSave) {
            // Snapshots are an optimization: an unwritable directory
            // or full disk degrades to an uncheckpointed (but still
            // correct) run, reported once, instead of aborting it.
            std::string err;
            if (trySaveFile(save(m), opts_.path, &err)) {
                ++saved_;
            } else {
                ALEWIFE_WARN("ckpt: ", err,
                             "; continuing without snapshots for "
                             "this run");
                saving = false;
            }
            nextSave = m.eq().now() + interval;
        }
    }
    const Tick finish = m.finishRun();

    if (!opts_.path.empty() && opts_.deleteOnSuccess) {
        std::error_code ec;
        std::filesystem::remove(opts_.path, ec);
    }
    return finish;
}

Tick
ForkPointDriver::drive(Machine &m, const Machine::ProgramFactory &f)
{
    snap_.reset();
    m.start(f);
    if (m.stepUntilEvents(forkEvents_))
        snap_ = save(m);
    while (m.stepOne()) {
    }
    return m.finishRun();
}

Tick
WarmStartDriver::drive(Machine &m, const Machine::ProgramFactory &f)
{
    ResumeResult r = resumeWarm(m, f, snap_, variant_);
    if (!r.ok)
        ALEWIFE_FATAL(r.error);
    while (m.stepOne()) {
    }
    return m.finishRun();
}

} // namespace alewife::ckpt
