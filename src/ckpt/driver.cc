#include "ckpt/driver.hh"

#include <filesystem>

#include "sim/logging.hh"

namespace alewife::ckpt {

Tick
CheckpointDriver::drive(Machine &m, const Machine::ProgramFactory &f)
{
    resumed_ = false;
    saved_ = 0;

    if (!opts_.path.empty() && opts_.resume &&
        std::filesystem::exists(opts_.path)) {
        std::string err;
        std::optional<Snapshot> snap = loadFile(opts_.path, &err);
        if (!snap) {
            // Unreadable or wrong-schema snapshot: start over rather
            // than fail the job (the file is only an optimization).
            ALEWIFE_WARN("ckpt: ignoring snapshot: ", err);
        } else if (snap->configKey() != m.config().canonicalKey()) {
            ALEWIFE_WARN("ckpt: ignoring snapshot '", opts_.path,
                        "': config mismatch");
        } else {
            ResumeResult r = resume(m, f, *snap);
            if (!r.ok) {
                // A failed audit means the snapshot does not describe
                // this (machine, program) — a bug, not a stale file.
                ALEWIFE_FATAL(r.error);
            }
            resumed_ = true;
        }
    }
    if (!resumed_)
        m.start(f);

    const bool saving = !opts_.path.empty() && opts_.intervalCycles > 0.0;
    const Tick interval =
        saving ? cyclesToTicks(opts_.intervalCycles) : Tick{0};
    Tick nextSave = saving ? m.eq().now() + interval : Tick{0};

    while (m.stepOne()) {
        if (saving && m.eq().now() >= nextSave) {
            saveFile(save(m), opts_.path);
            ++saved_;
            nextSave = m.eq().now() + interval;
        }
    }
    const Tick finish = m.finishRun();

    if (!opts_.path.empty() && opts_.deleteOnSuccess) {
        std::error_code ec;
        std::filesystem::remove(opts_.path, ec);
    }
    return finish;
}

Tick
ForkPointDriver::drive(Machine &m, const Machine::ProgramFactory &f)
{
    snap_.reset();
    m.start(f);
    if (m.stepUntilEvents(forkEvents_))
        snap_ = save(m);
    while (m.stepOne()) {
    }
    return m.finishRun();
}

Tick
WarmStartDriver::drive(Machine &m, const Machine::ProgramFactory &f)
{
    ResumeResult r = resumeWarm(m, f, snap_, variant_);
    if (!r.ok)
        ALEWIFE_FATAL(r.error);
    while (m.stepOne()) {
    }
    return m.finishRun();
}

} // namespace alewife::ckpt
