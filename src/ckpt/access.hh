/**
 * @file
 * The capture/verify implementation behind the public ckpt API.
 *
 * Access is the single class befriended by every checkpointable
 * component (EventQueue, Machine, Mesh, Cache, CoherenceController,
 * ...). Keeping all private-state reads inside one top-layer class
 * preserves layering: the components grant access with a one-line
 * friend declaration and never include a ckpt header.
 *
 * Internal to src/ckpt/ — everything outside goes through ckpt.hh.
 */

#ifndef ALEWIFE_CKPT_ACCESS_HH
#define ALEWIFE_CKPT_ACCESS_HH

#include <string>
#include <vector>

#include "ckpt/ckpt.hh"
#include "exp/json.hh"

namespace alewife {
class Machine;
struct MachineConfig;
}

namespace alewife::ckpt {

/**
 * Static-only capture engine. Each section builder returns the exp::Json
 * subtree for one snapshot section; capture() assembles them, digests
 * each, and wraps the result.
 */
class Access
{
  public:
    static CaptureResult capture(const Machine &m);
    static std::vector<std::string> verify(const Machine &m,
                                           const Snapshot &snap);

    /**
     * Swap in a warm-start variant configuration and recompute every
     * cfg-derived quantity (mesh timing tables). Caller has already
     * checked restoreSafeDelta().
     */
    static void applyConfigDelta(Machine &m, const MachineConfig &variant);

  private:
    static exp::Json configSection(const Machine &m);
    static exp::Json kernelSection(const Machine &m);
    /** Appends one error line per pending untagged event. */
    static exp::Json eventsSection(const Machine &m,
                                   std::vector<std::string> &errors);
    static exp::Json meshSection(const Machine &m);
    static exp::Json memorySection(const Machine &m);
    static exp::Json cachesSection(const Machine &m);
    static exp::Json pfbSection(const Machine &m);
    static exp::Json cohSection(const Machine &m);
    static exp::Json procsSection(const Machine &m);
    static exp::Json syncSection(const Machine &m);
    static exp::Json niSection(const Machine &m);
    static exp::Json crossSection(const Machine &m);
    static exp::Json countersSection(const Machine &m);
};

} // namespace alewife::ckpt

#endif // ALEWIFE_CKPT_ACCESS_HH
