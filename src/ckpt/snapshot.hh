/**
 * @file
 * Versioned machine-state snapshot format.
 *
 * A Snapshot is a schema-tagged exp::Json document holding every piece
 * of captured machine state (see ckpt::Access for the capture itself)
 * plus per-section FNV-1a digests. All 64-bit state words are encoded
 * as 16-digit hex *strings*, never JSON numbers — exp::Json stores
 * numbers as doubles, which silently lose bits above 2^53, and a
 * snapshot whose tick counters round is worse than no snapshot.
 *
 * Restore strategy (the load-bearing design decision of src/ckpt/):
 * node programs are C++20 coroutines, whose frames cannot be
 * byte-serialized, so restore is *state-verified deterministic
 * reconstruction* — rebuild the machine from its config, replay to the
 * snapshot's executed-event count, then bit-audit every captured
 * section against the snapshot and fail loudly on any divergence. The
 * snapshot is not a passive record: every resumed run proves itself
 * against it. See docs/API.md ("Checkpoint/restore") for the captured-
 * vs-derived state table.
 */

#ifndef ALEWIFE_CKPT_SNAPSHOT_HH
#define ALEWIFE_CKPT_SNAPSHOT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "exp/json.hh"
#include "sim/types.hh"

namespace alewife::ckpt {

/** Schema tag of every snapshot document. */
inline constexpr const char *kCkptSchemaName = "alewife-ckpt";

/**
 * Snapshot format version. Bump whenever a section's layout changes;
 * the ResultCache key includes this value, so cached sweep results are
 * invalidated together with stale snapshots.
 */
inline constexpr int kCkptSchemaVersion = 1;

/** Encode a 64-bit word as a fixed-width hex string ("0x...."). */
std::string hexU64(std::uint64_t v);

/** Decode hexU64 output. Fatal on malformed input. */
std::uint64_t parseHexU64(const std::string &s);

/**
 * A captured machine state. The document layout:
 *
 *   { "schema": "alewife-ckpt", "version": 1,
 *     "config":  { "key": <canonicalKey>, "nodes": N, ... },
 *     "kernel":  { "now", "seq", "executed", tie-break RNG },
 *     "events":  [ typed pending-event records, ascending seq ],
 *     "mesh":    { links, volume, counters, packet-id sequence },
 *     "memory":  { regions, backing store },
 *     "caches" / "pfb" / "coh" / "procs" / "ni": per-node arrays,
 *     "sync":    { barrier state }, "cross": { cross-traffic state },
 *     "counters": { MachineCounters by canonical name },
 *     "digests": { per-section FNV-1a of the compact dump } }
 */
struct Snapshot
{
    exp::Json doc;

    /** Replay position: events executed when the capture was taken. */
    std::uint64_t eventsExecuted() const;

    /** Simulated time of the capture. */
    Tick now() const;

    /** MachineConfig::canonicalKey() of the captured machine. */
    const std::string &configKey() const;

    /** Digest of one section's compact dump, from the digests table. */
    std::uint64_t sectionDigest(const std::string &section) const;
};

/**
 * Write @p s to @p path atomically (write temp + rename), creating
 * parent directories. Fatal on IO failure.
 */
void saveFile(const Snapshot &s, const std::string &path);

/**
 * saveFile that reports IO failure (false + @p err) instead of
 * aborting, for callers where snapshots are an optimization a full
 * disk or unwritable directory must not turn into a failed run.
 */
bool trySaveFile(const Snapshot &s, const std::string &path,
                 std::string *err = nullptr);

/**
 * Read a snapshot. Returns nullopt (and sets @p err) on missing file,
 * parse failure, wrong schema tag, or version mismatch.
 */
std::optional<Snapshot> loadFile(const std::string &path,
                                 std::string *err = nullptr);

} // namespace alewife::ckpt

#endif // ALEWIFE_CKPT_SNAPSHOT_HH
