#include "ckpt/snapshot.hh"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace alewife::ckpt {

std::string
hexU64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

std::uint64_t
parseHexU64(const std::string &s)
{
    if (s.size() != 18 || s[0] != '0' || s[1] != 'x')
        ALEWIFE_FATAL("ckpt: malformed hex word '", s, "'");
    std::uint64_t v = 0;
    for (std::size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        std::uint64_t nib;
        if (c >= '0' && c <= '9')
            nib = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nib = static_cast<std::uint64_t>(c - 'a' + 10);
        else
            ALEWIFE_FATAL("ckpt: malformed hex word '", s, "'");
        v = (v << 4) | nib;
    }
    return v;
}

std::uint64_t
Snapshot::eventsExecuted() const
{
    return parseHexU64(doc.at("kernel").at("executed").asString());
}

Tick
Snapshot::now() const
{
    return parseHexU64(doc.at("kernel").at("now").asString());
}

const std::string &
Snapshot::configKey() const
{
    return doc.at("config").at("key").asString();
}

std::uint64_t
Snapshot::sectionDigest(const std::string &section) const
{
    return parseHexU64(doc.at("digests").at(section).asString());
}

bool
trySaveFile(const Snapshot &s, const std::string &path,
            std::string *err)
{
    namespace fs = std::filesystem;
    const fs::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        fs::create_directories(p.parent_path(), ec);

    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    // Write-temp-then-rename so a crashed or killed writer never leaves
    // a torn snapshot where a resuming sweep worker would look for one.
    static std::atomic<std::uint64_t> tmpSeq{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(tmpSeq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return fail("ckpt: cannot write '" + tmp + "'");
        out << s.doc.dump(1) << '\n';
        out.flush();
        if (!out) {
            fs::remove(tmp, ec);
            return fail("ckpt: short write to '" + tmp + "'");
        }
    }
    fs::rename(tmp, p, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return fail("ckpt: cannot rename snapshot into '" + path
                    + "'");
    }
    return true;
}

void
saveFile(const Snapshot &s, const std::string &path)
{
    std::string err;
    if (!trySaveFile(s, path, &err))
        ALEWIFE_FATAL(err);
}

std::optional<Snapshot>
loadFile(const std::string &path, std::string *err)
{
    auto fail = [&](const std::string &why) -> std::optional<Snapshot> {
        if (err)
            *err = why;
        return std::nullopt;
    };

    std::ifstream in(path);
    if (!in)
        return fail("ckpt: cannot open '" + path + "'");
    std::stringstream ss;
    ss << in.rdbuf();

    std::string perr;
    Snapshot s;
    s.doc = exp::Json::parse(ss.str(), &perr);
    if (s.doc.isNull())
        return fail("ckpt: parse error in '" + path + "': " + perr);
    if (!s.doc.isObject())
        return fail("ckpt: '" + path + "' is not a snapshot object");

    const exp::Json *schema = s.doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kCkptSchemaName)
        return fail("ckpt: '" + path + "' has wrong schema tag");
    const exp::Json *version = s.doc.find("version");
    if (!version || !version->isNumber() ||
        static_cast<int>(version->asDouble()) != kCkptSchemaVersion)
        return fail("ckpt: '" + path + "' has unsupported version");
    for (const char *sec :
         {"config", "kernel", "events", "digests"})
        if (!s.doc.find(sec))
            return fail(std::string("ckpt: '") + path +
                        "' is missing section '" + sec + "'");
    return s;
}

} // namespace alewife::ckpt
