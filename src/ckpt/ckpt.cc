#include "ckpt/ckpt.hh"

#include "ckpt/access.hh"
#include "sim/logging.hh"

namespace alewife::ckpt {

CaptureResult
capture(const Machine &m)
{
    return Access::capture(m);
}

Snapshot
save(const Machine &m)
{
    CaptureResult r = Access::capture(m);
    if (!r.ok())
        ALEWIFE_FATAL(r.error);
    return std::move(*r.snap);
}

std::vector<std::string>
verify(const Machine &m, const Snapshot &snap)
{
    return Access::verify(m, snap);
}

} // namespace alewife::ckpt
