#include "ckpt/restore.hh"

#include "ckpt/access.hh"

namespace alewife::ckpt {

bool
restoreSafeDelta(const MachineConfig &base, const MachineConfig &variant,
                 std::string *why)
{
    // Neutralize every whitelisted knob, then compare canonical keys:
    // any remaining difference is a non-restore-safe change.
    MachineConfig probe = variant;
    probe.name = base.name;
    probe.linkMBps = base.linkMBps;
    probe.hopNs = base.hopNs;
    probe.netFixedNs = base.netFixedNs;
    probe.idealNetLatencyCycles = base.idealNetLatencyCycles;
    probe.contextSwitchCycles = base.contextSwitchCycles;
    probe.niRetryCycles = base.niRetryCycles;
    if (probe.canonicalKey() == base.canonicalKey())
        return true;
    if (why)
        *why = "variant config changes a non-restore-safe knob; only "
               "linkMBps, hopNs, netFixedNs, idealNetLatencyCycles, "
               "contextSwitchCycles and niRetryCycles may differ from "
               "the snapshot's configuration";
    return false;
}

ResumeResult
resume(Machine &m, const Machine::ProgramFactory &f, const Snapshot &snap)
{
    ResumeResult r;
    if (m.config().canonicalKey() != snap.configKey()) {
        r.error = "ckpt: resume config does not match the snapshot's "
                  "(canonicalKey differs)";
        return r;
    }
    if (m.eq().eventsExecuted() != 0) {
        r.error = "ckpt: resume requires a freshly constructed machine";
        return r;
    }

    const std::uint64_t target = snap.eventsExecuted();
    m.start(f);
    if (!m.stepUntilEvents(target)) {
        r.error = "ckpt: replay finished after " +
                  std::to_string(m.eq().eventsExecuted()) +
                  " events, before the snapshot position (" +
                  std::to_string(target) +
                  ") — the machine, program, cross-traffic or "
                  "perturbation differs from the captured run";
        return r;
    }

    const std::vector<std::string> diverged = Access::verify(m, snap);
    if (!diverged.empty()) {
        std::string err =
            "ckpt: post-replay audit diverged from the snapshot:";
        for (const std::string &d : diverged)
            err += "\n  " + d;
        r.error = std::move(err);
        return r;
    }
    r.ok = true;
    return r;
}

ResumeResult
resumeWarm(Machine &m, const Machine::ProgramFactory &f,
           const Snapshot &snap, const MachineConfig &variant)
{
    ResumeResult r;
    std::string why;
    if (!restoreSafeDelta(m.config(), variant, &why)) {
        r.error = "ckpt: warm start rejected: " + why;
        return r;
    }
    r = resume(m, f, snap);
    if (!r.ok)
        return r;
    Access::applyConfigDelta(m, variant);
    return r;
}

} // namespace alewife::ckpt
