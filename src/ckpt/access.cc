#include "ckpt/access.hh"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "coh/proto.hh"
#include "exp/result_cache.hh"
#include "machine/machine.hh"
#include "sim/logging.hh"

namespace alewife::ckpt {

namespace {

using exp::Json;

/** Shorthand for the canonical 64-bit-word encoding. */
Json
hx(std::uint64_t v)
{
    return Json(hexU64(v));
}

/** Doubles are captured as their bit pattern: equality must be exact. */
Json
hxd(double d)
{
    return Json(hexU64(std::bit_cast<std::uint64_t>(d)));
}

Json
wordsJson(const std::vector<std::uint64_t> &words)
{
    Json a = Json::array();
    for (std::uint64_t w : words)
        a.push(hx(w));
    return a;
}

Json
rngJson(const Rng::State &st)
{
    Json o = Json::object();
    Json s = Json::array();
    for (std::uint64_t w : st.s)
        s.push(hx(w));
    o.set("s", std::move(s));
    o.set("haveSpare", Json(st.haveSpare));
    o.set("spare", hxd(st.spare));
    return o;
}

Json
protoMsgJson(const coh::ProtoMsg &m)
{
    Json o = Json::object();
    o.set("type", Json(static_cast<int>(m.type)));
    o.set("typeName", Json(coh::msgTypeName(m.type)));
    o.set("line", hx(m.lineAddr));
    o.set("requester", Json(static_cast<int>(m.requester)));
    o.set("txnId", hx(m.txnId));
    o.set("src", Json(static_cast<int>(m.src)));
    o.set("issuedAt", hx(m.issuedAt));
    o.set("words", wordsJson(m.words));
    return o;
}

Json
amJson(const msg::AmMessage &m)
{
    Json o = Json::object();
    o.set("handler", Json(static_cast<int>(m.handler)));
    o.set("src", Json(static_cast<int>(m.src)));
    o.set("args", wordsJson(m.args));
    o.set("body", wordsJson(m.body));
    o.set("bulk", Json(m.bulk));
    return o;
}

/**
 * Canonical content of an in-flight packet. Pointers never reach the
 * snapshot: the Packet sits inside a pending event's closure and is
 * reached through EventMeta::a, then expanded here.
 */
Json
packetJson(const net::Packet &p)
{
    Json o = Json::object();
    o.set("src", Json(static_cast<int>(p.src)));
    o.set("dst", Json(static_cast<int>(p.dst)));
    o.set("kind", Json(static_cast<int>(p.kind)));
    o.set("sizeBytes", Json(static_cast<int>(p.sizeBytes)));
    o.set("id", hx(p.id));
    Json vols = Json::array();
    for (std::uint32_t b : p.volBytes)
        vols.push(Json(static_cast<int>(b)));
    o.set("volBytes", std::move(vols));
    o.set("countInVolume", Json(p.countInVolume));
    if (p.kind == net::PacketKind::Coherence)
        o.set("proto",
              protoMsgJson(static_cast<const coh::ProtoMsg &>(*p.payload)));
    else if (p.kind == net::PacketKind::ActiveMessage)
        o.set("am",
              amJson(static_cast<const msg::AmMessage &>(*p.payload)));
    return o;
}

/** True for tags whose EventMeta::a is an in-flight net::Packet*. */
bool
carriesPacket(EventTag t)
{
    switch (t) {
      case EventTag::MeshDeliver:
      case EventTag::MeshDeliverIdeal:
      case EventTag::MeshRetry:
      case EventTag::CohPacketLaunch:
      case EventTag::AmPacketLaunch:
        return true;
      default:
        return false;
    }
}

Json
opStateJson(const proc::OpState &op)
{
    Json o = Json::object();
    o.set("done", Json(op.done));
    o.set("value", hx(op.value));
    o.set("waitCat", Json(static_cast<int>(op.waitCat)));
    o.set("startLocal", hx(op.startLocal));
    o.set("stolenAtStart", hx(op.stolenAtStart));
    return o;
}

/** Sorted key list of an unordered_map (canonical iteration order). */
template <typename Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &m)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

Json
Access::configSection(const Machine &m)
{
    Json o = Json::object();
    o.set("key", Json(m.cfg_.canonicalKey()));
    o.set("name", Json(m.cfg_.name));
    o.set("nodes", Json(m.cfg_.nodes()));
    o.set("syncStyle", Json(static_cast<int>(m.sync_->style_)));
    return o;
}

Json
Access::kernelSection(const Machine &m)
{
    const EventQueue &eq = m.eq_;
    Json o = Json::object();
    o.set("now", hx(eq.now_));
    o.set("seq", hx(eq.seq_));
    o.set("executed", hx(eq.executed_));
    o.set("tieBreak", Json(eq.tieBreak_));
    o.set("rng", rngJson(eq.rng_.state()));
    o.set("finishTick", hx(m.finishTick_));
    return o;
}

Json
Access::eventsSection(const Machine &m, std::vector<std::string> &errors)
{
    std::vector<EventQueue::PendingEvent> pending;
    m.eq_.forEachPending(
        [&](const EventQueue::PendingEvent &e) { pending.push_back(e); });
    std::sort(pending.begin(), pending.end(),
              [](const EventQueue::PendingEvent &a,
                 const EventQueue::PendingEvent &b) {
                  return a.seq < b.seq;
              });

    Json arr = Json::array();
    for (const EventQueue::PendingEvent &e : pending) {
        if (e.meta.tag == EventTag::Untagged) {
            std::string site = e.siteFile
                                   ? (std::string(e.siteFile) + ":" +
                                      std::to_string(e.siteLine))
                                   : std::string("<unknown site>");
            errors.push_back(
                "pending untagged event scheduled at " + site +
                " (fires at tick " + std::to_string(e.when) +
                ") — tag the schedule call with an EventMeta "
                "(sim/event_tag.hh) to make it checkpointable");
            continue;
        }
        Json o = Json::object();
        o.set("when", hx(e.when));
        o.set("pri", hx(e.pri));
        o.set("seq", hx(e.seq));
        o.set("tag", Json(eventTagName(e.meta.tag)));
        if (carriesPacket(e.meta.tag)) {
            const auto *pkt =
                reinterpret_cast<const net::Packet *>(e.meta.a);
            o.set("packet", packetJson(*pkt));
            o.set("b", hx(e.meta.b));
        } else {
            o.set("a", hx(e.meta.a));
            o.set("b", hx(e.meta.b));
        }
        arr.push(std::move(o));
    }
    return arr;
}

Json
Access::meshSection(const Machine &m)
{
    const net::Mesh &mesh = *m.mesh_;
    Json o = Json::object();

    Json links = Json::array();
    for (const net::Mesh::Link &l : mesh.links_) {
        Json lo = Json::object();
        lo.set("freeAt", hx(l.freeAt));
        lo.set("busyTicks", hx(l.busyTicks));
        lo.set("bytes", hx(l.bytes));
        links.push(std::move(lo));
    }
    o.set("links", std::move(links));

    Json vol = Json::array();
    for (std::uint64_t b : mesh.volume_.bytes)
        vol.push(hx(b));
    o.set("volume", std::move(vol));

    o.set("injected", hx(mesh.injected_));
    o.set("delivered", hx(mesh.delivered_));
    o.set("niRejects", hx(mesh.niRejects_));
    o.set("bisectionBytes", hx(mesh.bisectionBytes_));
    o.set("nextId", hx(mesh.nextId_));
    o.set("jitterFrac", hxd(mesh.jitterFrac_));
    o.set("jitterRng", rngJson(mesh.jitterRng_.state()));
    return o;
}

Json
Access::memorySection(const Machine &m)
{
    const mem::AddressSpace &mem = *m.mem_;
    Json o = Json::object();
    o.set("nextBase", hx(mem.nextBase_));

    Json regions = Json::array();
    for (const auto &r : mem.regions_) {
        Json ro = Json::object();
        ro.set("base", hx(r.base));
        ro.set("words", hx(r.words));
        ro.set("policy", Json(static_cast<int>(r.policy)));
        ro.set("fixedNode", Json(static_cast<int>(r.fixedNode)));
        ro.set("label", Json(r.label));
        regions.push(std::move(ro));
    }
    o.set("regions", std::move(regions));

    // The full backing store, word by word. This is the bulk of a
    // snapshot and the payload the checkpoint throughput benchmark
    // measures; everything else is bookkeeping around it.
    o.set("store", wordsJson(mem.store_));
    return o;
}

Json
Access::cachesSection(const Machine &m)
{
    Json nodes = Json::array();
    for (const auto &n : m.nodes_) {
        const mem::Cache &c = n->cache;
        Json lines = Json::array();
        for (std::size_t i = 0; i < c.lines_.size(); ++i) {
            const auto &l = c.lines_[i];
            if (!l.valid)
                continue;
            Json lo = Json::object();
            lo.set("set", Json(static_cast<int>(i)));
            lo.set("line", hx(l.tag));
            lo.set("st", Json(static_cast<int>(l.st)));
            lo.set("words", wordsJson(l.words));
            lines.push(std::move(lo));
        }
        nodes.push(std::move(lines));
    }
    return nodes;
}

Json
Access::pfbSection(const Machine &m)
{
    Json nodes = Json::array();
    for (const auto &n : m.nodes_) {
        const proc::PrefetchBuffer &b = n->pfb;
        Json o = Json::object();
        o.set("fifoNext", hx(b.fifoNext_));
        Json slots = Json::array();
        for (const auto &s : b.slots_) {
            Json so = Json::object();
            so.set("valid", Json(s.valid));
            so.set("line", hx(s.lineAddr));
            so.set("st", Json(static_cast<int>(s.st)));
            so.set("words", wordsJson(s.words));
            slots.push(std::move(so));
        }
        o.set("slots", std::move(slots));
        nodes.push(std::move(o));
    }
    return nodes;
}

Json
Access::cohSection(const Machine &m)
{
    Json nodes = Json::array();
    for (const auto &n : m.nodes_) {
        const coh::CoherenceController &cc = *n->coh;
        Json o = Json::object();

        Json dir = Json::array();
        for (Addr line : sortedKeys(cc.dir_.entries_)) {
            const coh::DirEntry &e = cc.dir_.entries_.at(line);
            Json eo = Json::object();
            eo.set("line", hx(line));
            eo.set("state", Json(static_cast<int>(e.state)));
            Json sharers = Json::array();
            for (NodeId s : e.sharers)
                sharers.push(Json(static_cast<int>(s)));
            eo.set("sharers", std::move(sharers));
            eo.set("owner", Json(static_cast<int>(e.owner)));
            if (e.txn) {
                Json to = Json::object();
                to.set("request", Json(static_cast<int>(e.txn->request)));
                to.set("requester",
                       Json(static_cast<int>(e.txn->requester)));
                to.set("pendingAcks", Json(e.txn->pendingAcks));
                to.set("waitingRecall", Json(e.txn->waitingRecall));
                to.set("forwarded", Json(e.txn->forwarded));
                to.set("id", hx(e.txn->id));
                eo.set("txn", std::move(to));
            }
            Json queue = Json::array();
            for (const coh::ProtoMsg &q : e.queue)
                queue.push(protoMsgJson(q));
            eo.set("queue", std::move(queue));
            dir.push(std::move(eo));
        }
        o.set("dir", std::move(dir));

        Json mshrs = Json::array();
        for (Addr line : sortedKeys(cc.mshrs_)) {
            const auto &ms = cc.mshrs_.at(line);
            Json mo = Json::object();
            mo.set("line", hx(line));
            mo.set("wantExclusive", Json(ms.wantExclusive));
            mo.set("prefetchOnly", Json(ms.prefetchOnly));
            mo.set("startedAsPrefetch", Json(ms.startedAsPrefetch));
            mo.set("killedByInv", Json(ms.killedByInv));
            if (ms.stashedRecall)
                mo.set("stashedRecall", protoMsgJson(*ms.stashedRecall));
            Json demands = Json::array();
            for (const auto &d : ms.demands) {
                Json dj = Json::object();
                dj.set("kind", Json(static_cast<int>(d.kind)));
                dj.set("addr", hx(d.addr));
                dj.set("storeVal", hx(d.storeVal));
                // Closures (rmwFn, deferred retries) cannot be
                // serialized; their presence plus the deterministic
                // replay pins them down.
                dj.set("hasRmw", Json(static_cast<bool>(d.rmwFn)));
                dj.set("op", opStateJson(*d.op));
                demands.push(std::move(dj));
            }
            mo.set("demands", std::move(demands));
            mo.set("deferred", Json(static_cast<int>(ms.deferred.size())));
            mshrs.push(std::move(mo));
        }
        o.set("mshrs", std::move(mshrs));

        Json epochs = Json::array();
        for (Addr line : sortedKeys(cc.epochs_)) {
            Json eo = Json::object();
            eo.set("line", hx(line));
            eo.set("epoch", hx(cc.epochs_.at(line)));
            epochs.push(std::move(eo));
        }
        o.set("epochs", std::move(epochs));

        o.set("cmmuFreeAt", hx(cc.cmmuFreeAt_));
        o.set("nextTxnId", hx(cc.nextTxnId_));
        o.set("prefetchesInFlight", Json(cc.prefetchesInFlight_));
        o.set("faultFired", Json(cc.faultFired_));
        nodes.push(std::move(o));
    }
    return nodes;
}

Json
Access::procsSection(const Machine &m)
{
    Json nodes = Json::array();
    for (const auto &n : m.nodes_) {
        const proc::Proc &p = n->proc;
        Json o = Json::object();
        o.set("state", Json(static_cast<int>(p.state_)));
        o.set("localNow", hx(p.localNow_));
        o.set("ahead", hx(p.ahead_));
        o.set("stolen", hx(p.stolen_));
        Json bd = Json::array();
        for (Tick t : p.breakdown_.ticks)
            bd.push(hx(t));
        o.set("breakdown", std::move(bd));
        o.set("resumePending", Json(p.resumeEvent_.pending()));
        o.set("resumeAt", hx(p.resumeAt_));
        o.set("computeUntil", hx(p.computeUntil_));
        if (p.currentOp_)
            o.set("op", opStateJson(*p.currentOp_));
        if (p.cond_) {
            Json co = Json::object();
            co.set("cat", Json(static_cast<int>(p.cond_->cat)));
            co.set("startLocal", hx(p.cond_->startLocal));
            co.set("stolenAtStart", hx(p.cond_->stolenAtStart));
            o.set("cond", std::move(co));
        }
        nodes.push(std::move(o));
    }
    return nodes;
}

Json
Access::syncSection(const Machine &m)
{
    const proc::SyncSystem &s = *m.sync_;
    Json o = Json::object();
    o.set("style", Json(static_cast<int>(s.style_)));
    o.set("nprocs", Json(s.nprocs_));
    o.set("arity", Json(s.arity_));
    o.set("arriveBase", hx(s.arriveBase_));
    o.set("releaseBase", hx(s.releaseBase_));
    o.set("epoch", wordsJson(s.epoch_));
    o.set("arrivals", wordsJson(s.arrivals_));
    o.set("released", wordsJson(s.released_));
    o.set("hArrive", Json(static_cast<int>(s.hArrive_)));
    o.set("hRelease", Json(static_cast<int>(s.hRelease_)));
    return o;
}

Json
Access::niSection(const Machine &m)
{
    Json nodes = Json::array();
    for (const auto &n : m.nodes_) {
        const msg::NetIface &ni = *n->ni;
        Json o = Json::object();
        o.set("mode", Json(static_cast<int>(ni.mode_)));
        o.set("drainScheduled", Json(ni.drainScheduled_));
        o.set("lastHandlerDone", hx(ni.lastHandlerDone_));
        o.set("delivered", hx(ni.delivered_));
        Json q = Json::array();
        for (const auto &msg : ni.inq_)
            q.push(amJson(*msg));
        o.set("inq", std::move(q));
        nodes.push(std::move(o));
    }
    return nodes;
}

Json
Access::crossSection(const Machine &m)
{
    Json o = Json::object();
    o.set("present", Json(static_cast<bool>(m.cross_)));
    if (!m.cross_)
        return o;
    const net::CrossTraffic &ct = *m.cross_;
    o.set("bytesPerCycle", hxd(ct.cfg_.bytesPerCycle));
    o.set("messageBytes", Json(static_cast<int>(ct.cfg_.messageBytes)));
    Json streams = Json::array();
    for (const auto &s : ct.streams_) {
        Json so = Json::object();
        so.set("src", Json(static_cast<int>(s.src)));
        so.set("dst", Json(static_cast<int>(s.dst)));
        streams.push(std::move(so));
    }
    o.set("streams", std::move(streams));
    o.set("periodTicks", hx(ct.periodTicks_));
    o.set("running", Json(ct.running_));
    o.set("bytesInjected", hx(ct.bytesInjected_));
    return o;
}

Json
Access::countersSection(const Machine &m)
{
    Json o = Json::object();
    // Counters live in per-node shards (parallel engine); capture the
    // machine-wide aggregate, which is what restore verifies against.
    const MachineCounters total = m.countersAggregate();
    for (const CounterField &f : machineCounterFields())
        o.set(f.name, hx(total.*(f.member)));
    return o;
}

namespace {

/** Section names in document order; verify() walks the same list. */
constexpr const char *kSections[] = {
    "config", "kernel", "events",  "mesh", "memory", "caches", "pfb",
    "coh",    "procs",  "sync",    "ni",   "cross",  "counters",
};

} // namespace

CaptureResult
Access::capture(const Machine &m)
{
    std::vector<std::string> errors;

    Json doc = Json::object();
    doc.set("schema", Json(kCkptSchemaName));
    doc.set("version", Json(kCkptSchemaVersion));
    doc.set("config", configSection(m));
    doc.set("kernel", kernelSection(m));
    doc.set("events", eventsSection(m, errors));
    doc.set("mesh", meshSection(m));
    doc.set("memory", memorySection(m));
    doc.set("caches", cachesSection(m));
    doc.set("pfb", pfbSection(m));
    doc.set("coh", cohSection(m));
    doc.set("procs", procsSection(m));
    doc.set("sync", syncSection(m));
    doc.set("ni", niSection(m));
    doc.set("cross", crossSection(m));
    doc.set("counters", countersSection(m));

    Json digests = Json::object();
    for (const char *sec : kSections)
        digests.set(sec, hx(exp::fnv1a64(doc.at(sec).dump())));
    doc.set("digests", std::move(digests));

    CaptureResult r;
    if (!errors.empty()) {
        std::string joined = "ckpt: capture failed:";
        for (const std::string &e : errors)
            joined += "\n  " + e;
        r.error = std::move(joined);
        return r;
    }
    r.snap = Snapshot{std::move(doc)};
    return r;
}

void
Access::applyConfigDelta(Machine &m, const MachineConfig &variant)
{
    // Components reference Machine::cfg_, so assigning updates them all
    // in place; the mesh additionally caches cfg-derived timing, which
    // must be recomputed or the new knobs would never take effect.
    m.cfg_ = variant;
    m.mesh_->computeDerivedTiming();
}

std::vector<std::string>
Access::verify(const Machine &m, const Snapshot &snap)
{
    CaptureResult fresh = capture(m);
    if (!fresh.ok())
        return {fresh.error};

    std::vector<std::string> diverged;
    for (const char *sec : kSections) {
        const Json *want = snap.doc.find(sec);
        if (!want) {
            diverged.push_back(std::string("section '") + sec +
                               "' missing from snapshot");
            continue;
        }
        const Json &got = fresh.snap->doc.at(sec);
        const std::string wantDump = want->dump();
        const std::string gotDump = got.dump();
        if (wantDump == gotDump)
            continue;
        std::string line = std::string("section '") + sec + "' diverges";
        if (want->isArray() && got.isArray()) {
            const std::size_t lim =
                std::min(want->size(), got.size());
            std::size_t i = 0;
            while (i < lim && want->at(i).dump() == got.at(i).dump())
                ++i;
            line += " at index " + std::to_string(i) + " (snapshot has " +
                    std::to_string(want->size()) + " entries, machine " +
                    std::to_string(got.size()) + ")";
        }
        diverged.push_back(std::move(line));
    }
    return diverged;
}

} // namespace alewife::ckpt
