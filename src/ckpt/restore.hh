/**
 * @file
 * Restore drivers: resume a machine from a snapshot, cold or warm.
 *
 * Restore is state-verified deterministic reconstruction (snapshot.hh):
 * the caller builds a *fresh* machine with the snapshot's configuration,
 * resume() replays it to the snapshot's executed-event count, and every
 * captured section is bit-audited against the snapshot before the
 * machine is handed back. A passing resume therefore continues the
 * original run exactly — resume-equals-straight-run is pinned by the
 * golden tests in tests/ckpt/.
 *
 * Warm start forks one snapshot into parameter variants: replay and
 * audit run under the *original* configuration (anything else would
 * diverge from the snapshot), then the variant's knobs are applied in
 * place and cfg-derived state (mesh timing tables) is recomputed. Only
 * restore-safe knobs may differ — knobs that alter timing of *future*
 * events without invalidating any already-captured state. The
 * whitelist lives in restoreSafeDelta(); docs/API.md documents why
 * each knob qualifies.
 */

#ifndef ALEWIFE_CKPT_RESTORE_HH
#define ALEWIFE_CKPT_RESTORE_HH

#include <string>

#include "ckpt/ckpt.hh"
#include "machine/machine.hh"

namespace alewife::ckpt {

/**
 * True iff @p variant differs from @p base only in restore-safe knobs:
 * linkMBps, hopNs, netFixedNs, idealNetLatencyCycles,
 * contextSwitchCycles, niRetryCycles (and the display name, which never
 * affects simulation). When false and @p why is non-null, *why names
 * the restriction.
 */
bool restoreSafeDelta(const MachineConfig &base,
                      const MachineConfig &variant,
                      std::string *why = nullptr);

/** Outcome of a resume attempt. */
struct ResumeResult
{
    bool ok = false;
    /** Failure reason: config mismatch, replay shortfall, or the full
     *  divergence list from the post-replay audit. */
    std::string error;
};

/**
 * Replay @p m to @p snap's position and audit it. @p m must be freshly
 * constructed (never stepped) with a configuration whose canonicalKey()
 * matches the snapshot, with cross-traffic and perturbation applied
 * exactly as in the captured run; @p f must be the same program
 * factory. On success the machine is paused at the snapshot point —
 * continue with Machine::stepOne()/finishRun().
 */
ResumeResult resume(Machine &m, const Machine::ProgramFactory &f,
                    const Snapshot &snap);

/**
 * Warm-start fork: like resume(), but @p m continues under @p variant
 * after the audit passes. @p m must be built with the snapshot's
 * original configuration; @p variant must satisfy restoreSafeDelta()
 * against it (checked — a violation fails before any replay).
 */
ResumeResult resumeWarm(Machine &m, const Machine::ProgramFactory &f,
                        const Snapshot &snap,
                        const MachineConfig &variant);

} // namespace alewife::ckpt

#endif // ALEWIFE_CKPT_RESTORE_HH
