/**
 * @file
 * core::RunDriver implementations backed by the checkpoint subsystem.
 *
 * CheckpointDriver gives a run crash tolerance: it saves a snapshot
 * file every N simulated cycles (atomically, so a kill mid-save never
 * corrupts the previous one) and, when started over an existing
 * snapshot, resumes from it instead of silently starting over. A sweep
 * worker killed at any point therefore re-enters at its last snapshot,
 * passes the restore audit, and finishes with results bit-identical to
 * an uninterrupted run.
 *
 * ForkPointDriver and WarmStartDriver are the two halves of a
 * warm-start sweep (exp/warm_start.hh): the first runs the base
 * configuration and captures an in-memory snapshot at a chosen event
 * count, the second replays variants from that snapshot under
 * restore-safe config deltas.
 */

#ifndef ALEWIFE_CKPT_DRIVER_HH
#define ALEWIFE_CKPT_DRIVER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/restore.hh"
#include "core/runner.hh"

namespace alewife::ckpt {

/**
 * Delete per-job snapshot files ("<hash>-latest.ckpt.json") in @p dir
 * whose file name is not in @p keepFiles, and return how many were
 * removed. Crash-looping campaigns re-key their jobs every restart
 * only when the batch changes; snapshots whose job no longer exists
 * would otherwise leak disk forever. Only snapshot-shaped names are
 * touched. Missing @p dir is a no-op.
 */
std::uint64_t
cleanOrphanSnapshots(const std::string &dir,
                     const std::vector<std::string> &keepFiles);

/**
 * Periodic-snapshot + resume-from-file driver.
 */
class CheckpointDriver : public core::RunDriver
{
  public:
    struct Options
    {
        /** Snapshot file; "" disables both saving and resuming. */
        std::string path;
        /** Save every this many simulated cycles; 0 disables saves. */
        double intervalCycles = 0.0;
        /** Resume from `path` when it holds a matching snapshot. */
        bool resume = true;
        /** Remove `path` once the run completes (job-done marker). */
        bool deleteOnSuccess = true;
    };

    explicit CheckpointDriver(Options o) : opts_(std::move(o)) {}

    Tick drive(Machine &m, const Machine::ProgramFactory &f) override;

    /** True if drive() started from an existing snapshot. */
    bool resumed() const { return resumed_; }

    /** Snapshots written by the last drive(). */
    std::uint64_t snapshotsSaved() const { return saved_; }

  private:
    Options opts_;
    bool resumed_ = false;
    std::uint64_t saved_ = 0;
};

/**
 * Runs the machine to completion, capturing one in-memory snapshot
 * the moment the executed-event count reaches forkEvents.
 */
class ForkPointDriver : public core::RunDriver
{
  public:
    explicit ForkPointDriver(std::uint64_t fork_events)
        : forkEvents_(fork_events)
    {
    }

    Tick drive(Machine &m, const Machine::ProgramFactory &f) override;

    /** The captured fork snapshot; set iff the run reached forkEvents. */
    const std::optional<Snapshot> &snapshot() const { return snap_; }

  private:
    std::uint64_t forkEvents_;
    std::optional<Snapshot> snap_;
};

/**
 * Resumes a machine from a snapshot, switches it to a restore-safe
 * variant configuration, and runs it to completion. The machine must
 * be constructed with the snapshot's original configuration (resumeWarm
 * requirements apply).
 */
class WarmStartDriver : public core::RunDriver
{
  public:
    WarmStartDriver(const Snapshot &snap, MachineConfig variant)
        : snap_(snap), variant_(std::move(variant))
    {
    }

    Tick drive(Machine &m, const Machine::ProgramFactory &f) override;

  private:
    const Snapshot &snap_;
    MachineConfig variant_;
};

} // namespace alewife::ckpt

#endif // ALEWIFE_CKPT_DRIVER_HH
