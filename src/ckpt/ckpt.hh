/**
 * @file
 * Public checkpoint API: capture, verify, and file IO.
 *
 * capture() walks every component of a paused Machine through the
 * ckpt::Access friend and produces a Snapshot (see snapshot.hh for the
 * format and the restore philosophy). Capture can fail — if any pending
 * event was scheduled through the untagged EventQueue::schedule()
 * overload the machine state is not serializable, and the error names
 * each offending schedule site so the fix (tag the site with an
 * EventMeta) is mechanical.
 *
 * verify() re-captures the live machine and compares it section by
 * section against a snapshot; an empty result means every serializable
 * bit of machine state matches. The restore driver (ckpt::resume)
 * treats a non-empty result as fatal divergence.
 */

#ifndef ALEWIFE_CKPT_CKPT_HH
#define ALEWIFE_CKPT_CKPT_HH

#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.hh"

namespace alewife {
class Machine;
}

namespace alewife::ckpt {

/** Outcome of a capture attempt. */
struct CaptureResult
{
    std::optional<Snapshot> snap;
    /** Non-empty iff capture failed (names every untagged event site). */
    std::string error;

    bool ok() const { return snap.has_value(); }
};

/**
 * Capture the complete serializable state of @p m. The machine must be
 * paused between events (never call from inside an event callback).
 */
CaptureResult capture(const Machine &m);

/** capture() that treats failure as fatal (tests, CLI paths). */
Snapshot save(const Machine &m);

/**
 * Compare the live machine against @p snap section by section.
 * @return one human-readable line per divergent section; empty when
 *         the machine matches the snapshot bit-for-bit
 */
std::vector<std::string> verify(const Machine &m, const Snapshot &snap);

} // namespace alewife::ckpt

#endif // ALEWIFE_CKPT_CKPT_HH
