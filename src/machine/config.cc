#include "machine/config.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace alewife {

double
MachineConfig::onewayLatencyCycles(std::uint32_t bytes, int hops) const
{
    if (idealNet)
        return idealNetLatencyCycles;
    return netFixedCycles() + hops * hopCycles()
           + static_cast<double>(bytes) / linkBytesPerCycle();
}

double
MachineConfig::averageHops() const
{
    // Mean Manhattan distance between two uniformly random distinct mesh
    // positions is (X^2-1)/(3X) + (Y^2-1)/(3Y) for an X-by-Y mesh; close
    // enough to the exact expectation for our purposes.
    auto dim = [](double n) { return (n * n - 1.0) / (3.0 * n); };
    return dim(meshX) + dim(meshY);
}

void
MachineConfig::validate() const
{
    if (meshX < 1 || meshY < 1)
        ALEWIFE_FATAL("mesh dimensions must be positive");
    if (procMhz <= 0.0)
        ALEWIFE_FATAL("procMhz must be positive");
    if (lineBytes % 8 != 0 || lineBytes == 0)
        ALEWIFE_FATAL("lineBytes must be a positive multiple of 8");
    if (cacheBytes % lineBytes != 0)
        ALEWIFE_FATAL("cacheBytes must be a multiple of lineBytes");
    if (!idealNet && linkMBps <= 0.0)
        ALEWIFE_FATAL("linkMBps must be positive");
    if (dirHwPointers < 1)
        ALEWIFE_FATAL("dirHwPointers must be at least 1");
    if (niInputQueueSlots < 1)
        ALEWIFE_FATAL("niInputQueueSlots must be at least 1");
}

std::string
MachineConfig::canonicalKey() const
{
    std::string out;
    out.reserve(1024);
    auto num = [&](const char *name, double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s=%.17g;", name, v);
        out += buf;
    };
    auto integer = [&](const char *name, long long v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s=%lld;", name, v);
        out += buf;
    };
    auto flag = [&](const char *name, bool v) {
        integer(name, v ? 1 : 0);
    };

    integer("meshX", meshX);
    integer("meshY", meshY);
    num("procMhz", procMhz);
    num("linkMBps", linkMBps);
    num("hopNs", hopNs);
    num("netFixedNs", netFixedNs);
    flag("idealNet", idealNet);
    num("idealNetLatencyCycles", idealNetLatencyCycles);
    num("contextSwitchCycles", contextSwitchCycles);
    integer("cacheBytes", cacheBytes);
    integer("lineBytes", lineBytes);
    num("cacheHitCycles", cacheHitCycles);
    num("localMissCycles", localMissCycles);
    integer("dirHwPointers", dirHwPointers);
    num("reqIssueCycles", reqIssueCycles);
    num("homeOccupancyCycles", homeOccupancyCycles);
    num("replyConsumeCycles", replyConsumeCycles);
    num("invProcessCycles", invProcessCycles);
    num("limitlessTrapCycles", limitlessTrapCycles);
    num("limitlessPerSharerCycles", limitlessPerSharerCycles);
    flag("threeHopForwarding", threeHopForwarding);
    integer("protoCtrlBytes", protoCtrlBytes);
    integer("protoDataHdrBytes", protoDataHdrBytes);
    num("amSendCycles", amSendCycles);
    num("amSendPerWordCycles", amSendPerWordCycles);
    num("amInterruptCycles", amInterruptCycles);
    num("amDispatchCycles", amDispatchCycles);
    num("amRecvPerWordCycles", amRecvPerWordCycles);
    num("pollEmptyCycles", pollEmptyCycles);
    integer("pollInsertionGap", pollInsertionGap);
    integer("amHeaderBytes", amHeaderBytes);
    integer("amMaxWords", amMaxWords);
    integer("niInputQueueSlots", niInputQueueSlots);
    num("niRetryCycles", niRetryCycles);
    num("dmaSetupCycles", dmaSetupCycles);
    num("gatherScatterPerLineCycles", gatherScatterPerLineCycles);
    integer("dmaAlignBytes", dmaAlignBytes);
    integer("prefetchBufferEntries", prefetchBufferEntries);
    integer("prefetchMaxOutstanding", prefetchMaxOutstanding);
    num("prefetchIssueCycles", prefetchIssueCycles);
    num("prefetchBufferHitCycles", prefetchBufferHitCycles);
    integer("maxOutstandingWrites", maxOutstandingWrites);
    num("cyclesPerFlop", cyclesPerFlop);
    num("cyclesPerFlopSP", cyclesPerFlopSP);
    return out;
}

} // namespace alewife
