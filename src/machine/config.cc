#include "machine/config.hh"

#include "sim/logging.hh"

namespace alewife {

double
MachineConfig::onewayLatencyCycles(std::uint32_t bytes, int hops) const
{
    if (idealNet)
        return idealNetLatencyCycles;
    return netFixedCycles() + hops * hopCycles()
           + static_cast<double>(bytes) / linkBytesPerCycle();
}

double
MachineConfig::averageHops() const
{
    // Mean Manhattan distance between two uniformly random distinct mesh
    // positions is (X^2-1)/(3X) + (Y^2-1)/(3Y) for an X-by-Y mesh; close
    // enough to the exact expectation for our purposes.
    auto dim = [](double n) { return (n * n - 1.0) / (3.0 * n); };
    return dim(meshX) + dim(meshY);
}

void
MachineConfig::validate() const
{
    if (meshX < 1 || meshY < 1)
        ALEWIFE_FATAL("mesh dimensions must be positive");
    if (procMhz <= 0.0)
        ALEWIFE_FATAL("procMhz must be positive");
    if (lineBytes % 8 != 0 || lineBytes == 0)
        ALEWIFE_FATAL("lineBytes must be a positive multiple of 8");
    if (cacheBytes % lineBytes != 0)
        ALEWIFE_FATAL("cacheBytes must be a multiple of lineBytes");
    if (!idealNet && linkMBps <= 0.0)
        ALEWIFE_FATAL("linkMBps must be positive");
    if (dirHwPointers < 1)
        ALEWIFE_FATAL("dirHwPointers must be at least 1");
    if (niInputQueueSlots < 1)
        ALEWIFE_FATAL("niInputQueueSlots must be at least 1");
}

} // namespace alewife
