/**
 * @file
 * Table 1 / Table 2: parameter estimates for 32-processor machines.
 *
 * The paper anchors its sensitivity results to the design points of
 * contemporary research and commercial machines. We encode those
 * parameter estimates as data so the benches can regenerate both tables
 * and so MachineConfig instances approximating any of the machines can
 * be built for emulation experiments.
 */

#ifndef ALEWIFE_MACHINE_GALLERY_HH
#define ALEWIFE_MACHINE_GALLERY_HH

#include <optional>
#include <string>
#include <vector>

#include "machine/config.hh"

namespace alewife {

/** One Table 1 row. */
struct GalleryEntry
{
    std::string name;
    double procMhz = 0.0;
    std::string topology;
    /** Bisection bandwidth, MB/s; nullopt for "N/A" (no network sim). */
    std::optional<double> bisectionMBps;
    /** Bisection bandwidth in bytes per processor cycle. */
    std::optional<double> bytesPerCycle;
    /** One-way latency of a 24-byte packet, processor cycles. */
    std::optional<double> netLatencyCycles;
    /** Average remote miss latency, cycles; nullopt for "N/A". */
    std::optional<double> remoteMissCycles;
    /** Local miss latency, cycles. */
    double localMissCycles = 0.0;

    /** Table 2 column: bisection bytes per local-miss time. */
    std::optional<double> bytesPerLocalMiss() const;

    /** Table 2 column: network latency in local-miss times. */
    std::optional<double> netLatInLocalMisses() const;

    /**
     * Build a MachineConfig approximating this design point on the
     * simulator's 8x4 mesh: clock, per-link bandwidth chosen to match
     * the bisection, and per-hop latency fit to the one-way latency.
     */
    MachineConfig toConfig() const;
};

/** All Table 1 rows, in paper order. */
const std::vector<GalleryEntry> &galleryMachines();

/** Lookup by name; nullptr if unknown. */
const GalleryEntry *galleryFind(const std::string &name);

} // namespace alewife

#endif // ALEWIFE_MACHINE_GALLERY_HH
