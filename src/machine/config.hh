/**
 * @file
 * MachineConfig: every cost knob of the simulated multiprocessor.
 *
 * Defaults model the 32-node MIT Alewife machine of the paper: 20 MHz
 * Sparcle processors, a 4x8 EMRC 2D mesh with 40+ MB/s links (360 MB/s
 * bisection = 18 bytes/processor-cycle), 64 KB direct-mapped caches with
 * 16-byte lines, the LimitLESS limited directory (5 hardware pointers),
 * and the message costs quoted in Section 3 and the Figure 3 table.
 *
 * Processor-side costs are expressed in processor cycles (they scale with
 * the clock, as on the real machine); network costs are expressed in
 * wall-clock terms (ns per hop, MB/s per link) because the Alewife network
 * is asynchronous — this is exactly what makes the paper's clock-scaling
 * latency emulation (Figure 9) work.
 */

#ifndef ALEWIFE_MACHINE_CONFIG_HH
#define ALEWIFE_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace alewife {

/** Full parameter set for a simulated machine. */
struct MachineConfig
{
    std::string name = "alewife-32";

    // ------------------------------------------------------------------
    // Topology and clocks
    // ------------------------------------------------------------------
    /** Mesh width (X dimension). Alewife 32-node: 8. */
    int meshX = 8;
    /** Mesh height (Y dimension). Alewife 32-node: 4. */
    int meshY = 4;
    /** Processor clock in MHz. Alewife: 20; Fig. 9 sweeps 14..20+. */
    double procMhz = 20.0;

    // ------------------------------------------------------------------
    // Network (wall-clock units; converted to cycles via procMhz)
    // ------------------------------------------------------------------
    /** Per-link bandwidth in MB/s. 45 MB/s * 8 bisection links = 360. */
    double linkMBps = 45.0;
    /** Per-hop head routing latency in ns (0.8 cycles @ 20 MHz). */
    double hopNs = 40.0;
    /** Fixed network injection/ejection latency in ns per traversal. */
    double netFixedNs = 100.0;

    /** If true, replace the mesh with an ideal uniform-latency network. */
    bool idealNet = false;
    /** One-way latency of the ideal network, in processor cycles. */
    double idealNetLatencyCycles = 15.0;
    /**
     * Per-remote-miss context-switch overhead (cycles) charged in ideal-
     * network mode, modelling the Sparcle switch to a delay-loop thread
     * used by the paper's Figure 10 emulation.
     */
    double contextSwitchCycles = 14.0;

    // ------------------------------------------------------------------
    // Memory system
    // ------------------------------------------------------------------
    /** Per-node cache capacity in bytes (Alewife: 64 KB). */
    std::uint32_t cacheBytes = 64 * 1024;
    /** Cache line size in bytes (Alewife: 16). */
    std::uint32_t lineBytes = 16;
    /** Cache hit time in cycles. */
    double cacheHitCycles = 1.0;
    /** Full penalty of a local miss (Fig. 3: 11 cycles). */
    double localMissCycles = 11.0;

    // ------------------------------------------------------------------
    // Coherence protocol (LimitLESS-style limited directory)
    // ------------------------------------------------------------------
    /** Hardware directory pointers before software traps (Alewife: 5). */
    int dirHwPointers = 5;
    /** Requester-side cycles to detect a miss and launch a request. */
    double reqIssueCycles = 6.0;
    /** CMMU occupancy per protocol transaction at the home node. */
    double homeOccupancyCycles = 6.0;
    /** Requester-side cycles to consume a data reply and refill. */
    double replyConsumeCycles = 6.0;
    /** Cache-side cycles to process an invalidate or recall. */
    double invProcessCycles = 4.0;
    /**
     * Home-processor cycles stolen by one LimitLESS software trap
     * (Fig. 3: software-handled read ~425 cycles end to end).
     */
    double limitlessTrapCycles = 320.0;
    /** Extra software cycles per directory pointer beyond the trap base. */
    double limitlessPerSharerCycles = 12.0;

    /**
     * Protocol-variant extension: when true, dirty misses are served
     * DASH-style — the home forwards the request to the owner, which
     * sends the line directly to the requester (3 serial hops) instead
     * of Alewife's recall-through-home (4 serial hops). Default off to
     * match the paper's machine.
     */
    bool threeHopForwarding = false;

    // ------------------------------------------------------------------
    // Protocol packet sizes (bytes)
    // ------------------------------------------------------------------
    std::uint32_t protoCtrlBytes = 16;  ///< GETS/GETX/RECALL/INV/ACK
    std::uint32_t protoDataHdrBytes = 8; ///< header of a data packet

    // ------------------------------------------------------------------
    // Active messages
    // ------------------------------------------------------------------
    /** Sender cycles to construct + launch an active message. */
    double amSendCycles = 28.0;
    /** Cycles per 64-bit argument word stuffed into the send queue. */
    double amSendPerWordCycles = 6.0;
    /** Receiver interrupt entry/exit overhead (cycles). */
    double amInterruptCycles = 42.0;
    /** Receiver handler dispatch cost, both interrupt and polled. */
    double amDispatchCycles = 12.0;
    /** Cycles per 64-bit word the handler reads from the NI window. */
    double amRecvPerWordCycles = 5.0;
    /** Cost of one poll that finds the queue empty. */
    double pollEmptyCycles = 4.0;
    /**
     * How many inner-loop work items the applications execute between
     * user-inserted poll points (polling mode only). Small values add
     * poll overhead; large ones let the NI queue back up into the
     * network (the conservatism trade-off of Section 4.4.3).
     */
    int pollInsertionGap = 4;
    /** AM header size in bytes. */
    std::uint32_t amHeaderBytes = 8;
    /** Max argument words the NI can hold (Alewife: 14 32-bit = 7 x64). */
    int amMaxWords = 14;
    /** NI input queue capacity, in messages. */
    int niInputQueueSlots = 8;
    /** Cycles between mesh redelivery attempts when the NI is full. */
    double niRetryCycles = 16.0;

    // ------------------------------------------------------------------
    // DMA / bulk transfer
    // ------------------------------------------------------------------
    /** Sender cycles to set up a DMA descriptor. */
    double dmaSetupCycles = 20.0;
    /** Software gather/scatter cost per cache line copied (Sec. 4: 60). */
    double gatherScatterPerLineCycles = 60.0;
    /** DMA alignment granularity in bytes (Alewife: double-word). */
    std::uint32_t dmaAlignBytes = 8;

    // ------------------------------------------------------------------
    // Prefetch
    // ------------------------------------------------------------------
    /** Prefetch buffer entries (lines). */
    int prefetchBufferEntries = 16;
    /** Max in-flight prefetch transactions. */
    int prefetchMaxOutstanding = 4;
    /** Cycles to issue one prefetch instruction. */
    double prefetchIssueCycles = 2.0;
    /** Cycles to move a line from the prefetch buffer into the cache. */
    double prefetchBufferHitCycles = 3.0;

    /**
     * Maximum in-flight non-blocking stores (relaxed-consistency
     * extension; Ctx::writeNB / Ctx::fence). Sequentially consistent
     * demand accesses are unaffected by this knob.
     */
    int maxOutstandingWrites = 4;

    // ------------------------------------------------------------------
    // Application cost model
    // ------------------------------------------------------------------
    /** Cycles per double-precision FLOP (Sparcle+FPU, non-pipelined). */
    double cyclesPerFlop = 5.0;
    /** Cycles per single-precision FLOP. */
    double cyclesPerFlopSP = 3.0;

    // ------------------------------------------------------------------
    // Derived quantities
    // ------------------------------------------------------------------
    /** Number of compute nodes. */
    int nodes() const { return meshX * meshY; }

    /** Link bandwidth in bytes per processor cycle. */
    double linkBytesPerCycle() const { return linkMBps / procMhz; }

    /**
     * Native bisection bandwidth in bytes per processor cycle: cutting the
     * X dimension in half crosses meshY channels, each with a link in both
     * directions.
     */
    double
    bisectionBytesPerCycle() const
    {
        return 2.0 * meshY * linkBytesPerCycle();
    }

    /** Bisection bandwidth in MB/s. */
    double bisectionMBps() const { return 2.0 * meshY * linkMBps; }

    /** Per-hop latency in processor cycles. */
    double hopCycles() const { return hopNs * procMhz / 1000.0; }

    /** Fixed per-traversal network latency in processor cycles. */
    double netFixedCycles() const { return netFixedNs * procMhz / 1000.0; }

    /** Words per cache line (64-bit words). */
    std::uint32_t wordsPerLine() const { return lineBytes / 8; }

    /**
     * One-way latency in cycles for a packet of @p bytes over @p hops
     * (uncontended), as used for the Table 1 "Network Latency" column.
     */
    double onewayLatencyCycles(std::uint32_t bytes, int hops) const;

    /** Average hop count between two random nodes of the mesh. */
    double averageHops() const;

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;

    /**
     * Canonical textual form of every cost knob, for stable hashing
     * (the experiment result cache keys on it). Field order is fixed;
     * doubles are printed with full round-trip precision, so two
     * configs share a key iff every parameter is bit-identical. The
     * display name is deliberately excluded — it does not affect the
     * simulation.
     */
    std::string canonicalKey() const;
};

} // namespace alewife

#endif // ALEWIFE_MACHINE_CONFIG_HH
