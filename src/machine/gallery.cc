#include "machine/gallery.hh"

#include <cmath>

namespace alewife {

std::optional<double>
GalleryEntry::bytesPerLocalMiss() const
{
    if (!bytesPerCycle)
        return std::nullopt;
    return *bytesPerCycle * localMissCycles;
}

std::optional<double>
GalleryEntry::netLatInLocalMisses() const
{
    if (!netLatencyCycles)
        return std::nullopt;
    return *netLatencyCycles / localMissCycles;
}

MachineConfig
GalleryEntry::toConfig() const
{
    MachineConfig c;
    c.name = name;
    c.procMhz = procMhz;
    c.meshX = 8;
    c.meshY = 4;
    c.localMissCycles = localMissCycles;
    if (bisectionMBps) {
        // 2 * meshY unidirectional links cross the bisection.
        c.linkMBps = *bisectionMBps / (2.0 * c.meshY);
    }
    if (netLatencyCycles) {
        // Split the one-way latency of a 24-byte packet between the
        // fixed cost, the serialization and the per-hop component over
        // the average hop count.
        const double ser = 24.0 / c.linkBytesPerCycle();
        const double hops = c.averageHops();
        double rest = *netLatencyCycles - ser;
        if (rest < 1.0)
            rest = 1.0;
        // Half fixed, half per-hop.
        c.netFixedNs = 0.5 * rest / procMhz * 1000.0;
        c.hopNs = 0.5 * rest / hops / procMhz * 1000.0;
    }
    return c;
}

const std::vector<GalleryEntry> &
galleryMachines()
{
    // Values from Table 1 of the paper (32-processor configurations).
    static const std::vector<GalleryEntry> table = {
        {"MIT Alewife", 20.0, "4x8 Mesh", 360.0, 18.0, 15.0, 50.0, 11.0},
        {"TMC CM5", 33.0, "4-ary Fat-Tree", 640.0, 19.4, 50.0,
         std::nullopt, 16.0},
        {"KSR-2", 20.0, "Ring", 1000.0, 50.0, std::nullopt, 126.0, 18.0},
        {"MIT J-Machine", 12.5, "4x4x2 Mesh", 3200.0, 256.0, 7.0,
         std::nullopt, 7.0},
        {"MIT M-Machine", 100.0, "4x4x2 Mesh", 12800.0, 128.0, 10.0,
         154.0, 21.0},
        {"Intel Delta", 40.0, "4x8 Mesh", 216.0, 5.4, 15.0, std::nullopt,
         10.0},
        {"Intel Paragon", 50.0, "4x8 Mesh", 2800.0, 56.0, 12.0,
         std::nullopt, 10.0},
        {"Stanford DASH", 33.0, "2x4 clusters", 480.0, 14.5, 31.0, 120.0,
         30.0},
        {"Stanford FLASH", 200.0, "4x8 Mesh", 3200.0, 16.0, 62.0, 352.0,
         40.0},
        {"Wisconsin T0", 200.0, "none simulated", std::nullopt,
         std::nullopt, 200.0, 1461.0, 40.0},
        {"Wisconsin T1", 200.0, "none simulated", std::nullopt,
         std::nullopt, 200.0, 401.0, 40.0},
        {"Cray T3D", 150.0, "4x2x2 Torus", 4800.0, 32.0, 15.0, 100.0,
         23.0},
        {"Cray T3E", 300.0, "4x4x2 Torus", 19200.0, 64.0, 110.0, 450.0,
         80.0},
        {"SGI Origin", 200.0, "Hypercube", 10800.0, 54.0, 60.0, 150.0,
         61.0},
    };
    return table;
}

const GalleryEntry *
galleryFind(const std::string &name)
{
    for (const auto &e : galleryMachines()) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

} // namespace alewife
