/**
 * @file
 * Machine: the assembled simulated multiprocessor.
 *
 * Owns the event queue, the mesh, the global address space, and one
 * node-set (processor, cache, prefetch buffer, coherence controller,
 * network interface, programming context) per mesh position. A run
 * launches one program coroutine per node and drives the event queue
 * until every program completes.
 */

#ifndef ALEWIFE_MACHINE_MACHINE_HH
#define ALEWIFE_MACHINE_MACHINE_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "check/perturb.hh"
#include "coh/coherence.hh"
#include "machine/config.hh"
#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "msg/active_messages.hh"
#include "net/cross_traffic.hh"
#include "net/mesh.hh"
#include "proc/context.hh"
#include "proc/prefetch_buffer.hh"
#include "proc/processor.hh"
#include "proc/sync.hh"
#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace alewife::check {
class Hooks;
class HookFanout;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife::sim {
class ParallelExec;
struct ExecRecord;
}

namespace alewife {

/**
 * A fully wired simulated multiprocessor.
 */
class Machine
{
  public:
    /** Builds a program coroutine for one node. */
    using ProgramFactory = std::function<sim::Thread(proc::Ctx &)>;

    Machine(MachineConfig cfg, proc::SyncStyle style, msg::RecvMode mode);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    int nodes() const { return cfg_.nodes(); }
    const MachineConfig &config() const { return cfg_; }

    EventQueue &eq() { return eq_; }
    net::Mesh &mesh() { return *mesh_; }
    mem::AddressSpace &mem() { return *mem_; }
    msg::HandlerRegistry &handlers() { return handlers_; }

    /**
     * Aggregated machine-wide counters. Each node increments its own
     * cache-line-aligned shard (so parallel windows never contend on a
     * shared line); this sums the shards into a stable snapshot. Call
     * from serial phases only (between windows or after a run).
     */
    MachineCounters &counters();

    proc::SyncSystem &sync() { return *sync_; }

    proc::Ctx &ctx(int i) { return *nodes_[i]->ctx; }
    proc::Proc &procAt(int i) { return nodes_[i]->proc; }
    coh::CoherenceController &cohAt(int i) { return *nodes_[i]->coh; }
    msg::NetIface &niAt(int i) { return *nodes_[i]->ni; }
    mem::Cache &cacheAt(int i) { return nodes_[i]->cache; }
    proc::PrefetchBuffer &pfbAt(int i) { return nodes_[i]->pfb; }

    /** Attach cross-traffic injectors (call before run()). */
    void addCrossTraffic(net::CrossTrafficConfig cfg);

    /**
     * Apply schedule-perturbation knobs (fuzzing). Call before run();
     * a disabled config is a no-op, leaving the run bit-identical.
     */
    void setPerturbation(const check::PerturbConfig &p);

    /**
     * Worker threads for run(). 1 (the default) drives the serial
     * kernel; >= 2 requests the conservative time-windowed parallel
     * engine (sim/parallel.hh). The engine only engages when the run
     * is eligible — see parallelEligible(); otherwise run() silently
     * falls back to the serial kernel. Results are bit-identical
     * either way. Call before run().
     */
    void setThreads(int threads);
    int threads() const { return threads_; }

    /**
     * True iff run() would use the parallel engine right now:
     * threads >= 2, at least two nodes, a positive cross-LP lookahead
     * (mesh minimum cross-node latency), no trace category enabled
     * (trace lines read per-LP time), and every attached hook
     * parallel-capable. Tie-break perturbation is allowed (it runs in
     * the slower gated-live mode).
     */
    bool parallelEligible() const;

    /**
     * Windows committed by the parallel engine during the last run;
     * 0 means the run executed on the serial kernel.
     */
    std::uint64_t parallelWindows() const { return parWindows_; }

    /** Default tick limit for run(): panic past 4G cycles. */
    static constexpr Tick kDefaultRunLimit =
        cyclesToTicks(std::uint64_t(4'000'000'000));

    /**
     * Launch one program per node and drive the simulation until all
     * programs complete. Equivalent to start(f); while (stepOne(limit))
     * {}; finishRun() — the stepping primitives exist so checkpoint
     * drivers can pause the machine at a precise event count.
     * @param f per-node program factory
     * @param limit panic if simulated time would exceed this
     * @return the finish tick (max completion time over nodes)
     */
    Tick run(const ProgramFactory &f, Tick limit = kDefaultRunLimit);

    /** Launch one program coroutine per node plus cross-traffic. */
    void start(const ProgramFactory &f);

    /**
     * Execute one event. Panics on deadlock (no event while programs
     * are unfinished) or when simulated time exceeds @p limit.
     * @return false iff every program has completed (no event popped)
     */
    bool stepOne(Tick limit = kDefaultRunLimit);

    /**
     * Drive the machine until @p events total events have executed
     * (eq().eventsExecuted() == events) or all programs complete,
     * whichever is first. Used by checkpoint capture/restore: the
     * executed-event count is the canonical replay position.
     * @return true if the machine paused exactly at @p events
     */
    bool stepUntilEvents(std::uint64_t events,
                         Tick limit = kDefaultRunLimit);

    /** True once every node's program has completed. */
    bool programsDone() const { return allDone(); }

    /**
     * Stop cross-traffic, quiesce in-flight protocol traffic, and
     * compute the finish tick. The tail of run().
     */
    Tick finishRun();

    /** Finish tick of the last run. */
    Tick finishTick() const { return finishTick_; }

    /**
     * Read the architectural value of a shared word after a run,
     * honouring dirty copies still sitting in caches or prefetch
     * buffers. Verification only.
     */
    std::uint64_t debugWord(Addr a);

    /** debugWord, bit-cast to double. */
    double debugDouble(Addr a);

    /** Sum of per-node time breakdowns of the last run. */
    TimeBreakdown breakdownSum() const;

    /** Application communication volume so far. */
    const VolumeBreakdown &volume() const { return mesh_->volume(); }

    /**
     * Attach an observer (invariant auditor, obs recorder) to every
     * component. One observer is wired by direct pointer; several are
     * multiplexed through one check::HookFanout, so the detached cost
     * stays a null check and the single-observer cost one virtual
     * call. Observers see events in attachment order and must outlive
     * the machine's last run.
     */
    void attachHooks(check::Hooks *hooks);

  private:
    /** Checkpoint capture/verify reads private machine state. */
    friend class alewife::ckpt::Access;

    /** Point every component's hook pointer at @p h. */
    void wireHooks(check::Hooks *h);

    [[noreturn]] void panicDeadlock() const;
    struct Node
    {
        Node(NodeId id, Machine &m);

        proc::Proc proc;
        mem::Cache cache;
        proc::PrefetchBuffer pfb;
        std::unique_ptr<coh::CoherenceController> coh;
        std::unique_ptr<msg::NetIface> ni;
        std::unique_ptr<proc::Ctx> ctx;
    };

    bool allDone() const;

    /** Sum of every per-node counter shard. */
    MachineCounters countersAggregate() const;

    /** Owning LP of a tagged pending event; LP nodes() is the
     *  cross-traffic injector, -1 is unclassifiable (panics). */
    int eventLp(const EventMeta &meta) const;

    /** Drive the started machine to completion with the windowed
     *  parallel engine (run()'s middle when parallelEligible()). */
    void runParallelLoop(Tick limit);

    MachineConfig cfg_;
    EventQueue eq_;
    MachineCounters counters_;

    /**
     * Per-node counter shards, one cache line each: every component of
     * node i holds a reference to shards_[i].c, so counter increments
     * during parallel windows stay single-writer per line. Sized once
     * in the ctor, before any Node captures its reference.
     */
    struct alignas(64) CounterShard
    {
        MachineCounters c;
    };
    std::vector<CounterShard> shards_;

    int threads_ = 1;
    std::uint64_t parWindows_ = 0;
    /**
     * Serial-order stop tick of the last parallel run: the `when` of
     * the event that completed the final unfinished program. The
     * serial loop stops there, so finishRun() bounds its quiesce drain
     * from this tick (not the possibly-later window-commit clock) to
     * keep the drained event set identical to the serial engine's.
     * 0 = serial run (use eq_.now()).
     */
    Tick parStopTick_ = 0;
    msg::HandlerRegistry handlers_;
    std::unique_ptr<net::Mesh> mesh_;
    std::unique_ptr<mem::AddressSpace> mem_;
    std::unique_ptr<proc::SyncSystem> sync_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<net::CrossTraffic> cross_;
    Tick finishTick_ = 0;

    // Attached observers and the fanout used once there are >= 2.
    std::vector<check::Hooks *> hookObs_;
    std::unique_ptr<check::HookFanout> hookFanout_;
};

} // namespace alewife

#endif // ALEWIFE_MACHINE_MACHINE_HH
