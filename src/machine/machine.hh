/**
 * @file
 * Machine: the assembled simulated multiprocessor.
 *
 * Owns the event queue, the mesh, the global address space, and one
 * node-set (processor, cache, prefetch buffer, coherence controller,
 * network interface, programming context) per mesh position. A run
 * launches one program coroutine per node and drives the event queue
 * until every program completes.
 */

#ifndef ALEWIFE_MACHINE_MACHINE_HH
#define ALEWIFE_MACHINE_MACHINE_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "check/perturb.hh"
#include "coh/coherence.hh"
#include "machine/config.hh"
#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "msg/active_messages.hh"
#include "net/cross_traffic.hh"
#include "net/mesh.hh"
#include "proc/context.hh"
#include "proc/prefetch_buffer.hh"
#include "proc/processor.hh"
#include "proc/sync.hh"
#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace alewife::check {
class Hooks;
class HookFanout;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife {

/**
 * A fully wired simulated multiprocessor.
 */
class Machine
{
  public:
    /** Builds a program coroutine for one node. */
    using ProgramFactory = std::function<sim::Thread(proc::Ctx &)>;

    Machine(MachineConfig cfg, proc::SyncStyle style, msg::RecvMode mode);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    int nodes() const { return cfg_.nodes(); }
    const MachineConfig &config() const { return cfg_; }

    EventQueue &eq() { return eq_; }
    net::Mesh &mesh() { return *mesh_; }
    mem::AddressSpace &mem() { return *mem_; }
    msg::HandlerRegistry &handlers() { return handlers_; }
    MachineCounters &counters() { return counters_; }
    proc::SyncSystem &sync() { return *sync_; }

    proc::Ctx &ctx(int i) { return *nodes_[i]->ctx; }
    proc::Proc &procAt(int i) { return nodes_[i]->proc; }
    coh::CoherenceController &cohAt(int i) { return *nodes_[i]->coh; }
    msg::NetIface &niAt(int i) { return *nodes_[i]->ni; }
    mem::Cache &cacheAt(int i) { return nodes_[i]->cache; }
    proc::PrefetchBuffer &pfbAt(int i) { return nodes_[i]->pfb; }

    /** Attach cross-traffic injectors (call before run()). */
    void addCrossTraffic(net::CrossTrafficConfig cfg);

    /**
     * Apply schedule-perturbation knobs (fuzzing). Call before run();
     * a disabled config is a no-op, leaving the run bit-identical.
     */
    void setPerturbation(const check::PerturbConfig &p);

    /** Default tick limit for run(): panic past 4G cycles. */
    static constexpr Tick kDefaultRunLimit =
        cyclesToTicks(std::uint64_t(4'000'000'000));

    /**
     * Launch one program per node and drive the simulation until all
     * programs complete. Equivalent to start(f); while (stepOne(limit))
     * {}; finishRun() — the stepping primitives exist so checkpoint
     * drivers can pause the machine at a precise event count.
     * @param f per-node program factory
     * @param limit panic if simulated time would exceed this
     * @return the finish tick (max completion time over nodes)
     */
    Tick run(const ProgramFactory &f, Tick limit = kDefaultRunLimit);

    /** Launch one program coroutine per node plus cross-traffic. */
    void start(const ProgramFactory &f);

    /**
     * Execute one event. Panics on deadlock (no event while programs
     * are unfinished) or when simulated time exceeds @p limit.
     * @return false iff every program has completed (no event popped)
     */
    bool stepOne(Tick limit = kDefaultRunLimit);

    /**
     * Drive the machine until @p events total events have executed
     * (eq().eventsExecuted() == events) or all programs complete,
     * whichever is first. Used by checkpoint capture/restore: the
     * executed-event count is the canonical replay position.
     * @return true if the machine paused exactly at @p events
     */
    bool stepUntilEvents(std::uint64_t events,
                         Tick limit = kDefaultRunLimit);

    /** True once every node's program has completed. */
    bool programsDone() const { return allDone(); }

    /**
     * Stop cross-traffic, quiesce in-flight protocol traffic, and
     * compute the finish tick. The tail of run().
     */
    Tick finishRun();

    /** Finish tick of the last run. */
    Tick finishTick() const { return finishTick_; }

    /**
     * Read the architectural value of a shared word after a run,
     * honouring dirty copies still sitting in caches or prefetch
     * buffers. Verification only.
     */
    std::uint64_t debugWord(Addr a);

    /** debugWord, bit-cast to double. */
    double debugDouble(Addr a);

    /** Sum of per-node time breakdowns of the last run. */
    TimeBreakdown breakdownSum() const;

    /** Application communication volume so far. */
    const VolumeBreakdown &volume() const { return mesh_->volume(); }

    /**
     * Attach an observer (invariant auditor, obs recorder) to every
     * component. One observer is wired by direct pointer; several are
     * multiplexed through one check::HookFanout, so the detached cost
     * stays a null check and the single-observer cost one virtual
     * call. Observers see events in attachment order and must outlive
     * the machine's last run.
     */
    void attachHooks(check::Hooks *hooks);

  private:
    /** Checkpoint capture/verify reads private machine state. */
    friend class alewife::ckpt::Access;

    /** Point every component's hook pointer at @p h. */
    void wireHooks(check::Hooks *h);

    [[noreturn]] void panicDeadlock() const;
    struct Node
    {
        Node(NodeId id, Machine &m);

        proc::Proc proc;
        mem::Cache cache;
        proc::PrefetchBuffer pfb;
        std::unique_ptr<coh::CoherenceController> coh;
        std::unique_ptr<msg::NetIface> ni;
        std::unique_ptr<proc::Ctx> ctx;
    };

    bool allDone() const;

    MachineConfig cfg_;
    EventQueue eq_;
    MachineCounters counters_;
    msg::HandlerRegistry handlers_;
    std::unique_ptr<net::Mesh> mesh_;
    std::unique_ptr<mem::AddressSpace> mem_;
    std::unique_ptr<proc::SyncSystem> sync_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<net::CrossTraffic> cross_;
    Tick finishTick_ = 0;

    // Attached observers and the fanout used once there are >= 2.
    std::vector<check::Hooks *> hookObs_;
    std::unique_ptr<check::HookFanout> hookFanout_;
};

} // namespace alewife

#endif // ALEWIFE_MACHINE_MACHINE_HH
