#include "machine/machine.hh"

#include <sstream>

#include "check/hooks.hh"
#include "sim/logging.hh"

namespace alewife {

Machine::Node::Node(NodeId id, Machine &m)
    : proc(id, m.eq_, m.cfg_),
      cache(m.cfg_.cacheBytes, m.cfg_.lineBytes),
      pfb(m.cfg_.prefetchBufferEntries)
{
    coh = std::make_unique<coh::CoherenceController>(
        id, m.eq_, m.cfg_, *m.mem_, cache, pfb, proc, *m.mesh_,
        m.counters_);
    ni = std::make_unique<msg::NetIface>(id, m.eq_, m.cfg_, proc, *m.mesh_,
                                         m.handlers_, m.counters_);
    ctx = std::make_unique<proc::Ctx>(id, m.cfg_.nodes(), m.cfg_, proc,
                                      *coh, *ni, *m.sync_, m.counters_);
}

Machine::Machine(MachineConfig cfg, proc::SyncStyle style,
                 msg::RecvMode mode)
    : cfg_(std::move(cfg))
{
    cfg_.validate();
    mesh_ = std::make_unique<net::Mesh>(eq_, cfg_);
    mem_ = std::make_unique<mem::AddressSpace>(cfg_.nodes(),
                                               cfg_.lineBytes);
    sync_ = std::make_unique<proc::SyncSystem>(cfg_.nodes(), style);

    if (style == proc::SyncStyle::SharedMemory)
        sync_->setupSharedMemory(*mem_);
    else
        sync_->setupMessagePassing(handlers_);

    nodes_.reserve(cfg_.nodes());
    for (int i = 0; i < cfg_.nodes(); ++i) {
        nodes_.push_back(std::make_unique<Node>(i, *this));
        nodes_.back()->ni->setMode(mode);
    }

    for (int i = 0; i < cfg_.nodes(); ++i) {
        mesh_->setSink(i, [this, i](net::Packet &p) -> bool {
            switch (p.kind) {
              case net::PacketKind::Coherence: {
                auto *m = static_cast<coh::ProtoMsg *>(p.payload.get());
                nodes_[i]->coh->receive(std::move(*m));
                return true;
              }
              case net::PacketKind::ActiveMessage:
                return nodes_[i]->ni->receive(p);
              case net::PacketKind::CrossTraffic:
                return true; // drains off the mesh edge
            }
            ALEWIFE_PANIC("bad packet kind");
        });
    }
}

Machine::~Machine() = default;

void
Machine::attachHooks(check::Hooks *hooks)
{
    hookObs_.push_back(hooks);
    check::Hooks *effective = hookObs_.front();
    if (hookObs_.size() > 1) {
        if (!hookFanout_)
            hookFanout_ = std::make_unique<check::HookFanout>();
        hookFanout_->clear();
        for (check::Hooks *h : hookObs_)
            hookFanout_->add(h);
        effective = hookFanout_.get();
    }
    wireHooks(effective);
}

void
Machine::wireHooks(check::Hooks *h)
{
    eq_.setAuditHooks(h);
    mesh_->setAuditHooks(h);
    for (int i = 0; i < nodes(); ++i) {
        cacheAt(i).setAuditHooks(h, i);
        pfbAt(i).setAuditHooks(h, i);
        cohAt(i).setAuditHooks(h);
        procAt(i).setAuditHooks(h);
    }
}

void
Machine::addCrossTraffic(net::CrossTrafficConfig cfg)
{
    cross_ = std::make_unique<net::CrossTraffic>(eq_, *mesh_, cfg);
}

void
Machine::setPerturbation(const check::PerturbConfig &p)
{
    if (p.tieBreak)
        eq_.setTieBreak(p.seed);
    if (p.hopJitterFrac > 0.0)
        mesh_->setHopJitter(p.hopJitterFrac,
                            p.seed ^ 0x9e3779b97f4a7c15ULL);
}

bool
Machine::allDone() const
{
    for (const auto &n : nodes_) {
        if (!n->proc.done())
            return false;
    }
    return true;
}

void
Machine::start(const ProgramFactory &f)
{
    for (auto &n : nodes_)
        n->proc.start(f(*n->ctx));
    if (cross_)
        cross_->start();
}

void
Machine::panicDeadlock() const
{
    std::ostringstream os;
    for (const auto &n : nodes_) {
        if (!n->proc.done()) {
            os << " node " << n->proc.id() << " state "
               << static_cast<int>(n->proc.state());
        }
    }
    os << "\n";
    for (const auto &n : nodes_)
        n->coh->debugDump(os);
    ALEWIFE_PANIC("simulation deadlock at tick ", eq_.now(), ":",
                  os.str());
}

bool
Machine::stepOne(Tick limit)
{
    if (allDone())
        return false;
    if (!eq_.processOne())
        panicDeadlock();
    if (eq_.now() > limit)
        ALEWIFE_PANIC("simulation exceeded tick limit ", limit);
    return true;
}

bool
Machine::stepUntilEvents(std::uint64_t events, Tick limit)
{
    while (eq_.eventsExecuted() < events) {
        if (!stepOne(limit))
            return false;
    }
    return eq_.eventsExecuted() == events;
}

Tick
Machine::finishRun()
{
    if (cross_)
        cross_->stop();

    // Quiesce: let in-flight protocol traffic (victim writebacks, final
    // acks) land so post-run verification sees settled state. Bounded in
    // case stray NI retries linger in polling mode.
    eq_.runUntil(eq_.now() + cyclesToTicks(std::uint64_t(200'000)));

    finishTick_ = 0;
    for (const auto &n : nodes_)
        finishTick_ = std::max(finishTick_, n->proc.localNow());
    return finishTick_;
}

Tick
Machine::run(const ProgramFactory &f, Tick limit)
{
    start(f);
    while (stepOne(limit)) {
    }
    return finishRun();
}

std::uint64_t
Machine::debugWord(Addr a)
{
    const Addr line = a & ~static_cast<Addr>(cfg_.lineBytes - 1);
    const NodeId home = mem_->home(a);
    const NodeId owner = nodes_[home]->coh->dirOwner(line);
    if (owner >= 0) {
        std::uint64_t v = 0;
        if (nodes_[owner]->coh->debugLocalWord(a, v))
            return v;
        // Owner's copy is in flight back to memory; fall through.
    }
    return mem_->loadWord(a);
}

double
Machine::debugDouble(Addr a)
{
    return std::bit_cast<double>(debugWord(a));
}

TimeBreakdown
Machine::breakdownSum() const
{
    TimeBreakdown sum;
    for (const auto &n : nodes_)
        sum += n->proc.breakdown();
    return sum;
}

} // namespace alewife
