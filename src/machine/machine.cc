#include "machine/machine.hh"

#include <atomic>
#include <sstream>

#include "check/hooks.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"

namespace alewife {

Machine::Node::Node(NodeId id, Machine &m)
    : proc(id, m.eq_, m.cfg_),
      cache(m.cfg_.cacheBytes, m.cfg_.lineBytes),
      pfb(m.cfg_.prefetchBufferEntries)
{
    // Every component of this node counts into the node's own shard;
    // machine-wide totals are summed on demand by counters().
    MachineCounters &shard = m.shards_[static_cast<std::size_t>(id)].c;
    coh = std::make_unique<coh::CoherenceController>(
        id, m.eq_, m.cfg_, *m.mem_, cache, pfb, proc, *m.mesh_, shard);
    ni = std::make_unique<msg::NetIface>(id, m.eq_, m.cfg_, proc, *m.mesh_,
                                         m.handlers_, shard);
    ctx = std::make_unique<proc::Ctx>(id, m.cfg_.nodes(), m.cfg_, proc,
                                      *coh, *ni, *m.sync_, shard);
}

Machine::Machine(MachineConfig cfg, proc::SyncStyle style,
                 msg::RecvMode mode)
    : cfg_(std::move(cfg))
{
    cfg_.validate();
    shards_.resize(static_cast<std::size_t>(cfg_.nodes()));
    mesh_ = std::make_unique<net::Mesh>(eq_, cfg_);
    mem_ = std::make_unique<mem::AddressSpace>(cfg_.nodes(),
                                               cfg_.lineBytes);
    sync_ = std::make_unique<proc::SyncSystem>(cfg_.nodes(), style);

    if (style == proc::SyncStyle::SharedMemory)
        sync_->setupSharedMemory(*mem_);
    else
        sync_->setupMessagePassing(handlers_);

    nodes_.reserve(cfg_.nodes());
    for (int i = 0; i < cfg_.nodes(); ++i) {
        nodes_.push_back(std::make_unique<Node>(i, *this));
        nodes_.back()->ni->setMode(mode);
    }

    for (int i = 0; i < cfg_.nodes(); ++i) {
        mesh_->setSink(i, [this, i](net::Packet &p) -> bool {
            switch (p.kind) {
              case net::PacketKind::Coherence: {
                auto *m = static_cast<coh::ProtoMsg *>(p.payload.get());
                nodes_[i]->coh->receive(std::move(*m));
                return true;
              }
              case net::PacketKind::ActiveMessage:
                return nodes_[i]->ni->receive(p);
              case net::PacketKind::CrossTraffic:
                return true; // drains off the mesh edge
            }
            ALEWIFE_PANIC("bad packet kind");
        });
    }
}

Machine::~Machine() = default;

MachineCounters
Machine::countersAggregate() const
{
    MachineCounters total;
    for (const CounterShard &s : shards_)
        total += s.c;
    return total;
}

MachineCounters &
Machine::counters()
{
    counters_ = countersAggregate();
    return counters_;
}

void
Machine::setThreads(int threads)
{
    if (threads < 1)
        ALEWIFE_FATAL("Machine::setThreads: threads must be >= 1, got ",
                      threads);
    threads_ = threads;
}

bool
Machine::parallelEligible() const
{
    if (threads_ < 2 || cfg_.nodes() < 2)
        return false;
    if (mesh_->crossLookahead() == 0)
        return false;
    if (Trace::anyEnabled())
        return false;
    // The dependency recorder consumes the serial kernel's seq/parent
    // stream; the window engine re-assigns sequence numbers at commit.
    if (eq_.depListener())
        return false;
    for (check::Hooks *h : hookObs_) {
        if (!h->parallelCapable())
            return false;
    }
    return true;
}

int
Machine::eventLp(const EventMeta &meta) const
{
    switch (meta.tag) {
      case EventTag::MeshDeliver:
      case EventTag::MeshDeliverIdeal:
      case EventTag::MeshRetry:
        // Delivery runs the destination's sink (NI queue, controller,
        // handler); rejects re-enter gated mesh state explicitly.
        return reinterpret_cast<const net::Packet *>(meta.a)->dst;
      case EventTag::CohPacketLaunch:
      case EventTag::AmPacketLaunch:
        // The deferred mesh_.send itself is fully gated; the event
        // belongs to the sending node's timeline.
        return reinterpret_cast<const net::Packet *>(meta.a)->src;
      case EventTag::CrossTrafficTick:
        return cfg_.nodes(); // the injector LP
      case EventTag::ProcResume:
      case EventTag::CohLocalDeliver:
      case EventTag::CohProcess:
      case EventTag::CohFill:
      case EventTag::CohHomeDrain:
      case EventTag::CohHomeComplete:
      case EventTag::AmDrain:
        return static_cast<int>(meta.a);
      case EventTag::Untagged:
      case EventTag::kCount:
        break;
    }
    return -1;
}

void
Machine::attachHooks(check::Hooks *hooks)
{
    hookObs_.push_back(hooks);
    check::Hooks *effective = hookObs_.front();
    if (hookObs_.size() > 1) {
        if (!hookFanout_)
            hookFanout_ = std::make_unique<check::HookFanout>();
        hookFanout_->clear();
        for (check::Hooks *h : hookObs_)
            hookFanout_->add(h);
        effective = hookFanout_.get();
    }
    wireHooks(effective);
}

void
Machine::wireHooks(check::Hooks *h)
{
    eq_.setAuditHooks(h);
    mesh_->setAuditHooks(h);
    for (int i = 0; i < nodes(); ++i) {
        cacheAt(i).setAuditHooks(h, i);
        pfbAt(i).setAuditHooks(h, i);
        cohAt(i).setAuditHooks(h);
        procAt(i).setAuditHooks(h);
    }
}

void
Machine::addCrossTraffic(net::CrossTrafficConfig cfg)
{
    cross_ = std::make_unique<net::CrossTraffic>(eq_, *mesh_, cfg);
}

void
Machine::setPerturbation(const check::PerturbConfig &p)
{
    if (p.tieBreak)
        eq_.setTieBreak(p.seed);
    if (p.hopJitterFrac > 0.0)
        mesh_->setHopJitter(p.hopJitterFrac,
                            p.seed ^ 0x9e3779b97f4a7c15ULL);
}

bool
Machine::allDone() const
{
    for (const auto &n : nodes_) {
        if (!n->proc.done())
            return false;
    }
    return true;
}

void
Machine::start(const ProgramFactory &f)
{
    parWindows_ = 0;
    parStopTick_ = 0;
    for (auto &n : nodes_)
        n->proc.start(f(*n->ctx));
    if (cross_)
        cross_->start();
}

void
Machine::panicDeadlock() const
{
    std::ostringstream os;
    for (const auto &n : nodes_) {
        if (!n->proc.done()) {
            os << " node " << n->proc.id() << " state "
               << static_cast<int>(n->proc.state());
        }
    }
    os << "\n";
    for (const auto &n : nodes_)
        n->coh->debugDump(os);
    ALEWIFE_PANIC("simulation deadlock at tick ", eq_.now(), ":",
                  os.str());
}

bool
Machine::stepOne(Tick limit)
{
    if (allDone())
        return false;
    if (!eq_.processOne())
        panicDeadlock();
    if (eq_.now() > limit)
        ALEWIFE_PANIC("simulation exceeded tick limit ", limit);
    return true;
}

bool
Machine::stepUntilEvents(std::uint64_t events, Tick limit)
{
    while (eq_.eventsExecuted() < events) {
        if (!stepOne(limit))
            return false;
    }
    return eq_.eventsExecuted() == events;
}

Tick
Machine::finishRun()
{
    if (cross_)
        cross_->stop();

    // Quiesce: let in-flight protocol traffic (victim writebacks, final
    // acks) land so post-run verification sees settled state. Bounded in
    // case stray NI retries linger in polling mode. A parallel run's
    // final window may have advanced the clock a few ticks past the
    // point where the serial loop stops, so the drain is bounded from
    // the serial-order stop tick — the drained event set (and thus
    // every counter) is identical across engines.
    const Tick stop = parStopTick_ ? parStopTick_ : eq_.now();
    eq_.runUntil(stop + cyclesToTicks(std::uint64_t(200'000)));

    finishTick_ = 0;
    for (const auto &n : nodes_)
        finishTick_ = std::max(finishTick_, n->proc.localNow());
    return finishTick_;
}

void
Machine::runParallelLoop(Tick limit)
{
    const int n = cfg_.nodes();

    // Program-completion records: for node i, the exec record of the
    // event that flipped proc(i).done() — set by the owning worker,
    // read (under the gate) by the cross-traffic stop predicate.
    // Records from committed windows are frozen to a sentinel that
    // precedes every later event, since their arena storage dies at
    // the next plan().
    static constexpr sim::ExecRecord kDoneEarlier{};
    std::vector<std::atomic<const sim::ExecRecord *>> done(
        static_cast<std::size_t>(n));

    sim::ParallelOptions opts;
    opts.threads = threads_;
    opts.lookahead = mesh_->crossLookahead();
    opts.lps = n + 1;
    opts.classify = [this](const EventMeta &meta) {
        return eventLp(meta);
    };
    opts.onRetired = [this, &done, n](int lp,
                                      const sim::ExecRecord *rec) {
        if (lp >= n)
            return;
        if (!nodes_[static_cast<std::size_t>(lp)]->proc.done())
            return;
        // Keep the FIRST record at which done() held: the slot has a
        // single writer (the owning worker), so check-then-store races
        // with nothing.
        auto &slot = done[static_cast<std::size_t>(lp)];
        if (!slot.load(std::memory_order_relaxed))
            slot.store(rec, std::memory_order_release);
    };
    check::Hooks *effective = nullptr;
    if (hookFanout_)
        effective = hookFanout_.get();
    else if (!hookObs_.empty())
        effective = hookObs_.front();
    opts.hooks = effective;
    opts.gatedLive = eq_.tieBreakEnabled();

    sim::ParallelExec exec(eq_, std::move(opts));
    mesh_->setOrderGate(&exec);
    if (cross_) {
        cross_->setQuiescedCheck([&exec, &done, n]() -> bool {
            // Serial semantics: a tick is a no-op iff every program
            // completed strictly before it in serial event order. The
            // gate retires all earlier events first, so every done
            // record this tick could depend on is published.
            exec.gateWait();
            const sim::ExecRecord *cur = sim::currentExecRecord();
            for (int i = 0; i < n; ++i) {
                const sim::ExecRecord *r =
                    done[static_cast<std::size_t>(i)].load(
                        std::memory_order_acquire);
                if (!r || (cur && !sim::execOrderLess(r, cur)))
                    return false;
            }
            return true;
        });
    }
    if (hookFanout_)
        hookFanout_->setOwnerCheck(
            [&exec](NodeId node) { exec.assertOwner(node); });

    while (!allDone()) {
        if (!exec.runWindow())
            panicDeadlock();
        if (eq_.now() > limit)
            ALEWIFE_PANIC("simulation exceeded tick limit ", limit);
        if (allDone()) {
            // The serial loop stops at the event that completed the
            // last program; record its tick for finishRun()'s drain
            // bound before the records are frozen.
            const sim::ExecRecord *last = nullptr;
            for (int i = 0; i < n; ++i) {
                const sim::ExecRecord *r =
                    done[static_cast<std::size_t>(i)].load(
                        std::memory_order_relaxed);
                if (r && r != &kDoneEarlier
                    && (!last || sim::execOrderLess(last, r)))
                    last = r;
            }
            parStopTick_ = last ? last->when : eq_.now();
            break;
        }
        for (int i = 0; i < n; ++i) {
            auto &slot = done[static_cast<std::size_t>(i)];
            const sim::ExecRecord *r =
                slot.load(std::memory_order_relaxed);
            if (r && r != &kDoneEarlier)
                slot.store(&kDoneEarlier, std::memory_order_release);
        }
    }

    parWindows_ = exec.windows();
    if (hookFanout_)
        hookFanout_->setOwnerCheck({});
    if (cross_)
        cross_->setQuiescedCheck({});
    mesh_->setOrderGate(nullptr);
    exec.detach();
}

Tick
Machine::run(const ProgramFactory &f, Tick limit)
{
    start(f);
    if (parallelEligible()) {
        runParallelLoop(limit);
    } else {
        while (stepOne(limit)) {
        }
    }
    return finishRun();
}

std::uint64_t
Machine::debugWord(Addr a)
{
    const Addr line = a & ~static_cast<Addr>(cfg_.lineBytes - 1);
    const NodeId home = mem_->home(a);
    const NodeId owner = nodes_[home]->coh->dirOwner(line);
    if (owner >= 0) {
        std::uint64_t v = 0;
        if (nodes_[owner]->coh->debugLocalWord(a, v))
            return v;
        // Owner's copy is in flight back to memory; fall through.
    }
    return mem_->loadWord(a);
}

double
Machine::debugDouble(Addr a)
{
    return std::bit_cast<double>(debugWord(a));
}

TimeBreakdown
Machine::breakdownSum() const
{
    TimeBreakdown sum;
    for (const auto &n : nodes_)
        sum += n->proc.breakdown();
    return sum;
}

} // namespace alewife
