/**
 * @file
 * The simulated global shared address space.
 *
 * Shared allocations carry real 64-bit data words in a backing store held
 * at the line's home node, so coherence-protocol correctness is checked
 * by the applications' numeric results, not just by counters. Home
 * placement is selectable per allocation: block-distributed (node-major
 * chunks, the distribution the paper's applications use after
 * partitioning), line-interleaved, or pinned to one node.
 */

#ifndef ALEWIFE_MEM_ADDRESS_SPACE_HH
#define ALEWIFE_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace alewife::ckpt {
class Access;
}

namespace alewife::mem {

/** Home-placement policy for one allocation. */
enum class HomePolicy : std::uint8_t
{
    Blocked,     ///< contiguous chunk per node
    Interleaved, ///< consecutive lines round-robin across nodes
    Fixed,       ///< everything on one node
};

/**
 * Allocator + backing store for the global address space.
 */
class AddressSpace
{
  public:
    AddressSpace(int nodes, std::uint32_t line_bytes);

    /**
     * Allocate @p words 64-bit words of shared memory.
     * @param policy home-placement policy
     * @param fixed_node home node when policy == Fixed
     * @return base byte address (line-aligned)
     */
    Addr alloc(std::uint64_t words, HomePolicy policy,
               NodeId fixed_node = 0, const std::string &label = "");

    /** Home node of the line containing @p a. */
    NodeId home(Addr a) const;

    /** Read the backing-store word at @p a (must be 8-byte aligned). */
    std::uint64_t loadWord(Addr a) const;

    /** Write the backing-store word at @p a. */
    void storeWord(Addr a, std::uint64_t v);

    /** Convenience double accessors (bit-cast). */
    double loadDouble(Addr a) const;
    void storeDouble(Addr a, double v);

    /** Align @p a down to its line base. */
    Addr lineBase(Addr a) const { return a & ~static_cast<Addr>(lineBytes_ - 1); }

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t wordsPerLine() const { return lineBytes_ / 8; }
    int nodes() const { return nodes_; }

    /** Total words allocated so far. */
    std::uint64_t wordsAllocated() const { return store_.size(); }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    struct Region
    {
        Addr base;
        std::uint64_t words;
        HomePolicy policy;
        NodeId fixedNode;
        std::string label;
    };

    const Region &regionFor(Addr a) const;

    int nodes_;
    std::uint32_t lineBytes_;
    Addr nextBase_;
    std::vector<Region> regions_;
    std::vector<std::uint64_t> store_;
};

} // namespace alewife::mem

#endif // ALEWIFE_MEM_ADDRESS_SPACE_HH
