#include "mem/address_space.hh"

#include <bit>

#include "sim/logging.hh"

namespace alewife::mem {

AddressSpace::AddressSpace(int nodes, std::uint32_t line_bytes)
    : nodes_(nodes), lineBytes_(line_bytes), nextBase_(line_bytes)
{
    if (nodes < 1)
        ALEWIFE_FATAL("address space needs at least one node");
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        ALEWIFE_FATAL("line size must be a power of two");
}

Addr
AddressSpace::alloc(std::uint64_t words, HomePolicy policy,
                    NodeId fixed_node, const std::string &label)
{
    if (words == 0)
        ALEWIFE_FATAL("zero-sized shared allocation");
    // Round the allocation up to whole lines so distinct allocations never
    // share a line (no false sharing across data structures).
    const std::uint64_t wpl = wordsPerLine();
    const std::uint64_t rounded = (words + wpl - 1) / wpl * wpl;

    Region r;
    r.base = nextBase_;
    r.words = rounded;
    r.policy = policy;
    r.fixedNode = fixed_node;
    r.label = label;
    regions_.push_back(r);

    store_.resize(store_.size() + rounded, 0);
    nextBase_ += rounded * 8;
    return r.base;
}

const AddressSpace::Region &
AddressSpace::regionFor(Addr a) const
{
    // Regions are sorted by base; binary search for the containing one.
    std::size_t lo = 0, hi = regions_.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        const Region &r = regions_[mid];
        if (a < r.base) {
            hi = mid;
        } else if (a >= r.base + r.words * 8) {
            lo = mid + 1;
        } else {
            return r;
        }
    }
    ALEWIFE_PANIC("address ", a, " not in any shared allocation");
}

NodeId
AddressSpace::home(Addr a) const
{
    const Region &r = regionFor(a);
    switch (r.policy) {
      case HomePolicy::Fixed:
        return r.fixedNode;
      case HomePolicy::Interleaved: {
        const std::uint64_t line = (a - r.base) / lineBytes_;
        return static_cast<NodeId>(line % nodes_);
      }
      case HomePolicy::Blocked: {
        // Whole-line chunks, as even as possible.
        const std::uint64_t lines = (r.words * 8) / lineBytes_;
        const std::uint64_t line = (a - r.base) / lineBytes_;
        const std::uint64_t per = (lines + nodes_ - 1) / nodes_;
        return static_cast<NodeId>(line / per);
      }
    }
    ALEWIFE_PANIC("bad home policy");
}

std::uint64_t
AddressSpace::loadWord(Addr a) const
{
    if (a % 8 != 0)
        ALEWIFE_PANIC("unaligned word load at ", a);
    regionFor(a); // bounds check
    // Regions are packed contiguously starting at byte offset lineBytes_.
    return store_[(a - lineBytes_) / 8];
}

void
AddressSpace::storeWord(Addr a, std::uint64_t v)
{
    if (a % 8 != 0)
        ALEWIFE_PANIC("unaligned word store at ", a);
    regionFor(a); // bounds check
    store_[(a - lineBytes_) / 8] = v;
}

double
AddressSpace::loadDouble(Addr a) const
{
    return std::bit_cast<double>(loadWord(a));
}

void
AddressSpace::storeDouble(Addr a, double v)
{
    storeWord(a, std::bit_cast<std::uint64_t>(v));
}

} // namespace alewife::mem
