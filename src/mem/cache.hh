/**
 * @file
 * Per-node direct-mapped data cache (Alewife: 64 KB, 16-byte lines).
 *
 * Only *shared* data goes through this cache in the simulation; private
 * data (loop indices, local buffers) is modelled as part of the compute
 * cost. Lines hold real data words; the coherence layer fills, recalls,
 * invalidates and downgrades them.
 */

#ifndef ALEWIFE_MEM_CACHE_HH
#define ALEWIFE_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace alewife::check {
class Hooks;
}

namespace alewife::ckpt {
class Access;
}

namespace alewife::mem {

/** Cache-line coherence state (MSI; I is "not present"). */
enum class LineState : std::uint8_t
{
    Shared,
    Modified,
};

/**
 * A direct-mapped cache of 64-bit-word lines.
 */
class Cache
{
  public:
    /** What fell out of the cache when a new line was filled. */
    struct Victim
    {
        Addr lineAddr;
        bool dirty;
        std::vector<std::uint64_t> words;
    };

    Cache(std::uint32_t capacity_bytes, std::uint32_t line_bytes);

    /** True if the line containing @p a is present (any state). */
    bool contains(Addr a) const;

    /** State of the line containing @p a; nullopt if absent. */
    std::optional<LineState> state(Addr a) const;

    /** Read a word; line must be present. */
    std::uint64_t readWord(Addr a) const;

    /** Write a word; line must be present in Modified state. */
    void writeWord(Addr a, std::uint64_t v);

    /**
     * Install a line. Returns the displaced dirty victim, if any (clean
     * victims vanish silently).
     */
    std::optional<Victim> fill(Addr line_addr, LineState st,
                               const std::vector<std::uint64_t> &words);

    /**
     * Remove the line containing @p a.
     * @return its words if it was present and dirty (for writeback)
     */
    std::optional<std::vector<std::uint64_t>> invalidate(Addr a);

    /**
     * Downgrade Modified -> Shared; returns the line's words (the home
     * needs them for the writeback) or nullopt if not present/Modified.
     */
    std::optional<std::vector<std::uint64_t>> downgrade(Addr a);

    /** Upgrade Shared -> Modified in place (after a GETX completes). */
    void upgrade(Addr a);

    /** Copy of the line's words; line must be present. */
    std::vector<std::uint64_t> lineWords(Addr a) const;

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t numSets() const { return numSets_; }

    /** Drop every line (used between benchmark repetitions). */
    void flushAll();

    /**
     * Observer notified of fills/evicts/invalidates/state changes and
     * word accesses; may be null. @p node identifies this cache in the
     * observer's view. Auditing across flushAll() is not supported.
     */
    void setAuditHooks(check::Hooks *hooks, NodeId node)
    {
        hooks_ = hooks;
        node_ = node;
    }

  private:
    /** Checkpoint capture/verify reads private state. */
    friend class alewife::ckpt::Access;

    struct Line
    {
        bool valid = false;
        Addr tag = 0; ///< full line address, not just the tag bits
        LineState st = LineState::Shared;
        std::vector<std::uint64_t> words;
    };

    std::uint32_t setOf(Addr a) const;
    Addr lineBase(Addr a) const;
    const Line *find(Addr a) const;
    Line *find(Addr a);

    std::uint32_t lineBytes_;
    std::uint32_t numSets_;
    check::Hooks *hooks_ = nullptr;
    NodeId node_ = -1;
    std::vector<Line> lines_;
};

} // namespace alewife::mem

#endif // ALEWIFE_MEM_CACHE_HH
