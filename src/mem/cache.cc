#include "mem/cache.hh"

#include "check/hooks.hh"
#include "sim/logging.hh"

namespace alewife::mem {

Cache::Cache(std::uint32_t capacity_bytes, std::uint32_t line_bytes)
    : lineBytes_(line_bytes), numSets_(capacity_bytes / line_bytes)
{
    if (numSets_ == 0 || (numSets_ & (numSets_ - 1)) != 0)
        ALEWIFE_FATAL("cache must have a power-of-two number of sets");
    lines_.resize(numSets_);
}

Addr
Cache::lineBase(Addr a) const
{
    return a & ~static_cast<Addr>(lineBytes_ - 1);
}

std::uint32_t
Cache::setOf(Addr a) const
{
    return static_cast<std::uint32_t>((a / lineBytes_) & (numSets_ - 1));
}

const Cache::Line *
Cache::find(Addr a) const
{
    const Line &l = lines_[setOf(a)];
    if (l.valid && l.tag == lineBase(a))
        return &l;
    return nullptr;
}

Cache::Line *
Cache::find(Addr a)
{
    Line &l = lines_[setOf(a)];
    if (l.valid && l.tag == lineBase(a))
        return &l;
    return nullptr;
}

bool
Cache::contains(Addr a) const
{
    return find(a) != nullptr;
}

std::optional<LineState>
Cache::state(Addr a) const
{
    const Line *l = find(a);
    if (!l)
        return std::nullopt;
    return l->st;
}

std::uint64_t
Cache::readWord(Addr a) const
{
    const Line *l = find(a);
    if (!l)
        ALEWIFE_PANIC("readWord on absent line ", a);
    const std::uint64_t v = l->words[(a - l->tag) / 8];
    if (hooks_)
        hooks_->onCacheRead(node_, a, v);
    return v;
}

void
Cache::writeWord(Addr a, std::uint64_t v)
{
    Line *l = find(a);
    if (!l)
        ALEWIFE_PANIC("writeWord on absent line ", a);
    if (l->st != LineState::Modified)
        ALEWIFE_PANIC("writeWord on non-Modified line ", a);
    l->words[(a - l->tag) / 8] = v;
    if (hooks_)
        hooks_->onCacheWrite(node_, a, v);
}

std::optional<Cache::Victim>
Cache::fill(Addr line_addr, LineState st,
            const std::vector<std::uint64_t> &words)
{
    if (line_addr != lineBase(line_addr))
        ALEWIFE_PANIC("fill with unaligned line address");
    Line &l = lines_[setOf(line_addr)];
    std::optional<Victim> victim;
    if (l.valid && l.tag != line_addr) {
        if (hooks_)
            hooks_->onCacheEvict(node_, l.tag,
                                 l.st == LineState::Modified);
        if (l.st == LineState::Modified)
            victim = Victim{l.tag, true, std::move(l.words)};
    }
    l.valid = true;
    l.tag = line_addr;
    l.st = st;
    l.words = words;
    if (hooks_)
        hooks_->onCacheFill(node_, line_addr, st, l.words);
    return victim;
}

std::optional<std::vector<std::uint64_t>>
Cache::invalidate(Addr a)
{
    Line *l = find(a);
    if (!l)
        return std::nullopt;
    l->valid = false;
    if (hooks_)
        hooks_->onCacheInvalidate(node_, l->tag,
                                  l->st == LineState::Modified);
    if (l->st == LineState::Modified)
        return std::move(l->words);
    return std::nullopt;
}

std::optional<std::vector<std::uint64_t>>
Cache::downgrade(Addr a)
{
    Line *l = find(a);
    if (!l || l->st != LineState::Modified)
        return std::nullopt;
    l->st = LineState::Shared;
    if (hooks_)
        hooks_->onCacheDowngrade(node_, l->tag);
    return l->words; // copy: the line stays resident
}

void
Cache::upgrade(Addr a)
{
    Line *l = find(a);
    if (!l)
        ALEWIFE_PANIC("upgrade on absent line ", a);
    l->st = LineState::Modified;
    if (hooks_)
        hooks_->onCacheUpgrade(node_, l->tag);
}

std::vector<std::uint64_t>
Cache::lineWords(Addr a) const
{
    const Line *l = find(a);
    if (!l)
        ALEWIFE_PANIC("lineWords on absent line ", a);
    return l->words;
}

void
Cache::flushAll()
{
    for (Line &l : lines_)
        l.valid = false;
}

} // namespace alewife::mem
