/**
 * @file
 * PartitionedArray: a shared array whose partition boundaries are padded
 * to cache-line multiples so that element i's home node is exactly its
 * partition's owner (no straddling lines, no cross-partition false
 * sharing). This is the data layout the paper's optimized shared-memory
 * applications use after partitioning.
 */

#ifndef ALEWIFE_MEM_PARTITIONED_HH
#define ALEWIFE_MEM_PARTITIONED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address_space.hh"
#include "sim/logging.hh"

namespace alewife::mem {

/** A block-partitioned shared array of 64-bit elements. */
class PartitionedArray
{
  public:
    PartitionedArray() = default;

    /**
     * Allocate an array with @p counts[p] elements in partition p, each
     * partition padded to whole lines and homed at node p.
     */
    static PartitionedArray
    create(AddressSpace &mem, const std::vector<std::int32_t> &counts,
           const std::string &label)
    {
        PartitionedArray a;
        const std::uint64_t wpl = mem.wordsPerLine();
        std::int32_t max_count = 0;
        for (std::int32_t c : counts)
            max_count = std::max(max_count, c);
        // Equal padded stride per partition keeps addressing O(1) and
        // matches AddressSpace's Blocked line distribution exactly.
        a.stride_ = (static_cast<std::uint64_t>(max_count) + wpl - 1)
                    / wpl * wpl;
        if (a.stride_ == 0)
            a.stride_ = wpl;
        a.counts_ = counts;
        a.base_ = mem.alloc(a.stride_ * counts.size(),
                            HomePolicy::Blocked, 0, label);
        return a;
    }

    /** Address of element @p local in partition @p proc. */
    Addr
    addr(int proc, std::int32_t local) const
    {
        if (local < 0 || local >= counts_[proc])
            ALEWIFE_PANIC("partitioned index out of range");
        return base_ + (static_cast<Addr>(proc) * stride_
                        + static_cast<Addr>(local))
                           * 8;
    }

    std::int32_t count(int proc) const { return counts_[proc]; }
    Addr base() const { return base_; }

  private:
    Addr base_ = 0;
    std::uint64_t stride_ = 0;
    std::vector<std::int32_t> counts_;
};

} // namespace alewife::mem

#endif // ALEWIFE_MEM_PARTITIONED_HH
