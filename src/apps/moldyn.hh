/**
 * @file
 * MOLDYN: molecular dynamics with a cutoff-radius interaction list and
 * RCB-partitioned molecule groups (Section 4.4).
 *
 * The computation-to-communication ratio is the highest of the four
 * applications, which tends to mask mechanism differences; locks
 * perform well for shared memory because contention is low.
 *
 * Variants:
 *  - shared memory: remote coordinates read through the protocol;
 *    force-deltas to remote molecules accumulated under per-molecule
 *    locks;
 *  - + prefetch: read-prefetch of remote coordinates and write
 *    prefetch of remote force-delta lines ahead of use;
 *  - bulk: for each interacting processor pair (p, q), p ships the
 *    coordinates of its boundary molecules to q; q computes all cross
 *    interactions, accumulates its own deltas, and returns p's deltas
 *    in one bulk transfer;
 *  - MP interrupt/polling: the same exchange with fine-grained
 *    five-word messages (the paper's fine-grained attempt congested
 *    the network, so theirs — and ours — batches a communication
 *    phase rather than interleaving).
 */

#ifndef ALEWIFE_APPS_MOLDYN_HH
#define ALEWIFE_APPS_MOLDYN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/app.hh"
#include "mem/partitioned.hh"
#include "workload/molecules.hh"

namespace alewife::apps {

/** MOLDYN under a selectable communication mechanism. */
class Moldyn : public core::App
{
  public:
    struct Params
    {
        workload::MoldynParams box;
        int iters = 2;
    };

    explicit Moldyn(Params p);

    std::string name() const override { return "moldyn"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;
    double reference() const override { return reference_; }
    double tolerance() const override { return 1e-7; }

    static core::AppFactory factory(Params p);

  private:
    /** One cross-processor interaction as seen by its computing proc. */
    struct CrossPair
    {
        std::int32_t mine;  ///< local molecule index (at computer q)
        std::int32_t ghost; ///< ghost slot of the remote molecule
        std::int32_t remoteSlot; ///< index into the owner's send list
    };

    void buildPartition();
    void setupSharedMemory(Machine &m);
    void setupMessagePassing(Machine &m);

    sim::Thread programSm(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMp(proc::Ctx &ctx, bool bulk);

    /** Remote force-delta accumulation under a per-molecule lock. */
    sim::SubTask<void> smAccumulate(proc::Ctx &ctx, std::int32_t mol,
                                    const double d[3]);

    Params p_;
    workload::MoldynSystem sys_;
    double reference_ = 0.0;
    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;

    /** Local pairs per proc (both endpoints owned). */
    std::vector<std::vector<workload::Pair>> localPairs_;
    /** Cross pairs grouped by (computing q, sending p). */
    std::vector<std::vector<std::vector<CrossPair>>> cross_; ///< [q][p]
    /** Send list: [p][q] -> local molecule indices p ships to q. */
    std::vector<std::vector<std::vector<std::int32_t>>> sendList_;

    // Shared-memory arrays (4 words per molecule: x,y,z,pad).
    mem::PartitionedArray xArr_, fArr_, lockArr_;
    /**
     * SM work list: pair as (mine, other) where `mine` is owned by the
     * computing processor. Cross pairs alternate between the two
     * owners for load balance.
     */
    struct SmPair
    {
        std::int32_t mine;
        std::int32_t other;
    };
    std::vector<std::vector<SmPair>> smPairs_;

    // Message-passing state.
    std::vector<std::vector<double>> xLoc_, vLoc_, fLoc_;
    std::vector<std::vector<double>> ghostX_;  ///< [q] flat 3/molecule
    std::vector<std::vector<double>> deltaOut_; ///< [q] computed deltas
    std::vector<std::int64_t> coordsExpected_, coordsRecv_;
    std::vector<std::int64_t> deltasExpected_, deltasRecv_;
    msg::HandlerId hCoords_ = -1, hCoordsBulk_ = -1;
    msg::HandlerId hDeltas_ = -1, hDeltasBulk_ = -1;
};

} // namespace alewife::apps

#endif // ALEWIFE_APPS_MOLDYN_HH
