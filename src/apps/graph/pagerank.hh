/**
 * @file
 * PageRank over a partitioned graph, in two variants:
 *
 *  - SyncPull ("graph-pagerank"): bulk-synchronous power iteration.
 *    Producers ship one rank value per distinct (source, consumer
 *    partition) pair per round — the ghost-exchange shape of EM3D —
 *    and a global barrier ends every round.
 *  - AsyncPush ("graph-pagerank-push"): producers push one already-
 *    divided contribution per *cross edge* per round (no ghost dedup —
 *    the high-message-rate regime), rounds are pipelined with no
 *    global barrier: consumers proceed on precomputed expected-value
 *    counts, and window-2 ack credits with parity-buffered
 *    contribution slots provide flow control.
 *
 * Both variants accumulate each vertex's contributions in the fixed
 * in-edge CSR order the sequential reference uses, so the final double
 * ranks are bit-identical to the reference and the run is audited by
 * exact digest equality (the satellite golden additionally checks L1
 * distance, which is 0 here by construction).
 */

#ifndef ALEWIFE_APPS_GRAPH_PAGERANK_HH
#define ALEWIFE_APPS_GRAPH_PAGERANK_HH

#include <cstdint>
#include <vector>

#include "apps/graph/graph_app.hh"
#include "mem/partitioned.hh"

namespace alewife::apps::graph {

/** PageRank under a selectable communication mechanism. */
class Pagerank : public GraphAppBase
{
  public:
    enum class Variant
    {
        SyncPull,
        AsyncPush,
    };

    Pagerank(GraphAppParams p, Variant variant);

    std::string
    name() const override
    {
        return variant_ == Variant::SyncPull ? "graph-pagerank"
                                             : "graph-pagerank-push";
    }

    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;

    static core::AppFactory factory(GraphAppParams p, Variant variant);

    /** Reference ranks (for the differential golden tests). */
    const std::vector<double> &refRanks() const { return refRanks_; }

    /** Distributed ranks, gathered after a run. */
    std::vector<double> resultRanks() const;

  private:
    struct Ref
    {
        bool remote;
        std::int32_t idx; ///< local index or ghost/slot index
    };

    struct SendItem
    {
        std::int32_t srcLocal;
        std::int32_t dstSlot;
    };

    void buildPullPlans();
    void buildPushPlans();

    sim::Thread programSmPull(proc::Ctx &ctx, bool prefetch);
    sim::Thread programSmPush(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMpPull(proc::Ctx &ctx, bool bulk);
    sim::Thread programMpPush(proc::Ctx &ctx, bool bulk);

    double finalRank(std::int32_t v) const;

    Variant variant_;
    std::vector<double> refRanks_;

    /** Pull: ghost slots per distinct remote source. */
    std::vector<std::vector<double>> ghost_;
    /** Push: per-cross-in-edge contribution slots, parity-buffered. */
    std::vector<std::array<std::vector<double>, 2>> slots_;
    /** Per-proc flat in-edge source resolution. */
    std::vector<std::vector<Ref>> refs_;
    /** [producer][consumer] send items, in consumer slot order. */
    std::vector<std::vector<std::vector<SendItem>>> plan_;
    std::vector<std::int64_t> expected_;
    /** Pull: cumulative received values (barrier-protected). */
    std::vector<std::int64_t> received_;
    /** Push: received values split by round parity — a producer may
     *  run one round ahead, and its early values must not satisfy
     *  the current round's wait. */
    std::vector<std::array<std::int64_t, 2>> recvPar_;

    /** Push flow control. */
    std::vector<std::vector<int>> producersOf_;
    std::vector<std::vector<int>> consumersOf_;
    /** [producer][consumer] rounds acknowledged — per consumer, so a
     *  fast consumer's credits cannot cover for a slow one. */
    std::vector<std::vector<std::int64_t>> ackFrom_;

    /** MP: per-proc parity rank buffers. */
    std::vector<std::array<std::vector<double>, 2>> rank_;

    /** SM: parity rank arrays; push adds parity slot arrays. */
    mem::PartitionedArray rankArr_[2];
    mem::PartitionedArray slotArr_[2];

    msg::HandlerId hVal_ = -1;
    msg::HandlerId hValBulk_ = -1;
    msg::HandlerId hAck_ = -1;
};

} // namespace alewife::apps::graph

#endif // ALEWIFE_APPS_GRAPH_PAGERANK_HH
