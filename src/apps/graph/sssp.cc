#include "apps/graph/sssp.hh"

#include <algorithm>

#include "machine/machine.hh"
#include "sim/logging.hh"

namespace alewife::apps::graph {

using core::Mechanism;

namespace {
/** Relaxations per active message: meta word + 6 packed relaxes. */
constexpr std::size_t kRelaxBatch = 6;
} // namespace

Sssp::Sssp(GraphAppParams p) : GraphAppBase(std::move(p))
{
    if (p_.delta < 1)
        ALEWIFE_FATAL("sssp delta must be >= 1, got ", p_.delta);
    // Candidates ride in the low 32 bits of a relax word.
    if (static_cast<std::int64_t>(g_.n) * p_.graph.maxWeight
        >= (std::int64_t{1} << 31)) {
        ALEWIFE_FATAL("sssp distances would not fit 32 bits");
    }

    dist_ = workload::dijkstraReference(g_, root_);
    buildPlan();

    std::uint64_t h = kFnvBasis;
    for (std::int32_t v = 0; v < g_.n; ++v) {
        h = fnv(h, dist_[v] < 0
                       ? static_cast<std::uint64_t>(kInf)
                       : static_cast<std::uint64_t>(dist_[v]));
    }
    reference_ = digestChecksum(h);
}

core::AppFactory
Sssp::factory(GraphAppParams p)
{
    return [p]() { return std::make_unique<Sssp>(p); };
}

void
Sssp::buildPlan()
{
    const int np = p_.graph.nprocs;
    const std::int64_t delta = p_.delta;
    std::vector<std::int64_t> tent(g_.n, kInf), last(g_.n, -1);
    std::vector<char> flag(g_.n, 0);
    tent[root_] = 0;

    struct Relax
    {
        std::int32_t target;
        std::int64_t cand;
        int srcProc;
    };

    auto applyPhase = [&](const std::vector<Relax> &rs) {
        std::vector<std::int64_t> row(np, 0);
        for (const Relax &r : rs) {
            const int q = g_.owner(r.target);
            if (q != r.srcProc)
                ++row[q];
            tent[r.target] = std::min(tent[r.target], r.cand);
        }
        exp_.push_back(std::move(row));
    };

    while (true) {
        std::int64_t b = -1;
        for (std::int32_t v = 0; v < g_.n; ++v) {
            if (tent[v] == kInf || last[v] == tent[v])
                continue;
            const std::int64_t bv = tent[v] / delta;
            b = b < 0 ? bv : std::min(b, bv);
        }
        if (b < 0)
            break;

        // Light phases: repeat until the bucket stops producing new
        // or improved members.
        while (true) {
            std::vector<Relax> rs;
            bool any = false;
            for (std::int32_t v = 0; v < g_.n; ++v) {
                if (tent[v] == kInf || tent[v] / delta != b
                    || last[v] == tent[v])
                    continue;
                any = true;
                const std::int64_t snap = tent[v];
                last[v] = snap;
                flag[v] = 1;
                const int pu = g_.owner(v);
                for (std::int32_t k = g_.outRow[v];
                     k < g_.outRow[v + 1]; ++k) {
                    if (g_.outW[k] > delta)
                        continue;
                    rs.push_back(
                        {g_.outDst[k], snap + g_.outW[k], pu});
                }
            }
            if (!any)
                break;
            phases_.push_back({b, false});
            applyPhase(rs);
        }

        // One heavy phase per bucket: every vertex settled in this
        // bucket relaxes its heavy edges from its final distance.
        {
            std::vector<Relax> rs;
            for (std::int32_t v = 0; v < g_.n; ++v) {
                if (!flag[v])
                    continue;
                flag[v] = 0;
                const int pu = g_.owner(v);
                for (std::int32_t k = g_.outRow[v];
                     k < g_.outRow[v + 1]; ++k) {
                    if (g_.outW[k] <= delta)
                        continue;
                    rs.push_back(
                        {g_.outDst[k], tent[v] + g_.outW[k], pu});
                }
            }
            phases_.push_back({b, true});
            applyPhase(rs);
        }
    }
}

void
Sssp::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    checkMachine(m);
    const int np = p_.graph.nprocs;
    trafficInit(np);
    model_ = CostModel::fromConfig(m.config(),
                                   static_cast<double>(kRelaxBatch));

    tent_.assign(np, {});
    lastProc_.assign(np, {});
    flag_.assign(np, {});
    for (int p = 0; p < np; ++p) {
        tent_[p].assign(g_.numVerticesOn(p), kInf);
        lastProc_[p].assign(g_.numVerticesOn(p), -1);
        flag_[p].assign(g_.numVerticesOn(p), 0);
    }
    const int rp = g_.owner(root_);
    tent_[rp][root_ - g_.firstVertex(rp)] = 0;

    if (core::isSharedMemory(mech)) {
        std::vector<std::int32_t> counts(np);
        for (int p = 0; p < np; ++p)
            counts[p] = g_.numVerticesOn(p);
        tentArr_ =
            mem::PartitionedArray::create(m.mem(), counts,
                                          "graph-sssp");
        for (std::int32_t v = 0; v < g_.n; ++v) {
            const int p = g_.owner(v);
            m.mem().storeWord(
                tentArr_.addr(p, v - g_.firstVertex(p)),
                v == root_ ? 0 : static_cast<std::uint64_t>(kInf));
        }
        return;
    }

    inbox_.assign(np, {});
    recv_.assign(np,
                 std::vector<std::int64_t>(phases_.size(), 0));

    // Relax handler: args = [phase, (v << 32 | cand), ...].
    // Application is deferred to the phase's sync point so the
    // distributed state stays in lockstep with the plan.
    hRelax_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const auto ph = static_cast<std::int32_t>(args[0]);
        const int q = env.self();
        const std::int32_t first = g_.firstVertex(q);
        for (std::size_t k = 1; k < args.size(); ++k) {
            const auto v = static_cast<std::int32_t>(args[k] >> 32);
            const auto cand = static_cast<std::int64_t>(
                args[k] & 0xffffffff);
            inbox_[q].push_back({ph, v - first, cand});
        }
        recv_[q][ph] += static_cast<std::int64_t>(args.size() - 1);
        noteRecv(q, args.size() - 1);
    });

    hRelaxBulk_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto ph =
            static_cast<std::int32_t>(env.msg().args[0]);
        const int q = env.self();
        const std::int32_t first = g_.firstVertex(q);
        const auto &body = env.msg().body;
        for (const std::uint64_t word : body) {
            const auto v = static_cast<std::int32_t>(word >> 32);
            const auto cand =
                static_cast<std::int64_t>(word & 0xffffffff);
            inbox_[q].push_back({ph, v - first, cand});
        }
        recv_[q][ph] += static_cast<std::int64_t>(body.size());
        noteRecv(q, body.size());
    });
}

sim::Thread
Sssp::program(proc::Ctx &ctx)
{
    switch (mech_) {
      case Mechanism::SharedMemory:
        return programSm(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return programSm(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return programMp(ctx, false);
      case Mechanism::BulkTransfer:
        return programMp(ctx, true);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

sim::Thread
Sssp::programSm(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);
    const std::int64_t delta = p_.delta;
    auto &tent = tent_[self];
    auto &last = lastProc_[self];
    auto &flag = flag_[self];

    auto edgeAddr = [this](std::int32_t k) {
        const std::int32_t t = g_.outDst[k];
        const int q = g_.owner(t);
        return tentArr_.addr(q, t - g_.firstVertex(q));
    };

    std::vector<std::int32_t> act;
    for (std::size_t ph = 0; ph < phases_.size(); ++ph) {
        const Phase P = phases_[ph];
        act.clear();
        if (!P.heavy) {
            for (std::int32_t li = 0; li < count; ++li) {
                const std::int64_t t = tent[li];
                if (t != kInf && t / delta == P.bucket
                    && last[li] != t)
                    act.push_back(li);
            }
        } else {
            for (std::int32_t li = 0; li < count; ++li) {
                if (flag[li])
                    act.push_back(li);
            }
        }

        for (const std::int32_t li : act) {
            const std::int64_t base = tent[li];
            if (!P.heavy) {
                last[li] = base;
                flag[li] = 1;
            }
            const std::int32_t v = first + li;
            const std::int32_t beg = g_.outRow[v];
            const std::int32_t end = g_.outRow[v + 1];
            for (std::int32_t k = beg; k < end; ++k) {
                const bool heavyEdge = g_.outW[k] > delta;
                if (heavyEdge != P.heavy)
                    continue;
                if (prefetch && k + 2 < end
                    && (g_.outW[k + 2] > delta) == P.heavy)
                    ctx.prefetchWrite(edgeAddr(k + 2));
                const auto cand = static_cast<std::uint64_t>(
                    base + g_.outW[k]);
                co_await ctx.rmw(edgeAddr(k),
                                 [cand](std::uint64_t w) {
                                     return std::min(w, cand);
                                 });
                co_await ctx.compute(2.0);
                const int q = g_.owner(g_.outDst[k]);
                if (q != self) {
                    noteSend(self, 1, 1);
                    noteRecv(q, 1);
                }
            }
        }
        if (P.heavy) {
            for (const std::int32_t li : act)
                flag[li] = 0;
        }
        co_await ctx.barrier();

        // Re-sync the shadow from our own partition: active sets are
        // always computed from barrier-boundary state, which is
        // exactly the plan's state.
        for (std::int32_t li = 0; li < count; ++li) {
            if (prefetch && li + 2 < count)
                ctx.prefetchRead(tentArr_.addr(self, li + 2));
            const std::uint64_t w =
                co_await ctx.read(tentArr_.addr(self, li));
            tent[li] = static_cast<std::int64_t>(w);
            co_await ctx.compute(1.0);
        }
        notePhaseEnd(self);
    }
    co_return;
}

sim::Thread
Sssp::programMp(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const int np = ctx.nprocs();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);
    const std::int64_t delta = p_.delta;
    auto &tent = tent_[self];
    auto &last = lastProc_[self];
    auto &flag = flag_[self];

    std::vector<std::vector<std::uint64_t>> out(np);
    std::vector<std::pair<std::int32_t, std::int64_t>> pending;
    std::vector<std::int32_t> act;

    for (std::size_t ph = 0; ph < phases_.size(); ++ph) {
        const Phase P = phases_[ph];
        act.clear();
        if (!P.heavy) {
            for (std::int32_t li = 0; li < count; ++li) {
                const std::int64_t t = tent[li];
                if (t != kInf && t / delta == P.bucket
                    && last[li] != t)
                    act.push_back(li);
            }
        } else {
            for (std::int32_t li = 0; li < count; ++li) {
                if (flag[li])
                    act.push_back(li);
            }
        }

        for (const std::int32_t li : act) {
            co_await ctx.pollPoint();
            const std::int64_t base = tent[li];
            if (!P.heavy) {
                last[li] = base;
                flag[li] = 1;
            }
            const std::int32_t v = first + li;
            for (std::int32_t k = g_.outRow[v];
                 k < g_.outRow[v + 1]; ++k) {
                if ((g_.outW[k] > delta) != P.heavy)
                    continue;
                const std::int64_t cand = base + g_.outW[k];
                const std::int32_t t = g_.outDst[k];
                const int q = g_.owner(t);
                co_await ctx.compute(2.0);
                if (q == self) {
                    // Local relaxations are deferred too: applying
                    // them now would perturb later active sets away
                    // from the plan.
                    pending.emplace_back(t - first, cand);
                    continue;
                }
                out[q].push_back(
                    (static_cast<std::uint64_t>(t) << 32)
                    | static_cast<std::uint32_t>(cand));
                if (!bulk && out[q].size() == kRelaxBatch) {
                    std::vector<std::uint64_t> args;
                    args.reserve(kRelaxBatch + 1);
                    args.push_back(static_cast<std::uint64_t>(ph));
                    args.insert(args.end(), out[q].begin(),
                                out[q].end());
                    out[q].clear();
                    co_await ctx.send(q, hRelax_, std::move(args));
                    noteSend(self, kRelaxBatch, 1);
                }
            }
        }
        for (int q = 0; q < np; ++q) {
            if (out[q].empty())
                continue;
            const std::size_t n = out[q].size();
            if (bulk) {
                co_await ctx.chargeCopy(n);
                std::vector<std::uint64_t> args;
                args.push_back(static_cast<std::uint64_t>(ph));
                co_await ctx.sendBulk(q, hRelaxBulk_,
                                      std::move(args),
                                      std::move(out[q]));
            } else {
                std::vector<std::uint64_t> args;
                args.reserve(n + 1);
                args.push_back(static_cast<std::uint64_t>(ph));
                args.insert(args.end(), out[q].begin(),
                            out[q].end());
                co_await ctx.send(q, hRelax_, std::move(args));
            }
            out[q].clear();
            noteSend(self, n, 1);
        }
        if (P.heavy) {
            for (const std::int32_t li : act)
                flag[li] = 0;
        }

        const std::int64_t want = exp_[ph][self];
        co_await ctx.waitUntil(
            [this, self, ph, want]() {
                return recv_[self][ph] >= want;
            },
            TimeCat::Sync);

        // Sync point: apply this phase's relaxations — our own
        // deferred locals plus every inbox entry tagged with this
        // phase or earlier. Later-tagged entries (from run-ahead
        // senders) stay queued.
        std::int64_t applied = 0;
        for (const auto &[tl, cand] : pending) {
            tent[tl] = std::min(tent[tl], cand);
            ++applied;
        }
        pending.clear();
        auto &ib = inbox_[self];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < ib.size(); ++i) {
            if (ib[i].phase <= static_cast<std::int32_t>(ph)) {
                auto &t = tent[ib[i].target];
                t = std::min(t, ib[i].cand);
                ++applied;
            } else {
                ib[keep++] = ib[i];
            }
        }
        ib.resize(keep);
        co_await ctx.compute(1.0 + 2.0 * applied);
        notePhaseEnd(self);
    }
    co_return;
}

std::uint64_t
Sssp::tentWord(std::int32_t v) const
{
    if (!result_.empty())
        return result_[v];
    const int p = g_.owner(v);
    const std::int32_t local = v - g_.firstVertex(p);
    if (core::isSharedMemory(mech_))
        return machine_->debugWord(tentArr_.addr(p, local));
    return static_cast<std::uint64_t>(tent_[p][local]);
}

double
Sssp::checksum() const
{
    result_.clear();
    std::vector<std::uint64_t> words(g_.n);
    for (std::int32_t v = 0; v < g_.n; ++v)
        words[v] = tentWord(v);
    result_ = std::move(words);
    std::uint64_t h = kFnvBasis;
    for (std::int32_t v = 0; v < g_.n; ++v)
        h = fnv(h, result_[v]);
    return digestChecksum(h);
}

std::vector<std::int64_t>
Sssp::resultDist() const
{
    std::vector<std::int64_t> out(g_.n);
    for (std::int32_t v = 0; v < g_.n; ++v) {
        const auto w = static_cast<std::int64_t>(tentWord(v));
        out[v] = w == kInf ? -1 : w;
    }
    return out;
}

} // namespace alewife::apps::graph
