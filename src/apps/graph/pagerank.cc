#include "apps/graph/pagerank.hh"

#include <algorithm>
#include <bit>

#include "machine/machine.hh"
#include "sim/logging.hh"

namespace alewife::apps::graph {

using core::Mechanism;

namespace {
/** Rank values per active message: meta word + 5 doubles. */
constexpr std::size_t kValBatch = 5;
} // namespace

Pagerank::Pagerank(GraphAppParams p, Variant variant)
    : GraphAppBase(std::move(p)), variant_(variant)
{
    refRanks_ =
        workload::pagerankReference(g_, p_.iters, p_.damping);
    std::uint64_t h = kFnvBasis;
    for (std::int32_t v = 0; v < g_.n; ++v)
        h = fnv(h, std::bit_cast<std::uint64_t>(refRanks_[v]));
    reference_ = digestChecksum(h);
}

core::AppFactory
Pagerank::factory(GraphAppParams p, Variant variant)
{
    return [p, variant]() {
        return std::make_unique<Pagerank>(p, variant);
    };
}

void
Pagerank::buildPullPlans()
{
    const int np = p_.graph.nprocs;
    ghost_.assign(np, {});
    refs_.assign(np, {});
    plan_.assign(np, std::vector<std::vector<SendItem>>(np));
    expected_.assign(np, 0);

    std::vector<std::int32_t> slotOf(g_.n);
    for (int q = 0; q < np; ++q) {
        std::fill(slotOf.begin(), slotOf.end(), -1);
        const std::int32_t first = g_.firstVertex(q);
        std::int32_t nslots = 0;
        for (std::int32_t v = first;
             v < first + g_.numVerticesOn(q); ++v) {
            for (std::int32_t k = g_.inRow[v]; k < g_.inRow[v + 1];
                 ++k) {
                const std::int32_t u = g_.inSrc[k];
                const int pu = g_.owner(u);
                if (pu == q) {
                    refs_[q].push_back({false, u - first});
                    continue;
                }
                if (slotOf[u] < 0) {
                    slotOf[u] = nslots++;
                    plan_[pu][q].push_back(
                        {u - g_.firstVertex(pu), slotOf[u]});
                }
                refs_[q].push_back({true, slotOf[u]});
            }
        }
        expected_[q] = nslots;
        ghost_[q].assign(static_cast<std::size_t>(nslots), 0.0);
    }
}

void
Pagerank::buildPushPlans()
{
    const int np = p_.graph.nprocs;
    slots_.assign(np, {});
    refs_.assign(np, {});
    plan_.assign(np, std::vector<std::vector<SendItem>>(np));
    expected_.assign(np, 0);
    producersOf_.assign(np, {});
    consumersOf_.assign(np, {});

    for (int q = 0; q < np; ++q) {
        const std::int32_t first = g_.firstVertex(q);
        std::int32_t nslots = 0;
        std::vector<char> prod(np, 0);
        for (std::int32_t v = first;
             v < first + g_.numVerticesOn(q); ++v) {
            for (std::int32_t k = g_.inRow[v]; k < g_.inRow[v + 1];
                 ++k) {
                const std::int32_t u = g_.inSrc[k];
                const int pu = g_.owner(u);
                if (pu == q) {
                    refs_[q].push_back({false, u - first});
                    continue;
                }
                // One slot per cross edge, no dedup: the
                // high-message-rate traffic model.
                plan_[pu][q].push_back(
                    {u - g_.firstVertex(pu), nslots});
                refs_[q].push_back({true, nslots});
                ++nslots;
                prod[pu] = 1;
            }
        }
        expected_[q] = nslots;
        slots_[q][0].assign(static_cast<std::size_t>(nslots), 0.0);
        slots_[q][1].assign(static_cast<std::size_t>(nslots), 0.0);
        for (int p = 0; p < np; ++p) {
            if (prod[p]) {
                producersOf_[q].push_back(p);
                consumersOf_[p].push_back(q);
            }
        }
    }
}

void
Pagerank::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    checkMachine(m);
    const int np = p_.graph.nprocs;
    trafficInit(np);
    model_ = CostModel::fromConfig(m.config(),
                                   static_cast<double>(kValBatch));

    const bool push = variant_ == Variant::AsyncPush;
    if (push)
        buildPushPlans();

    if (core::isSharedMemory(mech)) {
        std::vector<std::int32_t> counts(np);
        for (int p = 0; p < np; ++p)
            counts[p] = g_.numVerticesOn(p);
        for (int par = 0; par < 2; ++par) {
            rankArr_[par] = mem::PartitionedArray::create(
                m.mem(), counts,
                par == 0 ? "graph-pr-rank0" : "graph-pr-rank1");
        }
        const double init = 1.0 / g_.n;
        for (std::int32_t v = 0; v < g_.n; ++v) {
            const int p = g_.owner(v);
            const std::int32_t local = v - g_.firstVertex(p);
            m.mem().storeDouble(rankArr_[0].addr(p, local), init);
            m.mem().storeDouble(rankArr_[1].addr(p, local), 0.0);
        }
        if (push) {
            std::vector<std::int32_t> slotCounts(np);
            for (int p = 0; p < np; ++p) {
                slotCounts[p] =
                    static_cast<std::int32_t>(expected_[p]);
            }
            for (int par = 0; par < 2; ++par) {
                slotArr_[par] = mem::PartitionedArray::create(
                    m.mem(), slotCounts,
                    par == 0 ? "graph-pr-slot0" : "graph-pr-slot1");
            }
        }
        return;
    }

    if (!push)
        buildPullPlans();
    rank_.assign(np, {});
    for (int p = 0; p < np; ++p) {
        rank_[p][0].assign(g_.numVerticesOn(p), 1.0 / g_.n);
        rank_[p][1].assign(g_.numVerticesOn(p), 0.0);
    }
    received_.assign(np, 0);
    recvPar_.assign(np, {0, 0});
    ackFrom_.assign(np, std::vector<std::int64_t>(np, 0));

    // Value handler: meta packs (parity, producer, plan offset); the
    // values land in plan order, into the single ghost buffer (pull —
    // the round barrier makes one buffer safe) or the parity slot
    // buffer (push).
    hVal_ = m.handlers().add([this, push](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const std::uint64_t meta = args[0];
        const int par = static_cast<int>(meta & 0x1);
        const int src = static_cast<int>((meta >> 1) & 0xffff);
        const auto off = static_cast<std::int64_t>(meta >> 17);
        const int q = env.self();
        const auto &items = plan_[src][q];
        auto &dst = push ? slots_[q][par] : ghost_[q];
        for (std::size_t k = 1; k < args.size(); ++k) {
            dst[items[off + (k - 1)].dstSlot] =
                std::bit_cast<double>(args[k]);
        }
        const auto n = static_cast<std::int64_t>(args.size() - 1);
        if (push)
            recvPar_[q][par] += n;
        else
            received_[q] += n;
        noteRecv(q, args.size() - 1);
    });

    hValBulk_ = m.handlers().add([this, push](msg::HandlerEnv &env) {
        const std::uint64_t meta = env.msg().args[0];
        const int par = static_cast<int>(meta & 0x1);
        const int src = static_cast<int>((meta >> 1) & 0xffff);
        const int q = env.self();
        const auto &items = plan_[src][q];
        const auto &body = env.msg().body;
        auto &dst = push ? slots_[q][par] : ghost_[q];
        for (std::size_t k = 0; k < body.size(); ++k)
            dst[items[k].dstSlot] = std::bit_cast<double>(body[k]);
        const auto n = static_cast<std::int64_t>(body.size());
        if (push)
            recvPar_[q][par] += n;
        else
            received_[q] += n;
        noteRecv(q, body.size());
    });

    hAck_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto from =
            static_cast<int>(env.msg().args[0]);
        ackFrom_[env.self()][from] += 1;
        // Flow control, not payload: acks are accounted as messages
        // on the send side only (a final-round ack can still be in
        // flight when the run finishes, so counting it here would
        // make recvValues timing-dependent).
    });
}

sim::Thread
Pagerank::program(proc::Ctx &ctx)
{
    const bool push = variant_ == Variant::AsyncPush;
    switch (mech_) {
      case Mechanism::SharedMemory:
        return push ? programSmPush(ctx, false)
                    : programSmPull(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return push ? programSmPush(ctx, true)
                    : programSmPull(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return push ? programMpPush(ctx, false)
                    : programMpPull(ctx, false);
      case Mechanism::BulkTransfer:
        return push ? programMpPush(ctx, true)
                    : programMpPull(ctx, true);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

sim::Thread
Pagerank::programSmPull(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);
    const double base = (1.0 - p_.damping) / g_.n;

    auto srcAddr = [this](std::int32_t k, int par) {
        const std::int32_t u = g_.inSrc[k];
        const int pu = g_.owner(u);
        return rankArr_[par].addr(pu, u - g_.firstVertex(pu));
    };

    for (int r = 0; r < p_.iters; ++r) {
        const int par = r & 1;
        for (std::int32_t li = 0; li < count; ++li) {
            const std::int32_t v = first + li;
            const Addr naddr = rankArr_[par ^ 1].addr(self, li);
            if (prefetch)
                ctx.prefetchWrite(naddr);
            double sum = 0.0;
            const std::int32_t beg = g_.inRow[v];
            const std::int32_t end = g_.inRow[v + 1];
            for (std::int32_t k = beg; k < end; ++k) {
                if (prefetch && k + 2 < end)
                    ctx.prefetchRead(srcAddr(k + 2, par));
                const std::int32_t u = g_.inSrc[k];
                const double val =
                    ctx.asDouble(co_await ctx.read(srcAddr(k, par)));
                sum += val / g_.outDegree(u);
                co_await ctx.compute(3);
                co_await ctx.computeFlops(2);
                if (g_.owner(u) != self) {
                    noteSend(g_.owner(u), 1, 1);
                    noteRecv(self, 1);
                }
            }
            co_await ctx.computeFlops(2);
            co_await ctx.writeD(naddr, base + p_.damping * sum);
        }
        co_await ctx.barrier();
        notePhaseEnd(self);
    }
    co_return;
}

sim::Thread
Pagerank::programSmPush(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const int np = ctx.nprocs();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);
    const double base = (1.0 - p_.damping) / g_.n;

    for (int r = 0; r < p_.iters; ++r) {
        const int par = r & 1;
        // Produce: push one divided contribution per cross out-edge
        // into the consumer-homed parity slots.
        for (int q = 0; q < np; ++q) {
            const auto &items = plan_[self][q];
            for (std::size_t i = 0; i < items.size(); ++i) {
                if (prefetch && i + 2 < items.size()) {
                    ctx.prefetchWrite(slotArr_[par].addr(
                        q, items[i + 2].dstSlot));
                }
                const std::int32_t u = first + items[i].srcLocal;
                const double val = ctx.asDouble(co_await ctx.read(
                    rankArr_[par].addr(self, items[i].srcLocal)));
                co_await ctx.compute(3);
                co_await ctx.computeFlops(1);
                co_await ctx.writeD(
                    slotArr_[par].addr(q, items[i].dstSlot),
                    val / g_.outDegree(u));
                noteSend(self, 1, 1);
                noteRecv(q, 1);
            }
        }
        // One barrier per round: parity keeps round r+1 producer
        // writes (other slot array) off round-r consumer reads, and
        // round r+2 producers only run after every node passed this
        // barrier and finished consuming round r.
        co_await ctx.barrier();

        // Consume: all reads are consumer-local (slots are homed
        // here), in reference in-edge order.
        std::size_t fi = 0;
        for (std::int32_t li = 0; li < count; ++li) {
            const std::int32_t v = first + li;
            double sum = 0.0;
            for (std::int32_t k = g_.inRow[v]; k < g_.inRow[v + 1];
                 ++k) {
                const Ref rf = refs_[self][fi++];
                double contrib;
                if (rf.remote) {
                    contrib = ctx.asDouble(co_await ctx.read(
                        slotArr_[par].addr(self, rf.idx)));
                } else {
                    const double val =
                        ctx.asDouble(co_await ctx.read(
                            rankArr_[par].addr(self, rf.idx)));
                    contrib = val / g_.outDegree(g_.inSrc[k]);
                    co_await ctx.computeFlops(1);
                }
                sum += contrib;
                co_await ctx.compute(3);
                co_await ctx.computeFlops(1);
            }
            co_await ctx.computeFlops(2);
            co_await ctx.writeD(rankArr_[par ^ 1].addr(self, li),
                                base + p_.damping * sum);
        }
        notePhaseEnd(self);
    }
    co_return;
}

sim::Thread
Pagerank::programMpPull(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const int np = ctx.nprocs();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);
    const double base = (1.0 - p_.damping) / g_.n;

    for (int r = 0; r < p_.iters; ++r) {
        const int par = r & 1;
        const auto &cur = rank_[self][par];
        auto &nxt = rank_[self][par ^ 1];

        for (int q = 0; q < np; ++q) {
            const auto &items = plan_[self][q];
            if (items.empty())
                continue;
            if (bulk) {
                std::vector<std::uint64_t> body;
                body.reserve(items.size());
                for (const auto &item : items) {
                    body.push_back(std::bit_cast<std::uint64_t>(
                        cur[item.srcLocal]));
                }
                co_await ctx.chargeCopy(body.size());
                std::vector<std::uint64_t> args;
                args.push_back(
                    static_cast<std::uint64_t>(self) << 1);
                noteSend(self, items.size(), 1);
                co_await ctx.sendBulk(q, hValBulk_,
                                      std::move(args),
                                      std::move(body));
                continue;
            }
            std::size_t off = 0;
            while (off < items.size()) {
                const std::size_t batch = std::min<std::size_t>(
                    kValBatch, items.size() - off);
                std::vector<std::uint64_t> args;
                args.reserve(batch + 1);
                args.push_back(
                    (static_cast<std::uint64_t>(self) << 1)
                    | (static_cast<std::uint64_t>(off) << 17));
                for (std::size_t k = 0; k < batch; ++k) {
                    args.push_back(std::bit_cast<std::uint64_t>(
                        cur[items[off + k].srcLocal]));
                }
                co_await ctx.send(q, hVal_, std::move(args));
                noteSend(self, batch, 1);
                off += batch;
            }
        }

        const std::int64_t want =
            expected_[self] * static_cast<std::int64_t>(r + 1);
        co_await ctx.waitUntil(
            [this, self, want]() { return received_[self] >= want; },
            TimeCat::Sync);

        std::size_t fi = 0;
        for (std::int32_t li = 0; li < count; ++li) {
            co_await ctx.pollPoint();
            const std::int32_t v = first + li;
            double sum = 0.0;
            for (std::int32_t k = g_.inRow[v]; k < g_.inRow[v + 1];
                 ++k) {
                const Ref rf = refs_[self][fi++];
                const double val = rf.remote ? ghost_[self][rf.idx]
                                             : cur[rf.idx];
                sum += val / g_.outDegree(g_.inSrc[k]);
                co_await ctx.compute(3);
                co_await ctx.computeFlops(2);
            }
            co_await ctx.computeFlops(2);
            nxt[li] = base + p_.damping * sum;
        }
        // Bulk-synchronous: the barrier is what makes the single
        // ghost buffer safe for the next round's sends.
        co_await ctx.barrier();
        notePhaseEnd(self);
    }
    co_return;
}

sim::Thread
Pagerank::programMpPush(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const int np = ctx.nprocs();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);
    const double base = (1.0 - p_.damping) / g_.n;

    for (int r = 0; r < p_.iters; ++r) {
        const int par = r & 1;
        const auto &cur = rank_[self][par];
        auto &nxt = rank_[self][par ^ 1];

        // Window-2 flow control: the parity-par slots were last read
        // when consumers finished round r-2, which each consumer
        // acknowledged with one credit. Checked per consumer — a fast
        // consumer's extra credits must not cover for a slow one.
        if (r >= 2) {
            const std::int64_t rounds = r - 1;
            co_await ctx.waitUntil(
                [this, self, rounds]() {
                    for (const int q : consumersOf_[self]) {
                        if (ackFrom_[self][q] < rounds)
                            return false;
                    }
                    return true;
                },
                TimeCat::Sync);
        }

        for (int q = 0; q < np; ++q) {
            const auto &items = plan_[self][q];
            if (items.empty())
                continue;
            if (bulk) {
                std::vector<std::uint64_t> body;
                body.reserve(items.size());
                for (const auto &item : items) {
                    const std::int32_t u = first + item.srcLocal;
                    body.push_back(std::bit_cast<std::uint64_t>(
                        cur[item.srcLocal] / g_.outDegree(u)));
                }
                co_await ctx.chargeCopy(body.size());
                co_await ctx.computeFlops(items.size());
                std::vector<std::uint64_t> args;
                args.push_back(
                    static_cast<std::uint64_t>(par)
                    | (static_cast<std::uint64_t>(self) << 1));
                noteSend(self, items.size(), 1);
                co_await ctx.sendBulk(q, hValBulk_,
                                      std::move(args),
                                      std::move(body));
                continue;
            }
            std::size_t off = 0;
            while (off < items.size()) {
                const std::size_t batch = std::min<std::size_t>(
                    kValBatch, items.size() - off);
                std::vector<std::uint64_t> args;
                args.reserve(batch + 1);
                args.push_back(
                    static_cast<std::uint64_t>(par)
                    | (static_cast<std::uint64_t>(self) << 1)
                    | (static_cast<std::uint64_t>(off) << 17));
                for (std::size_t k = 0; k < batch; ++k) {
                    const auto &item = items[off + k];
                    const std::int32_t u = first + item.srcLocal;
                    args.push_back(std::bit_cast<std::uint64_t>(
                        cur[item.srcLocal] / g_.outDegree(u)));
                }
                co_await ctx.computeFlops(batch);
                co_await ctx.send(q, hVal_, std::move(args));
                noteSend(self, batch, 1);
                off += batch;
            }
        }

        // Same-parity rounds are at most two apart (the ack window),
        // so the parity counter is a cumulative count of rounds
        // r, r-2, r-4, ... — and a run-ahead producer's round-(r+1)
        // values land in the other parity's counter.
        const std::int64_t want =
            expected_[self]
            * (static_cast<std::int64_t>(r / 2) + 1);
        co_await ctx.waitUntil(
            [this, self, par, want]() {
                return recvPar_[self][par] >= want;
            },
            TimeCat::Sync);

        std::size_t fi = 0;
        for (std::int32_t li = 0; li < count; ++li) {
            co_await ctx.pollPoint();
            const std::int32_t v = first + li;
            double sum = 0.0;
            for (std::int32_t k = g_.inRow[v]; k < g_.inRow[v + 1];
                 ++k) {
                const Ref rf = refs_[self][fi++];
                double contrib;
                if (rf.remote) {
                    contrib = slots_[self][par][rf.idx];
                } else {
                    contrib = cur[rf.idx]
                              / g_.outDegree(g_.inSrc[k]);
                    co_await ctx.computeFlops(1);
                }
                sum += contrib;
                co_await ctx.compute(3);
                co_await ctx.computeFlops(1);
            }
            co_await ctx.computeFlops(2);
            nxt[li] = base + p_.damping * sum;
        }

        // Credit every producer: round r is consumed, its parity
        // slots may be overwritten two rounds from now. No barrier —
        // rounds pipeline point-to-point.
        for (const int p : producersOf_[self]) {
            std::vector<std::uint64_t> args(
                1, static_cast<std::uint64_t>(self));
            co_await ctx.send(p, hAck_, std::move(args));
            noteSend(self, 0, 1);
        }
        notePhaseEnd(self);
    }

    // Drain: wait for every consumer's final-round acks before
    // finishing. Without this, the last acks sit undelivered in
    // polling mode (no program left to poll) and spin NI retries
    // through the whole post-run quiesce window.
    co_await ctx.waitUntil(
        [this, self] {
            for (const int q : consumersOf_[self])
                if (ackFrom_[self][q] < p_.iters)
                    return false;
            return true;
        },
        TimeCat::Sync);
    co_return;
}

double
Pagerank::finalRank(std::int32_t v) const
{
    if (!result_.empty())
        return std::bit_cast<double>(result_[v]);
    const int par = p_.iters & 1;
    const int p = g_.owner(v);
    const std::int32_t local = v - g_.firstVertex(p);
    if (core::isSharedMemory(mech_))
        return machine_->debugDouble(rankArr_[par].addr(p, local));
    return rank_[p][par][local];
}

double
Pagerank::checksum() const
{
    result_.clear();
    std::vector<std::uint64_t> words(g_.n);
    for (std::int32_t v = 0; v < g_.n; ++v)
        words[v] = std::bit_cast<std::uint64_t>(finalRank(v));
    result_ = std::move(words);
    std::uint64_t h = kFnvBasis;
    for (std::int32_t v = 0; v < g_.n; ++v)
        h = fnv(h, result_[v]);
    return digestChecksum(h);
}

std::vector<double>
Pagerank::resultRanks() const
{
    std::vector<double> out(g_.n);
    for (std::int32_t v = 0; v < g_.n; ++v)
        out[v] = finalRank(v);
    return out;
}

} // namespace alewife::apps::graph
