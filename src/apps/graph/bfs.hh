/**
 * @file
 * Level-synchronous push BFS over a partitioned graph.
 *
 * Each vertex carries one 64-bit word packing (depth << 32 | parent);
 * unvisited is all-ones, so lexicographic (depth, parent) minimum is a
 * plain integer min — idempotent and commutative, which makes the
 * result independent of claim arrival order and lets the run be
 * bit-audited against the reference. The deterministic parent tree is
 * parent[v] = min in-neighbour one level up.
 *
 * Variants:
 *  - SM / SM+PF: the word array is shared; frontier vertices claim
 *    neighbours with rmw-min through the coherence protocol, one
 *    barrier per level, then each owner scans its partition for the
 *    next frontier (prefetch: write-ownership of the claim target and
 *    read-prefetch of the scan, two ahead);
 *  - MP-I / MP-P: claims travel as active messages (six claims per
 *    message), levels are synchronized point-to-point by precomputed
 *    expected-claim counts per (level, receiver) — no global barrier;
 *  - BULK: a level's claims to one destination are gathered into a
 *    single DMA body.
 */

#ifndef ALEWIFE_APPS_GRAPH_BFS_HH
#define ALEWIFE_APPS_GRAPH_BFS_HH

#include <cstdint>
#include <vector>

#include "apps/graph/graph_app.hh"
#include "mem/partitioned.hh"

namespace alewife::apps::graph {

/** BFS under a selectable communication mechanism. */
class Bfs : public GraphAppBase
{
  public:
    explicit Bfs(GraphAppParams p);

    std::string name() const override { return "graph-bfs"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;

    static core::AppFactory factory(GraphAppParams p);

    /** Reference tree (for the differential golden tests). */
    const workload::BfsRef &bfsRef() const { return ref_; }

    /** Distributed result, gathered after a run. */
    std::vector<std::int32_t> resultDepth() const;
    std::vector<std::int32_t> resultParent() const;

  private:
    static std::uint64_t
    pack(std::int32_t depth, std::int32_t parent)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(depth))
                << 32)
               | static_cast<std::uint32_t>(parent);
    }

    static constexpr std::uint64_t kUnset = ~std::uint64_t{0};

    std::uint64_t stateWord(std::int32_t v) const;

    sim::Thread programSm(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMp(proc::Ctx &ctx, bool bulk);

    workload::BfsRef ref_;
    std::int32_t maxDepth_ = 0;

    /** Expected cross-claim values per (level, node). Per-level (not
     *  cumulative): a fast sender may run a level ahead, and its
     *  early claims must not satisfy the current level's wait. */
    std::vector<std::vector<std::int64_t>> exp_;

    /** MP state: packed (depth, parent) per local vertex. */
    std::vector<std::vector<std::uint64_t>> state_;
    /** Claims received per (node, level). */
    std::vector<std::vector<std::int64_t>> recv_;
    msg::HandlerId hClaim_ = -1;
    msg::HandlerId hClaimBulk_ = -1;

    /** SM state. */
    mem::PartitionedArray stateArr_;
};

} // namespace alewife::apps::graph

#endif // ALEWIFE_APPS_GRAPH_BFS_HH
