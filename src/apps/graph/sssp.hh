/**
 * @file
 * Delta-stepping single-source shortest paths over a partitioned
 * graph, differentially verified against Dijkstra.
 *
 * Weights are small positive integers; edges with weight <= delta are
 * "light". The constructor simulates delta-stepping sequentially and
 * records the exact phase schedule — for every bucket, its sequence of
 * light relaxation phases and one trailing heavy phase — plus the
 * number of cross-partition relaxations each node will receive in each
 * phase. The distributed run then walks that schedule:
 *
 *  - SM / SM+PF: tentative distances live in a shared array updated
 *    with rmw-min; each node keeps a host-side shadow that it re-reads
 *    from its own partition only at phase barriers, so active sets are
 *    always computed from boundary state and match the plan exactly;
 *  - MP-I / MP-P: relaxations travel as active messages tagged with
 *    their phase index. Receivers count arrivals per phase (a
 *    run-ahead sender's early relaxations must not satisfy the
 *    current phase's wait) and defer application — including local
 *    relaxations — until the phase's sync point, keeping distributed
 *    state in lockstep with the plan;
 *  - BULK: a phase's relaxations to one destination ride in one DMA
 *    body.
 *
 * The final tentative distances are digested and compared with a
 * digest of Dijkstra's distances: two different algorithms must agree
 * bit-for-bit, which is the differential check.
 */

#ifndef ALEWIFE_APPS_GRAPH_SSSP_HH
#define ALEWIFE_APPS_GRAPH_SSSP_HH

#include <cstdint>
#include <vector>

#include "apps/graph/graph_app.hh"
#include "mem/partitioned.hh"

namespace alewife::apps::graph {

/** Delta-stepping SSSP under a selectable communication mechanism. */
class Sssp : public GraphAppBase
{
  public:
    explicit Sssp(GraphAppParams p);

    std::string name() const override { return "graph-sssp"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;

    static core::AppFactory factory(GraphAppParams p);

    /** Dijkstra distances (for the differential golden tests). */
    const std::vector<std::int64_t> &refDist() const { return dist_; }

    /** Distributed distances after a run (-1 = unreachable). */
    std::vector<std::int64_t> resultDist() const;

    /** Number of planned phases (for the traffic-model tests). */
    std::size_t numPhases() const { return phases_.size(); }

  private:
    static constexpr std::int64_t kInf =
        std::int64_t{0x7fffffffffffffff};

    struct Phase
    {
        std::int64_t bucket;
        bool heavy;
    };

    struct Inbox
    {
        std::int32_t phase;
        std::int32_t target; ///< local index
        std::int64_t cand;
    };

    void buildPlan();
    std::uint64_t tentWord(std::int32_t v) const;

    sim::Thread programSm(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMp(proc::Ctx &ctx, bool bulk);

    std::vector<std::int64_t> dist_;

    /** The planned phase schedule (identical on every node). */
    std::vector<Phase> phases_;
    /** Expected cross relaxations per (phase, node). */
    std::vector<std::vector<std::int64_t>> exp_;

    /** Per-node tentative state (the SM shadow / the MP state). */
    std::vector<std::vector<std::int64_t>> tent_;
    std::vector<std::vector<std::int64_t>> lastProc_;
    std::vector<std::vector<char>> flag_;

    /** MP: phase-tagged inboxes and per-phase arrival counts. */
    std::vector<std::vector<Inbox>> inbox_;
    std::vector<std::vector<std::int64_t>> recv_;
    msg::HandlerId hRelax_ = -1;
    msg::HandlerId hRelaxBulk_ = -1;

    /** SM: shared tentative-distance words. */
    mem::PartitionedArray tentArr_;
};

} // namespace alewife::apps::graph

#endif // ALEWIFE_APPS_GRAPH_SSSP_HH
