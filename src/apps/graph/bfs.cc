#include "apps/graph/bfs.hh"

#include <algorithm>

#include "machine/machine.hh"
#include "sim/logging.hh"

namespace alewife::apps::graph {

using core::Mechanism;

namespace {
/** Claims per active message: meta word + 6 packed claims. */
constexpr std::size_t kClaimBatch = 6;
} // namespace

Bfs::Bfs(GraphAppParams p) : GraphAppBase(std::move(p))
{
    ref_ = workload::bfsReference(g_, root_);
    maxDepth_ = ref_.maxDepth;

    // Expected cross-claim counts: processing level l sends one claim
    // per out-edge of a depth-l vertex whose target lives elsewhere.
    const int np = p_.graph.nprocs;
    exp_.assign(static_cast<std::size_t>(std::max(maxDepth_, 0)),
                std::vector<std::int64_t>(np, 0));
    for (std::int32_t u = 0; u < g_.n; ++u) {
        const std::int32_t d = ref_.depth[u];
        if (d < 0 || d >= maxDepth_)
            continue;
        const int pu = g_.owner(u);
        for (std::int32_t k = g_.outRow[u]; k < g_.outRow[u + 1]; ++k) {
            const int pv = g_.owner(g_.outDst[k]);
            if (pv != pu)
                ++exp_[d][pv];
        }
    }

    std::uint64_t h = kFnvBasis;
    for (std::int32_t v = 0; v < g_.n; ++v) {
        h = fnv(h, ref_.depth[v] < 0
                       ? kUnset
                       : pack(ref_.depth[v], ref_.parent[v]));
    }
    reference_ = digestChecksum(h);
}

core::AppFactory
Bfs::factory(GraphAppParams p)
{
    return [p]() { return std::make_unique<Bfs>(p); };
}

void
Bfs::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    checkMachine(m);
    const int np = p_.graph.nprocs;
    trafficInit(np);
    model_ = CostModel::fromConfig(m.config(),
                                   static_cast<double>(kClaimBatch));

    if (core::isSharedMemory(mech)) {
        std::vector<std::int32_t> counts(np);
        for (int p = 0; p < np; ++p)
            counts[p] = g_.numVerticesOn(p);
        stateArr_ =
            mem::PartitionedArray::create(m.mem(), counts, "graph-bfs");
        for (std::int32_t v = 0; v < g_.n; ++v) {
            const int p = g_.owner(v);
            m.mem().storeWord(stateArr_.addr(p, v - g_.firstVertex(p)),
                              v == root_ ? pack(0, root_) : kUnset);
        }
        return;
    }

    state_.assign(np, {});
    for (int p = 0; p < np; ++p)
        state_[p].assign(g_.numVerticesOn(p), kUnset);
    state_[g_.owner(root_)][root_ - g_.firstVertex(g_.owner(root_))] =
        pack(0, root_);
    recv_.assign(np, std::vector<std::int64_t>(
                         static_cast<std::size_t>(
                             std::max(maxDepth_, 0)),
                         0));

    // Claim handler: args = [level, (v << 32 | parent), ...]; the
    // claimed depth is level + 1. min-combining makes application
    // order irrelevant.
    hClaim_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const auto level = static_cast<std::int32_t>(args[0]);
        const int q = env.self();
        const std::int32_t first = g_.firstVertex(q);
        for (std::size_t k = 1; k < args.size(); ++k) {
            const auto v = static_cast<std::int32_t>(args[k] >> 32);
            const auto parent =
                static_cast<std::int32_t>(args[k] & 0xffffffff);
            auto &w = state_[q][v - first];
            w = std::min(w, pack(level + 1, parent));
        }
        recv_[q][level] += static_cast<std::int64_t>(args.size() - 1);
        noteRecv(q, args.size() - 1);
    });

    hClaimBulk_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto level =
            static_cast<std::int32_t>(env.msg().args[0]);
        const int q = env.self();
        const std::int32_t first = g_.firstVertex(q);
        const auto &body = env.msg().body;
        for (const std::uint64_t word : body) {
            const auto v = static_cast<std::int32_t>(word >> 32);
            const auto parent =
                static_cast<std::int32_t>(word & 0xffffffff);
            auto &w = state_[q][v - first];
            w = std::min(w, pack(level + 1, parent));
        }
        recv_[q][level] += static_cast<std::int64_t>(body.size());
        noteRecv(q, body.size());
    });
}

sim::Thread
Bfs::program(proc::Ctx &ctx)
{
    switch (mech_) {
      case Mechanism::SharedMemory:
        return programSm(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return programSm(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return programMp(ctx, false);
      case Mechanism::BulkTransfer:
        return programMp(ctx, true);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

sim::Thread
Bfs::programSm(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);

    std::vector<std::int32_t> frontier;
    if (g_.owner(root_) == self)
        frontier.push_back(root_ - first);

    for (std::int32_t level = 0; level < maxDepth_; ++level) {
        for (const std::int32_t li : frontier) {
            const std::int32_t u = first + li;
            const std::int32_t beg = g_.outRow[u];
            const std::int32_t end = g_.outRow[u + 1];
            for (std::int32_t k = beg; k < end; ++k) {
                const std::int32_t v = g_.outDst[k];
                const int q = g_.owner(v);
                const Addr a =
                    stateArr_.addr(q, v - g_.firstVertex(q));
                if (prefetch && k + 2 < end) {
                    const std::int32_t v2 = g_.outDst[k + 2];
                    const int q2 = g_.owner(v2);
                    ctx.prefetchWrite(
                        stateArr_.addr(q2, v2 - g_.firstVertex(q2)));
                }
                const std::uint64_t cand = pack(level + 1, u);
                co_await ctx.rmw(a, [cand](std::uint64_t w) {
                    return std::min(w, cand);
                });
                co_await ctx.compute(2.0);
                if (q != self) {
                    noteSend(self, 1, 1);
                    noteRecv(q, 1);
                }
            }
        }
        co_await ctx.barrier();

        // Every level-(l+1) claim is globally applied (rmw completes
        // before its issuer reaches the barrier); later-level claims
        // can only write larger packed values, so the scan is exact.
        frontier.clear();
        for (std::int32_t li = 0; li < count; ++li) {
            const Addr a = stateArr_.addr(self, li);
            if (prefetch && li + 2 < count)
                ctx.prefetchRead(stateArr_.addr(self, li + 2));
            const std::uint64_t w = co_await ctx.read(a);
            if (static_cast<std::int32_t>(w >> 32) == level + 1)
                frontier.push_back(li);
            co_await ctx.compute(1.0);
        }
        notePhaseEnd(self);
    }
    co_return;
}

sim::Thread
Bfs::programMp(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const int np = ctx.nprocs();
    const std::int32_t first = g_.firstVertex(self);
    const std::int32_t count = g_.numVerticesOn(self);
    auto &st = state_[self];

    std::vector<std::int32_t> frontier;
    if (g_.owner(root_) == self)
        frontier.push_back(root_ - first);

    std::vector<std::vector<std::uint64_t>> out(np);

    for (std::int32_t level = 0; level < maxDepth_; ++level) {
        for (const std::int32_t li : frontier) {
            co_await ctx.pollPoint();
            const std::int32_t u = first + li;
            for (std::int32_t k = g_.outRow[u]; k < g_.outRow[u + 1];
                 ++k) {
                const std::int32_t v = g_.outDst[k];
                const int q = g_.owner(v);
                co_await ctx.compute(2.0);
                const std::uint64_t word =
                    (static_cast<std::uint64_t>(v) << 32)
                    | static_cast<std::uint32_t>(u);
                if (q == self) {
                    auto &w = st[v - first];
                    w = std::min(w, pack(level + 1, u));
                    continue;
                }
                out[q].push_back(word);
                if (!bulk && out[q].size() == kClaimBatch) {
                    std::vector<std::uint64_t> args;
                    args.reserve(kClaimBatch + 1);
                    args.push_back(
                        static_cast<std::uint64_t>(level));
                    args.insert(args.end(), out[q].begin(),
                                out[q].end());
                    out[q].clear();
                    co_await ctx.send(q, hClaim_, std::move(args));
                    noteSend(self, kClaimBatch, 1);
                }
            }
        }
        for (int q = 0; q < np; ++q) {
            if (out[q].empty())
                continue;
            const std::size_t n = out[q].size();
            if (bulk) {
                co_await ctx.chargeCopy(n);
                std::vector<std::uint64_t> args;
                args.push_back(static_cast<std::uint64_t>(level));
                co_await ctx.sendBulk(q, hClaimBulk_,
                                      std::move(args),
                                      std::move(out[q]));
            } else {
                std::vector<std::uint64_t> args;
                args.reserve(n + 1);
                args.push_back(static_cast<std::uint64_t>(level));
                args.insert(args.end(), out[q].begin(),
                            out[q].end());
                co_await ctx.send(q, hClaim_, std::move(args));
            }
            out[q].clear();
            noteSend(self, n, 1);
        }

        // Per-level count: early claims from run-ahead senders land in
        // their own level's counter and never satisfy this wait.
        const std::int64_t want = exp_[level][self];
        co_await ctx.waitUntil(
            [this, self, level, want]() {
                return recv_[self][level] >= want;
            },
            TimeCat::Sync);

        frontier.clear();
        for (std::int32_t li = 0; li < count; ++li) {
            if ((li & 63) == 0) {
                co_await ctx.pollPoint();
                co_await ctx.compute(16.0);
            }
            if (static_cast<std::int32_t>(st[li] >> 32) == level + 1)
                frontier.push_back(li);
        }
        notePhaseEnd(self);
    }
    co_return;
}

std::uint64_t
Bfs::stateWord(std::int32_t v) const
{
    if (!result_.empty())
        return result_[v];
    const int p = g_.owner(v);
    const std::int32_t local = v - g_.firstVertex(p);
    if (core::isSharedMemory(mech_))
        return machine_->debugWord(stateArr_.addr(p, local));
    return state_[p][local];
}

double
Bfs::checksum() const
{
    result_.clear();
    std::vector<std::uint64_t> words(g_.n);
    for (std::int32_t v = 0; v < g_.n; ++v)
        words[v] = stateWord(v);
    result_ = std::move(words);
    std::uint64_t h = kFnvBasis;
    for (std::int32_t v = 0; v < g_.n; ++v)
        h = fnv(h, result_[v]);
    return digestChecksum(h);
}

std::vector<std::int32_t>
Bfs::resultDepth() const
{
    std::vector<std::int32_t> out(g_.n);
    for (std::int32_t v = 0; v < g_.n; ++v) {
        const std::uint64_t w = stateWord(v);
        out[v] = w == kUnset
                     ? -1
                     : static_cast<std::int32_t>(w >> 32);
    }
    return out;
}

std::vector<std::int32_t>
Bfs::resultParent() const
{
    std::vector<std::int32_t> out(g_.n);
    for (std::int32_t v = 0; v < g_.n; ++v) {
        const std::uint64_t w = stateWord(v);
        out[v] = w == kUnset
                     ? -1
                     : static_cast<std::int32_t>(w & 0xffffffff);
    }
    return out;
}

} // namespace alewife::apps::graph
