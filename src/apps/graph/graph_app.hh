/**
 * @file
 * Common machinery of the graph-analytics workload family.
 *
 * Every graph app follows the same contract (the `apps::Stress` style,
 * hardened to bit-exactness):
 *
 *  - the constructor builds the partitioned graph and runs a sequential
 *    reference implementation; the reference result is reduced to a
 *    52-bit FNV digest stored as the App reference();
 *  - the distributed run — under any of the five mechanisms — produces
 *    per-vertex results whose digest must EQUAL the reference digest
 *    (tolerance() == 0), which only works because every accumulation
 *    the schedule can reorder is integer min-combining (BFS, SSSP) and
 *    every floating-point sum happens in a fixed CSR order (PageRank);
 *  - per-partition value traffic is accounted into a TrafficStats and
 *    exported through core::App::exportMetrics when a recorder is
 *    attached (message-rate histogram, per-node skew counters, and the
 *    arXiv 1806.02030 cost-model prediction).
 */

#ifndef ALEWIFE_APPS_GRAPH_GRAPH_APP_HH
#define ALEWIFE_APPS_GRAPH_GRAPH_APP_HH

#include <cstdint>
#include <vector>

#include "apps/graph/cost_model.hh"
#include "core/app.hh"
#include "workload/graph.hh"

namespace alewife::apps::graph {

/** Parameters shared by every graph app. */
struct GraphAppParams
{
    workload::GraphParams graph;
    /** PageRank rounds / damping. */
    int iters = 5;
    double damping = 0.85;
    /** BFS/SSSP source; -1 picks the first vertex with out-edges. */
    std::int32_t root = -1;
    /** Delta-stepping bucket width (light edge: weight <= delta). */
    std::int32_t delta = 4;
};

/** Base class: graph + reference digest + traffic accounting. */
class GraphAppBase : public core::App
{
  public:
    double reference() const override { return reference_; }
    /** Results are bit-audited: digests must match exactly. */
    double tolerance() const override { return 0.0; }

    void exportMetrics(obs::MetricsRegistry &m) const override;

    const workload::PartitionedGraph &graph() const { return g_; }
    const TrafficStats &traffic() const { return traffic_; }
    const CostModel &costModel() const { return model_; }

  protected:
    explicit GraphAppBase(GraphAppParams p);

    /** 64-bit FNV-1a step. */
    static std::uint64_t
    fnv(std::uint64_t h, std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
        return h;
    }

    static constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

    /** Digest -> checksum double (52 bits, exactly representable). */
    static double
    digestChecksum(std::uint64_t h)
    {
        return static_cast<double>(h >> 12);
    }

    /** Panic unless the machine matches the workload partitioning. */
    void checkMachine(const Machine &m) const;

    // --- traffic accounting (model input, never simulator input) ---

    void trafficInit(int nodes);
    void noteSend(int node, std::uint64_t values, std::uint64_t msgs);
    void noteRecv(int node, std::uint64_t values);
    /** Close the current phase of @p node (at its sync point). */
    void notePhaseEnd(int node);

    GraphAppParams p_;
    workload::PartitionedGraph g_;
    std::int32_t root_ = 0;
    double reference_ = 0.0;
    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;

    TrafficStats traffic_;
    CostModel model_;

    /**
     * Per-vertex result words harvested by checksum() while the
     * machine is still alive. Shared-memory results live in simulated
     * memory, but the differential golden tests read result
     * accessors after runApp has destroyed the machine — so apps
     * serve those reads from this copy. Cleared by checkMachine() at
     * the next setup.
     */
    mutable std::vector<std::uint64_t> result_;

  private:
    std::vector<std::uint64_t> curSent_, curRecv_, curMsgs_;
};

} // namespace alewife::apps::graph

#endif // ALEWIFE_APPS_GRAPH_GRAPH_APP_HH
