#include "apps/graph/catalog.hh"

#include <sstream>

#include "apps/graph/bfs.hh"
#include "apps/graph/pagerank.hh"
#include "apps/graph/sssp.hh"
#include "sim/logging.hh"

namespace alewife::apps::graph {

const std::vector<CatalogEntry> &
catalog()
{
    static const std::vector<CatalogEntry> entries = {
        {"bfs",
         "level-synchronous BFS, deterministic min-parent tree",
         [](const GraphAppParams &p) { return Bfs::factory(p); }},
        {"pagerank",
         "bulk-synchronous pull PageRank (ghost exchange per round)",
         [](const GraphAppParams &p) {
             return Pagerank::factory(p,
                                      Pagerank::Variant::SyncPull);
         }},
        {"pagerank-push",
         "asynchronous push PageRank (one message per cross edge)",
         [](const GraphAppParams &p) {
             return Pagerank::factory(p,
                                      Pagerank::Variant::AsyncPush);
         }},
        {"sssp",
         "delta-stepping SSSP, differentially checked vs Dijkstra",
         [](const GraphAppParams &p) { return Sssp::factory(p); }},
    };
    return entries;
}

const CatalogEntry *
findApp(const std::string &name)
{
    for (const CatalogEntry &e : catalog()) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

core::AppFactory
makeApp(const std::string &name, const GraphAppParams &p)
{
    const CatalogEntry *e = findApp(name);
    if (!e) {
        std::string known;
        for (const std::string &n : catalogNames())
            known += (known.empty() ? "" : ", ") + n;
        ALEWIFE_FATAL("unknown graph app '", name, "' (have: ", known,
                      ")");
    }
    return e->make(p);
}

std::vector<std::string>
catalogNames()
{
    std::vector<std::string> out;
    for (const CatalogEntry &e : catalog())
        out.push_back(e.name);
    return out;
}

std::string
catalogKey(const std::string &name, const GraphAppParams &p)
{
    std::ostringstream key;
    key << "graph-" << name << "-"
        << workload::graphFamilyName(p.graph.family) << "-v"
        << p.graph.vertices << "-d" << p.graph.avgDegree << "-w"
        << p.graph.maxWeight << "-p" << p.graph.nprocs << "-s"
        << p.graph.seed << "-i" << p.iters << "-dm" << p.damping
        << "-r" << p.root << "-dl" << p.delta;
    return key.str();
}

} // namespace alewife::apps::graph
