/**
 * @file
 * Name-keyed registry of the graph-analytics workload family.
 *
 * Shaped after the application registries of distributed graph
 * frameworks: each entry carries a stable name, a one-line
 * description, and a factory-maker closing over GraphAppParams. The
 * registry is the seam drivers use (sweep_cli, ext3_graph_sweep,
 * tests) so new graph apps become sweepable everywhere by adding one
 * entry here.
 */

#ifndef ALEWIFE_APPS_GRAPH_CATALOG_HH
#define ALEWIFE_APPS_GRAPH_CATALOG_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/graph/graph_app.hh"

namespace alewife::apps::graph {

/** One registered graph application. */
struct CatalogEntry
{
    std::string name;
    std::string description;
    std::function<core::AppFactory(const GraphAppParams &)> make;
};

/** All registered graph apps, in registration order. */
const std::vector<CatalogEntry> &catalog();

/** Look up an entry by name; nullptr when absent. */
const CatalogEntry *findApp(const std::string &name);

/** Build a factory for @p name; fatal on an unknown name. */
core::AppFactory makeApp(const std::string &name,
                         const GraphAppParams &p);

/** Registered names, for usage messages. */
std::vector<std::string> catalogNames();

/**
 * Stable result-cache key for a (name, params) pair: app name plus
 * every generator and algorithm parameter that affects the result.
 */
std::string catalogKey(const std::string &name,
                       const GraphAppParams &p);

} // namespace alewife::apps::graph

#endif // ALEWIFE_APPS_GRAPH_CATALOG_HH
