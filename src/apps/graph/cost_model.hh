/**
 * @file
 * Per-edge traffic accounting and an analytic point-to-point cost model
 * for the graph workloads.
 *
 * The model follows "Improving Performance Models for Irregular
 * Point-to-Point Communication" (Bienz, Gropp, Olson; arXiv 1806.02030):
 * the classic postal model T = alpha + beta*bytes mispredicts irregular
 * exchanges, so two corrections are applied —
 *
 *  - max-rate: the bandwidth term of a phase is paid by the *busiest
 *    endpoint* (the node injecting/ejecting the most bytes), not by the
 *    aggregate volume spread over the bisection; skewed-degree graphs
 *    concentrate traffic on few nodes and the busiest one is the
 *    bottleneck;
 *  - queue-aware: messages beyond the NI input-queue depth pay an extra
 *    queue-search/retry penalty per message (the receiver cannot drain
 *    the queue faster than its dispatch overhead, so senders eat
 *    niRetryCycles redeliveries).
 *
 * Apps fill a TrafficStats during the run (every value shipped between
 * partitions, per node per phase); the model predicts communication
 * cycles from those counts and the machine's cost knobs. The prediction
 * is surfaced as obs metrics and printed by ext3_graph_sweep next to
 * the simulated runtime — it is a diagnostic, never an input to the
 * simulation itself.
 */

#ifndef ALEWIFE_APPS_GRAPH_COST_MODEL_HH
#define ALEWIFE_APPS_GRAPH_COST_MODEL_HH

#include <cstdint>
#include <vector>

#include "machine/config.hh"

namespace alewife::apps::graph {

/** Per-node / per-phase value and message accounting of one run. */
struct TrafficStats
{
    int nodes = 0;

    /** Aggregate per-node totals (64-bit values / messages). */
    std::vector<std::uint64_t> sentValues;
    std::vector<std::uint64_t> recvValues;
    std::vector<std::uint64_t> sentMsgs;

    /** Per node: values sent in each completed phase. */
    std::vector<std::vector<std::uint64_t>> phaseSent;
    /** Per node: values received in each completed phase. */
    std::vector<std::vector<std::uint64_t>> phaseRecv;

    void init(int n);

    std::uint64_t totalSent() const;
    std::uint64_t totalMsgs() const;

    /** Completed phases (max over nodes). */
    std::size_t phases() const;

    /**
     * Send skew: busiest node's total sent values over the per-node
     * mean (1.0 = perfectly balanced). 0 when nothing was sent.
     */
    double sendSkew() const;
};

/** Max-rate / queue-aware communication cost model. */
struct CostModel
{
    double alphaCycles = 0.0;        ///< per-message network latency
    double sendCyclesPerMsg = 0.0;   ///< sender CPU overhead per message
    double recvCyclesPerMsg = 0.0;   ///< receiver dispatch per message
    double cyclesPerWord = 0.0;      ///< CPU cost per payload word
    double betaCyclesPerByte = 0.0;  ///< inverse per-link bandwidth
    double bytesPerValue = 8.0;      ///< payload bytes per 64-bit value
    double headerBytes = 8.0;
    double valuesPerMsg = 5.0;       ///< app batching factor
    int queueSlots = 8;              ///< NI input queue depth
    double queuePenaltyCycles = 0.0; ///< retry cost per excess message

    /** Derive the knobs from a machine configuration. */
    static CostModel fromConfig(const MachineConfig &cfg,
                                double values_per_msg);

    /**
     * Predicted communication cycles of one phase given each node's
     * sent/received value counts: CPU overhead + alpha + the max-rate
     * bandwidth term + the queue correction, all charged to the
     * bottleneck node.
     */
    double
    predictPhaseCycles(const std::vector<std::uint64_t> &sent,
                       const std::vector<std::uint64_t> &recv) const;

    /** Sum of predictPhaseCycles over every completed phase. */
    double predictCommCycles(const TrafficStats &t) const;
};

} // namespace alewife::apps::graph

#endif // ALEWIFE_APPS_GRAPH_COST_MODEL_HH
