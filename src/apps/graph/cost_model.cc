#include "apps/graph/cost_model.hh"

#include <algorithm>
#include <cmath>

namespace alewife::apps::graph {

void
TrafficStats::init(int n)
{
    nodes = n;
    sentValues.assign(n, 0);
    recvValues.assign(n, 0);
    sentMsgs.assign(n, 0);
    phaseSent.assign(n, {});
    phaseRecv.assign(n, {});
}

std::uint64_t
TrafficStats::totalSent() const
{
    std::uint64_t s = 0;
    for (std::uint64_t v : sentValues)
        s += v;
    return s;
}

std::uint64_t
TrafficStats::totalMsgs() const
{
    std::uint64_t s = 0;
    for (std::uint64_t v : sentMsgs)
        s += v;
    return s;
}

std::size_t
TrafficStats::phases() const
{
    std::size_t p = 0;
    for (const auto &v : phaseSent)
        p = std::max(p, v.size());
    return p;
}

double
TrafficStats::sendSkew() const
{
    const std::uint64_t total = totalSent();
    if (total == 0 || nodes == 0)
        return 0.0;
    const std::uint64_t peak =
        *std::max_element(sentValues.begin(), sentValues.end());
    const double mean = static_cast<double>(total) / nodes;
    return static_cast<double>(peak) / mean;
}

CostModel
CostModel::fromConfig(const MachineConfig &cfg, double values_per_msg)
{
    CostModel m;
    m.alphaCycles = cfg.netFixedCycles()
                    + cfg.averageHops() * cfg.hopCycles();
    m.sendCyclesPerMsg = cfg.amSendCycles;
    m.recvCyclesPerMsg = cfg.amDispatchCycles;
    m.cyclesPerWord = cfg.amSendPerWordCycles + cfg.amRecvPerWordCycles;
    m.betaCyclesPerByte = 1.0 / cfg.linkBytesPerCycle();
    m.headerBytes = cfg.amHeaderBytes;
    m.valuesPerMsg = std::max(1.0, values_per_msg);
    m.queueSlots = cfg.niInputQueueSlots;
    m.queuePenaltyCycles = cfg.niRetryCycles;
    return m;
}

double
CostModel::predictPhaseCycles(const std::vector<std::uint64_t> &sent,
                              const std::vector<std::uint64_t> &recv) const
{
    double cpu_max = 0.0, bytes_max = 0.0, recv_msgs_max = 0.0;
    const std::size_t n = std::max(sent.size(), recv.size());
    for (std::size_t p = 0; p < n; ++p) {
        const double s = p < sent.size()
                             ? static_cast<double>(sent[p])
                             : 0.0;
        const double r = p < recv.size()
                             ? static_cast<double>(recv[p])
                             : 0.0;
        const double s_msgs = std::ceil(s / valuesPerMsg);
        const double r_msgs = std::ceil(r / valuesPerMsg);
        const double cpu = sendCyclesPerMsg * s_msgs
                           + recvCyclesPerMsg * r_msgs
                           + cyclesPerWord * (s + r);
        // Max-rate: each endpoint moves its own bytes through its own
        // link; the phase is as slow as the busiest endpoint.
        const double bytes =
            std::max(s, r) * bytesPerValue
            + std::max(s_msgs, r_msgs) * headerBytes;
        cpu_max = std::max(cpu_max, cpu);
        bytes_max = std::max(bytes_max, bytes);
        recv_msgs_max = std::max(recv_msgs_max, r_msgs);
    }
    if (cpu_max == 0.0 && bytes_max == 0.0)
        return 0.0;
    // Queue-aware: messages past the NI queue depth get redelivered.
    const double excess =
        std::max(0.0, recv_msgs_max - static_cast<double>(queueSlots));
    return cpu_max + alphaCycles + betaCyclesPerByte * bytes_max
           + queuePenaltyCycles * excess;
}

double
CostModel::predictCommCycles(const TrafficStats &t) const
{
    const std::size_t phases = t.phases();
    double total = 0.0;
    std::vector<std::uint64_t> sent(t.nodes, 0), recv(t.nodes, 0);
    for (std::size_t k = 0; k < phases; ++k) {
        for (int p = 0; p < t.nodes; ++p) {
            sent[p] = k < t.phaseSent[p].size() ? t.phaseSent[p][k] : 0;
            recv[p] = k < t.phaseRecv[p].size() ? t.phaseRecv[p][k] : 0;
        }
        total += predictPhaseCycles(sent, recv);
    }
    return total;
}

} // namespace alewife::apps::graph
