#include "apps/graph/graph_app.hh"

#include "machine/machine.hh"
#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace alewife::apps::graph {

GraphAppBase::GraphAppBase(GraphAppParams p) : p_(std::move(p))
{
    g_ = workload::makeGraph(p_.graph);
    root_ = p_.root >= 0 ? p_.root : g_.defaultRoot();
    if (root_ >= g_.n)
        ALEWIFE_PANIC("graph root ", root_, " out of range (n=", g_.n,
                      ")");
}

void
GraphAppBase::checkMachine(const Machine &m) const
{
    if (m.config().nodes() != p_.graph.nprocs) {
        ALEWIFE_PANIC(name(), ": machine has ", m.config().nodes(),
                      " nodes but GraphParams::nprocs is ",
                      p_.graph.nprocs);
    }
    // A new run invalidates the previous run's harvested result.
    result_.clear();
}

void
GraphAppBase::trafficInit(int nodes)
{
    traffic_.init(nodes);
    curSent_.assign(nodes, 0);
    curRecv_.assign(nodes, 0);
    curMsgs_.assign(nodes, 0);
}

void
GraphAppBase::noteSend(int node, std::uint64_t values,
                       std::uint64_t msgs)
{
    curSent_[node] += values;
    curMsgs_[node] += msgs;
}

void
GraphAppBase::noteRecv(int node, std::uint64_t values)
{
    curRecv_[node] += values;
}

void
GraphAppBase::notePhaseEnd(int node)
{
    traffic_.sentValues[node] += curSent_[node];
    traffic_.recvValues[node] += curRecv_[node];
    traffic_.sentMsgs[node] += curMsgs_[node];
    traffic_.phaseSent[node].push_back(curSent_[node]);
    traffic_.phaseRecv[node].push_back(curRecv_[node]);
    curSent_[node] = 0;
    curRecv_[node] = 0;
    curMsgs_[node] = 0;
}

void
GraphAppBase::exportMetrics(obs::MetricsRegistry &m) const
{
    const int cs = m.counterId("graph.sent_values");
    const int cr = m.counterId("graph.recv_values");
    const int cm = m.counterId("graph.sent_msgs");
    for (int p = 0; p < traffic_.nodes; ++p) {
        m.addCounter(cs, p, traffic_.sentValues[p]);
        m.addCounter(cr, p, traffic_.recvValues[p]);
        m.addCounter(cm, p, traffic_.sentMsgs[p]);
    }
    // Values shipped per (node, phase): the message-rate distribution.
    const int h = m.histogramId(
        "graph.phase_sent_values",
        {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
    for (int p = 0; p < traffic_.nodes; ++p)
        for (std::uint64_t v : traffic_.phaseSent[p])
            m.observe(h, p, static_cast<double>(v));
    m.setGauge("graph.phases",
               static_cast<double>(traffic_.phases()));
    m.setGauge("graph.send_skew", traffic_.sendSkew());
    m.setGauge("graph.model.predicted_comm_cycles",
               model_.predictCommCycles(traffic_));
}

} // namespace alewife::apps::graph
