#include "apps/moldyn.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace alewife::apps {

using core::Mechanism;

namespace {

/** Force-law constants shared with the sequential reference. */
constexpr double kSpring = 0.001;
constexpr double kDt = 0.01;

/** Single-precision FLOPs per pair interaction / per-molecule update. */
constexpr int kFlopsPerPair = 50;
constexpr int kFlopsPerUpdate = 10;

/** Addressing overhead per pair. */
constexpr double kPairOverheadCycles = 6.0;

} // namespace

Moldyn::Moldyn(Params p) : p_(std::move(p))
{
    sys_ = workload::makeMoldyn(p_.box);
    reference_ = sys_.sequential(p_.iters);
}

core::AppFactory
Moldyn::factory(Params p)
{
    return [p]() { return std::make_unique<Moldyn>(p); };
}

void
Moldyn::buildPartition()
{
    const int np = p_.box.nprocs;
    localPairs_.assign(np, {});
    smPairs_.assign(np, {});
    cross_.assign(np, std::vector<std::vector<CrossPair>>(np));
    sendList_.assign(np, std::vector<std::vector<std::int32_t>>(np));

    // Ghost slot assignment: one slot per distinct (p -> q) molecule.
    std::vector<std::vector<std::int32_t>> slot(
        np, std::vector<std::int32_t>(p_.box.molecules, -1));

    for (const workload::Pair &pr : sys_.pairs) {
        const int pi = sys_.owner(pr.i);
        const int pj = sys_.owner(pr.j);
        if (pi == pj) {
            localPairs_[pi].push_back(pr);
            smPairs_[pi].push_back({pr.i, pr.j});
            continue;
        }
        // SM: alternate cross-pair assignment between the two owners
        // so boundary-heavy partitions don't serialize the barriers.
        if (((pr.i + pr.j) & 1) == 0)
            smPairs_[pi].push_back({pr.i, pr.j});
        else
            smPairs_[pj].push_back({pr.j, pr.i});
        // MP: the higher-id proc computes; the lower ships coords.
        const int q = std::max(pi, pj);
        const int p = std::min(pi, pj);
        const std::int32_t qmol = (q == pi) ? pr.i : pr.j;
        const std::int32_t pmol = (q == pi) ? pr.j : pr.i;
        if (slot[q][pmol] < 0) {
            slot[q][pmol] = static_cast<std::int32_t>(
                sendList_[p][q].size());
            sendList_[p][q].push_back(pmol - sys_.firstOf[p]);
        }
        CrossPair cp;
        cp.mine = qmol - sys_.firstOf[q];
        cp.ghost = slot[q][pmol];
        cp.remoteSlot = slot[q][pmol];
        cross_[q][p].push_back(cp);
    }
}

void
Moldyn::setupSharedMemory(Machine &m)
{
    const int np = p_.box.nprocs;
    std::vector<std::int32_t> counts(np);
    for (int p = 0; p < np; ++p)
        counts[p] = 4 * sys_.numMoleculesOn(p); // x,y,z,pad per molecule
    xArr_ = mem::PartitionedArray::create(m.mem(), counts, "moldyn-x");
    fArr_ = mem::PartitionedArray::create(m.mem(), counts, "moldyn-f");
    std::vector<std::int32_t> lockCounts(np);
    for (int p = 0; p < np; ++p)
        lockCounts[p] = 2 * sys_.numMoleculesOn(p); // one line each
    lockArr_ =
        mem::PartitionedArray::create(m.mem(), lockCounts, "moldyn-lk");

    for (std::int32_t i = 0; i < p_.box.molecules; ++i) {
        const int p = sys_.owner(i);
        const std::int32_t l = i - sys_.firstOf[p];
        for (int d = 0; d < 3; ++d) {
            m.mem().storeDouble(xArr_.addr(p, 4 * l + d),
                                sys_.init[i].x[d]);
            m.mem().storeDouble(fArr_.addr(p, 4 * l + d), 0.0);
        }
    }
}

void
Moldyn::setupMessagePassing(Machine &m)
{
    const int np = p_.box.nprocs;
    xLoc_.assign(np, {});
    vLoc_.assign(np, {});
    fLoc_.assign(np, {});
    ghostX_.assign(np, {});
    deltaOut_.assign(np, {});
    coordsExpected_.assign(np, 0);
    coordsRecv_.assign(np, 0);
    deltasExpected_.assign(np, 0);
    deltasRecv_.assign(np, 0);

    for (int p = 0; p < np; ++p) {
        const std::int32_t n = sys_.numMoleculesOn(p);
        xLoc_[p].resize(3 * n);
        vLoc_[p].resize(3 * n);
        fLoc_[p].assign(3 * n, 0.0);
        for (std::int32_t l = 0; l < n; ++l) {
            const workload::Molecule &mol =
                sys_.init[sys_.firstOf[p] + l];
            for (int d = 0; d < 3; ++d) {
                xLoc_[p][3 * l + d] = mol.x[d];
                vLoc_[p][3 * l + d] = mol.v[d];
            }
        }
    }

    // Ghost buffers and expectations. Ghost base of group (p -> q) is
    // the running prefix over p.
    std::vector<std::vector<std::int32_t>> base(
        np, std::vector<std::int32_t>(np, 0));
    for (int q = 0; q < np; ++q) {
        std::int32_t total = 0;
        for (int p = 0; p < np; ++p) {
            base[q][p] = total;
            total += static_cast<std::int32_t>(sendList_[p][q].size());
        }
        ghostX_[q].assign(3 * total, 0.0);
        coordsExpected_[q] = total;
    }
    for (int p = 0; p < np; ++p) {
        std::int64_t ships = 0;
        for (int q = 0; q < np; ++q)
            ships += static_cast<std::int64_t>(sendList_[p][q].size());
        deltasExpected_[p] = ships;
    }
    // Re-base cross pairs' ghost slots to the flat buffer.
    for (int q = 0; q < np; ++q) {
        for (int p = 0; p < np; ++p) {
            for (CrossPair &cp : cross_[q][p])
                cp.ghost += base[q][p];
        }
    }

    // Coordinate delivery: meta = (srcProc, molOffset); body/args carry
    // 3 doubles per molecule in sendList order.
    auto store_coords = [this, base](int q, int src,
                                     std::int64_t mol_off,
                                     const std::uint64_t *vals,
                                     std::size_t nmols) {
        const std::int32_t b = base[q][src];
        for (std::size_t k = 0; k < nmols; ++k) {
            for (int d = 0; d < 3; ++d) {
                ghostX_[q][3 * (b + mol_off + k) + d] =
                    std::bit_cast<double>(vals[3 * k + d]);
            }
        }
        coordsRecv_[q] += static_cast<std::int64_t>(nmols);
    };

    hCoords_ = m.handlers().add([this, store_coords](
                                    msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int src = static_cast<int>(args[0] & 0xffff);
        const auto off = static_cast<std::int64_t>(args[0] >> 16);
        store_coords(env.self(), src, off, args.data() + 1,
                     (args.size() - 1) / 3);
    });
    hCoordsBulk_ = m.handlers().add([this, store_coords](
                                        msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int src = static_cast<int>(args[0] & 0xffff);
        store_coords(env.self(), src, 0, env.msg().body.data(),
                     env.msg().body.size() / 3);
    });

    // Delta return: meta = (srcProc q, molOffset); 3 doubles per
    // molecule in the *receiver's* sendList_[p][q] order.
    auto apply_deltas = [this](int p, int src, std::int64_t mol_off,
                               const std::uint64_t *vals,
                               std::size_t nmols) {
        const auto &items = sendList_[p][src];
        for (std::size_t k = 0; k < nmols; ++k) {
            const std::int32_t l = items[mol_off + k];
            for (int d = 0; d < 3; ++d) {
                fLoc_[p][3 * l + d] +=
                    std::bit_cast<double>(vals[3 * k + d]);
            }
        }
        deltasRecv_[p] += static_cast<std::int64_t>(nmols);
    };

    hDeltas_ = m.handlers().add([this, apply_deltas](
                                    msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int src = static_cast<int>(args[0] & 0xffff);
        const auto off = static_cast<std::int64_t>(args[0] >> 16);
        apply_deltas(env.self(), src, off, args.data() + 1,
                     (args.size() - 1) / 3);
        env.charge(3.0 * static_cast<double>((args.size() - 1) / 3));
    });
    hDeltasBulk_ = m.handlers().add([this, apply_deltas](
                                        msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int src = static_cast<int>(args[0] & 0xffff);
        apply_deltas(env.self(), src, 0, env.msg().body.data(),
                     env.msg().body.size() / 3);
        env.charge(3.0 * static_cast<double>(env.msg().body.size() / 3));
    });
}

void
Moldyn::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    buildPartition();
    if (core::isSharedMemory(mech))
        setupSharedMemory(m);
    else
        setupMessagePassing(m);
}

sim::Thread
Moldyn::program(proc::Ctx &ctx)
{
    switch (mech_) {
      case Mechanism::SharedMemory:
        return programSm(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return programSm(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return programMp(ctx, false);
      case Mechanism::BulkTransfer:
        return programMp(ctx, true);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

// ---------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------

sim::SubTask<void>
Moldyn::smAccumulate(proc::Ctx &ctx, std::int32_t mol, const double d[3])
{
    const int p = sys_.owner(mol);
    const std::int32_t l = mol - sys_.firstOf[p];
    co_await ctx.lock(lockArr_.addr(p, 2 * l));
    for (int k = 0; k < 3; ++k) {
        const Addr fa = fArr_.addr(p, 4 * l + k);
        const double old = proc::Ctx::asDouble(co_await ctx.read(fa));
        co_await ctx.writeD(fa, old + d[k]);
    }
    co_await ctx.computeFlopsSP(3);
    co_await ctx.unlock(lockArr_.addr(p, 2 * l));
}

sim::Thread
Moldyn::programSm(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const std::int32_t first = sys_.firstOf[self];
    const std::int32_t count = sys_.numMoleculesOn(self);
    const auto &pairs = smPairs_[self];

    // Velocities stay processor-local even under shared memory.
    std::vector<double> v(3 * count);
    for (std::int32_t l = 0; l < count; ++l)
        for (int d = 0; d < 3; ++d)
            v[3 * l + d] = sys_.init[first + l].v[d];

    auto coordAddr = [this](std::int32_t mol, int d) {
        const int p = sys_.owner(mol);
        return xArr_.addr(p, 4 * (mol - sys_.firstOf[p]) + d);
    };

    // Molecules whose f is updated by more than one processor.
    std::vector<bool> contested(p_.box.molecules, false);
    for (int q = 0; q < ctx.nprocs(); ++q) {
        for (const SmPair &pr : smPairs_[q]) {
            if (sys_.owner(pr.other) != q)
                contested[pr.other] = true;
        }
    }

    for (int it = 0; it < p_.iters; ++it) {
        for (std::size_t k = 0; k < pairs.size(); ++k) {
            const SmPair &pr = pairs[k];
            if (prefetch && k + 2 < pairs.size()) {
                // One-ahead read prefetch of the partner coordinates
                // and write prefetch of its force-delta line.
                const SmPair &nx = pairs[k + 2];
                ctx.prefetchRead(coordAddr(nx.other, 0));
                ctx.prefetchRead(coordAddr(nx.other, 2));
                if (sys_.owner(nx.other) != self) {
                    const int pj = sys_.owner(nx.other);
                    ctx.prefetchWrite(fArr_.addr(
                        pj, 4 * (nx.other - sys_.firstOf[pj])));
                }
            }
            double xm[3], xo[3], d3[3];
            for (int d = 0; d < 3; ++d) {
                xm[d] = proc::Ctx::asDouble(
                    co_await ctx.read(coordAddr(pr.mine, d)));
                xo[d] = proc::Ctx::asDouble(
                    co_await ctx.read(coordAddr(pr.other, d)));
                // Antisymmetric law: orientation doesn't matter.
                d3[d] = kSpring * (xo[d] - xm[d]);
            }
            co_await ctx.compute(kPairOverheadCycles);
            co_await ctx.computeFlopsSP(kFlopsPerPair);

            // f_mine += d, f_other -= d.
            const std::int32_t lm = pr.mine - first;
            if (contested[pr.mine]) {
                co_await smAccumulate(ctx, pr.mine, d3);
            } else {
                for (int d = 0; d < 3; ++d) {
                    const Addr fa = fArr_.addr(self, 4 * lm + d);
                    const double old = proc::Ctx::asDouble(
                        co_await ctx.read(fa));
                    co_await ctx.writeD(fa, old + d3[d]);
                }
                co_await ctx.computeFlopsSP(3);
            }
            double neg[3] = {-d3[0], -d3[1], -d3[2]};
            if (sys_.owner(pr.other) == self && !contested[pr.other]) {
                const std::int32_t lo = pr.other - first;
                for (int d = 0; d < 3; ++d) {
                    const Addr fa = fArr_.addr(self, 4 * lo + d);
                    const double old = proc::Ctx::asDouble(
                        co_await ctx.read(fa));
                    co_await ctx.writeD(fa, old + neg[d]);
                }
                co_await ctx.computeFlopsSP(3);
            } else {
                co_await smAccumulate(ctx, pr.other, neg);
            }
        }
        co_await ctx.barrier();

        // Update phase: v += f dt; x += v dt; f = 0.
        for (std::int32_t l = 0; l < count; ++l) {
            co_await ctx.computeFlopsSP(kFlopsPerUpdate);
            for (int d = 0; d < 3; ++d) {
                const Addr fa = fArr_.addr(self, 4 * l + d);
                const Addr xa = xArr_.addr(self, 4 * l + d);
                const double f = proc::Ctx::asDouble(
                    co_await ctx.read(fa));
                const double x = proc::Ctx::asDouble(
                    co_await ctx.read(xa));
                v[3 * l + d] += f * kDt;
                co_await ctx.writeD(xa, x + v[3 * l + d] * kDt);
                co_await ctx.writeD(fa, 0.0);
            }
        }
        co_await ctx.barrier();
    }
    co_return;
}

// ---------------------------------------------------------------------
// Message passing
// ---------------------------------------------------------------------

sim::Thread
Moldyn::programMp(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const int np = ctx.nprocs();
    const std::int32_t count = sys_.numMoleculesOn(self);
    auto &x = xLoc_[self];
    auto &v = vLoc_[self];
    auto &f = fLoc_[self];

    for (int it = 0; it < p_.iters; ++it) {
        // 1. Ship boundary coordinates to every computing neighbour.
        for (int q = 0; q < np; ++q) {
            const auto &items = sendList_[self][q];
            if (items.empty())
                continue;
            if (bulk) {
                std::vector<std::uint64_t> body;
                body.reserve(3 * items.size());
                for (std::int32_t l : items) {
                    for (int d = 0; d < 3; ++d) {
                        body.push_back(std::bit_cast<std::uint64_t>(
                            x[3 * l + d]));
                    }
                }
                co_await ctx.chargeCopy(body.size());
                std::vector<std::uint64_t> args;
                args.push_back(static_cast<std::uint64_t>(self));
                co_await ctx.sendBulk(q, hCoordsBulk_, std::move(args),
                                      std::move(body));
            } else {
                // One molecule (3 doubles) per fine-grained message.
                for (std::size_t k = 0; k < items.size(); ++k) {
                    std::vector<std::uint64_t> args;
                    args.reserve(4);
                    args.push_back(static_cast<std::uint64_t>(self)
                                   | (static_cast<std::uint64_t>(k)
                                      << 16));
                    for (int d = 0; d < 3; ++d) {
                        args.push_back(std::bit_cast<std::uint64_t>(
                            x[3 * items[k] + d]));
                    }
                    co_await ctx.send(q, hCoords_, std::move(args));
                }
            }
        }

        // 2. Wait for every coordinate group we compute with.
        const std::int64_t want_coords =
            coordsExpected_[self] * static_cast<std::int64_t>(it + 1);
        co_await ctx.waitUntil(
            [this, self, want_coords]() {
                return coordsRecv_[self] >= want_coords;
            },
            TimeCat::Sync);

        // 3. Compute local pairs (with user-inserted poll points).
        int poll_gap = 0;
        for (const workload::Pair &pr : localPairs_[self]) {
            if (++poll_gap >= ctx.config().pollInsertionGap) {
                poll_gap = 0;
                co_await ctx.pollPoint();
            }
            const std::int32_t li = pr.i - sys_.firstOf[self];
            const std::int32_t lj = pr.j - sys_.firstOf[self];
            co_await ctx.compute(kPairOverheadCycles);
            co_await ctx.computeFlopsSP(kFlopsPerPair + 6);
            for (int d = 0; d < 3; ++d) {
                const double c =
                    kSpring * (x[3 * lj + d] - x[3 * li + d]);
                f[3 * li + d] += c;
                f[3 * lj + d] -= c;
            }
        }

        // 4. Compute cross groups and return deltas.
        for (int p = 0; p < np; ++p) {
            const auto &group = cross_[self][p];
            if (group.empty())
                continue;
            std::vector<double> delta(
                3 * sendList_[p][self].size(), 0.0);
            for (const CrossPair &cp : group) {
                if (++poll_gap >= 4) {
                    poll_gap = 0;
                    co_await ctx.pollPoint();
                }
                co_await ctx.compute(kPairOverheadCycles);
                co_await ctx.computeFlopsSP(kFlopsPerPair + 6);
                for (int d = 0; d < 3; ++d) {
                    // Sign convention: the ghost molecule belongs to p.
                    // Pair is (i, j) with i < j; our molecule may be
                    // either; force law is antisymmetric, so compute
                    // toward our molecule and negate for the ghost.
                    const double c =
                        kSpring * (ghostX_[self][3 * cp.ghost + d]
                                   - x[3 * cp.mine + d]);
                    f[3 * cp.mine + d] += c;
                    delta[3 * cp.remoteSlot + d] -= c;
                }
            }
            // Ship the accumulated deltas back.
            if (bulk) {
                std::vector<std::uint64_t> body;
                body.reserve(delta.size());
                for (double dv : delta)
                    body.push_back(std::bit_cast<std::uint64_t>(dv));
                co_await ctx.chargeCopy(body.size());
                std::vector<std::uint64_t> args;
                args.push_back(static_cast<std::uint64_t>(self));
                co_await ctx.sendBulk(p, hDeltasBulk_, std::move(args),
                                      std::move(body));
            } else {
                for (std::size_t k = 0; k * 3 < delta.size(); ++k) {
                    std::vector<std::uint64_t> args;
                    args.reserve(4);
                    args.push_back(static_cast<std::uint64_t>(self)
                                   | (static_cast<std::uint64_t>(k)
                                      << 16));
                    for (int d = 0; d < 3; ++d) {
                        args.push_back(std::bit_cast<std::uint64_t>(
                            delta[3 * k + d]));
                    }
                    co_await ctx.send(p, hDeltas_, std::move(args));
                }
            }
        }

        // 5. Wait for our own returned deltas.
        const std::int64_t want_d =
            deltasExpected_[self] * static_cast<std::int64_t>(it + 1);
        co_await ctx.waitUntil(
            [this, self, want_d]() {
                return deltasRecv_[self] >= want_d;
            },
            TimeCat::Sync);

        // 6. Update phase.
        for (std::int32_t l = 0; l < count; ++l) {
            co_await ctx.computeFlopsSP(kFlopsPerUpdate);
            for (int d = 0; d < 3; ++d) {
                v[3 * l + d] += f[3 * l + d] * kDt;
                x[3 * l + d] += v[3 * l + d] * kDt;
                f[3 * l + d] = 0.0;
            }
        }
    }
    co_return;
}

double
Moldyn::checksum() const
{
    double sum = 0.0;
    if (core::isSharedMemory(mech_)) {
        for (std::int32_t i = 0; i < p_.box.molecules; ++i) {
            const int p = sys_.owner(i);
            const std::int32_t l = i - sys_.firstOf[p];
            for (int d = 0; d < 3; ++d) {
                sum += machine_->debugDouble(
                    xArr_.addr(p, 4 * l + d));
            }
        }
        return sum;
    }
    for (const auto &xs : xLoc_)
        for (double vv : xs)
            sum += vv;
    return sum;
}

} // namespace alewife::apps
