#include "apps/unstruc.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace alewife::apps {

using core::Mechanism;

namespace {

/** FLOPs per edge / per node, from Section 4.2 of the paper. */
constexpr int kFlopsPerEdge = 75;
constexpr int kFlopsPerNode = 3;

/** Index/addressing overhead per edge beyond the FLOPs. */
constexpr double kEdgeOverheadCycles = 6.0;

} // namespace

Unstruc::Unstruc(Params p) : p_(std::move(p))
{
    mesh_ = workload::makeMesh(p_.mesh);
    reference_ = mesh_.sequential(p_.iters);
}

core::AppFactory
Unstruc::factory(Params p)
{
    return [p]() { return std::make_unique<Unstruc>(p); };
}

void
Unstruc::buildPartition()
{
    const int np = p_.mesh.nprocs;
    edgesOf_.assign(np, {});
    contested_.assign(p_.mesh.nodes, false);

    for (const workload::MeshEdge &e : mesh_.edges) {
        const int p = mesh_.owner(e.u);
        LocalEdge le;
        le.u = e.u;
        le.v = e.v;
        le.w = e.w;
        le.vRemote = mesh_.owner(e.v) != p;
        le.vGhost = -1;
        if (le.vRemote) {
            contested_[e.v] = true;
        }
        edgesOf_[p].push_back(le);
    }
}

void
Unstruc::setupSharedMemory(Machine &m)
{
    const int np = p_.mesh.nprocs;
    std::vector<std::int32_t> counts(np);
    for (int p = 0; p < np; ++p)
        counts[p] = mesh_.numNodesOn(p);
    xArr_ = mem::PartitionedArray::create(m.mem(), counts, "unstruc-x");
    fArr_ = mem::PartitionedArray::create(m.mem(), counts, "unstruc-f");
    lockArr_ =
        mem::PartitionedArray::create(m.mem(), counts, "unstruc-lock");
    for (std::int32_t n = 0; n < p_.mesh.nodes; ++n) {
        const int p = mesh_.owner(n);
        const std::int32_t local = n - mesh_.firstNode(p);
        m.mem().storeDouble(xArr_.addr(p, local), mesh_.xInit[n]);
        m.mem().storeDouble(fArr_.addr(p, local), 0.0);
    }
}

void
Unstruc::setupMessagePassing(Machine &m)
{
    const int np = p_.mesh.nprocs;
    xLocal_.assign(np, {});
    fLocal_.assign(np, {});
    for (int p = 0; p < np; ++p) {
        const std::int32_t first = mesh_.firstNode(p);
        const std::int32_t count = mesh_.numNodesOn(p);
        xLocal_[p].assign(mesh_.xInit.begin() + first,
                          mesh_.xInit.begin() + first + count);
        fLocal_[p].assign(count, 0.0);
    }

    // Ghost slots for remote x[v] reads, one per distinct (q, v).
    xGhost_[0].assign(np, {});
    xGhost_[1].assign(np, {});
    xPlan_.assign(np, std::vector<std::vector<SendItem>>(np));
    xExpected_.assign(np, 0);
    xReceived_[0].assign(np, 0);
    xReceived_[1].assign(np, 0);
    fExpected_.assign(np, 0);
    fReceived_.assign(np, 0);

    std::vector<std::int32_t> slot_of(p_.mesh.nodes);
    for (int q = 0; q < np; ++q) {
        std::fill(slot_of.begin(), slot_of.end(), -1);
        for (LocalEdge &le : edgesOf_[q]) {
            if (!le.vRemote)
                continue;
            if (slot_of[le.v] < 0) {
                slot_of[le.v] =
                    static_cast<std::int32_t>(xGhost_[0][q].size());
                xGhost_[0][q].push_back(0.0);
                xGhost_[1][q].push_back(0.0);
                const int p = mesh_.owner(le.v);
                xPlan_[p][q].push_back(
                    {le.v - mesh_.firstNode(p), slot_of[le.v]});
            }
            le.vGhost = slot_of[le.v];
            // Every remote edge produces one f contribution to v's
            // owner per iteration.
            ++fExpected_[mesh_.owner(le.v)];
        }
    }
    for (int q = 0; q < np; ++q)
        xExpected_[q] = static_cast<std::int64_t>(xGhost_[0][q].size());

    // Handlers. Fine-grained ghost-x: meta packs (parity, srcProc,
    // offset); values follow.
    hGhostX_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int parity = static_cast<int>(args[0] & 0x1);
        const int src = static_cast<int>((args[0] >> 1) & 0xffff);
        const auto offset = static_cast<std::int64_t>(args[0] >> 17);
        const int q = env.self();
        const auto &items = xPlan_[src][q];
        for (std::size_t k = 1; k < args.size(); ++k) {
            xGhost_[parity][q][items[offset + (k - 1)].dstSlot] =
                std::bit_cast<double>(args[k]);
        }
        xReceived_[parity][q] +=
            static_cast<std::int64_t>(args.size() - 1);
    });

    hGhostXBulk_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int parity = static_cast<int>(args[0] & 0x1);
        const int src = static_cast<int>(args[0] >> 1);
        const int q = env.self();
        const auto &items = xPlan_[src][q];
        const auto &body = env.msg().body;
        for (std::size_t k = 0; k < body.size(); ++k) {
            xGhost_[parity][q][items[k].dstSlot] =
                std::bit_cast<double>(body[k]);
        }
        xReceived_[parity][q] += static_cast<std::int64_t>(body.size());
    });

    // Fine-grained remote f contribution: args = [local index, value].
    hContrib_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int q = env.self();
        fLocal_[q][args[0]] -= std::bit_cast<double>(args[1]);
        env.charge(3.0); // the accumulate itself
        ++fReceived_[q];
    });

    // Bulk contributions: body = (index, value) pairs; the receiver
    // scatters and accumulates out of the DMA buffer.
    hContribBulk_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const int q = env.self();
        const auto &body = env.msg().body;
        for (std::size_t k = 0; k + 1 < body.size(); k += 2) {
            fLocal_[q][body[k]] -= std::bit_cast<double>(body[k + 1]);
        }
        const double pairs = static_cast<double>(body.size() / 2);
        env.charge(pairs * 6.0); // scatter + accumulate per pair
        fReceived_[q] += static_cast<std::int64_t>(body.size() / 2);
    });
}

void
Unstruc::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    buildPartition();
    if (core::isSharedMemory(mech))
        setupSharedMemory(m);
    else
        setupMessagePassing(m);
}

sim::Thread
Unstruc::program(proc::Ctx &ctx)
{
    switch (mech_) {
      case Mechanism::SharedMemory:
        return programSm(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return programSm(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return programMp(ctx, false);
      case Mechanism::BulkTransfer:
        return programMp(ctx, true);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

// ---------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------

sim::Thread
Unstruc::programSm(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const std::int32_t first = mesh_.firstNode(self);
    const auto &edges = edgesOf_[self];

    // Pre-resolve addresses (the pointer-based mesh structure).
    struct Resolved
    {
        Addr xu, xv, fu, fv, lu, lv;
        bool uContested, vContested;
        double w;
    };
    std::vector<Resolved> rs;
    rs.reserve(edges.size());
    for (const LocalEdge &e : edges) {
        const int pu = mesh_.owner(e.u);
        const int pv = mesh_.owner(e.v);
        Resolved r;
        r.xu = xArr_.addr(pu, e.u - mesh_.firstNode(pu));
        r.xv = xArr_.addr(pv, e.v - mesh_.firstNode(pv));
        r.fu = fArr_.addr(pu, e.u - mesh_.firstNode(pu));
        r.fv = fArr_.addr(pv, e.v - mesh_.firstNode(pv));
        r.lu = lockArr_.addr(pu, e.u - mesh_.firstNode(pu));
        r.lv = lockArr_.addr(pv, e.v - mesh_.firstNode(pv));
        r.uContested = contested_[e.u];
        r.vContested = contested_[e.v];
        r.w = e.w;
        rs.push_back(r);
    }

    for (int it = 0; it < p_.iters; ++it) {
        for (std::size_t k = 0; k < rs.size(); ++k) {
            const Resolved &r = rs[k];
            if (prefetch && k + 2 < rs.size()) {
                // Write-ownership of the upcoming node values
                // (Sec. 4.2.2: two write prefetches, two edge-
                // computations ahead).
                ctx.prefetchWrite(rs[k + 2].fu);
                ctx.prefetchWrite(rs[k + 2].fv);
            }
            const double xu = proc::Ctx::asDouble(co_await ctx.read(r.xu));
            const double xv = proc::Ctx::asDouble(co_await ctx.read(r.xv));
            const double c = r.w * (xu - xv);
            co_await ctx.compute(kEdgeOverheadCycles);
            co_await ctx.computeFlopsSP(kFlopsPerEdge);
            co_await smAccumulate(ctx, r.fu, r.lu, r.uContested, c);
            co_await smAccumulate(ctx, r.fv, r.lv, r.vContested, -c);
        }
        co_await ctx.barrier();

        // Node update phase: x += 0.1 f; f = 0.
        const std::int32_t count = mesh_.numNodesOn(self);
        for (std::int32_t n = 0; n < count; ++n) {
            const Addr fa = fArr_.addr(self, n);
            const Addr xa = xArr_.addr(self, n);
            const double f = proc::Ctx::asDouble(co_await ctx.read(fa));
            const double x = proc::Ctx::asDouble(co_await ctx.read(xa));
            co_await ctx.computeFlopsSP(kFlopsPerNode);
            co_await ctx.writeD(xa, x + 0.10 * f);
            co_await ctx.writeD(fa, 0.0);
        }
        co_await ctx.barrier();
    }
    (void)first;
    co_return;
}

sim::SubTask<void>
Unstruc::smAccumulate(proc::Ctx &ctx, Addr f, Addr lock, bool locked,
                      double delta)
{
    if (locked)
        co_await ctx.lock(lock);
    const double old = proc::Ctx::asDouble(co_await ctx.read(f));
    co_await ctx.writeD(f, old + delta);
    co_await ctx.computeFlopsSP(1);
    if (locked)
        co_await ctx.unlock(lock);
}

// ---------------------------------------------------------------------
// Message passing (fine-grained and bulk)
// ---------------------------------------------------------------------

sim::SubTask<void>
Unstruc::exchangeX(proc::Ctx &ctx, int iter, bool bulk)
{
    const int self = ctx.self();
    const int parity = iter & 1;
    const auto &mine = xLocal_[self];

    for (int q = 0; q < ctx.nprocs(); ++q) {
        const auto &items = xPlan_[self][q];
        if (items.empty())
            continue;
        if (bulk) {
            std::vector<std::uint64_t> body;
            body.reserve(items.size());
            for (const SendItem &it : items) {
                body.push_back(
                    std::bit_cast<std::uint64_t>(mine[it.srcLocal]));
            }
            co_await ctx.chargeCopy(items.size());
            std::vector<std::uint64_t> args;
            args.push_back(
                static_cast<std::uint64_t>(parity)
                | (static_cast<std::uint64_t>(self) << 1));
            co_await ctx.sendBulk(q, hGhostXBulk_, std::move(args),
                                  std::move(body));
        } else {
            std::size_t off = 0;
            while (off < items.size()) {
                const std::size_t batch =
                    std::min<std::size_t>(5, items.size() - off);
                std::vector<std::uint64_t> args;
                args.reserve(batch + 1);
                args.push_back(
                    static_cast<std::uint64_t>(parity)
                    | (static_cast<std::uint64_t>(self) << 1)
                    | (static_cast<std::uint64_t>(off) << 17));
                for (std::size_t k = 0; k < batch; ++k) {
                    args.push_back(std::bit_cast<std::uint64_t>(
                        mine[items[off + k].srcLocal]));
                }
                co_await ctx.send(q, hGhostX_, std::move(args));
                off += batch;
            }
        }
    }

    const std::int64_t want =
        xExpected_[self]
        * (static_cast<std::int64_t>(iter / 2) + 1);
    co_await ctx.waitUntil(
        [this, parity, self, want]() {
            return xReceived_[parity][self] >= want;
        },
        TimeCat::Sync);
}

sim::Thread
Unstruc::programMp(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const std::int32_t first = mesh_.firstNode(self);
    const auto &edges = edgesOf_[self];
    auto &f = fLocal_[self];
    auto &x = xLocal_[self];

    // Per-destination contribution buffers (bulk variant).
    std::vector<std::vector<std::uint64_t>> outbuf(ctx.nprocs());

    std::int64_t f_done = 0;
    for (int it = 0; it < p_.iters; ++it) {
        const int parity = it & 1;
        co_await exchangeX(ctx, it, bulk);
        const auto &ghost = xGhost_[parity][self];

        int poll_gap = 0;
        for (const LocalEdge &e : edges) {
            if (++poll_gap >= ctx.config().pollInsertionGap) {
                poll_gap = 0;
                co_await ctx.pollPoint();
            }
            const double xu = x[e.u - first];
            const double xv =
                e.vRemote
                    ? ghost[e.vGhost]
                    : x[e.v - first];
            const double c = e.w * (xu - xv);
            co_await ctx.compute(kEdgeOverheadCycles);
            co_await ctx.computeFlopsSP(kFlopsPerEdge);
            f[e.u - first] += c;
            co_await ctx.computeFlopsSP(1);
            if (!e.vRemote) {
                f[e.v - first] -= c;
                co_await ctx.computeFlopsSP(1);
            } else {
                const int q = mesh_.owner(e.v);
                const std::uint64_t idx =
                    static_cast<std::uint64_t>(e.v
                                               - mesh_.firstNode(q));
                if (bulk) {
                    outbuf[q].push_back(idx);
                    outbuf[q].push_back(
                        std::bit_cast<std::uint64_t>(c));
                    co_await ctx.compute(4.0); // buffering cost
                } else {
                    std::vector<std::uint64_t> args;
                    args.reserve(2);
                    args.push_back(idx);
                    args.push_back(std::bit_cast<std::uint64_t>(c));
                    co_await ctx.send(q, hContrib_, std::move(args));
                }
            }
        }

        if (bulk) {
            for (int q = 0; q < ctx.nprocs(); ++q) {
                if (outbuf[q].empty())
                    continue;
                co_await ctx.chargeCopy(outbuf[q].size());
                co_await ctx.sendBulk(q, hContribBulk_, {},
                                      std::move(outbuf[q]));
                outbuf[q].clear();
            }
        }

        // Wait for every contribution destined to us this iteration.
        f_done += fExpected_[self];
        const std::int64_t want = f_done;
        co_await ctx.waitUntil(
            [this, self, want]() { return fReceived_[self] >= want; },
            TimeCat::Sync);

        // Node update phase.
        for (std::size_t n = 0; n < x.size(); ++n) {
            co_await ctx.computeFlopsSP(kFlopsPerNode);
            x[n] += 0.10 * f[n];
            f[n] = 0.0;
        }
    }
    co_return;
}

double
Unstruc::checksum() const
{
    double sum = 0.0;
    if (core::isSharedMemory(mech_)) {
        for (std::int32_t n = 0; n < p_.mesh.nodes; ++n) {
            const int p = mesh_.owner(n);
            sum += machine_->debugDouble(
                xArr_.addr(p, n - mesh_.firstNode(p)));
        }
        return sum;
    }
    for (const auto &xs : xLocal_)
        for (double v : xs)
            sum += v;
    return sum;
}

} // namespace alewife::apps
