/**
 * @file
 * EM3D: electromagnetic wave propagation on an irregular bipartite
 * graph (Section 4.1 of the paper).
 *
 * Five variants:
 *  - shared memory: each phase reads neighbour values through the
 *    coherence protocol directly; barriers between phases;
 *  - shared memory + prefetch: read-prefetch two edges ahead, write
 *    prefetch of the node being updated;
 *  - MP interrupt / polling: a pre-communication step ships "ghost
 *    node" values five doubles per active message, then each phase
 *    computes locally;
 *  - bulk transfer: ghost values are gathered into one buffer per
 *    destination and shipped via DMA; used in place on arrival.
 *
 * Every variant's final node values are checksummed against the
 * sequential reference.
 */

#ifndef ALEWIFE_APPS_EM3D_HH
#define ALEWIFE_APPS_EM3D_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/app.hh"
#include "mem/partitioned.hh"
#include "workload/bipartite.hh"

namespace alewife::apps {

/** EM3D under a selectable communication mechanism. */
class Em3d : public core::App
{
  public:
    struct Params
    {
        workload::BipartiteParams graph;
        int iters = 5; ///< paper: 50
    };

    explicit Em3d(Params p);

    std::string name() const override { return "em3d"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;
    double reference() const override { return reference_; }

    /** Factory for the experiment harness. */
    static core::AppFactory factory(Params p);

  private:
    // One side ("E" or "H") of the ghost-exchange machinery. The side
    // named X holds the *consumers*: X nodes read the other side's
    // values, so ghosts of the other side flow toward X's owners.
    struct Side
    {
        /** CSR in-edges of this side's nodes (from workload). */
        const std::vector<std::int32_t> *row = nullptr;
        const std::vector<workload::BipartiteEdge> *edges = nullptr;

        /** Per-proc local values of this side's nodes (MP variants). */
        std::vector<std::vector<double>> local;

        /** Per-proc ghost value slots for the *other* side's values. */
        std::vector<std::vector<double>> ghost;

        /**
         * Per-proc resolved edge targets: for proc p, edge k of local
         * node n, where to read the source value (local vs ghost idx).
         */
        struct Ref
        {
            bool remote;
            std::int32_t idx; ///< local index or ghost slot
        };
        std::vector<std::vector<Ref>> refs; ///< [proc][edge-flat]

        /**
         * Send plan: for producing proc p, flat list of (dst proc,
         * local source index, ghost slot at dst), grouped by dst.
         */
        struct SendItem
        {
            std::int32_t srcLocal;
            std::int32_t dstGhostSlot;
        };
        std::vector<std::vector<std::vector<SendItem>>> plan; ///< [p][q]

        /** Expected ghost values per receiving proc, per iteration. */
        std::vector<std::int64_t> expected;

        /** Received ghost values (cumulative), updated by handlers. */
        std::vector<std::int64_t> received;

        /** Shared-memory array of this side's values. */
        mem::PartitionedArray shared;
    };

    void buildMpPlans();
    void setupSharedMemory(Machine &m);

    sim::Thread programSm(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMp(proc::Ctx &ctx);
    sim::Thread programBulk(proc::Ctx &ctx);

    /** One MP ghost-exchange for @p side (values flow to consumers). */
    sim::SubTask<void> exchangeMp(proc::Ctx &ctx, Side &side, int iter);
    sim::SubTask<void> exchangeBulk(proc::Ctx &ctx, Side &side, int iter);

    /** Local compute for one phase (MP variants). */
    sim::SubTask<void> computePhase(proc::Ctx &ctx, Side &side);

    Params p_;
    workload::BipartiteGraph g_;
    double reference_ = 0.0;
    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;

    Side eSide_; ///< E nodes consume H values
    Side hSide_; ///< H nodes consume E values
    msg::HandlerId hGhost_ = -1;
    msg::HandlerId hGhostBulk_ = -1;
};

} // namespace alewife::apps

#endif // ALEWIFE_APPS_EM3D_HH
