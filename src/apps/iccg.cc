#include "apps/iccg.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace alewife::apps {

using core::Mechanism;

namespace {

/** Per-edge overhead beyond the 2 FLOPs (indexing, counter upkeep). */
constexpr double kEdgeOverheadCycles = 4.0;

} // namespace

Iccg::Iccg(Params p) : p_(std::move(p))
{
    sys_ = workload::makeTriangular(p_.matrix);
    xRef_ = sys_.solve();
    reference_ = 0.0;
    for (double v : xRef_)
        reference_ += v;
}

core::AppFactory
Iccg::factory(Params p)
{
    return [p]() { return std::make_unique<Iccg>(p); };
}

void
Iccg::buildGraph()
{
    outOf_.assign(sys_.params.rows, {});
    for (std::int32_t r = 0; r < sys_.params.rows; ++r) {
        for (std::int32_t k = sys_.row[r]; k < sys_.row[r + 1]; ++k)
            outOf_[sys_.entries[k].col].push_back({r,
                                                   sys_.entries[k].val});
    }
}

// ---------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------

Addr
Iccg::ctrAddr(std::int32_t r) const
{
    const int p = sys_.owner(r);
    return lineArr_.addr(p, 2 * (r / p_.matrix.nprocs));
}

Addr
Iccg::accAddr(std::int32_t r) const
{
    return ctrAddr(r) + 8;
}

void
Iccg::setupSharedMemory(Machine &m)
{
    const int np = p_.matrix.nprocs;
    std::vector<std::int32_t> counts(np);
    for (int p = 0; p < np; ++p) {
        counts[p] = static_cast<std::int32_t>(
            2 * sys_.rowsOf(p).size());
    }
    lineArr_ = mem::PartitionedArray::create(m.mem(), counts, "iccg");
    for (std::int32_t r = 0; r < sys_.params.rows; ++r) {
        m.mem().storeWord(
            ctrAddr(r),
            static_cast<std::uint64_t>(sys_.inDegree(r)) << 1);
        m.mem().storeDouble(accAddr(r), sys_.b[r]);
    }
}

void
Iccg::applyLocal(int proc, std::int32_t row_global, double val)
{
    const std::int32_t l = row_global / p_.matrix.nprocs;
    acc_[proc][l] -= val;
    if (--remaining_[proc][l] == 0)
        ready_[proc].push_back(l);
}

void
Iccg::setupMessagePassing(Machine &m)
{
    const int np = p_.matrix.nprocs;
    acc_.assign(np, {});
    remaining_.assign(np, {});
    x_.assign(np, {});
    ready_.assign(np, {});
    processed_.assign(np, 0);
    for (int p = 0; p < np; ++p) {
        const auto rows = sys_.rowsOf(p);
        acc_[p].resize(rows.size());
        remaining_[p].resize(rows.size());
        x_[p].assign(rows.size(), 0.0);
        for (std::size_t l = 0; l < rows.size(); ++l) {
            acc_[p][l] = sys_.b[rows[l]];
            remaining_[p][l] = sys_.inDegree(rows[l]);
            if (remaining_[p][l] == 0)
                ready_[p].push_back(static_cast<std::int32_t>(l));
        }
    }

    // Fine-grained: one edge value per message, args = [row, w*x].
    hEdge_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        applyLocal(env.self(), static_cast<std::int32_t>(args[0]),
                   std::bit_cast<double>(args[1]));
        env.charge(4.0); // counter + accumulate upkeep
    });

    // Bulk: body = (row, w*x) pairs.
    hEdgeBulk_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &body = env.msg().body;
        for (std::size_t k = 0; k + 1 < body.size(); k += 2) {
            applyLocal(env.self(),
                       static_cast<std::int32_t>(body[k]),
                       std::bit_cast<double>(body[k + 1]));
        }
        env.charge(6.0 * static_cast<double>(body.size() / 2));
    });
}

void
Iccg::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    buildGraph();
    if (core::isSharedMemory(mech))
        setupSharedMemory(m);
    else
        setupMessagePassing(m);
}

sim::Thread
Iccg::program(proc::Ctx &ctx)
{
    switch (mech_) {
      case Mechanism::SharedMemory:
        return programSm(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return programSm(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return programMp(ctx, false);
      case Mechanism::BulkTransfer:
        return programMp(ctx, true);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

// ---------------------------------------------------------------------
// Message passing (dataflow)
// ---------------------------------------------------------------------

sim::Thread
Iccg::programMp(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const int np = ctx.nprocs();
    const std::int64_t my_rows =
        static_cast<std::int64_t>(sys_.rowsOf(self).size());

    std::vector<std::vector<std::uint64_t>> outbuf(np);

    while (processed_[self] < my_rows) {
        if (ready_[self].empty()) {
            // Before idling, push out everything we buffered so peers
            // are not starved (the bulk variant's idle-time cost).
            if (bulk) {
                for (int q = 0; q < np; ++q) {
                    if (outbuf[q].empty())
                        continue;
                    co_await ctx.chargeCopy(outbuf[q].size());
                    co_await ctx.sendBulk(q, hEdgeBulk_, {},
                                          std::move(outbuf[q]));
                    outbuf[q].clear();
                }
            }
            co_await ctx.waitUntil(
                [this, self]() { return !ready_[self].empty(); },
                TimeCat::Sync);
        }
        co_await ctx.pollPoint();
        const std::int32_t l = ready_[self].front();
        ready_[self].pop_front();
        const std::int32_t r = l * np + self; // wrap mapping inverse
        const double x = acc_[self][l] / sys_.diag[r];
        x_[self][l] = x;
        co_await ctx.computeFlops(2); // subtract epilogue + divide
        ++processed_[self];

        for (const OutEdge &e : outOf_[r]) {
            const double val = e.w * x;
            co_await ctx.computeFlops(1);
            co_await ctx.compute(kEdgeOverheadCycles);
            const int q = sys_.owner(e.dst);
            if (q == self) {
                applyLocal(self, e.dst, val);
                continue;
            }
            if (bulk) {
                outbuf[q].push_back(
                    static_cast<std::uint64_t>(e.dst));
                outbuf[q].push_back(std::bit_cast<std::uint64_t>(val));
                co_await ctx.compute(4.0); // buffering memory ops
                if (static_cast<int>(outbuf[q].size())
                    >= 2 * p_.bulkBatch) {
                    co_await ctx.chargeCopy(outbuf[q].size());
                    co_await ctx.sendBulk(q, hEdgeBulk_, {},
                                          std::move(outbuf[q]));
                    outbuf[q].clear();
                }
            } else {
                std::vector<std::uint64_t> args;
                args.reserve(2);
                args.push_back(static_cast<std::uint64_t>(e.dst));
                args.push_back(std::bit_cast<std::uint64_t>(val));
                co_await ctx.send(q, hEdge_, std::move(args));
            }
        }
    }

    // Final drain of any leftover bulk buffers.
    if (bulk) {
        for (int q = 0; q < np; ++q) {
            if (outbuf[q].empty())
                continue;
            co_await ctx.chargeCopy(outbuf[q].size());
            co_await ctx.sendBulk(q, hEdgeBulk_, {},
                                  std::move(outbuf[q]));
            outbuf[q].clear();
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// Shared memory (producer-computes)
// ---------------------------------------------------------------------

sim::SubTask<void>
Iccg::smProcessRow(proc::Ctx &ctx, std::int32_t r, bool prefetch)
{
    // The accumulator word now holds the completed sum for row r.
    const double sum =
        proc::Ctx::asDouble(co_await ctx.read(accAddr(r)));
    const double x = sum / sys_.diag[r];
    co_await ctx.computeFlops(2);
    co_await ctx.writeD(accAddr(r), x); // publish x in place

    const auto &outs = outOf_[r];
    for (std::size_t k = 0; k < outs.size(); ++k) {
        if (prefetch && k + 2 < outs.size()) {
            // Write-ownership two nodes ahead (Sec. 4.3.2).
            ctx.prefetchWrite(ctrAddr(outs[k + 2].dst));
        }
        const OutEdge &e = outs[k];
        const double val = e.w * x;
        co_await ctx.computeFlops(1);
        co_await ctx.compute(kEdgeOverheadCycles);

        // Acquire the consumer line: the lock bit rides in the counter
        // word, so the rmw that sets it also brings write ownership of
        // the accumulator in the same line (piggybacking).
        const Addr ca = ctrAddr(e.dst);
        for (;;) {
            const std::uint64_t old = co_await ctx.rmw(
                ca, [](std::uint64_t v) { return v | 1; },
                TimeCat::Sync);
            if ((old & 1) == 0)
                break;
            ++ctx.counters().lockRetries;
            co_await ctx.spinUntil(
                ca, [](std::uint64_t v) { return (v & 1) == 0; },
                TimeCat::Sync);
        }
        ++ctx.counters().lockAcquires;

        // Line is Modified locally: the accumulate and the counter
        // update are cache hits.
        const double acc =
            proc::Ctx::asDouble(co_await ctx.read(accAddr(e.dst)));
        co_await ctx.writeD(accAddr(e.dst), acc - val);
        co_await ctx.computeFlops(1);
        const std::uint64_t ctr_lock =
            co_await ctx.read(ca, TimeCat::Sync);
        const std::uint64_t remaining = (ctr_lock >> 1) - 1;
        // Release: clear the lock, store the decremented counter. A
        // zero counter is the consumer-owner's wake-up signal (its
        // spin loop sees the invalidation).
        co_await ctx.write(ca, remaining << 1, TimeCat::Sync);
    }
    co_return;
}

sim::Thread
Iccg::programSm(proc::Ctx &ctx, bool prefetch)
{
    // Owner sweep: each processor walks its own rows in ascending
    // order, spin-waiting on the presence counter packed into the
    // row's line; producers drive the counters down via remote rmw
    // (producer-computes). Because a row depends only on lower-
    // numbered rows, ascending sweeps never deadlock.
    const int self = ctx.self();
    const auto rows = sys_.rowsOf(self);
    for (std::int32_t r : rows) {
        if (sys_.inDegree(r) > 0) {
            co_await ctx.spinUntil(
                ctrAddr(r),
                [](std::uint64_t v) { return v == 0; },
                TimeCat::Sync);
        }
        co_await smProcessRow(ctx, r, prefetch);
    }
    co_return;
}

double
Iccg::checksum() const
{
    double sum = 0.0;
    if (core::isSharedMemory(mech_)) {
        for (std::int32_t r = 0; r < sys_.params.rows; ++r)
            sum += machine_->debugDouble(accAddr(r));
        return sum;
    }
    for (const auto &xs : x_)
        for (double v : xs)
            sum += v;
    return sum;
}

} // namespace alewife::apps
