/**
 * @file
 * STREAM: a synthetic producer-consumer microbenchmark used to map the
 * conceptual performance regions of the paper's Figures 1 and 2
 * (latency hiding / latency dominated / congestion dominated).
 *
 * Each node produces K values per iteration (computePerValue cycles
 * each) that its ring neighbour consumes. The compute knob sets the
 * parallel slackness: with lots of compute per datum the network is
 * hidden; with little, latency and then congestion dominate as
 * bandwidth shrinks.
 */

#ifndef ALEWIFE_APPS_STREAM_HH
#define ALEWIFE_APPS_STREAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/app.hh"
#include "mem/partitioned.hh"

namespace alewife::apps {

/** Ring producer-consumer under a selectable mechanism. */
class Stream : public core::App
{
  public:
    struct Params
    {
        int valuesPerIter = 64;    ///< K values produced per node/iter
        int iters = 8;
        double computePerValue = 20.0; ///< slackness knob (cycles)
        int nprocs = 32;
        std::uint64_t seed = 1;
    };

    explicit Stream(Params p);

    std::string name() const override { return "stream"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;
    double reference() const override { return reference_; }

    static core::AppFactory factory(Params p);

  private:
    sim::Thread programSm(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMp(proc::Ctx &ctx, bool bulk);

    Params p_;
    double reference_ = 0.0;
    std::vector<double> init_;
    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;

    mem::PartitionedArray valArr_; ///< SM: producer-owned values
    std::vector<std::vector<double>> valLoc_; ///< MP: local values
    std::vector<std::vector<double>> ghost_;  ///< MP: consumed copies
    std::vector<std::int64_t> received_;
    /** Flow control: iterations acknowledged by each node's consumer. */
    std::vector<std::int64_t> acked_;
    std::vector<double> sums_; ///< per-node consumption checksums
    msg::HandlerId hVals_ = -1;
    msg::HandlerId hValsBulk_ = -1;
    msg::HandlerId hAck_ = -1;
};

} // namespace alewife::apps

#endif // ALEWIFE_APPS_STREAM_HH
