#include "apps/stream.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace alewife::apps {

using core::Mechanism;

Stream::Stream(Params p) : p_(std::move(p))
{
    Rng rng(p_.seed);
    init_.resize(static_cast<std::size_t>(p_.nprocs)
                 * p_.valuesPerIter);
    for (auto &v : init_)
        v = rng.nextRange(0.0, 1.0);

    // Sequential reference: produce, then each consumer sums its
    // neighbour's fresh values.
    std::vector<double> vals = init_;
    std::vector<double> sums(p_.nprocs, 0.0);
    for (int it = 0; it < p_.iters; ++it) {
        for (std::size_t i = 0; i < vals.size(); ++i)
            vals[i] = vals[i] * 0.99 + 1e-3;
        for (int n = 0; n < p_.nprocs; ++n) {
            const int producer = (n + p_.nprocs - 1) % p_.nprocs;
            for (int k = 0; k < p_.valuesPerIter; ++k)
                sums[n] += vals[producer * p_.valuesPerIter + k];
        }
    }
    reference_ = 0.0;
    for (double v : vals)
        reference_ += v;
    for (double s : sums)
        reference_ += s;
}

core::AppFactory
Stream::factory(Params p)
{
    return [p]() { return std::make_unique<Stream>(p); };
}

void
Stream::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    sums_.assign(p_.nprocs, 0.0);

    if (core::isSharedMemory(mech)) {
        std::vector<std::int32_t> counts(p_.nprocs, p_.valuesPerIter);
        valArr_ =
            mem::PartitionedArray::create(m.mem(), counts, "stream");
        for (int p = 0; p < p_.nprocs; ++p) {
            for (int k = 0; k < p_.valuesPerIter; ++k) {
                m.mem().storeDouble(
                    valArr_.addr(p, k),
                    init_[static_cast<std::size_t>(p)
                              * p_.valuesPerIter
                          + k]);
            }
        }
        return;
    }

    valLoc_.assign(p_.nprocs, {});
    ghost_.assign(p_.nprocs,
                  std::vector<double>(p_.valuesPerIter, 0.0));
    received_.assign(p_.nprocs, 0);
    acked_.assign(p_.nprocs, 0);
    for (int p = 0; p < p_.nprocs; ++p) {
        valLoc_[p].assign(init_.begin()
                              + static_cast<std::size_t>(p)
                                    * p_.valuesPerIter,
                          init_.begin()
                              + static_cast<std::size_t>(p + 1)
                                    * p_.valuesPerIter);
    }

    hVals_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const auto off = static_cast<std::size_t>(args[0]);
        const int q = env.self();
        for (std::size_t k = 1; k < args.size(); ++k)
            ghost_[q][off + k - 1] = std::bit_cast<double>(args[k]);
        received_[q] += static_cast<std::int64_t>(args.size() - 1);
    });
    hValsBulk_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const int q = env.self();
        const auto &body = env.msg().body;
        for (std::size_t k = 0; k < body.size(); ++k)
            ghost_[q][k] = std::bit_cast<double>(body[k]);
        received_[q] += static_cast<std::int64_t>(body.size());
    });
    hAck_ = m.handlers().add(
        [this](msg::HandlerEnv &env) { ++acked_[env.self()]; });
}

sim::Thread
Stream::program(proc::Ctx &ctx)
{
    switch (mech_) {
      case Mechanism::SharedMemory:
        return programSm(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return programSm(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return programMp(ctx, false);
      case Mechanism::BulkTransfer:
        return programMp(ctx, true);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

sim::Thread
Stream::programSm(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const int producer = (self + ctx.nprocs() - 1) % ctx.nprocs();
    double local_sum = 0.0;

    for (int it = 0; it < p_.iters; ++it) {
        // Produce in place.
        for (int k = 0; k < p_.valuesPerIter; ++k) {
            const Addr a = valArr_.addr(self, k);
            if (prefetch && k + 2 < p_.valuesPerIter)
                ctx.prefetchWrite(valArr_.addr(self, k + 2));
            const double v =
                proc::Ctx::asDouble(co_await ctx.read(a));
            co_await ctx.compute(p_.computePerValue);
            co_await ctx.writeD(a, v * 0.99 + 1e-3);
        }
        co_await ctx.barrier();
        // Consume the neighbour's fresh values.
        for (int k = 0; k < p_.valuesPerIter; ++k) {
            if (prefetch && k + 2 < p_.valuesPerIter)
                ctx.prefetchRead(valArr_.addr(producer, k + 2));
            local_sum += proc::Ctx::asDouble(
                co_await ctx.read(valArr_.addr(producer, k)));
            co_await ctx.computeFlops(1);
        }
        co_await ctx.barrier();
    }
    sums_[self] = local_sum;
    co_return;
}

sim::Thread
Stream::programMp(proc::Ctx &ctx, bool bulk)
{
    const int self = ctx.self();
    const int consumer = (self + 1) % ctx.nprocs();
    auto &mine = valLoc_[self];
    double local_sum = 0.0;

    for (int it = 0; it < p_.iters; ++it) {
        for (int k = 0; k < p_.valuesPerIter; ++k) {
            co_await ctx.compute(p_.computePerValue);
            mine[k] = mine[k] * 0.99 + 1e-3;
            if ((k & 7) == 7)
                co_await ctx.pollPoint();
        }
        // Flow control: never run more than one iteration ahead of
        // the consumer's single ghost buffer.
        if (it > 0) {
            const std::int64_t want_ack = it;
            co_await ctx.waitUntil(
                [this, self, want_ack]() {
                    return acked_[self] >= want_ack;
                },
                TimeCat::Sync);
        }
        if (bulk) {
            std::vector<std::uint64_t> body;
            body.reserve(mine.size());
            for (double v : mine)
                body.push_back(std::bit_cast<std::uint64_t>(v));
            co_await ctx.chargeCopy(body.size());
            co_await ctx.sendBulk(consumer, hValsBulk_, {},
                                  std::move(body));
        } else {
            std::size_t off = 0;
            while (off < mine.size()) {
                const std::size_t batch =
                    std::min<std::size_t>(5, mine.size() - off);
                std::vector<std::uint64_t> args;
                args.reserve(batch + 1);
                args.push_back(static_cast<std::uint64_t>(off));
                for (std::size_t k = 0; k < batch; ++k) {
                    args.push_back(std::bit_cast<std::uint64_t>(
                        mine[off + k]));
                }
                co_await ctx.send(consumer, hVals_, std::move(args));
                off += batch;
            }
        }
        // Wait for our producer's values, then consume them.
        const std::int64_t want =
            static_cast<std::int64_t>(p_.valuesPerIter) * (it + 1);
        co_await ctx.waitUntil(
            [this, self, want]() { return received_[self] >= want; },
            TimeCat::Sync);
        for (int k = 0; k < p_.valuesPerIter; ++k) {
            local_sum += ghost_[self][k];
            co_await ctx.computeFlops(1);
        }
        // Tell our producer its buffer slot is free again.
        {
            std::vector<std::uint64_t> none;
            co_await ctx.send((self + ctx.nprocs() - 1) % ctx.nprocs(),
                              hAck_, std::move(none));
        }
    }
    sums_[self] = local_sum;
    co_return;
}

double
Stream::checksum() const
{
    double sum = 0.0;
    if (core::isSharedMemory(mech_)) {
        for (int p = 0; p < p_.nprocs; ++p)
            for (int k = 0; k < p_.valuesPerIter; ++k)
                sum += machine_->debugDouble(valArr_.addr(p, k));
    } else {
        for (const auto &vs : valLoc_)
            for (double v : vs)
                sum += v;
    }
    for (double s : sums_)
        sum += s;
    return sum;
}

} // namespace alewife::apps
