/**
 * @file
 * ICCG: sparse triangular solve by substitution (Section 4.3).
 *
 * The computation graph is a DAG: each row waits for all of its
 * in-edges, does 2 FLOPs per edge, then feeds its out-edges. This is
 * the paper's most fine-grained, communication-bound application and
 * the one where polling beats interrupts most dramatically.
 *
 * Variants:
 *  - MP interrupt/polling: dataflow with one active message per
 *    non-local edge and per-node presence counters;
 *  - bulk: edge values buffered per destination and flushed in batches
 *    (the buffering cost and idle time the paper observes);
 *  - shared memory: producer-computes — the producer performs the
 *    subtraction at the consumer row via a remote read-modify-write,
 *    with the presence counter packed into the same cache line as the
 *    accumulator so the lock acquisition piggybacks on the write-
 *    ownership request (Sec. 4.3.2); whoever zeroes a counter
 *    continues that row's cascade;
 *  - + prefetch: write prefetches two out-edges ahead.
 */

#ifndef ALEWIFE_APPS_ICCG_HH
#define ALEWIFE_APPS_ICCG_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/app.hh"
#include "mem/partitioned.hh"
#include "workload/sparse_matrix.hh"

namespace alewife::apps {

/** ICCG triangular-solve kernel under a selectable mechanism. */
class Iccg : public core::App
{
  public:
    struct Params
    {
        workload::TriangularParams matrix;
        /** Bulk variant: flush a destination buffer at this many edges. */
        int bulkBatch = 8;
    };

    explicit Iccg(Params p);

    std::string name() const override { return "iccg"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;
    double reference() const override { return reference_; }
    double tolerance() const override { return 1e-7; }

    static core::AppFactory factory(Params p);

  private:
    struct OutEdge
    {
        std::int32_t dst; ///< global row index
        double w;
    };

    void buildGraph();
    void setupSharedMemory(Machine &m);
    void setupMessagePassing(Machine &m);

    sim::Thread programSm(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMp(proc::Ctx &ctx, bool bulk);

    /** Apply one incoming value locally (MP); may enqueue ready rows. */
    void applyLocal(int proc, std::int32_t row_global, double val);

    /** SM step: compute the completed row r and feed its out-edges. */
    sim::SubTask<void> smProcessRow(proc::Ctx &ctx, std::int32_t r,
                                    bool prefetch);

    Addr ctrAddr(std::int32_t r) const;
    Addr accAddr(std::int32_t r) const;

    Params p_;
    workload::TriangularSystem sys_;
    double reference_ = 0.0;
    std::vector<double> xRef_;
    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;

    /** Out-edge adjacency (transpose of the CSR in-edges). */
    std::vector<std::vector<OutEdge>> outOf_; ///< [row] -> out edges

    // --- message-passing state (per proc, indexed by local row) ---
    std::vector<std::vector<double>> acc_;
    std::vector<std::vector<std::int32_t>> remaining_;
    std::vector<std::vector<double>> x_;
    std::vector<std::deque<std::int32_t>> ready_; ///< local row indices
    std::vector<std::int64_t> processed_;
    msg::HandlerId hEdge_ = -1;
    msg::HandlerId hEdgeBulk_ = -1;

    // --- shared-memory state ---
    /** One line per row: word0 = (counter << 1) | lock, word1 = acc,
     *  overwritten with x when the row completes. */
    mem::PartitionedArray lineArr_;
};

} // namespace alewife::apps

#endif // ALEWIFE_APPS_ICCG_HH
