/**
 * @file
 * STRESS: a protocol-stress workload for the invariant auditor and the
 * schedule-perturbation fuzzer (src/check/).
 *
 * Every node executes a deterministic per-node script of shared-memory
 * operations generated from a seed: atomic read-modify-write increments
 * of a small set of hot counters (heavy invalidation + recall traffic),
 * tagged writes to the node's own slot (write-serialization witness
 * material), reads of other nodes' slots (sharing churn), prefetches,
 * and compute delays. Each slot/counter occupies its own cache line so
 * every operation is real coherence traffic.
 *
 * The final memory image is schedule-independent: counters are updated
 * only through atomic RMW (so the final value is the sum of all deltas
 * regardless of interleaving) and each slot is written only by its
 * owner (so the final value is the owner's last tagged write). The
 * reference is therefore computed by a trivial replay of the scripts,
 * making the workload self-verifying under any legal schedule — exactly
 * what perturbation fuzzing needs.
 */

#ifndef ALEWIFE_APPS_STRESS_HH
#define ALEWIFE_APPS_STRESS_HH

#include <cstdint>
#include <vector>

#include "core/app.hh"

namespace alewife::apps {

/** Seeded shared-memory contention workload (SM / SM+PF only). */
class Stress : public core::App
{
  public:
    struct Params
    {
        int counters = 8;     ///< hot RMW counters (one line each)
        int opsPerNode = 140; ///< script length per node
        int nprocs = 16;
        std::uint64_t seed = 1;
    };

    explicit Stress(Params p);

    std::string name() const override { return "stress"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;
    double reference() const override { return reference_; }

    static core::AppFactory factory(Params p);

  private:
    /** One scripted operation. */
    struct Op
    {
        enum class Kind : std::uint8_t
        {
            Rmw,         ///< counter[idx] += delta (atomic)
            WriteSlot,   ///< slot[self] = tag
            ReadSlot,    ///< read slot[idx], discard
            ReadCounter, ///< read counter[idx], discard
            Prefetch,    ///< prefetch slot[idx] (SM+PF; else compute)
            Compute,     ///< spin for delta cycles
        };
        Kind kind;
        int idx = 0;
        std::uint64_t delta = 0; ///< RMW delta / tag / compute cycles
    };

    Addr counterAddr(int c) const;
    Addr slotAddr(int n) const;

    Params p_;
    double reference_ = 0.0;
    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;
    std::vector<std::vector<Op>> script_; ///< per-node op list
    Addr countersBase_ = 0;
    Addr slotsBase_ = 0;
    std::uint32_t lineBytes_ = 0;
};

} // namespace alewife::apps

#endif // ALEWIFE_APPS_STRESS_HH
