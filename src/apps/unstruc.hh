/**
 * @file
 * UNSTRUC: fluid flow over an unstructured 3D mesh (Section 4.2).
 *
 * Each edge costs 75 single-precision FLOPs and accumulates equal and
 * opposite contributions into its endpoint nodes; each node then
 * produces 3 single-precision results per iteration. The high FLOPs
 * per edge give UNSTRUC the highest computation-to-communication ratio
 * after MOLDYN.
 *
 * Variants:
 *  - shared memory: remote x values read through the protocol; f
 *    accumulations to contested nodes protected by spin locks (the
 *    locking overhead is why SM does not beat MP here — Sec. 4.2.3);
 *  - + prefetch: write prefetches two edge-computations ahead;
 *  - MP interrupt/polling: ghost-x pre-communication, remote f
 *    contributions as fine-grained remote-write active messages;
 *  - bulk: ghost-x and f contributions aggregated per destination.
 */

#ifndef ALEWIFE_APPS_UNSTRUC_HH
#define ALEWIFE_APPS_UNSTRUC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/app.hh"
#include "mem/partitioned.hh"
#include "workload/unstructured_mesh.hh"

namespace alewife::apps {

/** UNSTRUC under a selectable communication mechanism. */
class Unstruc : public core::App
{
  public:
    struct Params
    {
        workload::MeshParams mesh;
        int iters = 3;
    };

    explicit Unstruc(Params p);

    std::string name() const override { return "unstruc"; }
    void setup(Machine &m, core::Mechanism mech) override;
    sim::Thread program(proc::Ctx &ctx) override;
    double checksum() const override;
    double reference() const override { return reference_; }
    double tolerance() const override { return 1e-7; }

    static core::AppFactory factory(Params p);

  private:
    /** Edge as seen by its assigned (owner-of-u) processor. */
    struct LocalEdge
    {
        std::int32_t u;       ///< global node id (always local)
        std::int32_t v;       ///< global node id (maybe remote)
        double w;
        bool vRemote;
        std::int32_t vGhost;  ///< ghost slot for x[v] (MP variants)
    };

    void buildPartition();
    void setupSharedMemory(Machine &m);
    void setupMessagePassing(Machine &m);

    sim::Thread programSm(proc::Ctx &ctx, bool prefetch);
    sim::Thread programMp(proc::Ctx &ctx, bool bulk);

    /** One shared-memory f accumulation, locked when contested. */
    sim::SubTask<void> smAccumulate(proc::Ctx &ctx, Addr f, Addr lock,
                                    bool locked, double delta);

    /** Ghost-x exchange for iteration @p iter (parity double-buffer). */
    sim::SubTask<void> exchangeX(proc::Ctx &ctx, int iter, bool bulk);

    Params p_;
    workload::UnstructuredMesh mesh_;
    double reference_ = 0.0;
    core::Mechanism mech_ = core::Mechanism::SharedMemory;
    Machine *machine_ = nullptr;

    /** Per-proc edge lists (assigned by owner of u). */
    std::vector<std::vector<LocalEdge>> edgesOf_;

    /** Nodes touched by more than one processor (SM locking). */
    std::vector<bool> contested_;

    // Shared-memory arrays.
    mem::PartitionedArray xArr_, fArr_, lockArr_;

    // Message-passing state.
    std::vector<std::vector<double>> xLocal_;   ///< [proc][local]
    std::vector<std::vector<double>> fLocal_;   ///< [proc][local]
    /** Ghost x values, double-buffered by iteration parity. */
    std::vector<std::vector<double>> xGhost_[2];
    /** Send plan: [p][q] -> (local index at p, ghost slot at q). */
    struct SendItem
    {
        std::int32_t srcLocal;
        std::int32_t dstSlot;
    };
    std::vector<std::vector<std::vector<SendItem>>> xPlan_;
    std::vector<std::int64_t> xExpected_;
    std::vector<std::int64_t> xReceived_[2];
    /** Remote-f contributions received (cumulative). */
    std::vector<std::int64_t> fExpected_;
    std::vector<std::int64_t> fReceived_;

    msg::HandlerId hGhostX_ = -1;
    msg::HandlerId hGhostXBulk_ = -1;
    msg::HandlerId hContrib_ = -1;
    msg::HandlerId hContribBulk_ = -1;
};

} // namespace alewife::apps

#endif // ALEWIFE_APPS_UNSTRUC_HH
