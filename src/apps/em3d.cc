#include "apps/em3d.hh"
#include <cstdlib>

#include <algorithm>

#include "sim/logging.hh"

namespace alewife::apps {

using core::Mechanism;

Em3d::Em3d(Params p) : p_(std::move(p))
{
    g_ = workload::makeBipartite(p_.graph);
    reference_ = g_.sequential(p_.iters);
}

core::AppFactory
Em3d::factory(Params p)
{
    return [p]() { return std::make_unique<Em3d>(p); };
}

void
Em3d::buildMpPlans()
{
    const int np = p_.graph.nprocs;
    auto build = [&](Side &side) {
        const auto &row = *side.row;
        const auto &edges = *side.edges;
        side.ghost.assign(np, {});
        side.refs.assign(np, {});
        side.plan.assign(np,
                         std::vector<std::vector<Side::SendItem>>(np));
        side.expected.assign(np, 0);
        side.received.assign(np, 0);

        // For each consumer proc q, walk its local nodes' in-edges and
        // assign ghost slots for remote sources (one slot per distinct
        // source node).
        for (int q = 0; q < np; ++q) {
            std::vector<std::int32_t> slot_of(p_.graph.nodesPerSide, -1);
            const std::int32_t first = g_.firstNode(q);
            const std::int32_t count = g_.numNodesOn(q);
            for (std::int32_t n = first; n < first + count; ++n) {
                for (std::int32_t k = row[n]; k < row[n + 1]; ++k) {
                    const std::int32_t src = edges[k].src;
                    const int p = g_.owner(src);
                    Side::Ref ref;
                    if (p == q) {
                        ref.remote = false;
                        ref.idx = src - g_.firstNode(p);
                    } else {
                        if (slot_of[src] < 0) {
                            slot_of[src] = static_cast<std::int32_t>(
                                side.ghost[q].size());
                            side.ghost[q].push_back(0.0);
                            side.plan[p][q].push_back(
                                {src - g_.firstNode(p), slot_of[src]});
                        }
                        ref.remote = true;
                        ref.idx = slot_of[src];
                    }
                    side.refs[q].push_back(ref);
                }
            }
            side.expected[q] =
                static_cast<std::int64_t>(side.ghost[q].size());
        }
    };
    build(eSide_);
    build(hSide_);
}

void
Em3d::setupSharedMemory(Machine &m)
{
    const int np = p_.graph.nprocs;
    std::vector<std::int32_t> counts(np);
    for (int p = 0; p < np; ++p)
        counts[p] = g_.numNodesOn(p);
    eSide_.shared =
        mem::PartitionedArray::create(m.mem(), counts, "em3d-e");
    hSide_.shared =
        mem::PartitionedArray::create(m.mem(), counts, "em3d-h");
    for (std::int32_t n = 0; n < p_.graph.nodesPerSide; ++n) {
        const int p = g_.owner(n);
        const std::int32_t local = n - g_.firstNode(p);
        m.mem().storeDouble(eSide_.shared.addr(p, local), g_.eInit[n]);
        m.mem().storeDouble(hSide_.shared.addr(p, local), g_.hInit[n]);
    }
}

void
Em3d::setup(Machine &m, Mechanism mech)
{
    mech_ = mech;
    machine_ = &m;
    eSide_.row = &g_.eRow;
    eSide_.edges = &g_.eEdges;
    hSide_.row = &g_.hRow;
    hSide_.edges = &g_.hEdges;

    if (core::isSharedMemory(mech)) {
        setupSharedMemory(m);
        return;
    }

    // Message-passing variants: local value arrays + ghost machinery.
    const int np = p_.graph.nprocs;
    buildMpPlans();
    eSide_.local.assign(np, {});
    hSide_.local.assign(np, {});
    for (int p = 0; p < np; ++p) {
        const std::int32_t first = g_.firstNode(p);
        const std::int32_t count = g_.numNodesOn(p);
        eSide_.local[p].assign(g_.eInit.begin() + first,
                               g_.eInit.begin() + first + count);
        hSide_.local[p].assign(g_.hInit.begin() + first,
                               g_.hInit.begin() + first + count);
    }

    // Fine-grained ghost handler: meta word packs (side, count); the
    // remaining args alternate ghost slot and value? No — slots ride in
    // the meta-planned order: args = [meta, slot0, v0, slot1, v1, ...]
    // would double volume. Instead the sender sends (slotBase-ordered)
    // batches following the plan order, so the handler only needs
    // (side, dstProc is implicit, planIndex, count) plus the values.
    hGhost_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const std::uint64_t meta = args[0];
        const int side_id = static_cast<int>(meta & 0x1);
        const int src_proc = static_cast<int>((meta >> 1) & 0xffff);
        const std::int64_t offset =
            static_cast<std::int64_t>(meta >> 17);
        Side &side = side_id == 0 ? eSide_ : hSide_;
        const int q = env.self();
        const auto &items = side.plan[src_proc][q];
        for (std::size_t k = 1; k < args.size(); ++k) {
            const auto &item = items[offset + (k - 1)];
            side.ghost[q][item.dstGhostSlot] =
                std::bit_cast<double>(args[k]);
        }
        side.received[q] +=
            static_cast<std::int64_t>(args.size() - 1);
    });

    hGhostBulk_ = m.handlers().add([this](msg::HandlerEnv &env) {
        const auto &args = env.msg().args;
        const int side_id = static_cast<int>(args[0] & 0x1);
        const int src_proc = static_cast<int>(args[0] >> 1);
        Side &side = side_id == 0 ? eSide_ : hSide_;
        const int q = env.self();
        const auto &items = side.plan[src_proc][q];
        const auto &body = env.msg().body;
        for (std::size_t k = 0; k < body.size(); ++k) {
            side.ghost[q][items[k].dstGhostSlot] =
                std::bit_cast<double>(body[k]);
        }
        side.received[q] += static_cast<std::int64_t>(body.size());
    });
}

sim::Thread
Em3d::program(proc::Ctx &ctx)
{
    switch (mech_) {
      case Mechanism::SharedMemory:
        return programSm(ctx, false);
      case Mechanism::SharedMemoryPrefetch:
        return programSm(ctx, true);
      case Mechanism::MpInterrupt:
      case Mechanism::MpPolling:
        return programMp(ctx);
      case Mechanism::BulkTransfer:
        return programBulk(ctx);
      default:
        ALEWIFE_PANIC("bad mechanism");
    }
}

sim::Thread
Em3d::programSm(proc::Ctx &ctx, bool prefetch)
{
    const int self = ctx.self();
    const std::int32_t first = g_.firstNode(self);
    const std::int32_t count = g_.numNodesOn(self);

    // Resolve shared addresses of every in-edge source once (models the
    // pointer-based graph structure built at program load).
    auto edge_addrs = [&](const Side &side) {
        std::vector<Addr> out;
        const auto &row = *side.row;
        const auto &edges = *side.edges;
        const Side &other = (&side == &eSide_) ? hSide_ : eSide_;
        for (std::int32_t n = first; n < first + count; ++n) {
            for (std::int32_t k = row[n]; k < row[n + 1]; ++k) {
                const std::int32_t src = edges[k].src;
                const int p = g_.owner(src);
                out.push_back(
                    other.shared.addr(p, src - g_.firstNode(p)));
            }
        }
        return out;
    };
    const std::vector<Addr> e_srcs = edge_addrs(eSide_);
    const std::vector<Addr> h_srcs = edge_addrs(hSide_);

    for (int it = 0; it < p_.iters; ++it) {
        for (int phase = 0; phase < 2; ++phase) {
            Side &side = phase == 0 ? eSide_ : hSide_;
            const std::vector<Addr> &srcs = phase == 0 ? e_srcs : h_srcs;
            const auto &row = *side.row;
            const auto &edges = *side.edges;
            std::size_t flat = 0;
            for (std::int32_t n = first; n < first + count; ++n) {
                const std::int32_t local = n - first;
                const Addr naddr = side.shared.addr(self, local);
                if (prefetch && getenv("EM3D_NO_WPF") == nullptr) {
                    // Write-ownership of the node we are about to
                    // update (Sec. 4.1.2).
                    ctx.prefetchWrite(naddr);
                }
                double v = ctx.asDouble(co_await ctx.read(naddr));
                const std::int32_t deg = row[n + 1] - row[n];
                for (std::int32_t k = 0; k < deg; ++k) {
                    if (prefetch && getenv("EM3D_NO_RPF") == nullptr && k + 2 < deg)
                        ctx.prefetchRead(srcs[flat + k + 2]);
                    const double nb = ctx.asDouble(
                        co_await ctx.read(srcs[flat + k]));
                    v -= edges[row[n] + k].weight * nb;
                    // Two FLOPs plus index/pointer chasing per edge.
                    co_await ctx.compute(3);
                    co_await ctx.computeFlops(2);
                }
                flat += deg;
                co_await ctx.writeD(naddr, v);
            }
            co_await ctx.barrier();
        }
    }
    co_return;
}

sim::SubTask<void>
Em3d::exchangeMp(proc::Ctx &ctx, Side &side, int iter)
{
    const int self = ctx.self();
    const Side &producer_view = side; // plan[self][q] lists what we send
    const auto &my_local =
        (&side == &eSide_) ? hSide_.local[self] : eSide_.local[self];
    const std::uint64_t side_bit = (&side == &eSide_) ? 0 : 1;

    // Ship ghost values five doubles at a time (Sec. 4.1.1).
    for (int q = 0; q < ctx.nprocs(); ++q) {
        const auto &items = producer_view.plan[self][q];
        std::size_t off = 0;
        while (off < items.size()) {
            const std::size_t batch = std::min<std::size_t>(
                5, items.size() - off);
            std::vector<std::uint64_t> args;
            args.reserve(batch + 1);
            args.push_back(side_bit
                           | (static_cast<std::uint64_t>(self) << 1)
                           | (static_cast<std::uint64_t>(off) << 17));
            for (std::size_t k = 0; k < batch; ++k) {
                args.push_back(std::bit_cast<std::uint64_t>(
                    my_local[items[off + k].srcLocal]));
            }
            co_await ctx.send(q, hGhost_, std::move(args));
            off += batch;
        }
    }

    // Wait for our own ghosts for this phase of this iteration.
    const std::int64_t want =
        side.expected[self] * static_cast<std::int64_t>(iter + 1);
    co_await ctx.waitUntil(
        [&side, self, want]() { return side.received[self] >= want; },
        TimeCat::Sync);
}

sim::SubTask<void>
Em3d::exchangeBulk(proc::Ctx &ctx, Side &side, int iter)
{
    const int self = ctx.self();
    const auto &my_local =
        (&side == &eSide_) ? hSide_.local[self] : eSide_.local[self];
    const std::uint64_t side_bit = (&side == &eSide_) ? 0 : 1;

    for (int q = 0; q < ctx.nprocs(); ++q) {
        const auto &items = side.plan[self][q];
        if (items.empty())
            continue;
        // Gather into a contiguous DMA buffer (explicit copy cost).
        std::vector<std::uint64_t> body;
        body.reserve(items.size());
        for (const auto &item : items) {
            body.push_back(
                std::bit_cast<std::uint64_t>(my_local[item.srcLocal]));
        }
        co_await ctx.chargeCopy(items.size());
        std::vector<std::uint64_t> args;
        args.push_back(side_bit | (static_cast<std::uint64_t>(self) << 1));
        co_await ctx.sendBulk(q, hGhostBulk_, std::move(args),
                              std::move(body));
    }

    const std::int64_t want =
        side.expected[self] * static_cast<std::int64_t>(iter + 1);
    co_await ctx.waitUntil(
        [&side, self, want]() { return side.received[self] >= want; },
        TimeCat::Sync);
}

sim::SubTask<void>
Em3d::computePhase(proc::Ctx &ctx, Side &side)
{
    const int self = ctx.self();
    const std::int32_t first = g_.firstNode(self);
    const std::int32_t count = g_.numNodesOn(self);
    const auto &row = *side.row;
    const auto &edges = *side.edges;
    auto &mine = side.local[self];
    const auto &other_local =
        (&side == &eSide_) ? hSide_.local[self] : eSide_.local[self];
    const auto &ghost = side.ghost[self];
    const auto &refs = side.refs[self];

    std::size_t flat = 0;
    for (std::int32_t n = first; n < first + count; ++n) {
        co_await ctx.pollPoint();
        double v = mine[n - first];
        for (std::int32_t k = row[n]; k < row[n + 1]; ++k, ++flat) {
            const Side::Ref &r = refs[flat];
            const double nb =
                r.remote ? ghost[r.idx] : other_local[r.idx];
            v -= edges[k].weight * nb;
            // Index/pointer chasing plus the ghost/local value access.
            co_await ctx.compute(4.0);
            co_await ctx.computeFlops(2);
        }
        mine[n - first] = v;
    }
    co_return;
}

sim::Thread
Em3d::programMp(proc::Ctx &ctx)
{
    for (int it = 0; it < p_.iters; ++it) {
        co_await exchangeMp(ctx, eSide_, it); // H values -> E consumers
        co_await computePhase(ctx, eSide_);
        co_await exchangeMp(ctx, hSide_, it); // E values -> H consumers
        co_await computePhase(ctx, hSide_);
    }
    co_return;
}

sim::Thread
Em3d::programBulk(proc::Ctx &ctx)
{
    for (int it = 0; it < p_.iters; ++it) {
        co_await exchangeBulk(ctx, eSide_, it);
        co_await computePhase(ctx, eSide_);
        co_await exchangeBulk(ctx, hSide_, it);
        co_await computePhase(ctx, hSide_);
    }
    co_return;
}

double
Em3d::checksum() const
{
    double sum = 0.0;
    if (core::isSharedMemory(mech_)) {
        for (std::int32_t n = 0; n < p_.graph.nodesPerSide; ++n) {
            const int p = g_.owner(n);
            const std::int32_t local = n - g_.firstNode(p);
            sum += machine_->debugDouble(eSide_.shared.addr(p, local));
            sum += machine_->debugDouble(hSide_.shared.addr(p, local));
        }
        return sum;
    }
    for (int p = 0; p < p_.graph.nprocs; ++p) {
        for (double v : eSide_.local[p])
            sum += v;
        for (double v : hSide_.local[p])
            sum += v;
    }
    return sum;
}

} // namespace alewife::apps
