#include "apps/stress.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace alewife::apps {

using core::Mechanism;

Stress::Stress(Params p) : p_(std::move(p))
{
    if (p_.counters < 1)
        p_.counters = 1;
    if (p_.opsPerNode < 1)
        p_.opsPerNode = 1;

    // Per-node scripts, seeded independently so the op mix differs
    // across nodes but is identical across runs of the same seed.
    script_.resize(static_cast<std::size_t>(p_.nprocs));
    for (int n = 0; n < p_.nprocs; ++n) {
        Rng rng(p_.seed * 0x9e3779b97f4a7c15ULL
                + static_cast<std::uint64_t>(n) + 1);
        auto &ops = script_[static_cast<std::size_t>(n)];
        ops.reserve(static_cast<std::size_t>(p_.opsPerNode));
        for (int i = 0; i < p_.opsPerNode; ++i) {
            Op op{};
            const std::uint64_t roll = rng.nextBounded(100);
            if (roll < 25) {
                op.kind = Op::Kind::Rmw;
                op.idx = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint64_t>(p_.counters)));
                op.delta = 1 + rng.nextBounded(7);
            } else if (roll < 45) {
                op.kind = Op::Kind::WriteSlot;
                op.idx = n;
                op.delta = (static_cast<std::uint64_t>(n) << 32)
                           | static_cast<std::uint64_t>(i);
            } else if (roll < 70) {
                op.kind = Op::Kind::ReadSlot;
                op.idx = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint64_t>(p_.nprocs)));
            } else if (roll < 80) {
                op.kind = Op::Kind::ReadCounter;
                op.idx = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint64_t>(p_.counters)));
            } else if (roll < 90) {
                op.kind = Op::Kind::Prefetch;
                op.idx = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint64_t>(p_.nprocs)));
            } else {
                op.kind = Op::Kind::Compute;
                op.delta = 1 + rng.nextBounded(24);
            }
            ops.push_back(op);
        }
    }

    // Replay reference: counters accumulate every RMW delta; each slot
    // holds its owner's last tagged write. Both are order-independent.
    std::vector<std::uint64_t> counters(
        static_cast<std::size_t>(p_.counters), 0);
    std::vector<std::uint64_t> slots(
        static_cast<std::size_t>(p_.nprocs), 0);
    for (int n = 0; n < p_.nprocs; ++n) {
        for (const Op &op : script_[static_cast<std::size_t>(n)]) {
            if (op.kind == Op::Kind::Rmw)
                counters[static_cast<std::size_t>(op.idx)] += op.delta;
            else if (op.kind == Op::Kind::WriteSlot)
                slots[static_cast<std::size_t>(op.idx)] = op.delta;
        }
    }
    reference_ = 0.0;
    for (std::uint64_t v : counters)
        reference_ += static_cast<double>(v);
    for (std::uint64_t v : slots)
        reference_ += static_cast<double>(v);
}

core::AppFactory
Stress::factory(Params p)
{
    return [p]() { return std::make_unique<Stress>(p); };
}

Addr
Stress::counterAddr(int c) const
{
    return countersBase_ + static_cast<Addr>(c) * lineBytes_;
}

Addr
Stress::slotAddr(int n) const
{
    return slotsBase_ + static_cast<Addr>(n) * lineBytes_;
}

void
Stress::setup(Machine &m, Mechanism mech)
{
    if (!core::isSharedMemory(mech))
        ALEWIFE_PANIC("stress is a shared-memory-only workload");
    if (m.config().nodes() != p_.nprocs) {
        ALEWIFE_PANIC("stress: machine has ", m.config().nodes(),
                      " nodes but Params::nprocs is ", p_.nprocs);
    }
    mech_ = mech;
    machine_ = &m;
    lineBytes_ = m.config().lineBytes;

    // One word per line so every op is a distinct coherence target.
    const std::uint64_t wpl = m.config().wordsPerLine();
    countersBase_ =
        m.mem().alloc(static_cast<std::uint64_t>(p_.counters) * wpl,
                      mem::HomePolicy::Interleaved, 0, "stress.counters");
    slotsBase_ =
        m.mem().alloc(static_cast<std::uint64_t>(p_.nprocs) * wpl,
                      mem::HomePolicy::Interleaved, 0, "stress.slots");
}

sim::Thread
Stress::program(proc::Ctx &ctx)
{
    const int self = ctx.self();
    const bool pf = mech_ == Mechanism::SharedMemoryPrefetch;
    const auto &ops = script_[static_cast<std::size_t>(self)];
    const std::size_t half = ops.size() / 2;

    for (std::size_t i = 0; i < ops.size(); ++i) {
        // A mid-script barrier gives the fuzzer a sync phase to perturb.
        if (i == half)
            co_await ctx.barrier();
        const Op &op = ops[i];
        switch (op.kind) {
          case Op::Kind::Rmw:
            co_await ctx.rmw(counterAddr(op.idx),
                             [d = op.delta](std::uint64_t v) {
                                 return v + d;
                             });
            break;
          case Op::Kind::WriteSlot:
            co_await ctx.write(slotAddr(self), op.delta);
            break;
          case Op::Kind::ReadSlot:
            co_await ctx.read(slotAddr(op.idx));
            break;
          case Op::Kind::ReadCounter:
            co_await ctx.read(counterAddr(op.idx));
            break;
          case Op::Kind::Prefetch:
            if (pf)
                ctx.prefetchRead(slotAddr(op.idx));
            else
                co_await ctx.compute(1.0);
            break;
          case Op::Kind::Compute:
            co_await ctx.compute(static_cast<double>(op.delta));
            break;
        }
    }
    co_await ctx.barrier();
    co_return;
}

double
Stress::checksum() const
{
    double sum = 0.0;
    for (int c = 0; c < p_.counters; ++c)
        sum += static_cast<double>(machine_->debugWord(counterAddr(c)));
    for (int n = 0; n < p_.nprocs; ++n)
        sum += static_cast<double>(machine_->debugWord(slotAddr(n)));
    return sum;
}

} // namespace alewife::apps
