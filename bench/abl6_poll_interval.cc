/**
 * @file
 * ABL6 — ablation of the poll-insertion interval (Section 4.4.3's
 * conservatism trade-off: "bursty traffic forces us to be conservative
 * when inserting polling calls").
 *
 * Sweeping the number of inner-loop work items between user-inserted
 * poll points in the polling variants: polling too often wastes
 * processor cycles on empty checks; polling too rarely lets the NI
 * input queue fill, parking packets in the network (tree saturation).
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);

    std::cout << "ABL6: poll-insertion interval vs runtime (MP-P)\n\n";
    std::cout << std::left << std::setw(10) << "gap" << std::right
              << std::setw(14) << "UNSTRUC" << std::setw(12)
              << "niFull" << std::setw(14) << "MOLDYN" << std::setw(12)
              << "niFull" << '\n';

    const auto unstruc =
        apps::Unstruc::factory(bench::unstrucParams(scale));
    const auto moldyn =
        apps::Moldyn::factory(bench::moldynParams(scale));

    for (int gap : {1, 4, 16, 64, 1 << 20}) {
        MachineConfig cfg;
        cfg.pollInsertionGap = gap;
        core::RunSpec spec;
        spec.machine = cfg;
        spec.mechanism = core::Mechanism::MpPolling;
        const auto ru = core::runApp(unstruc, spec);
        const auto rm = core::runApp(moldyn, spec);
        std::cout << std::left << std::setw(10)
                  << (gap >= (1 << 20) ? std::string("never")
                                       : std::to_string(gap))
                  << std::right << std::fixed << std::setprecision(0)
                  << std::setw(14) << ru.runtimeCycles << std::setw(12)
                  << ru.counters.niQueueFullStalls << std::setw(14)
                  << rm.runtimeCycles << std::setw(12)
                  << rm.counters.niQueueFullStalls << '\n';
    }
    std::cout << "\nAt this load the runtime stays nearly flat — the "
                 "NI queue absorbs the bursts — but the\nniFull column "
                 "shows packets parking in the network as polls grow "
                 "rare: latent tree\nsaturation that turns into real "
                 "slowdown once handlers or the network are loaded\n"
                 "(see ABL1). That asymmetric risk is why the paper "
                 "polls conservatively in MOLDYN.\n";
    return 0;
}
